//! Instruction set of the compiler IR.
//!
//! The set mirrors the subset of LLVM IR the paper's front-end consumes:
//! three-operand scalar ops, comparisons, casts, φ-nodes, memory ops against
//! named objects, ordinary and parallel (Tapir) terminators, calls, and the
//! tensor intrinsics used by the Tensorflow path (§6.3).

use crate::types::{TensorShape, Type};
use crate::value::Value;
use std::fmt;

/// Index of an instruction within its [`crate::module::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrId(pub u32);

/// Index of a basic block within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Index of a function within its [`crate::module::Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Index of a memory object (array) within its module. Each object is its
/// own address space, which makes the paper's `LLVMPointsto` (Algorithm 2)
/// a constant-time lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemObjId(pub u32);

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}
impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}
impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@fn{}", self.0)
    }
}
impl fmt::Display for MemObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@mem{}", self.0)
    }
}

/// A scalar immediate constant. Kept scalar-only (and therefore `Copy`) so
/// that [`ValueRef`] is `Copy`; composite constants are built with loads or
/// element-wise construction in the workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstVal {
    /// Boolean immediate.
    Bool(bool),
    /// Integer immediate.
    Int(i64),
    /// Float immediate.
    F32(f32),
}

impl ConstVal {
    /// Promote to a runtime [`Value`].
    pub fn to_value(self) -> Value {
        match self {
            ConstVal::Bool(b) => Value::Bool(b),
            ConstVal::Int(v) => Value::Int(v),
            ConstVal::F32(v) => Value::F32(v),
        }
    }
}

impl fmt::Display for ConstVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstVal::Bool(b) => write!(f, "{b}"),
            ConstVal::Int(v) => write!(f, "{v}"),
            // Debug formatting keeps the decimal point ("2.0"), so float
            // constants are never mistaken for integers when parsed back.
            ConstVal::F32(v) => write!(f, "{v:?}"),
        }
    }
}

/// A reference to an SSA value: another instruction's result, a function
/// argument, or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRef {
    /// Result of instruction `InstrId` in the same function.
    Instr(InstrId),
    /// The `n`-th function argument.
    Arg(u32),
    /// An immediate constant.
    Const(ConstVal),
}

impl ValueRef {
    /// Integer-constant convenience constructor.
    pub fn int(v: i64) -> ValueRef {
        ValueRef::Const(ConstVal::Int(v))
    }
    /// Float-constant convenience constructor.
    pub fn f32(v: f32) -> ValueRef {
        ValueRef::Const(ConstVal::F32(v))
    }
    /// The referenced instruction id, if any.
    pub fn as_instr(&self) -> Option<InstrId> {
        match self {
            ValueRef::Instr(id) => Some(*id),
            _ => None,
        }
    }
}

impl fmt::Display for ValueRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueRef::Instr(id) => write!(f, "{id}"),
            ValueRef::Arg(n) => write!(f, "%arg{n}"),
            ValueRef::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Integer/float comparison predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl fmt::Display for CmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Lt => "lt",
            CmpPred::Le => "le",
            CmpPred::Gt => "gt",
            CmpPred::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Binary arithmetic/logic opcodes (RISC-style 3-operand, per §2.1 Opt. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Integer divide (signed).
    Div,
    /// Integer remainder (signed).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,
}

impl BinOp {
    /// Whether the op operates on floats.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// Mnemonic used by the printer and the Chisel emitter.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Unary math opcodes (used by the ML-flavoured workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Float negation.
    FNeg,
    /// e^x (softmax).
    Exp,
    /// Square root (covariance normalization).
    Sqrt,
    /// max(x, 0) (ReLU).
    Relu,
}

impl UnOp {
    /// Mnemonic used by the printer and the Chisel emitter.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::FNeg => "fneg",
            UnOp::Exp => "exp",
            UnOp::Sqrt => "sqrt",
            UnOp::Relu => "relu",
        }
    }
}

/// Element-wise / matrix tensor opcodes (the paper's higher-order ops, §6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorOp {
    /// Element-wise add.
    Add,
    /// Tile matrix multiply (reduction-tree unit of Figure 14).
    MatMul,
    /// Element-wise multiply.
    Mul,
    /// Element-wise ReLU.
    Relu,
    /// Tile convolution (dot product of tile with a weight tile).
    Conv,
    /// Sum-reduce every tile element to one scalar (reduction tree
    /// without the multiplier row of Figure 14).
    Reduce,
    /// Softmax over the tile's elements: `exp(x_k) / Σ_j exp(x_j)`.
    /// Always produces F32 lanes (like the scalar `exp` unit).
    Softmax,
}

impl TensorOp {
    /// Mnemonic used by the printer and the Chisel emitter.
    pub fn mnemonic(self) -> &'static str {
        match self {
            TensorOp::Add => "tensor.add",
            TensorOp::MatMul => "tensor.matmul",
            TensorOp::Mul => "tensor.mul",
            TensorOp::Relu => "tensor.relu",
            TensorOp::Conv => "tensor.conv",
            TensorOp::Reduce => "tensor.reduce",
            TensorOp::Softmax => "tensor.softmax",
        }
    }

    /// Whether the op consumes one tile (vs two).
    pub fn is_unary(self) -> bool {
        matches!(self, TensorOp::Relu | TensorOp::Reduce | TensorOp::Softmax)
    }

    /// Whether the op reduces its tile to a single scalar.
    pub fn reduces_to_scalar(self) -> bool {
        matches!(self, TensorOp::Conv | TensorOp::Reduce)
    }
}

/// Cast opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastOp {
    /// Signed int → float.
    SiToFp,
    /// Float → signed int (truncating).
    FpToSi,
    /// Integer truncate / widen (value-preserving in our i64 carrier).
    IntResize,
}

/// The operation performed by an [`Instr`].
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Binary arithmetic/logic; operands: `[lhs, rhs]`.
    Bin(BinOp),
    /// Unary math; operands: `[x]`.
    Un(UnOp),
    /// Comparison producing `i1`; operands: `[lhs, rhs]`.
    Cmp(CmpPred),
    /// `select cond, a, b`; operands: `[cond, a, b]`.
    Select,
    /// Cast; operands: `[x]`.
    Cast(CastOp),
    /// SSA φ; operands parallel to `preds` (incoming block per operand).
    Phi {
        /// Incoming blocks, parallel to the operand list.
        preds: Vec<BlockId>,
    },
    /// Load from a memory object; operands: `[element_index]`. The loaded
    /// type is the instruction's result type (scalar, vector or tensor).
    Load {
        /// The accessed object (its address space).
        obj: MemObjId,
    },
    /// Store to a memory object; operands: `[element_index, value]`.
    Store {
        /// The accessed object (its address space).
        obj: MemObjId,
    },
    /// Tensor arithmetic; operands: `[a]` or `[a, b]` depending on the op.
    Tensor(TensorOp, TensorShape),
    /// Call of another function; operands: arguments.
    Call {
        /// Callee.
        callee: FuncId,
    },
    /// Unconditional branch terminator.
    Br {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch terminator; operands: `[cond]`.
    CondBr {
        /// Taken when the condition is true.
        t: BlockId,
        /// Taken when the condition is false.
        f: BlockId,
    },
    /// Return terminator; operands: `[]` or `[value]`.
    Ret,
    /// Tapir `detach`: spawn `body` as a concurrent task, continue at `cont`.
    /// Operands: live-in values forwarded to the spawned region (captured
    /// closure arguments; the paper's task closure, §3.6).
    Detach {
        /// Entry block of the spawned region.
        body: BlockId,
        /// Continuation block of the parent.
        cont: BlockId,
    },
    /// Tapir `reattach`: terminates a spawned region, returning control
    /// (logically) to the parent's continuation.
    Reattach {
        /// The parent continuation this region reattaches to.
        cont: BlockId,
    },
    /// Tapir `sync`: wait for all tasks spawned in the current region.
    Sync {
        /// Block to continue at once children have completed.
        cont: BlockId,
    },
}

impl Op {
    /// Whether this op terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Op::Br { .. }
                | Op::CondBr { .. }
                | Op::Ret
                | Op::Detach { .. }
                | Op::Reattach { .. }
                | Op::Sync { .. }
        )
    }

    /// Whether this op accesses memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::Store { .. })
    }

    /// Successor blocks of a terminator (empty for non-terminators and `Ret`).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Op::Br { target } => vec![*target],
            Op::CondBr { t, f } => vec![*t, *f],
            Op::Detach { body, cont } => vec![*body, *cont],
            Op::Reattach { .. } => vec![],
            Op::Sync { cont } => vec![*cont],
            _ => vec![],
        }
    }

    /// Short mnemonic for printing and statistics.
    pub fn mnemonic(&self) -> String {
        match self {
            Op::Bin(b) => b.mnemonic().to_string(),
            Op::Un(u) => u.mnemonic().to_string(),
            Op::Cmp(p) => format!("icmp.{p}"),
            Op::Select => "select".to_string(),
            Op::Cast(CastOp::SiToFp) => "sitofp".to_string(),
            Op::Cast(CastOp::FpToSi) => "fptosi".to_string(),
            Op::Cast(CastOp::IntResize) => "resize".to_string(),
            Op::Phi { .. } => "phi".to_string(),
            Op::Load { .. } => "load".to_string(),
            Op::Store { .. } => "store".to_string(),
            Op::Tensor(t, _) => t.mnemonic().to_string(),
            Op::Call { .. } => "call".to_string(),
            Op::Br { .. } => "br".to_string(),
            Op::CondBr { .. } => "condbr".to_string(),
            Op::Ret => "ret".to_string(),
            Op::Detach { .. } => "detach".to_string(),
            Op::Reattach { .. } => "reattach".to_string(),
            Op::Sync { .. } => "sync".to_string(),
        }
    }
}

/// One SSA instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// The operation.
    pub op: Op,
    /// Result type (`None` for stores and terminators).
    pub ty: Option<Type>,
    /// Operand list; meaning depends on [`Op`].
    pub operands: Vec<ValueRef>,
    /// The block this instruction belongs to (maintained by the builder).
    pub block: BlockId,
}

impl Instr {
    /// Whether this instruction terminates its block.
    pub fn is_terminator(&self) -> bool {
        self.op.is_terminator()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_classification() {
        assert!(Op::Br { target: BlockId(0) }.is_terminator());
        assert!(Op::Ret.is_terminator());
        assert!(Op::Detach {
            body: BlockId(1),
            cont: BlockId(2)
        }
        .is_terminator());
        assert!(!Op::Bin(BinOp::Add).is_terminator());
        assert!(!Op::Load { obj: MemObjId(0) }.is_terminator());
    }

    #[test]
    fn successors() {
        let op = Op::CondBr {
            t: BlockId(1),
            f: BlockId(2),
        };
        assert_eq!(op.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Op::Ret.successors().is_empty());
        assert_eq!(Op::Sync { cont: BlockId(3) }.successors(), vec![BlockId(3)]);
    }

    #[test]
    fn mem_classification() {
        assert!(Op::Load { obj: MemObjId(0) }.is_mem());
        assert!(Op::Store { obj: MemObjId(0) }.is_mem());
        assert!(!Op::Bin(BinOp::Mul).is_mem());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(Op::Bin(BinOp::FMul).mnemonic(), "fmul");
        assert_eq!(Op::Cmp(CmpPred::Lt).mnemonic(), "icmp.lt");
        assert_eq!(
            Op::Tensor(TensorOp::MatMul, TensorShape::new(2, 2)).mnemonic(),
            "tensor.matmul"
        );
    }

    #[test]
    fn value_ref_constructors() {
        assert_eq!(ValueRef::int(3), ValueRef::Const(ConstVal::Int(3)));
        assert_eq!(ValueRef::Instr(InstrId(4)).as_instr(), Some(InstrId(4)));
        assert_eq!(ValueRef::Arg(0).as_instr(), None);
        assert_eq!(ConstVal::Int(3).to_value(), Value::Int(3));
        assert_eq!(ConstVal::F32(1.0).to_value(), Value::F32(1.0));
        assert_eq!(ConstVal::Bool(true).to_value(), Value::Bool(true));
    }
}
