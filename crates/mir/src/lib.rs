//! `muir-mir` — a compact SSA compiler IR with Tapir-style parallel control flow.
//!
//! This crate is the software-side substrate of the μIR reproduction. The
//! MICRO-52 paper consumes LLVM IR (with Tapir `detach`/`reattach`/`sync`
//! extensions for Cilk and Tensorflow lowering) purely as a *graph source*:
//! the front-end walks the program-dependence graph, aggregates basic blocks
//! into task regions, and lowers each region's instructions to μIR dataflow
//! nodes. `muir-mir` provides the same ingredients without linking LLVM:
//!
//! * an SSA value graph over typed instructions ([`instr::Op`]),
//! * a control-flow graph of basic blocks with terminators,
//! * Tapir-style parallel terminators (`detach`/`reattach`/`sync`),
//! * named memory objects, each its own address space (so the paper's
//!   `LLVMPointsto` becomes a trivial lookup),
//! * tensor intrinsics (`Tensor2D` loads/stores and arithmetic) that model
//!   the Tensorflow path,
//! * a [`builder`] API used by `muir-workloads` to express every benchmark,
//! * a reference [`interp`]reter: the functional golden model that all
//!   simulated accelerators are verified against, and the dynamic-trace
//!   source for the ARM-A9-class CPU timing baseline,
//! * [`analysis`] passes: dominators, natural loops, live-ins, affine
//!   address and loop-carried dependence analysis.
//!
//! # Example
//!
//! ```
//! use muir_mir::builder::FunctionBuilder;
//! use muir_mir::types::ScalarType;
//! use muir_mir::module::Module;
//!
//! let mut module = Module::new("saxpy");
//! let x = module.add_mem_object("x", ScalarType::F32, 64);
//! let y = module.add_mem_object("y", ScalarType::F32, 64);
//! let mut b = FunctionBuilder::new("saxpy", &[ScalarType::F32.into()]).with_mem(&module);
//! let a = b.arg(0);
//! b.par_for(0, 64, 1, |b, i| {
//!     let xi = b.load(x, i);
//!     let yi = b.load(y, i);
//!     let ax = b.fmul(a, xi);
//!     let s = b.fadd(ax, yi);
//!     b.store(y, i, s);
//! });
//! b.ret(None);
//! let f = b.finish();
//! module.add_function(f);
//! assert!(muir_mir::verify::verify_module(&module).is_ok());
//! ```

pub mod analysis;
pub mod builder;
pub mod instr;
pub mod interp;
pub mod module;
pub mod parser;
pub mod printer;
pub mod trace;
pub mod types;
pub mod value;
pub mod verify;

pub use builder::FunctionBuilder;
pub use instr::{BlockId, FuncId, InstrId, MemObjId, Op, ValueRef};
pub use module::{Block, Function, MemObject, Module};
pub use types::{ScalarType, TensorShape, Type};
pub use value::Value;
