//! Dynamic-trace events emitted by the interpreter.
//!
//! The ARM-A9-class CPU timing model in `muir-baselines` consumes these
//! events online (no trace is stored), classifying each dynamic operation
//! and feeding memory addresses to its cache model.

use crate::instr::MemObjId;

/// Classification of one dynamic operation for the CPU timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Simple integer ALU op (add/sub/logic/shift/compare/select/cast).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide or remainder.
    IntDiv,
    /// Float add/sub/compare.
    FpAdd,
    /// Float multiply.
    FpMul,
    /// Float divide.
    FpDiv,
    /// Float special function (exp, sqrt).
    FpSpecial,
    /// Memory load (one element).
    Load,
    /// Memory store (one element).
    Store,
    /// Control transfer.
    Branch,
    /// Call/return and task management overhead.
    Call,
}

/// One dynamic-trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Operation class.
    pub class: OpClass,
    /// Flat global element address for loads/stores.
    pub addr: Option<u64>,
    /// Source memory object for loads/stores.
    pub obj: Option<MemObjId>,
}

impl TraceEvent {
    /// A compute event of the given class.
    pub fn compute(class: OpClass) -> Self {
        TraceEvent {
            class,
            addr: None,
            obj: None,
        }
    }

    /// A memory event.
    pub fn mem(class: OpClass, obj: MemObjId, addr: u64) -> Self {
        TraceEvent {
            class,
            addr: Some(addr),
            obj: Some(obj),
        }
    }
}

/// Online consumer of trace events.
pub trait TraceSink {
    /// Observe one dynamic operation.
    fn event(&mut self, ev: TraceEvent);

    /// Observe a basic-block entry (function name + block). Statically
    /// scheduled execution models (the HLS baseline) accumulate cycles per
    /// dynamic block; the default implementation ignores it.
    fn block(&mut self, _func: &str, _block: crate::instr::BlockId) {}
}

/// A sink that simply counts events by class (useful in tests and for
/// instruction-mix statistics).
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    /// Total events seen.
    pub total: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic branches.
    pub branches: u64,
    /// Dynamic float ops.
    pub float_ops: u64,
    /// Dynamic integer ALU/mul/div ops.
    pub int_ops: u64,
}

impl CountingSink {
    /// New zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for CountingSink {
    fn event(&mut self, ev: TraceEvent) {
        self.total += 1;
        match ev.class {
            OpClass::Load => self.loads += 1,
            OpClass::Store => self.stores += 1,
            OpClass::Branch => self.branches += 1,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSpecial => {
                self.float_ops += 1
            }
            OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv => self.int_ops += 1,
            OpClass::Call => {}
        }
    }
}

/// A sink that discards everything (tracing disabled).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&mut self, _ev: TraceEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_classifies() {
        let mut s = CountingSink::new();
        s.event(TraceEvent::compute(OpClass::IntAlu));
        s.event(TraceEvent::compute(OpClass::FpMul));
        s.event(TraceEvent::mem(OpClass::Load, MemObjId(0), 4));
        s.event(TraceEvent::mem(OpClass::Store, MemObjId(0), 4));
        s.event(TraceEvent::compute(OpClass::Branch));
        assert_eq!(s.total, 5);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 1);
        assert_eq!(s.float_ops, 1);
        assert_eq!(s.int_ops, 1);
    }

    #[test]
    fn event_constructors() {
        let e = TraceEvent::mem(OpClass::Load, MemObjId(3), 17);
        assert_eq!(e.addr, Some(17));
        assert_eq!(e.obj, Some(MemObjId(3)));
        let c = TraceEvent::compute(OpClass::FpDiv);
        assert_eq!(c.addr, None);
    }
}
