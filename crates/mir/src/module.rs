//! Functions, basic blocks, memory objects, and modules.

use crate::instr::{BlockId, FuncId, Instr, InstrId, MemObjId, Op, ValueRef};
use crate::types::{ScalarType, Type};

/// A basic block: a straight-line instruction list ending in a terminator.
#[derive(Debug, Clone)]
pub struct Block {
    /// Human-readable label.
    pub name: String,
    /// Instructions in order; the last one must be a terminator.
    pub instrs: Vec<InstrId>,
}

impl Block {
    /// New empty block.
    pub fn new(name: impl Into<String>) -> Self {
        Block {
            name: name.into(),
            instrs: Vec::new(),
        }
    }
}

/// A function: CFG of blocks over an instruction arena.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type, if any.
    pub ret: Option<Type>,
    /// Instruction arena; [`InstrId`] indexes into this.
    pub instrs: Vec<Instr>,
    /// Block arena; [`BlockId`] indexes into this.
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
    /// Loop headers asserted parallel by the programmer (the HLS-pragma
    /// equivalent; Cilk `par_for` regions are parallel by construction and
    /// do not need this).
    pub parallel_hints: Vec<BlockId>,
}

impl Function {
    /// The instruction behind `id`.
    pub fn instr(&self, id: InstrId) -> &Instr {
        &self.instrs[id.0 as usize]
    }

    /// Mutable access to the instruction behind `id`.
    pub fn instr_mut(&mut self, id: InstrId) -> &mut Instr {
        &mut self.instrs[id.0 as usize]
    }

    /// The block behind `id`.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Terminator instruction of a block, if the block is complete.
    pub fn terminator(&self, id: BlockId) -> Option<&Instr> {
        self.block(id)
            .instrs
            .last()
            .map(|&i| self.instr(i))
            .filter(|i| i.is_terminator())
    }

    /// Successor blocks of `id` in the CFG.
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        self.terminator(id)
            .map(|t| t.op.successors())
            .unwrap_or_default()
    }

    /// Predecessor map: for each block, the blocks that branch to it.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in 0..self.blocks.len() {
            let id = BlockId(b as u32);
            for s in self.successors(id) {
                // Out-of-range targets are reported by the verifier; don't
                // panic while computing predecessors for it.
                if let Some(p) = preds.get_mut(s.0 as usize) {
                    p.push(id);
                }
            }
        }
        preds
    }

    /// All block ids in arena order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Iterate `(InstrId, &Instr)` over a block's instructions.
    pub fn block_instrs(&self, id: BlockId) -> impl Iterator<Item = (InstrId, &Instr)> {
        self.block(id)
            .instrs
            .iter()
            .map(move |&i| (i, self.instr(i)))
    }

    /// Count of dynamic operand uses of instruction results (SSA edges).
    pub fn ssa_edge_count(&self) -> usize {
        self.instrs
            .iter()
            .flat_map(|i| i.operands.iter())
            .filter(|o| matches!(o, ValueRef::Instr(_)))
            .count()
    }

    /// Number of memory operations in the function.
    pub fn mem_op_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.op.is_mem()).count()
    }
}

/// A named memory object (array). One object per source array; each object
/// is an independent address space in the partitioned global address space
/// of §3.2's memory model.
#[derive(Debug, Clone)]
pub struct MemObject {
    /// Source-level array name.
    pub name: String,
    /// Element kind (one element per address slot).
    pub elem: ScalarType,
    /// Number of element slots.
    pub len: u64,
    /// Whether the object is read-only for the accelerator (stream-in data).
    pub read_only: bool,
}

/// A module: functions plus memory objects. `main` (the first function added)
/// is the accelerator's root region.
#[derive(Debug, Clone)]
pub struct Module {
    /// Module name (workload name).
    pub name: String,
    /// Function arena; [`FuncId`] indexes into this.
    pub functions: Vec<Function>,
    /// Memory-object arena; [`MemObjId`] indexes into this.
    pub mem_objects: Vec<MemObject>,
}

impl Module {
    /// New empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            functions: Vec::new(),
            mem_objects: Vec::new(),
        }
    }

    /// Register a memory object and return its id.
    pub fn add_mem_object(
        &mut self,
        name: impl Into<String>,
        elem: ScalarType,
        len: u64,
    ) -> MemObjId {
        let id = MemObjId(self.mem_objects.len() as u32);
        self.mem_objects.push(MemObject {
            name: name.into(),
            elem,
            len,
            read_only: false,
        });
        id
    }

    /// Register a read-only memory object (input stream) and return its id.
    pub fn add_ro_mem_object(
        &mut self,
        name: impl Into<String>,
        elem: ScalarType,
        len: u64,
    ) -> MemObjId {
        let id = self.add_mem_object(name, elem, len);
        self.mem_objects[id.0 as usize].read_only = true;
        id
    }

    /// Add a function and return its id. The first function added is `main`.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(f);
        id
    }

    /// The function behind `id`.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// The memory object behind `id`.
    pub fn mem_object(&self, id: MemObjId) -> &MemObject {
        &self.mem_objects[id.0 as usize]
    }

    /// The root function (first added), if present.
    pub fn main(&self) -> Option<&Function> {
        self.functions.first()
    }

    /// Look up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Total static instruction count across all functions.
    pub fn instr_count(&self) -> usize {
        self.functions.iter().map(|f| f.instrs.len()).sum()
    }

    /// Whether any function contains Tapir parallel terminators.
    pub fn has_parallelism(&self) -> bool {
        self.functions
            .iter()
            .flat_map(|f| f.instrs.iter())
            .any(|i| matches!(i.op, Op::Detach { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn tiny_module() -> Module {
        let mut m = Module::new("tiny");
        let a = m.add_mem_object("a", ScalarType::I32, 16);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        let v = b.load(a, ValueRef::int(0));
        let w = b.add(v, ValueRef::int(1));
        b.store(a, ValueRef::int(0), w);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn module_accessors() {
        let m = tiny_module();
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.mem_objects.len(), 1);
        assert_eq!(m.mem_object(MemObjId(0)).name, "a");
        assert!(m.main().is_some());
        assert!(m.function_by_name("main").is_some());
        assert!(m.function_by_name("nope").is_none());
        assert!(!m.has_parallelism());
        assert!(m.instr_count() >= 4);
    }

    #[test]
    fn cfg_queries() {
        let m = tiny_module();
        let f = m.main().unwrap();
        assert_eq!(f.successors(f.entry), vec![]);
        assert!(f.terminator(f.entry).is_some());
        let preds = f.predecessors();
        assert!(preds[f.entry.0 as usize].is_empty());
    }

    #[test]
    fn counts() {
        let m = tiny_module();
        let f = m.main().unwrap();
        assert_eq!(f.mem_op_count(), 2);
        // add uses load result; store uses add result.
        assert_eq!(f.ssa_edge_count(), 2);
    }

    #[test]
    fn read_only_objects() {
        let mut m = Module::new("ro");
        let id = m.add_ro_mem_object("w", ScalarType::F32, 8);
        assert!(m.mem_object(id).read_only);
    }
}
