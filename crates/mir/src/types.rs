//! Type system shared by the compiler IR and (via re-export) the μIR graph.
//!
//! The paper's polymorphic dataflow nodes carry a type from this lattice:
//! scalars, short vectors, and 2-D tensors (§3.3, §6.3). Memory is addressed
//! in *elements* (one scalar slot per address); composite types occupy
//! consecutive element slots, which is what gives the databox (§3.4) its job
//! of slicing a typed access into word transactions.

use std::fmt;

/// Scalar element kinds supported by the IR.
///
/// `I1` is the predicate type produced by comparisons; `F32` is the only
/// floating-point width, matching the paper's single-precision evaluation
/// ("Here we use single precision throughout", §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// 1-bit boolean / predicate.
    I1,
    /// 8-bit integer.
    I8,
    /// 32-bit integer.
    I32,
    /// 64-bit integer (loop counters, addresses).
    I64,
    /// 32-bit IEEE-754 float.
    F32,
}

impl ScalarType {
    /// Bit width of the scalar.
    pub fn bits(self) -> u32 {
        match self {
            ScalarType::I1 => 1,
            ScalarType::I8 => 8,
            ScalarType::I32 => 32,
            ScalarType::I64 => 64,
            ScalarType::F32 => 32,
        }
    }

    /// Whether this is a floating-point kind.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F32)
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::I1 => "i1",
            ScalarType::I8 => "i8",
            ScalarType::I32 => "i32",
            ScalarType::I64 => "i64",
            ScalarType::F32 => "f32",
        };
        f.write_str(s)
    }
}

/// Shape of a 2-D tensor tile (the paper evaluates 2×2 tiles; the shape is a
/// designer-controlled parameter, §6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorShape {
    /// Number of rows in the tile.
    pub rows: u8,
    /// Number of columns in the tile.
    pub cols: u8,
}

impl TensorShape {
    /// A new `rows`×`cols` shape.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: u8, cols: u8) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "tensor shape dimensions must be nonzero"
        );
        TensorShape { rows, cols }
    }

    /// Total number of elements in the tile.
    pub fn elems(self) -> u32 {
        self.rows as u32 * self.cols as u32
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// An IR value type: scalar, short vector, or 2-D tensor tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// A single scalar element.
    Scalar(ScalarType),
    /// A short SIMD vector of `lanes` elements.
    Vector {
        /// Element kind.
        elem: ScalarType,
        /// Number of lanes.
        lanes: u8,
    },
    /// A 2-D tensor tile.
    Tensor {
        /// Element kind.
        elem: ScalarType,
        /// Tile shape.
        shape: TensorShape,
    },
}

impl Type {
    /// The 1-bit predicate type.
    pub const BOOL: Type = Type::Scalar(ScalarType::I1);
    /// The canonical 32-bit integer type.
    pub const I32: Type = Type::Scalar(ScalarType::I32);
    /// The canonical 64-bit integer type.
    pub const I64: Type = Type::Scalar(ScalarType::I64);
    /// The canonical 32-bit float type.
    pub const F32: Type = Type::Scalar(ScalarType::F32);

    /// Element kind of this type.
    pub fn elem(self) -> ScalarType {
        match self {
            Type::Scalar(s) => s,
            Type::Vector { elem, .. } => elem,
            Type::Tensor { elem, .. } => elem,
        }
    }

    /// Number of scalar elements this type occupies in memory.
    pub fn elems(self) -> u32 {
        match self {
            Type::Scalar(_) => 1,
            Type::Vector { lanes, .. } => lanes as u32,
            Type::Tensor { shape, .. } => shape.elems(),
        }
    }

    /// Total bit width (used by the RTL backend to size ports and flits).
    pub fn bits(self) -> u32 {
        self.elems() * self.elem().bits()
    }

    /// Whether the element kind is floating point.
    pub fn is_float(self) -> bool {
        self.elem().is_float()
    }

    /// Whether this is a (non-scalar) composite type.
    pub fn is_composite(self) -> bool {
        !matches!(self, Type::Scalar(_))
    }
}

impl From<ScalarType> for Type {
    fn from(s: ScalarType) -> Self {
        Type::Scalar(s)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Vector { elem, lanes } => write!(f, "<{lanes} x {elem}>"),
            Type::Tensor { elem, shape } => write!(f, "tensor<{shape} x {elem}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_bits() {
        assert_eq!(ScalarType::I1.bits(), 1);
        assert_eq!(ScalarType::I8.bits(), 8);
        assert_eq!(ScalarType::I32.bits(), 32);
        assert_eq!(ScalarType::I64.bits(), 64);
        assert_eq!(ScalarType::F32.bits(), 32);
        assert!(ScalarType::F32.is_float());
        assert!(!ScalarType::I32.is_float());
    }

    #[test]
    fn tensor_shape_elems() {
        let s = TensorShape::new(2, 2);
        assert_eq!(s.elems(), 4);
        assert_eq!(s.to_string(), "2x2");
        let s = TensorShape::new(4, 4);
        assert_eq!(s.elems(), 16);
    }

    #[test]
    #[should_panic]
    fn tensor_shape_zero_rejected() {
        TensorShape::new(0, 4);
    }

    #[test]
    fn type_layout() {
        let t = Type::Tensor {
            elem: ScalarType::F32,
            shape: TensorShape::new(2, 2),
        };
        assert_eq!(t.elems(), 4);
        assert_eq!(t.bits(), 128);
        assert!(t.is_composite());
        let v = Type::Vector {
            elem: ScalarType::I32,
            lanes: 8,
        };
        assert_eq!(v.elems(), 8);
        assert_eq!(v.bits(), 256);
        assert_eq!(Type::I32.elems(), 1);
        assert!(!Type::I32.is_composite());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::F32.to_string(), "f32");
        let v = Type::Vector {
            elem: ScalarType::I32,
            lanes: 4,
        };
        assert_eq!(v.to_string(), "<4 x i32>");
        let t = Type::Tensor {
            elem: ScalarType::F32,
            shape: TensorShape::new(2, 2),
        };
        assert_eq!(t.to_string(), "tensor<2x2 x f32>");
    }

    #[test]
    fn from_scalar() {
        let t: Type = ScalarType::I64.into();
        assert_eq!(t, Type::I64);
    }
}
