//! Control-flow and memory analyses used by the μIR front-end and by μopt.
//!
//! * reverse post-order, dominators, natural loops;
//! * detach-region discovery (Tapir task extents);
//! * region live-ins/live-outs (task closure capture, §3.6);
//! * affine address forms and a conservative loop-carried memory dependence
//!   test (drives pipeline initiation intervals in the simulator);
//! * memory-group analysis (the paper's `LLVMPointsto` of Algorithm 2).

use crate::instr::{BinOp, BlockId, InstrId, MemObjId, Op, ValueRef};
use crate::module::Function;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Reverse post-order of the CFG from the entry block. Unreachable blocks
/// are omitted.
pub fn reverse_post_order(f: &Function) -> Vec<BlockId> {
    let mut visited = HashSet::new();
    let mut post = Vec::new();
    // Iterative DFS with an explicit stack carrying (block, next-succ-index).
    let mut stack = vec![(f.entry, 0usize)];
    visited.insert(f.entry);
    while let Some((b, i)) = stack.pop() {
        let succs = f.successors(b);
        if i < succs.len() {
            stack.push((b, i + 1));
            let s = succs[i];
            if visited.insert(s) {
                stack.push((s, 0));
            }
        } else {
            post.push(b);
        }
    }
    post.reverse();
    post
}

/// Immediate dominators, indexed by block. `idoms[entry] == entry`;
/// unreachable blocks map to `None`.
pub fn dominators(f: &Function) -> Vec<Option<BlockId>> {
    let rpo = reverse_post_order(f);
    let mut order = vec![usize::MAX; f.blocks.len()];
    for (i, b) in rpo.iter().enumerate() {
        order[b.0 as usize] = i;
    }
    let preds = f.predecessors();
    let mut idom: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
    idom[f.entry.0 as usize] = Some(f.entry);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.0 as usize] {
                if idom[p.0 as usize].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &order, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.0 as usize] != Some(ni) {
                    idom[b.0 as usize] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

fn intersect(idom: &[Option<BlockId>], order: &[usize], mut a: BlockId, mut b: BlockId) -> BlockId {
    while a != b {
        while order[a.0 as usize] > order[b.0 as usize] {
            a = idom[a.0 as usize].expect("dominator defined");
        }
        while order[b.0 as usize] > order[a.0 as usize] {
            b = idom[b.0 as usize].expect("dominator defined");
        }
    }
    a
}

/// Whether `a` dominates `b`.
pub fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.0 as usize] {
            Some(d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

/// A natural loop discovered from a back edge.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Loop header (target of the back edges).
    pub header: BlockId,
    /// Blocks strictly inside the loop (header included).
    pub blocks: BTreeSet<BlockId>,
    /// Source blocks of back edges.
    pub latches: Vec<BlockId>,
    /// Nesting depth (outermost = 1).
    pub depth: u32,
    /// Index of the innermost enclosing loop in the forest, if any.
    pub parent: Option<usize>,
}

/// Discover all natural loops and their nesting.
pub fn natural_loops(f: &Function) -> Vec<NaturalLoop> {
    let idom = dominators(f);
    let preds = f.predecessors();
    // Back edge: b -> h where h dominates b.
    let mut loops: HashMap<BlockId, NaturalLoop> = HashMap::new();
    for b in f.block_ids() {
        for h in f.successors(b) {
            if dominates(&idom, h, b) {
                let lp = loops.entry(h).or_insert_with(|| NaturalLoop {
                    header: h,
                    blocks: BTreeSet::new(),
                    latches: Vec::new(),
                    depth: 1,
                    parent: None,
                });
                lp.latches.push(b);
                // Collect the loop body: backwards reachability from the
                // latch without passing through the header.
                let mut work = vec![b];
                lp.blocks.insert(h);
                while let Some(x) = work.pop() {
                    if lp.blocks.insert(x) {
                        for &p in &preds[x.0 as usize] {
                            work.push(p);
                        }
                    } else if x == h {
                        continue;
                    }
                }
            }
        }
    }
    let mut list: Vec<NaturalLoop> = loops.into_values().collect();
    list.sort_by_key(|l| l.header);
    // Nesting: loop i is nested in loop j if its header is inside j's blocks
    // (and they differ). Parent = smallest enclosing loop.
    let snapshot: Vec<(BlockId, BTreeSet<BlockId>)> =
        list.iter().map(|l| (l.header, l.blocks.clone())).collect();
    for (i, lp) in list.iter_mut().enumerate() {
        let mut best: Option<(usize, usize)> = None; // (index, size)
        for (j, (hj, bj)) in snapshot.iter().enumerate() {
            if i != j && bj.contains(&lp.header) && *hj != lp.header {
                let size = bj.len();
                if best.is_none_or(|(_, s)| size < s) {
                    best = Some((j, size));
                }
            }
        }
        lp.parent = best.map(|(j, _)| j);
    }
    // Depths.
    let parents: Vec<Option<usize>> = list.iter().map(|l| l.parent).collect();
    for i in 0..list.len() {
        let mut d = 1;
        let mut p = parents[i];
        while let Some(j) = p {
            d += 1;
            p = parents[j];
        }
        list[i].depth = d;
    }
    list
}

/// The extent of a Tapir detach region: blocks reachable from `body` without
/// passing a `reattach` terminator (the reattach block is included).
pub fn detach_region(f: &Function, body: BlockId) -> BTreeSet<BlockId> {
    let mut region = BTreeSet::new();
    let mut work = vec![body];
    while let Some(b) = work.pop() {
        if !region.insert(b) {
            continue;
        }
        let is_reattach = f
            .terminator(b)
            .map(|t| matches!(t.op, Op::Reattach { .. }))
            .unwrap_or(false);
        if !is_reattach {
            for s in f.successors(b) {
                work.push(s);
            }
        }
    }
    region
}

/// Values flowing into / out of a block region.
#[derive(Debug, Clone, Default)]
pub struct RegionValues {
    /// Instruction results defined outside, used inside (live-ins).
    pub in_values: BTreeSet<InstrId>,
    /// Function arguments used inside.
    pub in_args: BTreeSet<u32>,
    /// Instruction results defined inside, used outside (live-outs).
    pub out_values: BTreeSet<InstrId>,
}

/// Compute the live-ins and live-outs of a region (the paper's task-closure
/// capture in §3.6).
pub fn region_values(f: &Function, region: &BTreeSet<BlockId>) -> RegionValues {
    let mut rv = RegionValues::default();
    let in_region = |iid: InstrId| -> bool { region.contains(&f.instr(iid).block) };
    for b in f.block_ids() {
        let inside = region.contains(&b);
        for (_iid, instr) in f.block_instrs(b) {
            for opnd in &instr.operands {
                match opnd {
                    ValueRef::Instr(d) => {
                        let def_inside = in_region(*d);
                        if inside && !def_inside {
                            rv.in_values.insert(*d);
                        } else if !inside && def_inside {
                            rv.out_values.insert(*d);
                        }
                    }
                    ValueRef::Arg(n) => {
                        if inside {
                            rv.in_args.insert(*n);
                        }
                    }
                    ValueRef::Const(_) => {}
                }
            }
        }
    }
    rv
}

/// Symbol appearing in an affine address form: a loop-invariant value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sym {
    /// An instruction defined outside the analysed loop.
    Instr(InstrId),
    /// A function argument.
    Arg(u32),
}

/// Affine form of an address expression with respect to one induction
/// variable: `scale·iv + Σ coeffᵢ·symᵢ + konst`, or `Opaque`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Affine {
    /// A recognised affine combination.
    Affine {
        /// Coefficient of the induction variable.
        scale: i64,
        /// Constant term.
        konst: i64,
        /// Loop-invariant symbolic terms with coefficients.
        syms: BTreeMap<Sym, i64>,
    },
    /// Not recognisably affine.
    Opaque,
}

impl Affine {
    fn konst(c: i64) -> Affine {
        Affine::Affine {
            scale: 0,
            konst: c,
            syms: BTreeMap::new(),
        }
    }

    fn sym(s: Sym) -> Affine {
        let mut syms = BTreeMap::new();
        syms.insert(s, 1);
        Affine::Affine {
            scale: 0,
            konst: 0,
            syms,
        }
    }

    fn iv() -> Affine {
        Affine::Affine {
            scale: 1,
            konst: 0,
            syms: BTreeMap::new(),
        }
    }

    fn add(self, other: Affine, sign: i64) -> Affine {
        match (self, other) {
            (
                Affine::Affine {
                    scale: s1,
                    konst: k1,
                    syms: m1,
                },
                Affine::Affine {
                    scale: s2,
                    konst: k2,
                    syms: m2,
                },
            ) => {
                let mut syms = m1;
                for (s, c) in m2 {
                    *syms.entry(s).or_insert(0) += sign * c;
                }
                syms.retain(|_, c| *c != 0);
                Affine::Affine {
                    scale: s1 + sign * s2,
                    konst: k1 + sign * k2,
                    syms,
                }
            }
            _ => Affine::Opaque,
        }
    }

    fn scale_by(self, k: i64) -> Affine {
        match self {
            Affine::Affine {
                scale,
                konst,
                mut syms,
            } => {
                for c in syms.values_mut() {
                    *c *= k;
                }
                syms.retain(|_, c| *c != 0);
                Affine::Affine {
                    scale: scale * k,
                    konst: konst * k,
                    syms,
                }
            }
            Affine::Opaque => Affine::Opaque,
        }
    }

    /// The pure-constant value, if this form is a constant.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Affine::Affine {
                scale: 0,
                konst,
                syms,
            } if syms.is_empty() => Some(*konst),
            _ => None,
        }
    }
}

/// Compute the affine form of `v` with respect to induction variable `iv`
/// (a φ at the header of `lp`). Values defined outside the loop are treated
/// as loop-invariant symbols.
pub fn affine_of(f: &Function, v: ValueRef, iv: InstrId, lp: &NaturalLoop) -> Affine {
    affine_rec(f, v, iv, lp, 0)
}

fn affine_rec(f: &Function, v: ValueRef, iv: InstrId, lp: &NaturalLoop, depth: u32) -> Affine {
    if depth > 32 {
        return Affine::Opaque;
    }
    match v {
        ValueRef::Const(c) => match c.to_value() {
            crate::value::Value::Int(k) => Affine::konst(k),
            crate::value::Value::Bool(b) => Affine::konst(b as i64),
            _ => Affine::Opaque,
        },
        ValueRef::Arg(n) => Affine::sym(Sym::Arg(n)),
        ValueRef::Instr(id) => {
            if id == iv {
                return Affine::iv();
            }
            let instr = f.instr(id);
            if !lp.blocks.contains(&instr.block) {
                // Loop-invariant: opaque but stable symbol.
                return Affine::sym(Sym::Instr(id));
            }
            match &instr.op {
                Op::Bin(BinOp::Add) => {
                    let a = affine_rec(f, instr.operands[0], iv, lp, depth + 1);
                    let b = affine_rec(f, instr.operands[1], iv, lp, depth + 1);
                    a.add(b, 1)
                }
                Op::Bin(BinOp::Sub) => {
                    let a = affine_rec(f, instr.operands[0], iv, lp, depth + 1);
                    let b = affine_rec(f, instr.operands[1], iv, lp, depth + 1);
                    a.add(b, -1)
                }
                Op::Bin(BinOp::Mul) => {
                    let a = affine_rec(f, instr.operands[0], iv, lp, depth + 1);
                    let b = affine_rec(f, instr.operands[1], iv, lp, depth + 1);
                    match (a.as_const(), b.as_const()) {
                        (Some(k), _) => b.scale_by(k),
                        (_, Some(k)) => a.scale_by(k),
                        _ => Affine::Opaque,
                    }
                }
                Op::Bin(BinOp::Shl) => {
                    let a = affine_rec(f, instr.operands[0], iv, lp, depth + 1);
                    let b = affine_rec(f, instr.operands[1], iv, lp, depth + 1);
                    match b.as_const() {
                        Some(k) if (0..32).contains(&k) => a.scale_by(1 << k),
                        _ => Affine::Opaque,
                    }
                }
                Op::Cast(_) => affine_rec(f, instr.operands[0], iv, lp, depth + 1),
                _ => Affine::Opaque,
            }
        }
    }
}

/// Result of the loop-carried memory dependence test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopDep {
    /// Whether consecutive iterations may be overlapped (pipelined) freely
    /// with respect to memory.
    pub parallel: bool,
    /// Objects with (possibly) carried dependences.
    pub carried_objects: Vec<MemObjId>,
}

/// Find the induction variable of a structured loop: the first integer φ in
/// the header.
pub fn induction_var(f: &Function, lp: &NaturalLoop) -> Option<InstrId> {
    f.block(lp.header)
        .instrs
        .iter()
        .copied()
        .find(|&iid| matches!(f.instr(iid).op, Op::Phi { .. }))
}

/// Blocks of `base` plus every detach region spawned (transitively) from a
/// block in the set — the full extent of code a loop iteration may execute.
pub fn expand_with_detach(f: &Function, base: BTreeSet<BlockId>) -> BTreeSet<BlockId> {
    let mut set = base;
    loop {
        let mut grew = false;
        let snapshot: Vec<BlockId> = set.iter().copied().collect();
        for b in snapshot {
            if let Some(t) = f.terminator(b) {
                if let Op::Detach { body, .. } = t.op {
                    for r in detach_region(f, body) {
                        grew |= set.insert(r);
                    }
                }
            }
        }
        if !grew {
            return set;
        }
    }
}

/// Conservative loop-carried memory dependence test.
///
/// For every store `S` to object `X` in the loop and every other memory
/// access `M` on `X` in the loop, the loop is *parallel* (pipelineable) only
/// if both addresses are affine in the induction variable with the same
/// nonzero scale and identical symbolic parts, and their constant difference
/// is zero or not a multiple of the scale (accesses in different iterations
/// never collide). The scan covers the loop's detach regions (spawned
/// bodies execute on the iteration's behalf); function calls inside the
/// loop are handled by [`loop_dependence_in`], which knows the module. A
/// `parallel_hints` entry on the header overrides the test, as does a loop
/// with no stores.
pub fn loop_dependence(f: &Function, lp: &NaturalLoop) -> LoopDep {
    loop_dependence_impl(f, lp, None)
}

/// [`loop_dependence`] with module context: calls inside the loop
/// contribute their callee's (transitive) memory footprint as opaque
/// accesses.
pub fn loop_dependence_in(m: &crate::module::Module, f: &Function, lp: &NaturalLoop) -> LoopDep {
    loop_dependence_impl(f, lp, Some(m))
}

fn callee_footprint(
    m: &crate::module::Module,
    callee: crate::instr::FuncId,
    depth: u32,
) -> (BTreeSet<MemObjId>, BTreeSet<MemObjId>) {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    if depth > 16 {
        return (reads, writes);
    }
    let Some(func) = m.functions.get(callee.0 as usize) else {
        return (reads, writes);
    };
    for instr in &func.instrs {
        match &instr.op {
            Op::Load { obj } => {
                reads.insert(*obj);
            }
            Op::Store { obj } => {
                writes.insert(*obj);
            }
            Op::Call { callee: c2 } => {
                let (r, w) = callee_footprint(m, *c2, depth + 1);
                reads.extend(r);
                writes.extend(w);
            }
            _ => {}
        }
    }
    (reads, writes)
}

fn loop_dependence_impl(
    f: &Function,
    lp: &NaturalLoop,
    module: Option<&crate::module::Module>,
) -> LoopDep {
    if f.parallel_hints.contains(&lp.header) {
        return LoopDep {
            parallel: true,
            carried_objects: Vec::new(),
        };
    }
    let Some(iv) = induction_var(f, lp) else {
        return LoopDep {
            parallel: false,
            carried_objects: Vec::new(),
        };
    };
    let blocks = expand_with_detach(f, lp.blocks.clone());
    // Affine forms must treat everything the iteration executes as
    // in-scope, so defs inside detach regions do not look loop-invariant.
    let scan_lp = NaturalLoop {
        header: lp.header,
        blocks: blocks.clone(),
        latches: lp.latches.clone(),
        depth: lp.depth,
        parent: lp.parent,
    };
    let lp = &scan_lp;
    let mut stores: Vec<(MemObjId, Affine)> = Vec::new();
    let mut accesses: Vec<(MemObjId, Affine, bool)> = Vec::new(); // (obj, addr, is_store)
    for &b in &blocks {
        for (_iid, instr) in f.block_instrs(b) {
            match &instr.op {
                Op::Load { obj } => {
                    let a = affine_of(f, instr.operands[0], iv, lp);
                    accesses.push((*obj, a, false));
                }
                Op::Store { obj } => {
                    let a = affine_of(f, instr.operands[0], iv, lp);
                    stores.push((*obj, a.clone()));
                    accesses.push((*obj, a, true));
                }
                Op::Call { callee } => {
                    if let Some(m) = module {
                        let (r, w) = callee_footprint(m, *callee, 0);
                        for obj in r {
                            accesses.push((obj, Affine::Opaque, false));
                        }
                        for obj in w {
                            stores.push((obj, Affine::Opaque));
                            accesses.push((obj, Affine::Opaque, true));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let mut carried: BTreeSet<MemObjId> = BTreeSet::new();
    for (sobj, saff) in &stores {
        for (aobj, aaff, _is_store) in &accesses {
            if sobj != aobj {
                continue;
            }
            if std::ptr::eq(saff, aaff) {
                continue;
            }
            if may_collide_across_iterations(saff, aaff) {
                carried.insert(*sobj);
            }
        }
    }
    LoopDep {
        parallel: carried.is_empty(),
        carried_objects: carried.into_iter().collect(),
    }
}

fn may_collide_across_iterations(a: &Affine, b: &Affine) -> bool {
    match (a, b) {
        (
            Affine::Affine {
                scale: s1,
                konst: k1,
                syms: m1,
            },
            Affine::Affine {
                scale: s2,
                konst: k2,
                syms: m2,
            },
        ) => {
            if s1 != s2 || m1 != m2 {
                // Different strides or different symbolic bases: assume the
                // worst (conservative).
                return true;
            }
            if *s1 == 0 {
                // Same (loop-invariant) address every iteration: carried
                // unless the constant parts differ (then never the same
                // address at all).
                return k1 == k2;
            }
            let d = k1 - k2;
            // Same address in iterations k, k' iff s·(k-k') = d.
            d != 0 && d % s1 == 0
        }
        _ => true,
    }
}

/// Group every memory operation in a function by the object (address space)
/// it accesses — the paper's Algorithm 2 *Analysis* step (`LLVMPointsto`).
pub fn memory_groups(f: &Function) -> BTreeMap<MemObjId, Vec<InstrId>> {
    let mut groups: BTreeMap<MemObjId, Vec<InstrId>> = BTreeMap::new();
    for (i, instr) in f.instrs.iter().enumerate() {
        match instr.op {
            Op::Load { obj } | Op::Store { obj } => {
                groups.entry(obj).or_default().push(InstrId(i as u32));
            }
            _ => {}
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::Module;
    use crate::types::{ScalarType, Type};

    fn loop_func() -> Function {
        let mut b = FunctionBuilder::new("l", &[]);
        b.for_loop(0, ValueRef::int(8), 1, |b, i| {
            let _ = b.add(i, ValueRef::int(1));
        });
        b.ret(None);
        b.finish()
    }

    #[test]
    fn rpo_starts_at_entry() {
        let f = loop_func();
        let rpo = reverse_post_order(&f);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), f.blocks.len());
    }

    #[test]
    fn dominators_of_loop() {
        let f = loop_func();
        let idom = dominators(&f);
        // Every reachable block has an idom.
        for b in f.block_ids() {
            assert!(idom[b.0 as usize].is_some(), "{b} unreachable?");
        }
        // Entry dominates everything.
        for b in f.block_ids() {
            assert!(dominates(&idom, f.entry, b));
        }
    }

    #[test]
    fn finds_natural_loop() {
        let f = loop_func();
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 1);
        let lp = &loops[0];
        assert_eq!(lp.depth, 1);
        assert_eq!(lp.latches.len(), 1);
        assert!(lp.blocks.contains(&lp.header));
        assert!(induction_var(&f, lp).is_some());
    }

    #[test]
    fn nested_loops_have_depth() {
        let mut b = FunctionBuilder::new("n", &[]);
        b.for_loop(0, ValueRef::int(4), 1, |b, _i| {
            b.for_loop(0, ValueRef::int(4), 1, |b, j| {
                let _ = b.mul(j, j);
            });
        });
        b.ret(None);
        let f = b.finish();
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 2);
        let depths: BTreeSet<u32> = loops.iter().map(|l| l.depth).collect();
        assert_eq!(depths, BTreeSet::from([1, 2]));
        let inner = loops.iter().find(|l| l.depth == 2).unwrap();
        assert!(inner.parent.is_some());
    }

    #[test]
    fn detach_region_extent() {
        let mut b = FunctionBuilder::new("d", &[]);
        b.par_for(0, 4, 1, |b, i| {
            let _ = b.mul(i, i);
        });
        b.ret(None);
        let f = b.finish();
        // Find the detach terminator.
        let det = f
            .instrs
            .iter()
            .find_map(|i| match i.op {
                Op::Detach { body, .. } => Some(body),
                _ => None,
            })
            .unwrap();
        let region = detach_region(&f, det);
        // Region contains the task body and stops at reattach.
        assert!(!region.is_empty());
        for b_ in &region {
            let t = f.terminator(*b_).unwrap();
            // No region block branches back to the pfor header except via
            // reattach semantics; the continuation is outside.
            if let Op::Reattach { cont } = t.op {
                assert!(!region.contains(&cont));
            }
        }
    }

    #[test]
    fn region_live_values() {
        let mut m = Module::new("t");
        let a = m.add_mem_object("a", ScalarType::I32, 8);
        let mut b = FunctionBuilder::new("f", &[Type::I64]).with_mem(&m);
        let outside = b.add(b.arg(0), ValueRef::int(1));
        b.for_loop(0, ValueRef::int(8), 1, |b, i| {
            let s = b.add(i, outside);
            b.store(a, i, s);
        });
        b.ret(None);
        let f = b.finish();
        let loops = natural_loops(&f);
        let rv = region_values(&f, &loops[0].blocks);
        assert!(rv.in_values.contains(&outside.as_instr().unwrap()));
    }

    #[test]
    fn affine_recognises_strides() {
        let mut m = Module::new("t");
        let a = m.add_mem_object("a", ScalarType::I32, 64);
        let mut b = FunctionBuilder::new("f", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(8), 1, |b, i| {
            let idx = b.mul(i, ValueRef::int(4));
            let idx2 = b.add(idx, ValueRef::int(3));
            let v = b.load(a, idx2);
            b.store(a, idx2, v);
        });
        b.ret(None);
        let f = b.finish();
        let loops = natural_loops(&f);
        let lp = &loops[0];
        let iv = induction_var(&f, lp).unwrap();
        // Find the load's address.
        let addr = f
            .instrs
            .iter()
            .find_map(|i| match i.op {
                Op::Load { .. } => Some(i.operands[0]),
                _ => None,
            })
            .unwrap();
        match affine_of(&f, addr, iv, lp) {
            Affine::Affine { scale, konst, syms } => {
                assert_eq!(scale, 4);
                assert_eq!(konst, 3);
                assert!(syms.is_empty());
            }
            Affine::Opaque => panic!("expected affine"),
        }
    }

    #[test]
    fn disjoint_strided_loop_is_parallel() {
        let mut m = Module::new("t");
        let a = m.add_mem_object("a", ScalarType::I32, 64);
        let mut b = FunctionBuilder::new("f", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(8), 1, |b, i| {
            let v = b.load(a, i);
            let w = b.add(v, ValueRef::int(1));
            b.store(a, i, w);
        });
        b.ret(None);
        let f = b.finish();
        let loops = natural_loops(&f);
        let dep = loop_dependence(&f, &loops[0]);
        assert!(dep.parallel, "{dep:?}");
    }

    #[test]
    fn carried_accumulator_through_memory_serializes() {
        let mut m = Module::new("t");
        let a = m.add_mem_object("a", ScalarType::I32, 64);
        let mut b = FunctionBuilder::new("f", &[]).with_mem(&m);
        // a[0] += i — same address every iteration.
        b.for_loop(0, ValueRef::int(8), 1, |b, i| {
            let v = b.load(a, ValueRef::int(0));
            let w = b.add(v, i);
            b.store(a, ValueRef::int(0), w);
        });
        b.ret(None);
        let f = b.finish();
        let loops = natural_loops(&f);
        let dep = loop_dependence(&f, &loops[0]);
        assert!(!dep.parallel);
        assert_eq!(dep.carried_objects, vec![a]);
    }

    #[test]
    fn shifted_store_detected_as_carried() {
        let mut m = Module::new("t");
        let a = m.add_mem_object("a", ScalarType::I32, 64);
        let mut b = FunctionBuilder::new("f", &[]).with_mem(&m);
        // a[i+1] = a[i]: carried distance 1.
        b.for_loop(0, ValueRef::int(8), 1, |b, i| {
            let v = b.load(a, i);
            let i1 = b.add(i, ValueRef::int(1));
            b.store(a, i1, v);
        });
        b.ret(None);
        let f = b.finish();
        let loops = natural_loops(&f);
        let dep = loop_dependence(&f, &loops[0]);
        assert!(!dep.parallel);
    }

    #[test]
    fn parallel_hint_overrides() {
        let mut m = Module::new("t");
        let a = m.add_mem_object("a", ScalarType::I32, 64);
        let mut b = FunctionBuilder::new("f", &[]).with_mem(&m);
        b.for_loop_par(0, ValueRef::int(8), 1, |b, i| {
            let v = b.load(a, ValueRef::int(0));
            let w = b.add(v, i);
            b.store(a, ValueRef::int(0), w);
        });
        b.ret(None);
        let f = b.finish();
        let loops = natural_loops(&f);
        let dep = loop_dependence(&f, &loops[0]);
        assert!(dep.parallel);
    }

    #[test]
    fn memory_groups_by_object() {
        let mut m = Module::new("t");
        let a = m.add_mem_object("a", ScalarType::I32, 8);
        let c = m.add_mem_object("c", ScalarType::I32, 8);
        let mut b = FunctionBuilder::new("f", &[]).with_mem(&m);
        let v = b.load(a, ValueRef::int(0));
        let w = b.load(c, ValueRef::int(0));
        let s = b.add(v, w);
        b.store(c, ValueRef::int(1), s);
        b.ret(None);
        let f = b.finish();
        let groups = memory_groups(&f);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&a].len(), 1);
        assert_eq!(groups[&c].len(), 2);
    }
}
