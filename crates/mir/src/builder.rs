//! Ergonomic construction of [`Function`]s.
//!
//! The builder keeps a *current block* cursor, offers one method per opcode,
//! and provides structured helpers (`for_loop`, `for_loop_acc`, `par_for`,
//! `if_val`) that emit the canonical CFG shapes the front-end's task
//! extraction recognises (natural loops, Tapir detach regions).

use crate::instr::{
    BinOp, BlockId, CastOp, CmpPred, FuncId, Instr, InstrId, MemObjId, Op, TensorOp, UnOp, ValueRef,
};
use crate::module::{Block, Function, Module};
use crate::types::{ScalarType, TensorShape, Type};

/// Builder for a single [`Function`].
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
    /// Element types of the module's memory objects, captured by
    /// [`FunctionBuilder::with_mem`] so `load`/`store` can infer types.
    mem_elems: Vec<ScalarType>,
    /// Header block of the most recently completed structured loop.
    last_loop_header: Option<BlockId>,
}

impl FunctionBuilder {
    /// Start building a function with the given parameter types. An entry
    /// block is created and selected.
    pub fn new(name: impl Into<String>, params: &[Type]) -> Self {
        let entry = Block::new("entry");
        FunctionBuilder {
            func: Function {
                name: name.into(),
                params: params.to_vec(),
                ret: None,
                instrs: Vec::new(),
                blocks: vec![entry],
                entry: BlockId(0),
                parallel_hints: Vec::new(),
            },
            cur: BlockId(0),
            mem_elems: Vec::new(),
            last_loop_header: None,
        }
    }

    /// Capture the module's memory-object element types so that typed
    /// `load`/`store` emitters can infer their result types.
    pub fn with_mem(mut self, module: &Module) -> Self {
        self.mem_elems = module.mem_objects.iter().map(|o| o.elem).collect();
        self
    }

    /// Declare the function's return type.
    pub fn returns(mut self, ty: Type) -> Self {
        self.func.ret = Some(ty);
        self
    }

    /// Reference to the `n`-th argument.
    ///
    /// # Panics
    /// Panics if `n` is out of range.
    pub fn arg(&self, n: u32) -> ValueRef {
        assert!(
            (n as usize) < self.func.params.len(),
            "argument {n} out of range for {}",
            self.func.name
        );
        ValueRef::Arg(n)
    }

    /// Create a new (unselected) block.
    pub fn block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block::new(name));
        id
    }

    /// Select the block new instructions are appended to.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// The currently selected block.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// Append a raw instruction to the current block and return a reference
    /// to its result.
    pub fn push(&mut self, op: Op, ty: Option<Type>, operands: Vec<ValueRef>) -> ValueRef {
        let id = InstrId(self.func.instrs.len() as u32);
        self.func.instrs.push(Instr {
            op,
            ty,
            operands,
            block: self.cur,
        });
        self.func.blocks[self.cur.0 as usize].instrs.push(id);
        ValueRef::Instr(id)
    }

    fn infer(&self, v: ValueRef) -> Option<Type> {
        match v {
            ValueRef::Instr(id) => self.func.instr(id).ty,
            ValueRef::Arg(n) => self.func.params.get(n as usize).copied(),
            ValueRef::Const(_) => None,
        }
    }

    fn bin_ty(&self, op: BinOp, a: ValueRef, b: ValueRef) -> Type {
        self.infer(a)
            .or_else(|| self.infer(b))
            .unwrap_or(if op.is_float() { Type::F32 } else { Type::I64 })
    }

    /// Emit a binary op; the result type is inferred from the operands.
    pub fn bin(&mut self, op: BinOp, a: ValueRef, b: ValueRef) -> ValueRef {
        let ty = self.bin_ty(op, a, b);
        self.push(Op::Bin(op), Some(ty), vec![a, b])
    }

    /// Integer add.
    pub fn add(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.bin(BinOp::Add, a, b)
    }
    /// Integer subtract.
    pub fn sub(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.bin(BinOp::Sub, a, b)
    }
    /// Integer multiply.
    pub fn mul(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.bin(BinOp::Mul, a, b)
    }
    /// Integer divide.
    pub fn div(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.bin(BinOp::Div, a, b)
    }
    /// Integer remainder.
    pub fn rem(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.bin(BinOp::Rem, a, b)
    }
    /// Bitwise and.
    pub fn and(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.bin(BinOp::And, a, b)
    }
    /// Bitwise or.
    pub fn or(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.bin(BinOp::Or, a, b)
    }
    /// Bitwise xor.
    pub fn xor(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.bin(BinOp::Xor, a, b)
    }
    /// Shift left.
    pub fn shl(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.bin(BinOp::Shl, a, b)
    }
    /// Logical shift right.
    pub fn lshr(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.bin(BinOp::LShr, a, b)
    }
    /// Arithmetic shift right.
    pub fn ashr(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.bin(BinOp::AShr, a, b)
    }
    /// Float add.
    pub fn fadd(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.bin(BinOp::FAdd, a, b)
    }
    /// Float subtract.
    pub fn fsub(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.bin(BinOp::FSub, a, b)
    }
    /// Float multiply.
    pub fn fmul(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.bin(BinOp::FMul, a, b)
    }
    /// Float divide.
    pub fn fdiv(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.bin(BinOp::FDiv, a, b)
    }

    /// Unary math op.
    pub fn un(&mut self, op: UnOp, a: ValueRef) -> ValueRef {
        let ty = self.infer(a).unwrap_or(Type::F32);
        self.push(Op::Un(op), Some(ty), vec![a])
    }
    /// Float negation.
    pub fn fneg(&mut self, a: ValueRef) -> ValueRef {
        self.un(UnOp::FNeg, a)
    }
    /// e^x.
    pub fn exp(&mut self, a: ValueRef) -> ValueRef {
        self.un(UnOp::Exp, a)
    }
    /// Square root.
    pub fn sqrt(&mut self, a: ValueRef) -> ValueRef {
        self.un(UnOp::Sqrt, a)
    }
    /// Scalar ReLU.
    pub fn relu(&mut self, a: ValueRef) -> ValueRef {
        self.un(UnOp::Relu, a)
    }

    /// Comparison producing an `i1`.
    pub fn icmp(&mut self, pred: CmpPred, a: ValueRef, b: ValueRef) -> ValueRef {
        self.push(Op::Cmp(pred), Some(Type::BOOL), vec![a, b])
    }

    /// `select cond, a, b`.
    pub fn select(&mut self, cond: ValueRef, a: ValueRef, b: ValueRef) -> ValueRef {
        let ty = self.infer(a).or_else(|| self.infer(b)).unwrap_or(Type::I64);
        self.push(Op::Select, Some(ty), vec![cond, a, b])
    }

    /// Signed int → float cast.
    pub fn sitofp(&mut self, a: ValueRef) -> ValueRef {
        self.push(Op::Cast(CastOp::SiToFp), Some(Type::F32), vec![a])
    }

    /// Float → signed int cast.
    pub fn fptosi(&mut self, a: ValueRef) -> ValueRef {
        self.push(Op::Cast(CastOp::FpToSi), Some(Type::I64), vec![a])
    }

    fn mem_elem(&self, obj: MemObjId) -> ScalarType {
        *self
            .mem_elems
            .get(obj.0 as usize)
            .unwrap_or_else(|| panic!("memory object {obj} not bound; call with_mem(&module)"))
    }

    /// Scalar load from a memory object at element index `idx`.
    ///
    /// # Panics
    /// Panics if the builder was not bound to the module with
    /// [`FunctionBuilder::with_mem`].
    pub fn load(&mut self, obj: MemObjId, idx: ValueRef) -> ValueRef {
        let ty = Type::Scalar(self.mem_elem(obj));
        self.push(Op::Load { obj }, Some(ty), vec![idx])
    }

    /// Vector load of `lanes` consecutive elements.
    pub fn load_vec(&mut self, obj: MemObjId, idx: ValueRef, lanes: u8) -> ValueRef {
        let ty = Type::Vector {
            elem: self.mem_elem(obj),
            lanes,
        };
        self.push(Op::Load { obj }, Some(ty), vec![idx])
    }

    /// Tensor-tile load of `shape` consecutive elements (row-major).
    pub fn load_tile(&mut self, obj: MemObjId, idx: ValueRef, shape: TensorShape) -> ValueRef {
        let ty = Type::Tensor {
            elem: self.mem_elem(obj),
            shape,
        };
        self.push(Op::Load { obj }, Some(ty), vec![idx])
    }

    /// Store `value` (scalar, vector, or tensor) at element index `idx`.
    pub fn store(&mut self, obj: MemObjId, idx: ValueRef, value: ValueRef) {
        self.push(Op::Store { obj }, None, vec![idx, value]);
    }

    /// Tensor binary op over two tile values. `TensorOp::Conv` reduces the
    /// element-wise product to a scalar (a window dot-product); all other
    /// ops produce a tile of the same shape.
    pub fn tensor2(
        &mut self,
        op: TensorOp,
        shape: TensorShape,
        a: ValueRef,
        b: ValueRef,
    ) -> ValueRef {
        let elem = self.infer(a).map(|t| t.elem()).unwrap_or(ScalarType::F32);
        let ty = if op.reduces_to_scalar() {
            Type::Scalar(elem)
        } else {
            Type::Tensor { elem, shape }
        };
        self.push(Op::Tensor(op, shape), Some(ty), vec![a, b])
    }

    /// Tensor unary op over one tile value. `Reduce` yields a scalar;
    /// `Softmax` always yields F32 lanes (it routes through the exp unit).
    pub fn tensor1(&mut self, op: TensorOp, shape: TensorShape, a: ValueRef) -> ValueRef {
        let elem = self.infer(a).map(|t| t.elem()).unwrap_or(ScalarType::F32);
        let ty = if op.reduces_to_scalar() {
            Type::Scalar(elem)
        } else if op == TensorOp::Softmax {
            Type::Tensor {
                elem: ScalarType::F32,
                shape,
            }
        } else {
            Type::Tensor { elem, shape }
        };
        self.push(Op::Tensor(op, shape), Some(ty), vec![a])
    }

    /// Call another function.
    pub fn call(&mut self, callee: FuncId, args: &[ValueRef], ret: Option<Type>) -> ValueRef {
        self.push(Op::Call { callee }, ret, args.to_vec())
    }

    /// SSA φ over `(value, predecessor)` pairs.
    pub fn phi(&mut self, ty: Type, incoming: &[(ValueRef, BlockId)]) -> ValueRef {
        let preds = incoming.iter().map(|(_, b)| *b).collect();
        let operands = incoming.iter().map(|(v, _)| *v).collect();
        self.push(Op::Phi { preds }, Some(ty), operands)
    }

    /// Unconditional branch terminator.
    pub fn br(&mut self, target: BlockId) {
        self.push(Op::Br { target }, None, vec![]);
    }

    /// Conditional branch terminator.
    pub fn cond_br(&mut self, cond: ValueRef, t: BlockId, f: BlockId) {
        self.push(Op::CondBr { t, f }, None, vec![cond]);
    }

    /// Return terminator.
    pub fn ret(&mut self, value: Option<ValueRef>) {
        let operands = value.into_iter().collect();
        self.push(Op::Ret, None, operands);
    }

    /// Tapir detach terminator.
    pub fn detach(&mut self, body: BlockId, cont: BlockId) {
        self.push(Op::Detach { body, cont }, None, vec![]);
    }

    /// Tapir reattach terminator.
    pub fn reattach(&mut self, cont: BlockId) {
        self.push(Op::Reattach { cont }, None, vec![]);
    }

    /// Tapir sync terminator.
    pub fn sync(&mut self, cont: BlockId) {
        self.push(Op::Sync { cont }, None, vec![]);
    }

    /// Structured sequential counted loop: `for (i = lo; i < hi; i += step)`.
    /// The closure receives the induction variable.
    pub fn for_loop<F>(&mut self, lo: i64, hi: ValueRef, step: i64, body: F)
    where
        F: FnOnce(&mut Self, ValueRef),
    {
        self.for_loop_acc(ValueRef::int(lo), hi, step, &[], |b, i, _| {
            body(b, i);
            vec![]
        });
    }

    /// Structured sequential loop with loop-carried accumulators.
    ///
    /// `inits` gives the initial `(value, type)` of each accumulator; the
    /// closure receives the induction variable and the current accumulator
    /// values, and must return the next accumulator values. Returns the
    /// final accumulator values (valid after the loop).
    pub fn for_loop_acc<F>(
        &mut self,
        lo: ValueRef,
        hi: ValueRef,
        step: i64,
        inits: &[(ValueRef, Type)],
        body: F,
    ) -> Vec<ValueRef>
    where
        F: FnOnce(&mut Self, ValueRef, &[ValueRef]) -> Vec<ValueRef>,
    {
        let pre = self.cur;
        let header = self.block("loop.header");
        let body_bb = self.block("loop.body");
        let exit = self.block("loop.exit");
        self.br(header);

        // Header: φ for i and each accumulator. The latch incoming is patched
        // after the body is built (we don't know the latch block yet).
        self.switch_to(header);
        let i_phi = self.phi(Type::I64, &[(lo, pre), (lo, pre)]);
        let acc_phis: Vec<ValueRef> = inits
            .iter()
            .map(|(v, ty)| self.phi(*ty, &[(*v, pre), (*v, pre)]))
            .collect();
        let cond = self.icmp(CmpPred::Lt, i_phi, hi);
        self.cond_br(cond, body_bb, exit);

        // Body.
        self.switch_to(body_bb);
        let next_accs = body(self, i_phi, &acc_phis);
        assert_eq!(
            next_accs.len(),
            inits.len(),
            "loop body must return one next-value per accumulator"
        );
        let i_next = self.add(i_phi, ValueRef::int(step));
        let latch = self.cur;
        self.br(header);

        // Patch φ latch incoming.
        self.patch_phi(i_phi, 1, i_next, latch);
        for (phi, next) in acc_phis.iter().zip(next_accs) {
            self.patch_phi(*phi, 1, next, latch);
        }

        self.switch_to(exit);
        self.last_loop_header = Some(header);
        acc_phis
    }

    /// [`FunctionBuilder::for_loop`] with a programmer assertion that the
    /// iterations are independent (the HLS `#pragma parallel` equivalent);
    /// the dependence analysis will not serialize the loop's pipeline.
    pub fn for_loop_par<F>(&mut self, lo: i64, hi: ValueRef, step: i64, body: F)
    where
        F: FnOnce(&mut Self, ValueRef),
    {
        self.for_loop(lo, hi, step, body);
        let header = self.last_loop_header.expect("loop header recorded");
        self.func.parallel_hints.push(header);
    }

    fn patch_phi(&mut self, phi: ValueRef, slot: usize, value: ValueRef, pred: BlockId) {
        let id = phi.as_instr().expect("phi reference");
        let instr = self.func.instr_mut(id);
        instr.operands[slot] = value;
        if let Op::Phi { preds } = &mut instr.op {
            preds[slot] = pred;
        } else {
            panic!("patch_phi on non-phi instruction");
        }
    }

    /// Structured Cilk `parallel_for`: each iteration is detached as a task
    /// (Tapir detach/reattach, closed by a sync), matching the paper's
    /// Figure 4 lowering.
    pub fn par_for<F>(&mut self, lo: i64, hi: i64, step: i64, body: F)
    where
        F: FnOnce(&mut Self, ValueRef),
    {
        self.par_for_dyn(ValueRef::int(lo), ValueRef::int(hi), step, body);
    }

    /// `par_for` with dynamic bounds.
    pub fn par_for_dyn<F>(&mut self, lo: ValueRef, hi: ValueRef, step: i64, body: F)
    where
        F: FnOnce(&mut Self, ValueRef),
    {
        let pre = self.cur;
        let header = self.block("pfor.header");
        let det = self.block("pfor.detach");
        let task = self.block("pfor.task");
        let cont = self.block("pfor.cont");
        let syncb = self.block("pfor.sync");
        let exit = self.block("pfor.exit");
        self.br(header);

        self.switch_to(header);
        let i_phi = self.phi(Type::I64, &[(lo, pre), (lo, pre)]);
        let cond = self.icmp(CmpPred::Lt, i_phi, hi);
        self.cond_br(cond, det, syncb);

        self.switch_to(det);
        self.detach(task, cont);

        self.switch_to(task);
        body(self, i_phi);
        // The closure may have moved the cursor; reattach from wherever the
        // task region's control ends.
        self.reattach(cont);

        self.switch_to(cont);
        let i_next = self.add(i_phi, ValueRef::int(step));
        let latch = self.cur;
        self.br(header);
        self.patch_phi(i_phi, 1, i_next, latch);

        self.switch_to(syncb);
        self.sync(exit);
        self.switch_to(exit);
    }

    /// Structured if/else producing merged values: builds `then`/`else`
    /// blocks, runs the closures, and returns φ-merged results.
    pub fn if_val<FT, FE>(
        &mut self,
        cond: ValueRef,
        tys: &[Type],
        then_f: FT,
        else_f: FE,
    ) -> Vec<ValueRef>
    where
        FT: FnOnce(&mut Self) -> Vec<ValueRef>,
        FE: FnOnce(&mut Self) -> Vec<ValueRef>,
    {
        let then_bb = self.block("if.then");
        let else_bb = self.block("if.else");
        let merge = self.block("if.merge");
        self.cond_br(cond, then_bb, else_bb);

        self.switch_to(then_bb);
        let tv = then_f(self);
        let then_end = self.cur;
        self.br(merge);

        self.switch_to(else_bb);
        let ev = else_f(self);
        let else_end = self.cur;
        self.br(merge);

        assert_eq!(tv.len(), tys.len(), "then branch value count mismatch");
        assert_eq!(ev.len(), tys.len(), "else branch value count mismatch");

        self.switch_to(merge);
        tys.iter()
            .zip(tv.iter().zip(ev.iter()))
            .map(|(ty, (t, e))| self.phi(*ty, &[(*t, then_end), (*e, else_end)]))
            .collect()
    }

    /// Structured if (no else, no values).
    pub fn if_then<FT>(&mut self, cond: ValueRef, then_f: FT)
    where
        FT: FnOnce(&mut Self),
    {
        let then_bb = self.block("if.then");
        let merge = self.block("if.merge");
        self.cond_br(cond, then_bb, merge);
        self.switch_to(then_bb);
        then_f(self);
        self.br(merge);
        self.switch_to(merge);
    }

    /// Finish and return the built function.
    pub fn finish(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_function;

    #[test]
    fn straight_line() {
        let mut b = FunctionBuilder::new("f", &[Type::I64, Type::I64]);
        let x = b.arg(0);
        let y = b.arg(1);
        let s = b.add(x, y);
        let p = b.mul(s, ValueRef::int(3));
        b.ret(Some(p));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.instrs.len(), 3);
        verify_function(&f, &[]).unwrap();
    }

    #[test]
    fn counted_loop_shape() {
        let mut b = FunctionBuilder::new("loop", &[]);
        b.for_loop(0, ValueRef::int(10), 1, |b, i| {
            let _ = b.add(i, ValueRef::int(1));
        });
        b.ret(None);
        let f = b.finish();
        // pre + header + body + exit
        assert_eq!(f.blocks.len(), 4);
        verify_function(&f, &[]).unwrap();
    }

    #[test]
    fn loop_accumulator_patched() {
        let mut b = FunctionBuilder::new("sum", &[]).returns(Type::I64);
        let accs = b.for_loop_acc(
            ValueRef::int(0),
            ValueRef::int(10),
            1,
            &[(ValueRef::int(0), Type::I64)],
            |b, i, accs| vec![b.add(accs[0], i)],
        );
        b.ret(Some(accs[0]));
        let f = b.finish();
        verify_function(&f, &[]).unwrap();
        // The accumulator φ must reference the add in its latch slot.
        let phi = f.instr(accs[0].as_instr().unwrap());
        assert!(matches!(phi.op, Op::Phi { .. }));
        assert!(phi.operands[1].as_instr().is_some());
    }

    #[test]
    fn par_for_emits_tapir() {
        let mut b = FunctionBuilder::new("pf", &[]);
        b.par_for(0, 8, 1, |b, i| {
            let _ = b.mul(i, i);
        });
        b.ret(None);
        let f = b.finish();
        let ops: Vec<String> = f.instrs.iter().map(|i| i.op.mnemonic()).collect();
        assert!(ops.iter().any(|o| o == "detach"));
        assert!(ops.iter().any(|o| o == "reattach"));
        assert!(ops.iter().any(|o| o == "sync"));
        verify_function(&f, &[]).unwrap();
    }

    #[test]
    fn if_val_merges() {
        let mut b = FunctionBuilder::new("sel", &[Type::I64]).returns(Type::I64);
        let x = b.arg(0);
        let c = b.icmp(CmpPred::Lt, x, ValueRef::int(0));
        let m = b.if_val(
            c,
            &[Type::I64],
            |b| vec![b.sub(ValueRef::int(0), ValueRef::Arg(0))],
            |_| vec![ValueRef::Arg(0)],
        );
        b.ret(Some(m[0]));
        let f = b.finish();
        verify_function(&f, &[]).unwrap();
        assert_eq!(f.blocks.len(), 4);
    }

    #[test]
    #[should_panic]
    fn arg_out_of_range() {
        let b = FunctionBuilder::new("f", &[Type::I64]);
        b.arg(1);
    }
}
