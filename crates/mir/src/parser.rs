//! Parser for the textual form produced by [`crate::printer`].
//!
//! Together with the printer this gives the compiler IR a durable on-disk
//! representation: programs can be dumped, diffed, hand-edited, and read
//! back. Instruction numbering is normalised on parse (valueless
//! instructions get fresh ids), so `print ∘ parse` is idempotent after one
//! round trip — see the round-trip tests in `tests/ir_roundtrip.rs`.

use crate::instr::{
    BinOp, BlockId, CastOp, CmpPred, ConstVal, FuncId, Instr, InstrId, MemObjId, Op, TensorOp,
    UnOp, ValueRef,
};
use crate::module::{Block, Function, Module};
use crate::types::{ScalarType, TensorShape, Type};
use std::collections::HashMap;
use std::fmt;

/// Parse failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn perr(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_scalar_type(s: &str, line: usize) -> Result<ScalarType, ParseError> {
    match s {
        "i1" => Ok(ScalarType::I1),
        "i8" => Ok(ScalarType::I8),
        "i32" => Ok(ScalarType::I32),
        "i64" => Ok(ScalarType::I64),
        "f32" => Ok(ScalarType::F32),
        other => Err(perr(line, format!("unknown scalar type `{other}`"))),
    }
}

fn parse_type(s: &str, line: usize) -> Result<Type, ParseError> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix("tensor<") {
        let inner = rest
            .strip_suffix('>')
            .ok_or_else(|| perr(line, "unterminated tensor type"))?;
        let (shape, elem) = inner
            .split_once(" x ")
            .ok_or_else(|| perr(line, "malformed tensor type"))?;
        let (r, c) = shape
            .split_once('x')
            .ok_or_else(|| perr(line, "malformed tensor shape"))?;
        let rows: u8 = r
            .trim()
            .parse()
            .map_err(|_| perr(line, "bad tensor rows"))?;
        let cols: u8 = c
            .trim()
            .parse()
            .map_err(|_| perr(line, "bad tensor cols"))?;
        return Ok(Type::Tensor {
            elem: parse_scalar_type(elem.trim(), line)?,
            shape: TensorShape::new(rows, cols),
        });
    }
    if let Some(rest) = s.strip_prefix('<') {
        let inner = rest
            .strip_suffix('>')
            .ok_or_else(|| perr(line, "unterminated vector type"))?;
        let (lanes, elem) = inner
            .split_once(" x ")
            .ok_or_else(|| perr(line, "malformed vector type"))?;
        return Ok(Type::Vector {
            elem: parse_scalar_type(elem.trim(), line)?,
            lanes: lanes
                .trim()
                .parse()
                .map_err(|_| perr(line, "bad lane count"))?,
        });
    }
    Ok(Type::Scalar(parse_scalar_type(s, line)?))
}

fn parse_value(s: &str, line: usize) -> Result<ValueRef, ParseError> {
    let s = s.trim();
    if let Some(n) = s.strip_prefix("%arg") {
        return Ok(ValueRef::Arg(
            n.parse().map_err(|_| perr(line, "bad arg index"))?,
        ));
    }
    if let Some(n) = s.strip_prefix('%') {
        return Ok(ValueRef::Instr(InstrId(
            n.parse().map_err(|_| perr(line, "bad instruction id"))?,
        )));
    }
    if s == "true" {
        return Ok(ValueRef::Const(ConstVal::Bool(true)));
    }
    if s == "false" {
        return Ok(ValueRef::Const(ConstVal::Bool(false)));
    }
    if s.contains('.') || s.contains("inf") || s.contains("NaN") {
        return Ok(ValueRef::Const(ConstVal::F32(
            s.parse()
                .map_err(|_| perr(line, format!("bad float `{s}`")))?,
        )));
    }
    Ok(ValueRef::Const(ConstVal::Int(
        s.parse()
            .map_err(|_| perr(line, format!("bad integer `{s}`")))?,
    )))
}

fn parse_block_ref(s: &str, line: usize) -> Result<BlockId, ParseError> {
    s.trim()
        .strip_prefix("bb")
        .and_then(|n| n.parse().ok())
        .map(BlockId)
        .ok_or_else(|| perr(line, format!("bad block reference `{s}`")))
}

fn parse_mem_ref(s: &str, line: usize) -> Result<MemObjId, ParseError> {
    s.trim()
        .strip_prefix("@mem")
        .and_then(|n| n.parse().ok())
        .map(MemObjId)
        .ok_or_else(|| perr(line, format!("bad memory reference `{s}`")))
}

/// Split a comma-separated operand list, respecting `[...]` groups (φ
/// incoming pairs).
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '[' | '(' => {
                depth += 1;
                cur.push(ch);
            }
            ']' | ')' => {
                depth -= 1;
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn bin_op(m: &str) -> Option<BinOp> {
    Some(match m {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "lshr" => BinOp::LShr,
        "ashr" => BinOp::AShr,
        "fadd" => BinOp::FAdd,
        "fsub" => BinOp::FSub,
        "fmul" => BinOp::FMul,
        "fdiv" => BinOp::FDiv,
        _ => return None,
    })
}

fn un_op(m: &str) -> Option<UnOp> {
    Some(match m {
        "fneg" => UnOp::FNeg,
        "exp" => UnOp::Exp,
        "sqrt" => UnOp::Sqrt,
        "relu" => UnOp::Relu,
        _ => return None,
    })
}

fn tensor_op(m: &str) -> Option<TensorOp> {
    Some(match m {
        "tensor.add" => TensorOp::Add,
        "tensor.matmul" => TensorOp::MatMul,
        "tensor.mul" => TensorOp::Mul,
        "tensor.relu" => TensorOp::Relu,
        "tensor.conv" => TensorOp::Conv,
        "tensor.reduce" => TensorOp::Reduce,
        "tensor.softmax" => TensorOp::Softmax,
        _ => return None,
    })
}

/// A parsed-but-unresolved instruction: printed id (None = valueless),
/// opcode, result type, operands, and owning block.
type PendingInstr = (Option<u32>, Op, Option<Type>, Vec<ValueRef>, BlockId);

struct FnBuilder {
    func: Function,
    /// Pending instructions keyed by printed id.
    pending: Vec<PendingInstr>,
}

impl FnBuilder {
    /// Normalise ids: printed `%N` ids map to fresh arena slots in order of
    /// first definition; valueless instructions slot in where they appear.
    fn finish(mut self, line: usize) -> Result<Function, ParseError> {
        let mut id_map: HashMap<u32, InstrId> = HashMap::new();
        // First pass: assign arena ids in textual order.
        for (i, (printed, ..)) in self.pending.iter().enumerate() {
            if let Some(p) = printed {
                id_map.insert(*p, InstrId(i as u32));
            }
        }
        let remap = |v: &ValueRef| -> Result<ValueRef, ParseError> {
            match v {
                ValueRef::Instr(old) => id_map
                    .get(&old.0)
                    .map(|n| ValueRef::Instr(*n))
                    .ok_or_else(|| perr(line, format!("undefined value %{}", old.0))),
                other => Ok(*other),
            }
        };
        for (i, (_printed, op, ty, operands, block)) in self.pending.iter().enumerate() {
            let operands = operands.iter().map(&remap).collect::<Result<Vec<_>, _>>()?;
            self.func.instrs.push(Instr {
                op: op.clone(),
                ty: *ty,
                operands,
                block: *block,
            });
            self.func.blocks[block.0 as usize]
                .instrs
                .push(InstrId(i as u32));
        }
        Ok(self.func)
    }
}

/// Parse a module from the printer's textual form.
///
/// # Errors
/// Syntax errors with line numbers; the result is additionally checked by
/// [`crate::verify::verify_module`].
#[allow(clippy::too_many_lines)]
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut module = Module::new("parsed");
    let mut cur_fn: Option<FnBuilder> = None;
    let mut cur_block: Option<BlockId> = None;

    for (ln, raw) in text.lines().enumerate() {
        let lineno = ln + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("; module ") {
            module.name = rest.trim().to_string();
            continue;
        }
        if let Some(rest) = line.strip_prefix("; parallel_hints:") {
            let f = cur_fn
                .as_mut()
                .ok_or_else(|| perr(lineno, "hints outside function"))?;
            for h in rest.split_whitespace() {
                f.func.parallel_hints.push(parse_block_ref(h, lineno)?);
            }
            continue;
        }
        if line.starts_with(';') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('@') {
            // @memN = global [LEN x ELEM] ; NAME [readonly]
            let (_id, rest) = rest
                .split_once('=')
                .ok_or_else(|| perr(lineno, "malformed global"))?;
            let rest = rest
                .trim()
                .strip_prefix("global")
                .map(str::trim)
                .unwrap_or(rest);
            let open = rest.find('[').ok_or_else(|| perr(lineno, "missing ["))?;
            let close = rest.find(']').ok_or_else(|| perr(lineno, "missing ]"))?;
            let inner = &rest[open + 1..close];
            let (len_s, elem_s) = inner
                .split_once(" x ")
                .ok_or_else(|| perr(lineno, "malformed array type"))?;
            let len: u64 = len_s
                .trim()
                .parse()
                .map_err(|_| perr(lineno, "bad length"))?;
            let elem = parse_scalar_type(elem_s.trim(), lineno)?;
            let meta = rest[close + 1..].trim().trim_start_matches(';').trim();
            let read_only = meta.ends_with("readonly");
            let name = meta.trim_end_matches("readonly").trim();
            let id = module.add_mem_object(name, elem, len);
            if read_only {
                module.mem_objects[id.0 as usize].read_only = true;
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("define ") {
            // define RET @NAME(params) {
            let (ret_s, rest) = rest
                .split_once(" @")
                .ok_or_else(|| perr(lineno, "malformed define"))?;
            let ret = if ret_s.trim() == "void" {
                None
            } else {
                Some(parse_type(ret_s, lineno)?)
            };
            let open = rest.find('(').ok_or_else(|| perr(lineno, "missing ("))?;
            let close = rest.rfind(')').ok_or_else(|| perr(lineno, "missing )"))?;
            let name = rest[..open].trim().to_string();
            let mut params = Vec::new();
            let plist = &rest[open + 1..close];
            if !plist.trim().is_empty() {
                for p in split_operands(plist) {
                    let ty_s = p
                        .rsplit_once(" %arg")
                        .map(|(t, _)| t)
                        .ok_or_else(|| perr(lineno, "malformed parameter"))?;
                    params.push(parse_type(ty_s, lineno)?);
                }
            }
            cur_fn = Some(FnBuilder {
                func: Function {
                    name,
                    params,
                    ret,
                    instrs: Vec::new(),
                    blocks: Vec::new(),
                    entry: BlockId(0),
                    parallel_hints: Vec::new(),
                },
                pending: Vec::new(),
            });
            cur_block = None;
            continue;
        }
        if line == "}" {
            let f = cur_fn.take().ok_or_else(|| perr(lineno, "stray `}`"))?;
            module.functions.push(f.finish(lineno)?);
            continue;
        }
        if line.starts_with("bb") && line.contains(':') {
            let f = cur_fn
                .as_mut()
                .ok_or_else(|| perr(lineno, "block outside function"))?;
            let (_id, name) = line.split_once(':').expect("checked");
            let name = name.trim().trim_start_matches(';').trim().to_string();
            let b = BlockId(f.func.blocks.len() as u32);
            f.func.blocks.push(Block::new(name));
            cur_block = Some(b);
            continue;
        }
        // An instruction line.
        let f = cur_fn
            .as_mut()
            .ok_or_else(|| perr(lineno, "instruction outside function"))?;
        let block = cur_block.ok_or_else(|| perr(lineno, "instruction outside block"))?;
        let (printed_id, rhs, ty) = if let Some((lhs, rest)) = line.split_once(" = ") {
            let id: u32 = lhs
                .trim()
                .strip_prefix('%')
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| perr(lineno, "malformed result id"))?;
            let (rhs, ty_s) = rest
                .rsplit_once(" : ")
                .ok_or_else(|| perr(lineno, "missing result type"))?;
            (
                Some(id),
                rhs.trim().to_string(),
                Some(parse_type(ty_s, lineno)?),
            )
        } else {
            (None, line.to_string(), None)
        };
        let (op, operands) = parse_rhs(&rhs, lineno)?;
        f.pending.push((printed_id, op, ty, operands, block));
    }
    if cur_fn.is_some() {
        return Err(perr(text.lines().count(), "unterminated function"));
    }
    Ok(module)
}

#[allow(clippy::too_many_lines)]
fn parse_rhs(rhs: &str, line: usize) -> Result<(Op, Vec<ValueRef>), ParseError> {
    let (mnemonic, rest) = match rhs.split_once(' ') {
        Some((m, r)) => (m, r.trim()),
        None => (rhs, ""),
    };
    // φ: `phi [v, bbK], [v, bbK]`
    if mnemonic == "phi" {
        let mut preds = Vec::new();
        let mut operands = Vec::new();
        for pair in split_operands(rest) {
            let inner = pair
                .strip_prefix('[')
                .and_then(|p| p.strip_suffix(']'))
                .ok_or_else(|| perr(line, "malformed phi incoming"))?;
            let (v, b) = inner
                .rsplit_once(',')
                .ok_or_else(|| perr(line, "malformed phi pair"))?;
            operands.push(parse_value(v, line)?);
            preds.push(parse_block_ref(b, line)?);
        }
        return Ok((Op::Phi { preds }, operands));
    }
    if mnemonic == "load" || mnemonic == "store" {
        // load @memN[idx]   |   store @memN[idx], value
        let open = rest.find('[').ok_or_else(|| perr(line, "missing ["))?;
        let close = rest.find(']').ok_or_else(|| perr(line, "missing ]"))?;
        let obj = parse_mem_ref(&rest[..open], line)?;
        let idx = parse_value(&rest[open + 1..close], line)?;
        if mnemonic == "load" {
            return Ok((Op::Load { obj }, vec![idx]));
        }
        let val_s = rest[close + 1..].trim_start_matches(',').trim();
        let val = parse_value(val_s, line)?;
        return Ok((Op::Store { obj }, vec![idx, val]));
    }
    if mnemonic == "br" {
        return Ok((
            Op::Br {
                target: parse_block_ref(rest, line)?,
            },
            vec![],
        ));
    }
    if mnemonic == "condbr" {
        let parts = split_operands(rest);
        if parts.len() != 3 {
            return Err(perr(line, "condbr needs cond, then, else"));
        }
        return Ok((
            Op::CondBr {
                t: parse_block_ref(&parts[1], line)?,
                f: parse_block_ref(&parts[2], line)?,
            },
            vec![parse_value(&parts[0], line)?],
        ));
    }
    if mnemonic == "detach" {
        let parts = split_operands(rest);
        if parts.len() != 2 {
            return Err(perr(line, "detach needs body, cont"));
        }
        return Ok((
            Op::Detach {
                body: parse_block_ref(&parts[0], line)?,
                cont: parse_block_ref(&parts[1], line)?,
            },
            vec![],
        ));
    }
    if mnemonic == "reattach" {
        return Ok((
            Op::Reattach {
                cont: parse_block_ref(rest, line)?,
            },
            vec![],
        ));
    }
    if mnemonic == "sync" {
        return Ok((
            Op::Sync {
                cont: parse_block_ref(rest, line)?,
            },
            vec![],
        ));
    }
    if mnemonic == "ret" {
        let operands = if rest.is_empty() {
            vec![]
        } else {
            vec![parse_value(rest, line)?]
        };
        return Ok((Op::Ret, operands));
    }
    if mnemonic == "call" {
        // call @fnK(args)
        let open = rest.find('(').ok_or_else(|| perr(line, "missing ("))?;
        let close = rest.rfind(')').ok_or_else(|| perr(line, "missing )"))?;
        let callee = rest[..open]
            .trim()
            .strip_prefix("@fn")
            .and_then(|n| n.parse().ok())
            .map(FuncId)
            .ok_or_else(|| perr(line, "bad callee"))?;
        let args = split_operands(&rest[open + 1..close])
            .iter()
            .map(|a| parse_value(a, line))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok((Op::Call { callee }, args));
    }
    if mnemonic == "select" {
        let ops = split_operands(rest)
            .iter()
            .map(|a| parse_value(a, line))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok((Op::Select, ops));
    }
    if let Some(pred) = mnemonic.strip_prefix("icmp.") {
        let p = match pred {
            "eq" => CmpPred::Eq,
            "ne" => CmpPred::Ne,
            "lt" => CmpPred::Lt,
            "le" => CmpPred::Le,
            "gt" => CmpPred::Gt,
            "ge" => CmpPred::Ge,
            other => return Err(perr(line, format!("unknown predicate `{other}`"))),
        };
        let ops = split_operands(rest)
            .iter()
            .map(|a| parse_value(a, line))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok((Op::Cmp(p), ops));
    }
    if mnemonic == "sitofp" || mnemonic == "fptosi" || mnemonic == "resize" {
        let c = match mnemonic {
            "sitofp" => CastOp::SiToFp,
            "fptosi" => CastOp::FpToSi,
            _ => CastOp::IntResize,
        };
        return Ok((Op::Cast(c), vec![parse_value(rest, line)?]));
    }
    // tensor.X<RxC> a, b
    if let Some((tm, shape_rest)) = mnemonic.split_once('<') {
        if let Some(t) = tensor_op(tm) {
            let shape_s = shape_rest
                .strip_suffix('>')
                .ok_or_else(|| perr(line, "unterminated shape"))?;
            let (r, c) = shape_s
                .split_once('x')
                .ok_or_else(|| perr(line, "malformed shape"))?;
            let shape = TensorShape::new(
                r.parse().map_err(|_| perr(line, "bad rows"))?,
                c.parse().map_err(|_| perr(line, "bad cols"))?,
            );
            let ops = split_operands(rest)
                .iter()
                .map(|a| parse_value(a, line))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok((Op::Tensor(t, shape), ops));
        }
    }
    if let Some(b) = bin_op(mnemonic) {
        let ops = split_operands(rest)
            .iter()
            .map(|a| parse_value(a, line))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok((Op::Bin(b), ops));
    }
    if let Some(u) = un_op(mnemonic) {
        return Ok((Op::Un(u), vec![parse_value(rest, line)?]));
    }
    Err(perr(line, format!("unknown mnemonic `{mnemonic}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::printer::print_module;

    #[test]
    fn parses_a_minimal_module() {
        let text = "\
; module tiny
@mem0 = global [8 x i32] ; a
define void @main() {
bb0: ; entry
  %0 = load @mem0[0] : i32
  %1 = add %0, 41 : i64
  store @mem0[1], %1
  ret
}
";
        let m = parse_module(text).unwrap();
        assert_eq!(m.name, "tiny");
        assert_eq!(m.mem_objects.len(), 1);
        assert_eq!(m.mem_objects[0].name, "a");
        let f = m.main().unwrap();
        assert_eq!(f.instrs.len(), 4);
        crate::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn roundtrip_is_idempotent_for_builder_programs() {
        let mut m = Module::new("rt");
        let a = m.add_mem_object("a", ScalarType::F32, 32);
        let mut b = FunctionBuilder::new("main", &[Type::I64]).with_mem(&m);
        b.for_loop(0, ValueRef::int(32), 1, |b, i| {
            let v = b.load(a, i);
            let w = b.fmul(v, ValueRef::f32(2.5));
            b.store(a, i, w);
        });
        b.ret(None);
        m.add_function(b.finish());

        let p1 = print_module(&m);
        let m2 = parse_module(&p1).unwrap();
        crate::verify::verify_module(&m2).unwrap();
        let p2 = print_module(&m2);
        let m3 = parse_module(&p2).unwrap();
        let p3 = print_module(&m3);
        assert_eq!(p2, p3, "print∘parse must be idempotent");
    }

    #[test]
    fn parsed_program_runs_identically() {
        use crate::interp::{Interp, Memory};
        let mut m = Module::new("run");
        let a = m.add_mem_object("a", ScalarType::I32, 16);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(16), 1, |b, i| {
            let sq = b.mul(i, i);
            b.store(a, i, sq);
        });
        b.ret(None);
        m.add_function(b.finish());

        let m2 = parse_module(&print_module(&m)).unwrap();
        let mut mem1 = Memory::from_module(&m);
        Interp::new(&m).run_main(&mut mem1, &[]).unwrap();
        let mut mem2 = Memory::from_module(&m2);
        Interp::new(&m2).run_main(&mut mem2, &[]).unwrap();
        assert_eq!(mem1.objects, mem2.objects);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "; module x\ndefine void @main() {\nbb0: ; e\n  %0 = bogus 1, 2 : i64\n}\n";
        let e = parse_module(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn parses_parallel_hints() {
        let text = "\
; module h
define void @main() {
; parallel_hints: bb1 bb2
bb0: ; entry
  ret
}
";
        let m = parse_module(text).unwrap();
        assert_eq!(
            m.main().unwrap().parallel_hints,
            vec![BlockId(1), BlockId(2)]
        );
    }

    #[test]
    fn tensor_reduce_softmax_roundtrip_and_run() {
        use crate::interp::{Interp, Memory};
        use crate::types::TensorShape;
        let mut m = Module::new("trs");
        let a = m.add_mem_object("a", ScalarType::F32, 8);
        let o = m.add_mem_object("o", ScalarType::F32, 8);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        let sh = TensorShape::new(1, 4);
        let t = b.load_tile(a, ValueRef::int(0), sh);
        let s = b.tensor1(crate::instr::TensorOp::Reduce, sh, t);
        b.store(o, ValueRef::int(0), s);
        let sm = b.tensor1(crate::instr::TensorOp::Softmax, sh, t);
        b.store(o, ValueRef::int(4), sm);
        b.ret(None);
        m.add_function(b.finish());
        crate::verify::verify_module(&m).unwrap();

        let p1 = print_module(&m);
        assert!(p1.contains("tensor.reduce<1x4>"), "{p1}");
        assert!(p1.contains("tensor.softmax<1x4>"), "{p1}");
        let m2 = parse_module(&p1).unwrap();
        crate::verify::verify_module(&m2).unwrap();
        assert_eq!(p1, print_module(&m2), "print∘parse must be idempotent");

        let run = |m: &Module| {
            let mut mem = Memory::from_module(m);
            mem.init_f32(a, &[1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0]);
            Interp::new(m).run_main(&mut mem, &[]).unwrap();
            mem.read_f32(o)
        };
        let (r1, r2) = (run(&m), run(&m2));
        assert_eq!(r1, r2);
        assert_eq!(r1[0], 10.0);
        let sm_sum: f32 = r1[4..8].iter().sum();
        assert!((sm_sum - 1.0).abs() < 1e-6, "{r1:?}");
    }

    #[test]
    fn float_constants_survive() {
        let text = "\
; module f
@mem0 = global [4 x f32] ; a
define void @main() {
bb0: ; entry
  store @mem0[0], 2.0
  ret
}
";
        let m = parse_module(text).unwrap();
        let st = &m.main().unwrap().instrs[0];
        assert_eq!(st.operands[1], ValueRef::Const(ConstVal::F32(2.0)));
    }
}
