//! Reference interpreter: the functional golden model.
//!
//! Every accelerator microarchitecture generated in this repository is
//! verified by running the same `mir` program here and comparing output
//! memories word-for-word. The interpreter executes Tapir parallelism
//! serially (Cilk semantics guarantee a valid serial elision), and can emit
//! a dynamic trace for the CPU timing baseline.

use crate::instr::{
    BinOp, BlockId, CastOp, CmpPred, ConstVal, InstrId, MemObjId, Op, TensorOp, UnOp, ValueRef,
};
use crate::module::{Function, Module};
use crate::trace::{NullSink, OpClass, TraceEvent, TraceSink};
use crate::types::Type;
use crate::value::Value;
use std::fmt;

/// Interpreter failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interpreter error: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

fn ierr(msg: impl Into<String>) -> InterpError {
    InterpError {
        message: msg.into(),
    }
}

/// Flat program memory: one `Vec<Value>` per memory object, plus the flat
/// global base address of each object (used for trace addresses).
#[derive(Debug, Clone, PartialEq)]
pub struct Memory {
    /// Contents per memory object, zero-initialised.
    pub objects: Vec<Vec<Value>>,
    /// Flat global base element-address per object.
    pub bases: Vec<u64>,
}

impl Memory {
    /// Allocate zeroed memory for every object in the module.
    pub fn from_module(m: &Module) -> Memory {
        let mut bases = Vec::with_capacity(m.mem_objects.len());
        let mut next = 0u64;
        let mut objects = Vec::with_capacity(m.mem_objects.len());
        for obj in &m.mem_objects {
            bases.push(next);
            next += obj.len;
            objects.push(vec![Value::zero(Type::Scalar(obj.elem)); obj.len as usize]);
        }
        Memory { objects, bases }
    }

    /// Read one element slot.
    ///
    /// # Errors
    /// Out-of-bounds access.
    pub fn read(&self, obj: MemObjId, idx: u64) -> Result<Value, InterpError> {
        self.objects
            .get(obj.0 as usize)
            .and_then(|o| o.get(idx as usize))
            .cloned()
            .ok_or_else(|| ierr(format!("load out of bounds: {obj}[{idx}]")))
    }

    /// Write one element slot.
    ///
    /// # Errors
    /// Out-of-bounds access.
    pub fn write(&mut self, obj: MemObjId, idx: u64, v: Value) -> Result<(), InterpError> {
        let slot = self
            .objects
            .get_mut(obj.0 as usize)
            .and_then(|o| o.get_mut(idx as usize))
            .ok_or_else(|| ierr(format!("store out of bounds: {obj}[{idx}]")))?;
        *slot = v;
        Ok(())
    }

    /// Bulk-initialise an object from f32 data.
    pub fn init_f32(&mut self, obj: MemObjId, data: &[f32]) {
        for (i, &v) in data.iter().enumerate() {
            self.objects[obj.0 as usize][i] = Value::F32(v);
        }
    }

    /// Bulk-initialise an object from i64 data.
    pub fn init_i64(&mut self, obj: MemObjId, data: &[i64]) {
        for (i, &v) in data.iter().enumerate() {
            self.objects[obj.0 as usize][i] = Value::Int(v);
        }
    }

    /// Snapshot an object as f32s.
    pub fn read_f32(&self, obj: MemObjId) -> Vec<f32> {
        self.objects[obj.0 as usize]
            .iter()
            .map(|v| match v {
                Value::F32(f) => *f,
                Value::Int(i) => *i as f32,
                Value::Bool(b) => *b as i64 as f32,
                other => panic!("non-scalar in memory: {other:?}"),
            })
            .collect()
    }

    /// Snapshot an object as i64s.
    pub fn read_i64(&self, obj: MemObjId) -> Vec<i64> {
        self.objects[obj.0 as usize]
            .iter()
            .map(|v| match v {
                Value::Int(i) => *i,
                Value::F32(f) => *f as i64,
                Value::Bool(b) => *b as i64,
                other => panic!("non-scalar in memory: {other:?}"),
            })
            .collect()
    }

    /// Flat global element address of `obj[idx]`.
    pub fn flat_addr(&self, obj: MemObjId, idx: u64) -> u64 {
        self.bases[obj.0 as usize] + idx
    }
}

/// Evaluate a binary op on scalar values.
///
/// # Errors
/// Division by zero and type mismatches.
pub fn eval_bin(op: BinOp, a: &Value, b: &Value) -> Result<Value, InterpError> {
    if a.is_poison() || b.is_poison() {
        return Ok(Value::Poison);
    }
    Ok(match op {
        BinOp::Add => Value::Int(a.as_int().wrapping_add(b.as_int())),
        BinOp::Sub => Value::Int(a.as_int().wrapping_sub(b.as_int())),
        BinOp::Mul => Value::Int(a.as_int().wrapping_mul(b.as_int())),
        BinOp::Div => {
            let d = b.as_int();
            if d == 0 {
                return Err(ierr("integer division by zero"));
            }
            Value::Int(a.as_int().wrapping_div(d))
        }
        BinOp::Rem => {
            let d = b.as_int();
            if d == 0 {
                return Err(ierr("integer remainder by zero"));
            }
            Value::Int(a.as_int().wrapping_rem(d))
        }
        BinOp::And => Value::Int(a.as_int() & b.as_int()),
        BinOp::Or => Value::Int(a.as_int() | b.as_int()),
        BinOp::Xor => Value::Int(a.as_int() ^ b.as_int()),
        BinOp::Shl => Value::Int(a.as_int().wrapping_shl(b.as_int() as u32 & 63)),
        BinOp::LShr => Value::Int(((a.as_int() as u64) >> (b.as_int() as u32 & 63)) as i64),
        BinOp::AShr => Value::Int(a.as_int() >> (b.as_int() as u32 & 63)),
        BinOp::FAdd => Value::F32(a.as_f32() + b.as_f32()),
        BinOp::FSub => Value::F32(a.as_f32() - b.as_f32()),
        BinOp::FMul => Value::F32(a.as_f32() * b.as_f32()),
        BinOp::FDiv => Value::F32(a.as_f32() / b.as_f32()),
    })
}

/// Evaluate a unary op on a scalar value.
pub fn eval_un(op: UnOp, a: &Value) -> Value {
    if a.is_poison() {
        return Value::Poison;
    }
    match op {
        UnOp::FNeg => Value::F32(-a.as_f32()),
        UnOp::Exp => Value::F32(a.as_f32().exp()),
        UnOp::Sqrt => Value::F32(a.as_f32().sqrt()),
        UnOp::Relu => match a {
            Value::F32(f) => Value::F32(f.max(0.0)),
            Value::Int(i) => Value::Int((*i).max(0)),
            other => panic!("relu on {other:?}"),
        },
    }
}

/// Evaluate a comparison on scalar values.
pub fn eval_cmp(pred: CmpPred, a: &Value, b: &Value) -> Value {
    if a.is_poison() || b.is_poison() {
        return Value::Poison;
    }
    let r = match (a, b) {
        (Value::F32(x), Value::F32(y)) => match pred {
            CmpPred::Eq => x == y,
            CmpPred::Ne => x != y,
            CmpPred::Lt => x < y,
            CmpPred::Le => x <= y,
            CmpPred::Gt => x > y,
            CmpPred::Ge => x >= y,
        },
        _ => {
            let (x, y) = (a.as_int(), b.as_int());
            match pred {
                CmpPred::Eq => x == y,
                CmpPred::Ne => x != y,
                CmpPred::Lt => x < y,
                CmpPred::Le => x <= y,
                CmpPred::Gt => x > y,
                CmpPred::Ge => x >= y,
            }
        }
    };
    Value::Bool(r)
}

fn scalar_bin_f(
    a: &Value,
    b: &Value,
    is_float: bool,
    f: BinOp,
    i: BinOp,
) -> Result<Value, InterpError> {
    if is_float {
        eval_bin(f, a, b)
    } else {
        eval_bin(i, a, b)
    }
}

/// Evaluate a tensor op. `Conv` and `Reduce` reduce to a scalar;
/// `Softmax` keeps the shape but always yields F32 lanes (it routes
/// through the `exp` unit); others keep shape and element type.
///
/// # Errors
/// Shape mismatches.
pub fn eval_tensor(op: TensorOp, a: &Value, b: Option<&Value>) -> Result<Value, InterpError> {
    let (shape, da) = match a {
        Value::Tensor { shape, data } => (*shape, data),
        other => return Err(ierr(format!("tensor op on non-tensor {other:?}"))),
    };
    let is_float = matches!(da.first(), Some(Value::F32(_)));
    let db = match b {
        Some(Value::Tensor { shape: sb, data }) => {
            if *sb != shape {
                return Err(ierr(format!("tensor shape mismatch {sb} vs {shape}")));
            }
            Some(data)
        }
        Some(other) => return Err(ierr(format!("tensor op on non-tensor rhs {other:?}"))),
        None => None,
    };
    match op {
        TensorOp::Add | TensorOp::Mul => {
            let db = db.ok_or_else(|| ierr("binary tensor op missing rhs"))?;
            let bo = if op == TensorOp::Add {
                (BinOp::FAdd, BinOp::Add)
            } else {
                (BinOp::FMul, BinOp::Mul)
            };
            let data = da
                .iter()
                .zip(db)
                .map(|(x, y)| scalar_bin_f(x, y, is_float, bo.0, bo.1))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Value::Tensor { shape, data })
        }
        TensorOp::Relu => Ok(Value::Tensor {
            shape,
            data: da.iter().map(|x| eval_un(UnOp::Relu, x)).collect(),
        }),
        TensorOp::MatMul => {
            let db = db.ok_or_else(|| ierr("matmul missing rhs"))?;
            let (r, c) = (shape.rows as usize, shape.cols as usize);
            if r != c {
                return Err(ierr("matmul tiles must be square"));
            }
            let mut data = Vec::with_capacity(r * c);
            for i in 0..r {
                for j in 0..c {
                    let mut acc = if is_float {
                        Value::F32(0.0)
                    } else {
                        Value::Int(0)
                    };
                    for k in 0..r {
                        let p = scalar_bin_f(
                            &da[i * c + k],
                            &db[k * c + j],
                            is_float,
                            BinOp::FMul,
                            BinOp::Mul,
                        )?;
                        acc = scalar_bin_f(&acc, &p, is_float, BinOp::FAdd, BinOp::Add)?;
                    }
                    data.push(acc);
                }
            }
            Ok(Value::Tensor { shape, data })
        }
        TensorOp::Conv => {
            let db = db.ok_or_else(|| ierr("conv missing rhs"))?;
            let mut acc = if is_float {
                Value::F32(0.0)
            } else {
                Value::Int(0)
            };
            for (x, y) in da.iter().zip(db) {
                let p = scalar_bin_f(x, y, is_float, BinOp::FMul, BinOp::Mul)?;
                acc = scalar_bin_f(&acc, &p, is_float, BinOp::FAdd, BinOp::Add)?;
            }
            Ok(acc)
        }
        TensorOp::Reduce => {
            let mut acc = if is_float {
                Value::F32(0.0)
            } else {
                Value::Int(0)
            };
            for x in da {
                acc = scalar_bin_f(&acc, x, is_float, BinOp::FAdd, BinOp::Add)?;
            }
            Ok(acc)
        }
        TensorOp::Softmax => {
            let exps: Vec<Value> = da.iter().map(|x| eval_un(UnOp::Exp, x)).collect();
            let mut sum = Value::F32(0.0);
            for e in &exps {
                sum = eval_bin(BinOp::FAdd, &sum, e)?;
            }
            let data = exps
                .iter()
                .map(|e| eval_bin(BinOp::FDiv, e, &sum))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Value::Tensor { shape, data })
        }
    }
}

enum ExecEnd {
    Ret(Option<Value>),
    Reattach,
}

struct Frame<'f> {
    func: &'f Function,
    values: Vec<Option<Value>>,
    args: Vec<Value>,
}

impl<'f> Frame<'f> {
    fn get(&self, r: &ValueRef) -> Result<Value, InterpError> {
        match r {
            ValueRef::Instr(id) => self.values[id.0 as usize]
                .clone()
                .ok_or_else(|| ierr(format!("use of unevaluated {id}"))),
            ValueRef::Arg(n) => Ok(self.args[*n as usize].clone()),
            ValueRef::Const(c) => Ok(const_value(*c)),
        }
    }
}

fn const_value(c: ConstVal) -> Value {
    c.to_value()
}

/// The interpreter. Holds the module, a fuel budget (dynamic-op limit), and
/// an optional trace sink.
pub struct Interp<'m, S: TraceSink> {
    module: &'m Module,
    sink: S,
    fuel: u64,
}

impl<'m> Interp<'m, NullSink> {
    /// Interpreter without tracing.
    pub fn new(module: &'m Module) -> Self {
        Interp {
            module,
            sink: NullSink,
            fuel: 500_000_000,
        }
    }
}

impl<'m, S: TraceSink> Interp<'m, S> {
    /// Interpreter that feeds dynamic events into `sink`.
    pub fn with_sink(module: &'m Module, sink: S) -> Self {
        Interp {
            module,
            sink,
            fuel: 500_000_000,
        }
    }

    /// Override the dynamic-operation budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Recover the sink after execution.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Run `main` with the given arguments against `memory`.
    ///
    /// # Errors
    /// Propagates out-of-bounds accesses, division by zero, malformed IR,
    /// and fuel exhaustion.
    pub fn run_main(
        &mut self,
        memory: &mut Memory,
        args: &[Value],
    ) -> Result<Option<Value>, InterpError> {
        let f = self
            .module
            .main()
            .ok_or_else(|| ierr("module has no functions"))?;
        self.run_function(f, memory, args.to_vec())
    }

    /// Run an arbitrary function.
    ///
    /// # Errors
    /// Same failure modes as [`Interp::run_main`].
    pub fn run_function(
        &mut self,
        f: &Function,
        memory: &mut Memory,
        args: Vec<Value>,
    ) -> Result<Option<Value>, InterpError> {
        let mut frame = Frame {
            func: f,
            values: vec![None; f.instrs.len()],
            args,
        };
        match self.exec_from(&mut frame, f.entry, memory)? {
            ExecEnd::Ret(v) => Ok(v),
            ExecEnd::Reattach => Err(ierr("reattach escaped its detach region")),
        }
    }

    fn burn(&mut self, n: u64) -> Result<(), InterpError> {
        if self.fuel < n {
            return Err(ierr("fuel exhausted (possible infinite loop)"));
        }
        self.fuel -= n;
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn exec_from(
        &mut self,
        frame: &mut Frame<'_>,
        start: BlockId,
        memory: &mut Memory,
    ) -> Result<ExecEnd, InterpError> {
        let mut cur = start;
        let mut prev: Option<BlockId> = None;
        'blocks: loop {
            self.sink.block(&frame.func.name, cur);
            // φ nodes read their incoming values as-of block entry, in
            // parallel, before any instruction of the block executes.
            let block = frame.func.block(cur);
            let mut phi_updates: Vec<(InstrId, Value)> = Vec::new();
            for &iid in &block.instrs {
                let instr = frame.func.instr(iid);
                if let Op::Phi { preds } = &instr.op {
                    let p = prev.ok_or_else(|| ierr(format!("{iid}: phi in entry block")))?;
                    let slot = preds
                        .iter()
                        .position(|&b| b == p)
                        .ok_or_else(|| ierr(format!("{iid}: no phi incoming for {p}")))?;
                    phi_updates.push((iid, frame.get(&instr.operands[slot])?));
                } else {
                    break;
                }
            }
            for (iid, v) in phi_updates {
                frame.values[iid.0 as usize] = Some(v);
                self.burn(1)?;
                self.sink.event(TraceEvent::compute(OpClass::IntAlu));
            }

            let instrs: Vec<InstrId> = block.instrs.clone();
            for &iid in &instrs {
                let instr = frame.func.instr(iid).clone();
                if matches!(instr.op, Op::Phi { .. }) {
                    continue;
                }
                self.burn(1)?;
                match &instr.op {
                    Op::Bin(op) => {
                        let a = frame.get(&instr.operands[0])?;
                        let b = frame.get(&instr.operands[1])?;
                        self.sink.event(TraceEvent::compute(classify_bin(*op)));
                        frame.values[iid.0 as usize] = Some(eval_bin(*op, &a, &b)?);
                    }
                    Op::Un(op) => {
                        let a = frame.get(&instr.operands[0])?;
                        let class = match op {
                            UnOp::FNeg => OpClass::FpAdd,
                            UnOp::Relu => OpClass::IntAlu,
                            _ => OpClass::FpSpecial,
                        };
                        self.sink.event(TraceEvent::compute(class));
                        frame.values[iid.0 as usize] = Some(eval_un(*op, &a));
                    }
                    Op::Cmp(pred) => {
                        let a = frame.get(&instr.operands[0])?;
                        let b = frame.get(&instr.operands[1])?;
                        self.sink.event(TraceEvent::compute(OpClass::IntAlu));
                        frame.values[iid.0 as usize] = Some(eval_cmp(*pred, &a, &b));
                    }
                    Op::Select => {
                        let c = frame.get(&instr.operands[0])?;
                        let a = frame.get(&instr.operands[1])?;
                        let b = frame.get(&instr.operands[2])?;
                        self.sink.event(TraceEvent::compute(OpClass::IntAlu));
                        frame.values[iid.0 as usize] = Some(if c.as_bool() { a } else { b });
                    }
                    Op::Cast(op) => {
                        let a = frame.get(&instr.operands[0])?;
                        self.sink.event(TraceEvent::compute(OpClass::IntAlu));
                        let v = match op {
                            CastOp::SiToFp => Value::F32(a.as_int() as f32),
                            CastOp::FpToSi => Value::Int(a.as_f32() as i64),
                            CastOp::IntResize => a,
                        };
                        frame.values[iid.0 as usize] = Some(v);
                    }
                    Op::Load { obj } => {
                        let idx = frame.get(&instr.operands[0])?.as_int();
                        if idx < 0 {
                            return Err(ierr(format!("{iid}: negative load index")));
                        }
                        let ty = instr.ty.ok_or_else(|| ierr("untyped load"))?;
                        let n = ty.elems() as u64;
                        let mut slots = Vec::with_capacity(n as usize);
                        for k in 0..n {
                            let a = idx as u64 + k;
                            slots.push(memory.read(*obj, a)?);
                            self.sink.event(TraceEvent::mem(
                                OpClass::Load,
                                *obj,
                                memory.flat_addr(*obj, a),
                            ));
                        }
                        frame.values[iid.0 as usize] = Some(Value::assemble(ty, slots));
                    }
                    Op::Store { obj } => {
                        let idx = frame.get(&instr.operands[0])?.as_int();
                        if idx < 0 {
                            return Err(ierr(format!("{iid}: negative store index")));
                        }
                        let v = frame.get(&instr.operands[1])?;
                        for (k, slot) in v.flatten().into_iter().enumerate() {
                            let a = idx as u64 + k as u64;
                            memory.write(*obj, a, slot)?;
                            self.sink.event(TraceEvent::mem(
                                OpClass::Store,
                                *obj,
                                memory.flat_addr(*obj, a),
                            ));
                        }
                    }
                    Op::Tensor(op, _shape) => {
                        let a = frame.get(&instr.operands[0])?;
                        let b = instr.operands.get(1).map(|o| frame.get(o)).transpose()?;
                        // The CPU has no tensor unit: a tile op costs its
                        // scalar-equivalent mix (§6.6 "compute density").
                        let n = match &a {
                            Value::Tensor { shape, .. } => shape.elems() as u64,
                            _ => 1,
                        };
                        let is_float = matches!(
                            &a,
                            Value::Tensor { data, .. } if matches!(data.first(), Some(Value::F32(_)))
                        );
                        let per = match op {
                            TensorOp::MatMul => 2 * n * (n as f64).sqrt() as u64,
                            TensorOp::Conv => 2 * n,
                            // exp + sum + divide per lane
                            TensorOp::Softmax => 4 * n,
                            _ => n,
                        };
                        for _ in 0..per {
                            self.sink.event(TraceEvent::compute(if is_float {
                                OpClass::FpMul
                            } else {
                                OpClass::IntMul
                            }));
                        }
                        self.burn(per)?;
                        frame.values[iid.0 as usize] = Some(eval_tensor(*op, &a, b.as_ref())?);
                    }
                    Op::Call { callee } => {
                        let target = self
                            .module
                            .functions
                            .get(callee.0 as usize)
                            .ok_or_else(|| ierr(format!("missing callee {callee}")))?;
                        let args = instr
                            .operands
                            .iter()
                            .map(|o| frame.get(o))
                            .collect::<Result<Vec<_>, _>>()?;
                        self.sink.event(TraceEvent::compute(OpClass::Call));
                        let r = self.run_function(target, memory, args)?;
                        if instr.ty.is_some() {
                            frame.values[iid.0 as usize] =
                                Some(r.ok_or_else(|| ierr("void call used as value"))?);
                        }
                    }
                    Op::Br { target } => {
                        self.sink.event(TraceEvent::compute(OpClass::Branch));
                        prev = Some(cur);
                        cur = *target;
                        continue 'blocks;
                    }
                    Op::CondBr { t, f } => {
                        let c = frame.get(&instr.operands[0])?;
                        self.sink.event(TraceEvent::compute(OpClass::Branch));
                        prev = Some(cur);
                        cur = if c.as_bool() { *t } else { *f };
                        continue 'blocks;
                    }
                    Op::Ret => {
                        let v = instr.operands.first().map(|o| frame.get(o)).transpose()?;
                        return Ok(ExecEnd::Ret(v));
                    }
                    Op::Detach { body, cont } => {
                        // Serial elision: run the child region to completion,
                        // then continue at the parent's continuation.
                        self.sink.event(TraceEvent::compute(OpClass::Call));
                        match self.exec_from(frame, *body, memory)? {
                            ExecEnd::Reattach => {}
                            ExecEnd::Ret(_) => {
                                return Err(ierr("ret inside detach region"));
                            }
                        }
                        prev = Some(cur);
                        cur = *cont;
                        continue 'blocks;
                    }
                    Op::Reattach { .. } => {
                        return Ok(ExecEnd::Reattach);
                    }
                    Op::Sync { cont } => {
                        self.sink.event(TraceEvent::compute(OpClass::Call));
                        prev = Some(cur);
                        cur = *cont;
                        continue 'blocks;
                    }
                    Op::Phi { .. } => unreachable!("phis handled at block entry"),
                }
            }
            return Err(ierr(format!("block {cur} fell through without terminator")));
        }
    }
}

fn classify_bin(op: BinOp) -> OpClass {
    match op {
        BinOp::Mul => OpClass::IntMul,
        BinOp::Div | BinOp::Rem => OpClass::IntDiv,
        BinOp::FAdd | BinOp::FSub => OpClass::FpAdd,
        BinOp::FMul => OpClass::FpMul,
        BinOp::FDiv => OpClass::FpDiv,
        _ => OpClass::IntAlu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::trace::CountingSink;
    use crate::types::{ScalarType, TensorShape};

    #[test]
    fn straight_line_arithmetic() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Type::I64]).returns(Type::I64);
        let v = b.add(b.arg(0), ValueRef::int(5));
        let w = b.mul(v, ValueRef::int(2));
        b.ret(Some(w));
        m.add_function(b.finish());
        let mut mem = Memory::from_module(&m);
        let r = Interp::new(&m)
            .run_main(&mut mem, &[Value::Int(10)])
            .unwrap();
        assert_eq!(r, Some(Value::Int(30)));
    }

    #[test]
    fn loop_sums() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[]).returns(Type::I64);
        let accs = b.for_loop_acc(
            ValueRef::int(0),
            ValueRef::int(100),
            1,
            &[(ValueRef::int(0), Type::I64)],
            |b, i, accs| vec![b.add(accs[0], i)],
        );
        b.ret(Some(accs[0]));
        m.add_function(b.finish());
        let mut mem = Memory::from_module(&m);
        let r = Interp::new(&m).run_main(&mut mem, &[]).unwrap();
        assert_eq!(r, Some(Value::Int(4950)));
    }

    #[test]
    fn memory_roundtrip_and_trace() {
        let mut m = Module::new("t");
        let a = m.add_mem_object("a", ScalarType::I32, 8);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(8), 1, |b, i| {
            let v = b.load(a, i);
            let w = b.add(v, ValueRef::int(7));
            b.store(a, i, w);
        });
        b.ret(None);
        m.add_function(b.finish());
        let mut mem = Memory::from_module(&m);
        mem.init_i64(a, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut it = Interp::with_sink(&m, CountingSink::new());
        it.run_main(&mut mem, &[]).unwrap();
        let sink = it.into_sink();
        assert_eq!(mem.read_i64(a), vec![8, 9, 10, 11, 12, 13, 14, 15]);
        assert_eq!(sink.loads, 8);
        assert_eq!(sink.stores, 8);
        assert!(sink.branches >= 9);
    }

    #[test]
    fn parallel_for_serial_elision() {
        let mut m = Module::new("t");
        let a = m.add_mem_object("a", ScalarType::I32, 16);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.par_for(0, 16, 1, |b, i| {
            let sq = b.mul(i, i);
            b.store(a, i, sq);
        });
        b.ret(None);
        m.add_function(b.finish());
        let mut mem = Memory::from_module(&m);
        Interp::new(&m).run_main(&mut mem, &[]).unwrap();
        let out = mem.read_i64(a);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as i64);
        }
    }

    #[test]
    fn tensor_matmul_tile() {
        let a = Value::Tensor {
            shape: TensorShape::new(2, 2),
            data: vec![
                Value::F32(1.0),
                Value::F32(2.0),
                Value::F32(3.0),
                Value::F32(4.0),
            ],
        };
        let b = Value::Tensor {
            shape: TensorShape::new(2, 2),
            data: vec![
                Value::F32(5.0),
                Value::F32(6.0),
                Value::F32(7.0),
                Value::F32(8.0),
            ],
        };
        let r = eval_tensor(TensorOp::MatMul, &a, Some(&b)).unwrap();
        match r {
            Value::Tensor { data, .. } => {
                let got: Vec<f32> = data.iter().map(Value::as_f32).collect();
                assert_eq!(got, vec![19.0, 22.0, 43.0, 50.0]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tensor_reduce_tile() {
        let a = Value::Tensor {
            shape: TensorShape::new(2, 3),
            data: (1..=6).map(|v| Value::F32(v as f32)).collect(),
        };
        let r = eval_tensor(TensorOp::Reduce, &a, None).unwrap();
        assert_eq!(r, Value::F32(21.0));
        let ai = Value::Tensor {
            shape: TensorShape::new(1, 4),
            data: (1..=4).map(Value::Int).collect(),
        };
        assert_eq!(
            eval_tensor(TensorOp::Reduce, &ai, None).unwrap(),
            Value::Int(10)
        );
    }

    #[test]
    fn tensor_softmax_tile() {
        let a = Value::Tensor {
            shape: TensorShape::new(1, 3),
            data: vec![Value::F32(1.0), Value::F32(2.0), Value::F32(3.0)],
        };
        let r = eval_tensor(TensorOp::Softmax, &a, None).unwrap();
        let got = match r {
            Value::Tensor { shape, data } => {
                assert_eq!(shape, TensorShape::new(1, 3));
                data.iter().map(Value::as_f32).collect::<Vec<_>>()
            }
            other => panic!("{other:?}"),
        };
        let sum: f32 = got.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "softmax lanes must sum to 1, got {sum}"
        );
        assert!(
            got[0] < got[1] && got[1] < got[2],
            "softmax must be monotone: {got:?}"
        );
        // Reference: exp(x)/Σexp computed directly.
        let es: Vec<f32> = [1.0f32, 2.0, 3.0].iter().map(|x| x.exp()).collect();
        let tot: f32 = es.iter().sum();
        for (g, e) in got.iter().zip(es.iter().map(|e| e / tot)) {
            assert!((g - e).abs() < 1e-6, "{g} vs {e}");
        }
    }

    #[test]
    fn tensor_conv_reduces_to_scalar() {
        let a = Value::Tensor {
            shape: TensorShape::new(2, 2),
            data: vec![
                Value::F32(1.0),
                Value::F32(2.0),
                Value::F32(3.0),
                Value::F32(4.0),
            ],
        };
        let w = Value::Tensor {
            shape: TensorShape::new(2, 2),
            data: vec![Value::F32(1.0); 4],
        };
        let r = eval_tensor(TensorOp::Conv, &a, Some(&w)).unwrap();
        assert_eq!(r, Value::F32(10.0));
    }

    #[test]
    fn division_by_zero_reported() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[]).returns(Type::I64);
        let v = b.div(ValueRef::int(1), ValueRef::int(0));
        b.ret(Some(v));
        m.add_function(b.finish());
        let mut mem = Memory::from_module(&m);
        assert!(Interp::new(&m).run_main(&mut mem, &[]).is_err());
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[]);
        let hdr = b.block("spin");
        b.br(hdr);
        b.switch_to(hdr);
        b.br(hdr);
        m.add_function(b.finish());
        let mut mem = Memory::from_module(&m);
        let e = Interp::new(&m)
            .with_fuel(1000)
            .run_main(&mut mem, &[])
            .unwrap_err();
        assert!(e.message.contains("fuel"));
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut m = Module::new("t");
        let a = m.add_mem_object("a", ScalarType::I32, 4);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        let _ = b.load(a, ValueRef::int(99));
        b.ret(None);
        m.add_function(b.finish());
        let mut mem = Memory::from_module(&m);
        assert!(Interp::new(&m).run_main(&mut mem, &[]).is_err());
    }

    #[test]
    fn call_and_return_value() {
        let mut m = Module::new("t");
        // main is function 0, callee is function 1.
        let mut callee = FunctionBuilder::new("sq", &[Type::I64]).returns(Type::I64);
        let v = callee.mul(callee.arg(0), callee.arg(0));
        callee.ret(Some(v));
        let mut main = FunctionBuilder::new("main", &[]).returns(Type::I64);
        let r = main.call(
            crate::instr::FuncId(1),
            &[ValueRef::int(9)],
            Some(Type::I64),
        );
        main.ret(Some(r));
        m.add_function(main.finish());
        m.add_function(callee.finish());
        let mut mem = Memory::from_module(&m);
        let r = Interp::new(&m).run_main(&mut mem, &[]).unwrap();
        assert_eq!(r, Some(Value::Int(81)));
    }

    #[test]
    fn select_and_compare() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", &[Type::I64]).returns(Type::I64);
        let c = b.icmp(CmpPred::Lt, b.arg(0), ValueRef::int(0));
        let neg = b.sub(ValueRef::int(0), b.arg(0));
        let abs = b.select(c, neg, b.arg(0));
        b.ret(Some(abs));
        m.add_function(b.finish());
        let mut mem = Memory::from_module(&m);
        let r = Interp::new(&m)
            .run_main(&mut mem, &[Value::Int(-7)])
            .unwrap();
        assert_eq!(r, Some(Value::Int(7)));
        let r = Interp::new(&m)
            .run_main(&mut mem, &[Value::Int(7)])
            .unwrap();
        assert_eq!(r, Some(Value::Int(7)));
    }
}
