//! Structural verification of functions and modules.

use crate::instr::{BlockId, Op, ValueRef};
use crate::module::{Function, MemObject, Module};
use std::collections::HashSet;
use std::fmt;

/// A structural verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function the error was found in.
    pub function: String,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verification failed in `{}`: {}",
            self.function, self.message
        )
    }
}

impl std::error::Error for VerifyError {}

fn err(function: &str, message: impl Into<String>) -> VerifyError {
    VerifyError {
        function: function.to_string(),
        message: message.into(),
    }
}

/// Verify one function against the module's memory objects.
///
/// Checks: every block ends in exactly one terminator (and only the last
/// instruction is a terminator); branch targets are in range; operand
/// references are in range; φ nodes have matching pred/operand arity and
/// only reference CFG predecessors; loads/stores reference existing memory
/// objects; stores never write read-only objects.
///
/// # Errors
/// Returns the first problem found.
pub fn verify_function(f: &Function, mem_objects: &[MemObject]) -> Result<(), VerifyError> {
    let nblocks = f.blocks.len() as u32;
    if f.entry.0 >= nblocks {
        return Err(err(&f.name, "entry block out of range"));
    }
    let preds = f.predecessors();
    for (bi, block) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        if block.instrs.is_empty() {
            return Err(err(&f.name, format!("{bid} ({}) is empty", block.name)));
        }
        for (pos, &iid) in block.instrs.iter().enumerate() {
            let instr = f.instr(iid);
            if instr.block != bid {
                return Err(err(&f.name, format!("{iid} block back-pointer mismatch")));
            }
            let is_last = pos + 1 == block.instrs.len();
            if instr.is_terminator() != is_last {
                return Err(err(
                    &f.name,
                    format!(
                        "{bid}: terminator placement wrong at {iid} ({})",
                        instr.op.mnemonic()
                    ),
                ));
            }
            for s in instr.op.successors() {
                if s.0 >= nblocks {
                    return Err(err(&f.name, format!("{iid} branches to missing {s}")));
                }
            }
            for opnd in &instr.operands {
                match opnd {
                    ValueRef::Instr(i) => {
                        if i.0 as usize >= f.instrs.len() {
                            return Err(err(&f.name, format!("{iid} references missing {i}")));
                        }
                        if f.instr(*i).ty.is_none() {
                            return Err(err(
                                &f.name,
                                format!("{iid} uses valueless instruction {i}"),
                            ));
                        }
                    }
                    ValueRef::Arg(n) => {
                        if *n as usize >= f.params.len() {
                            return Err(err(&f.name, format!("{iid} uses missing arg {n}")));
                        }
                    }
                    ValueRef::Const(_) => {}
                }
            }
            match &instr.op {
                Op::Phi { preds: phi_preds } => {
                    if phi_preds.len() != instr.operands.len() {
                        return Err(err(&f.name, format!("{iid}: phi arity mismatch")));
                    }
                    let actual: HashSet<BlockId> = preds[bi].iter().copied().collect();
                    for p in phi_preds {
                        if !actual.contains(p) {
                            return Err(err(
                                &f.name,
                                format!("{iid}: phi incoming {p} is not a predecessor of {bid}"),
                            ));
                        }
                    }
                }
                Op::Load { obj } | Op::Store { obj } => {
                    if obj.0 as usize >= mem_objects.len() && !mem_objects.is_empty() {
                        return Err(err(&f.name, format!("{iid}: missing memory object {obj}")));
                    }
                    if let Op::Store { obj } = &instr.op {
                        if let Some(o) = mem_objects.get(obj.0 as usize) {
                            if o.read_only {
                                return Err(err(
                                    &f.name,
                                    format!("{iid}: store to read-only object `{}`", o.name),
                                ));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    Ok(())
}

/// Verify every function of a module.
///
/// # Errors
/// Returns the first problem found in any function; also checks that call
/// targets exist and have matching arity.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for f in &m.functions {
        verify_function(f, &m.mem_objects)?;
        for instr in &f.instrs {
            if let Op::Call { callee } = &instr.op {
                let Some(target) = m.functions.get(callee.0 as usize) else {
                    return Err(err(&f.name, format!("call to missing function {callee}")));
                };
                if target.params.len() != instr.operands.len() {
                    return Err(err(
                        &f.name,
                        format!(
                            "call to `{}` passes {} args, expects {}",
                            target.name,
                            instr.operands.len(),
                            target.params.len()
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::{BinOp, Instr};
    use crate::types::{ScalarType, Type};

    #[test]
    fn good_function_passes() {
        let mut b = FunctionBuilder::new("ok", &[Type::I64]);
        let v = b.add(b.arg(0), ValueRef::int(1));
        b.ret(Some(v));
        assert!(verify_function(&b.finish(), &[]).is_ok());
    }

    #[test]
    fn missing_terminator_caught() {
        let mut b = FunctionBuilder::new("bad", &[]);
        b.add(ValueRef::int(1), ValueRef::int(2));
        let f = b.finish();
        let e = verify_function(&f, &[]).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn dangling_branch_caught() {
        let mut b = FunctionBuilder::new("bad", &[]);
        b.push(
            Op::Br {
                target: BlockId(99),
            },
            None,
            vec![],
        );
        let f = b.finish();
        assert!(verify_function(&f, &[]).is_err());
    }

    #[test]
    fn bad_operand_caught() {
        let mut b = FunctionBuilder::new("bad", &[]);
        b.push(
            Op::Bin(BinOp::Add),
            Some(Type::I64),
            vec![ValueRef::Instr(crate::instr::InstrId(42)), ValueRef::int(0)],
        );
        b.ret(None);
        assert!(verify_function(&b.finish(), &[]).is_err());
    }

    #[test]
    fn store_to_read_only_caught() {
        let mut m = Module::new("ro");
        let obj = m.add_ro_mem_object("w", ScalarType::F32, 4);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.store(obj, ValueRef::int(0), ValueRef::f32(1.0));
        b.ret(None);
        m.add_function(b.finish());
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("read-only"), "{e}");
    }

    #[test]
    fn call_arity_checked() {
        let mut m = Module::new("calls");
        let mut callee = FunctionBuilder::new("callee", &[Type::I64]);
        callee.ret(None);
        let mut main = FunctionBuilder::new("main", &[]);
        // Call with zero args to a 1-arg function. Callee gets id 1 (added second).
        main.call(crate::instr::FuncId(1), &[], None);
        main.ret(None);
        m.add_function(main.finish());
        m.add_function(callee.finish());
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("args"), "{e}");
    }

    #[test]
    fn phi_pred_mismatch_caught() {
        let mut b = FunctionBuilder::new("bad_phi", &[]);
        let bb = b.block("next");
        b.br(bb);
        b.switch_to(bb);
        // φ claiming an incoming edge from bb itself, which is not a pred.
        b.push(
            Op::Phi { preds: vec![bb] },
            Some(Type::I64),
            vec![ValueRef::int(0)],
        );
        b.ret(None);
        let e = verify_function(&b.finish(), &[]).unwrap_err();
        assert!(e.message.contains("predecessor"), "{e}");
    }

    #[test]
    fn block_backpointer_checked() {
        let mut b = FunctionBuilder::new("bp", &[]);
        b.ret(None);
        let mut f = b.finish();
        // Corrupt the back-pointer.
        let id = f.blocks[0].instrs[0];
        let wrong = Instr {
            block: BlockId(7),
            ..f.instr(id).clone()
        };
        f.instrs[id.0 as usize] = wrong;
        assert!(verify_function(&f, &[]).is_err());
    }
}
