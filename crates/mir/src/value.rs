//! Runtime values used by the interpreter and the cycle-level simulator.

use crate::types::{ScalarType, TensorShape, Type};
use std::fmt;

/// A dynamic runtime value: scalar, vector, or tensor tile.
///
/// Integers are stored sign-extended in `i64`; floats in `f32`. Composite
/// values store their elements row-major.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean predicate.
    Bool(bool),
    /// Any integer kind (width tracked by the producing instruction's type).
    Int(i64),
    /// A 32-bit float.
    F32(f32),
    /// A short vector, row of scalars.
    Vector(Vec<Value>),
    /// A 2-D tensor tile, row-major.
    Tensor {
        /// Tile shape.
        shape: TensorShape,
        /// Row-major elements (`shape.elems()` of them).
        data: Vec<Value>,
    },
    /// The poison value produced by predicated-off dataflow (§3.5: "bypass
    /// the actual logic and poison the output").
    Poison,
}

impl Value {
    /// Zero value of the given type.
    pub fn zero(ty: Type) -> Value {
        match ty {
            Type::Scalar(ScalarType::I1) => Value::Bool(false),
            Type::Scalar(ScalarType::F32) => Value::F32(0.0),
            Type::Scalar(_) => Value::Int(0),
            Type::Vector { elem, lanes } => {
                Value::Vector(vec![Value::zero(Type::Scalar(elem)); lanes as usize])
            }
            Type::Tensor { elem, shape } => Value::Tensor {
                shape,
                data: vec![Value::zero(Type::Scalar(elem)); shape.elems() as usize],
            },
        }
    }

    /// Interpret as an integer.
    ///
    /// # Panics
    /// Panics if the value is not an integer or boolean.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Bool(b) => *b as i64,
            other => panic!("expected integer value, found {other:?}"),
        }
    }

    /// Interpret as a float.
    ///
    /// # Panics
    /// Panics if the value is not a float.
    pub fn as_f32(&self) -> f32 {
        match self {
            Value::F32(v) => *v,
            other => panic!("expected f32 value, found {other:?}"),
        }
    }

    /// Interpret as a boolean.
    ///
    /// # Panics
    /// Panics if the value is not a boolean or integer.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            other => panic!("expected boolean value, found {other:?}"),
        }
    }

    /// Whether this is the poison value.
    pub fn is_poison(&self) -> bool {
        matches!(self, Value::Poison)
    }

    /// Flatten into scalar element slots (memory representation).
    pub fn flatten(&self) -> Vec<Value> {
        match self {
            Value::Vector(v) => v.clone(),
            Value::Tensor { data, .. } => data.clone(),
            other => vec![other.clone()],
        }
    }

    /// Reassemble a value of type `ty` from flattened element slots.
    ///
    /// # Panics
    /// Panics if `slots` does not contain exactly `ty.elems()` elements.
    pub fn assemble(ty: Type, slots: Vec<Value>) -> Value {
        assert_eq!(
            slots.len() as u32,
            ty.elems(),
            "slot count mismatch for {ty}"
        );
        match ty {
            Type::Scalar(_) => slots.into_iter().next().expect("one slot"),
            Type::Vector { .. } => Value::Vector(slots),
            Type::Tensor { shape, .. } => Value::Tensor { shape, data: slots },
        }
    }

    /// Bit pattern used when checking output memories for equality. Floats
    /// compare by approximate equality elsewhere; this is for integers.
    pub fn bits(&self) -> u64 {
        match self {
            Value::Bool(b) => *b as u64,
            Value::Int(v) => *v as u64,
            Value::F32(v) => v.to_bits() as u64,
            Value::Poison => u64::MAX,
            Value::Vector(_) | Value::Tensor { .. } => {
                panic!("bits() is only defined on scalar values")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::Vector(v) => {
                write!(f, "<")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ">")
            }
            Value::Tensor { shape, data } => {
                write!(f, "tensor{shape}[")?;
                for (i, e) in data.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Value::Poison => write!(f, "poison"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero(Type::I32), Value::Int(0));
        assert_eq!(Value::zero(Type::F32), Value::F32(0.0));
        assert_eq!(Value::zero(Type::BOOL), Value::Bool(false));
        let t = Value::zero(Type::Tensor {
            elem: ScalarType::F32,
            shape: TensorShape::new(2, 2),
        });
        assert_eq!(t.flatten().len(), 4);
    }

    #[test]
    fn flatten_roundtrip() {
        let ty = Type::Tensor {
            elem: ScalarType::I32,
            shape: TensorShape::new(2, 2),
        };
        let v = Value::Tensor {
            shape: TensorShape::new(2, 2),
            data: vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)],
        };
        let back = Value::assemble(ty, v.flatten());
        assert_eq!(v, back);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), 7);
        assert_eq!(Value::Bool(true).as_int(), 1);
        assert!((Value::F32(1.5).as_f32() - 1.5).abs() < 1e-9);
        assert!(Value::Int(3).as_bool());
        assert!(!Value::Bool(false).as_bool());
        assert!(Value::Poison.is_poison());
    }

    #[test]
    #[should_panic]
    fn assemble_wrong_count() {
        Value::assemble(Type::I32, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(
            Value::Vector(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "<1, 2>"
        );
        assert_eq!(Value::Poison.to_string(), "poison");
    }
}
