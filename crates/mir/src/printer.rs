//! Textual printer for modules and functions (LLVM-flavoured syntax).

use crate::instr::{InstrId, Op};
use crate::module::{Function, Module};
use std::fmt::Write;

/// Render one function as text.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{t} %arg{i}"))
        .collect();
    let ret = f
        .ret
        .map(|t| t.to_string())
        .unwrap_or_else(|| "void".to_string());
    let _ = writeln!(out, "define {ret} @{}({}) {{", f.name, params.join(", "));
    if !f.parallel_hints.is_empty() {
        let hints: Vec<String> = f.parallel_hints.iter().map(|b| b.to_string()).collect();
        let _ = writeln!(out, "; parallel_hints: {}", hints.join(" "));
    }
    for (bi, block) in f.blocks.iter().enumerate() {
        let _ = writeln!(out, "bb{bi}: ; {}", block.name);
        for &iid in &block.instrs {
            let _ = writeln!(out, "  {}", render_instr(f, iid));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn render_instr(f: &Function, iid: InstrId) -> String {
    let instr = f.instr(iid);
    let ops: Vec<String> = instr.operands.iter().map(|o| o.to_string()).collect();
    let rhs = match &instr.op {
        Op::Phi { preds } => {
            let pairs: Vec<String> = instr
                .operands
                .iter()
                .zip(preds)
                .map(|(v, p)| format!("[{v}, {p}]"))
                .collect();
            format!("phi {}", pairs.join(", "))
        }
        Op::Load { obj } => format!("load {obj}[{}]", ops[0]),
        Op::Store { obj } => format!("store {obj}[{}], {}", ops[0], ops[1]),
        Op::Br { target } => format!("br {target}"),
        Op::CondBr { t, f: fb } => format!("condbr {}, {t}, {fb}", ops[0]),
        Op::Detach { body, cont } => format!("detach {body}, {cont}"),
        Op::Reattach { cont } => format!("reattach {cont}"),
        Op::Sync { cont } => format!("sync {cont}"),
        Op::Call { callee } => format!("call {callee}({})", ops.join(", ")),
        Op::Tensor(t, shape) => format!("{}<{shape}> {}", t.mnemonic(), ops.join(", ")),
        other => format!("{} {}", other.mnemonic(), ops.join(", ")),
    };
    match instr.ty {
        Some(ty) => format!("{iid} = {rhs} : {ty}"),
        None => rhs,
    }
}

/// Render a whole module as text.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; module {}", m.name);
    for (i, obj) in m.mem_objects.iter().enumerate() {
        let ro = if obj.read_only { " readonly" } else { "" };
        let _ = writeln!(
            out,
            "@mem{i} = global [{} x {}] ; {}{ro}",
            obj.len, obj.elem, obj.name
        );
    }
    for f in &m.functions {
        out.push('\n');
        out.push_str(&print_function(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::ValueRef;
    use crate::types::{ScalarType, Type};

    #[test]
    fn prints_module_shape() {
        let mut m = Module::new("demo");
        let a = m.add_mem_object("a", ScalarType::F32, 8);
        let mut b = FunctionBuilder::new("main", &[Type::F32]).with_mem(&m);
        let v = b.load(a, ValueRef::int(0));
        let s = b.fadd(v, b.arg(0));
        b.store(a, ValueRef::int(0), s);
        b.ret(None);
        m.add_function(b.finish());
        let text = print_module(&m);
        assert!(text.contains("module demo"));
        assert!(text.contains("@mem0 = global [8 x f32]"));
        assert!(text.contains("define void @main(f32 %arg0)"));
        assert!(text.contains("load @mem0"));
        assert!(text.contains("store @mem0"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn prints_phi_and_branches() {
        let mut b = FunctionBuilder::new("l", &[]);
        b.for_loop(0, ValueRef::int(4), 1, |_, _| {});
        b.ret(None);
        let f = b.finish();
        let text = print_function(&f);
        assert!(text.contains("phi ["));
        assert!(text.contains("condbr"));
    }
}
