//! Typed store errors with stable `E-STORE-*` codes.
//!
//! Mirrors the simulator's `E-SIM-*` taxonomy: every failure mode of the
//! persistent layer has a machine-readable code so campaign tooling can
//! bucket outcomes without string-matching, and a transient/permanent
//! split so retry policies know which errors are worth a second attempt.
//!
//! The cardinal rule of the store is that **these errors never fail an
//! evaluation**: every caller treats any [`StoreError`] as "warn and
//! recompute in memory". The typed error exists so the degradation is
//! *observable* — the fault campaign asserts that every injected
//! corruption surfaces one of these codes, never a silent wrong answer.

use std::fmt;

/// A failure of the persistent store layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level I/O failure (open, write, fsync, rename, …). The only
    /// *transient* store error: the filesystem may recover.
    Io {
        /// The operation that failed.
        op: &'static str,
        /// The path involved.
        path: String,
        /// OS error text.
        detail: String,
    },
    /// An entry shorter than its envelope header declares — the signature
    /// of a torn write. The entry has been quarantined.
    Truncated {
        /// The quarantined entry.
        path: String,
        /// Bytes the envelope required.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// An entry that does not start with the envelope magic — not written
    /// by this store at all. Quarantined.
    BadMagic {
        /// The quarantined entry.
        path: String,
    },
    /// An entry written by a different envelope format revision.
    /// Quarantined; rewritten on the next put at the current version.
    VersionSkew {
        /// The quarantined entry.
        path: String,
        /// Version found in the entry's header.
        found: u32,
        /// Version this reader speaks.
        expected: u32,
    },
    /// An entry whose payload fails its checksum — bit rot or in-place
    /// corruption. Quarantined.
    ChecksumMismatch {
        /// The quarantined entry.
        path: String,
        /// Checksum the header recorded.
        expected: u64,
        /// Checksum of the payload as read.
        found: u64,
    },
    /// An entry whose envelope is intact but whose payload fails to
    /// decode (wrong kind tag, codec error) — version-skew inside the
    /// payload codec. Quarantined.
    Decode {
        /// The quarantined entry.
        path: String,
        /// What the codec rejected.
        detail: String,
    },
    /// The store is disabled: its root could not be created or a config
    /// that cannot be memoized (e.g. tracing enabled) was offered. All
    /// operations degrade to recompute-in-memory.
    Disabled {
        /// Why the store is unavailable.
        reason: String,
    },
}

impl StoreError {
    /// Stable machine-readable error code (`E-STORE-*`).
    pub fn code(&self) -> &'static str {
        match self {
            StoreError::Io { .. } => "E-STORE-IO",
            StoreError::Truncated { .. } => "E-STORE-TRUNC",
            StoreError::BadMagic { .. } => "E-STORE-MAGIC",
            StoreError::VersionSkew { .. } => "E-STORE-VERSION",
            StoreError::ChecksumMismatch { .. } => "E-STORE-CHECKSUM",
            StoreError::Decode { .. } => "E-STORE-DECODE",
            StoreError::Disabled { .. } => "E-STORE-DISABLED",
        }
    }

    /// Whether a retry could plausibly succeed. Only raw I/O failures
    /// are transient — a corrupt entry stays corrupt (and is already
    /// quarantined), a disabled store stays disabled for the process.
    /// Mirror of `SimError::is_transient`.
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Io { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            StoreError::Io { op, path, detail } => {
                write!(f, "{op} failed on {path}: {detail}")
            }
            StoreError::Truncated {
                path,
                expected,
                found,
            } => write!(
                f,
                "torn write at {path}: need {expected} bytes, found {found} (quarantined)"
            ),
            StoreError::BadMagic { path } => {
                write!(f, "not a store envelope: {path} (quarantined)")
            }
            StoreError::VersionSkew {
                path,
                found,
                expected,
            } => write!(
                f,
                "version skew at {path}: format {found}, reader speaks {expected} (quarantined)"
            ),
            StoreError::ChecksumMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch at {path}: payload {found:016x} vs header {expected:016x} \
                 (quarantined)"
            ),
            StoreError::Decode { path, detail } => {
                write!(f, "payload decode failed at {path}: {detail} (quarantined)")
            }
            StoreError::Disabled { reason } => write!(f, "store disabled: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<StoreError> {
        vec![
            StoreError::Io {
                op: "rename",
                path: "p".into(),
                detail: "d".into(),
            },
            StoreError::Truncated {
                path: "p".into(),
                expected: 32,
                found: 10,
            },
            StoreError::BadMagic { path: "p".into() },
            StoreError::VersionSkew {
                path: "p".into(),
                found: 2,
                expected: 1,
            },
            StoreError::ChecksumMismatch {
                path: "p".into(),
                expected: 1,
                found: 2,
            },
            StoreError::Decode {
                path: "p".into(),
                detail: "d".into(),
            },
            StoreError::Disabled { reason: "r".into() },
        ]
    }

    #[test]
    fn codes_are_stable_distinct_and_prefixed() {
        let codes: Vec<&str> = samples().iter().map(StoreError::code).collect();
        let mut uniq = codes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), codes.len(), "codes must be distinct: {codes:?}");
        for c in codes {
            assert!(c.starts_with("E-STORE-"), "{c}");
        }
    }

    #[test]
    fn only_io_is_transient() {
        for e in samples() {
            assert_eq!(e.is_transient(), matches!(e, StoreError::Io { .. }), "{e}");
        }
    }

    #[test]
    fn display_carries_code() {
        for e in samples() {
            assert!(e.to_string().contains(e.code()), "{e}");
        }
    }
}
