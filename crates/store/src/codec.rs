//! Text codec for memoized evaluation payloads.
//!
//! The store persists one [`StoredEval`] per result entry: the
//! [`SimResult`] (minus observability artifacts) *plus the final memory
//! image* — simulation mutates memory in place, so a warm hit must
//! restore the complete end state, not just the root results.
//!
//! The encoding is deliberately a line-oriented text format rather than a
//! struct dump: floats round-trip exactly via their bit pattern
//! (`f<8 hex>`), every collection is length-prefixed, and a reader
//! rejects rather than guesses on any mismatch — decode failures map to
//! `E-STORE-DECODE` and quarantine the entry. Value tokens contain no
//! whitespace, so lists are space-separated:
//!
//! ```text
//! b0 / b1        boolean
//! i-42           integer (decimal)
//! f3f800000      f32 by bit pattern (1.0)
//! p              poison
//! v(tok;tok)     vector
//! t2x3(tok;...)  tensor tile, row-major
//! ```

use muir_mir::interp::Memory;
use muir_mir::types::TensorShape;
use muir_mir::value::Value;
use muir_sim::{FaultCounts, SimResult, SimStats, StructStats};
use std::fmt::Write as _;

/// What one result entry stores: the outcome and the final memory image.
#[derive(Debug, Clone)]
pub struct StoredEval {
    /// The simulation outcome (`profile`/`trace` always `None`; traced
    /// runs are never memoized).
    pub result: SimResult,
    /// The memory image after the run.
    pub mem: Memory,
}

/// Equality over the observable fields. `SimResult` itself does not
/// implement `PartialEq` (its optional profile/trace are large
/// observability artifacts); stored evals never carry those, so this
/// compares everything the codec persists.
impl PartialEq for StoredEval {
    fn eq(&self, other: &Self) -> bool {
        let (a, b) = (&self.result, &other.result);
        let (sa, sb) = (&a.stats, &b.stats);
        a.cycles == b.cycles
            && a.results == b.results
            && sa.cycles == sb.cycles
            && sa.fires == sb.fires
            && sa.task_invocations == sb.task_invocations
            && sa.task_busy_cycles == sb.task_busy_cycles
            && sa.struct_stats == sb.struct_stats
            && sa.dram_fills == sb.dram_fills
            && sa.faults == sb.faults
            && sa.sched_visits == sb.sched_visits
            && self.mem == other.mem
    }
}

/// A decode failure: what the codec expected and what it found.
pub(crate) type DecodeError = String;

// ---- value tokens ----

fn put_value(out: &mut String, v: &Value) {
    match v {
        Value::Bool(b) => out.push_str(if *b { "b1" } else { "b0" }),
        Value::Int(i) => {
            let _ = write!(out, "i{i}");
        }
        Value::F32(f) => {
            let _ = write!(out, "f{:08x}", f.to_bits());
        }
        Value::Poison => out.push('p'),
        Value::Vector(elems) => {
            out.push_str("v(");
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                put_value(out, e);
            }
            out.push(')');
        }
        Value::Tensor { shape, data } => {
            let _ = write!(out, "t{}x{}(", shape.rows, shape.cols);
            for (i, e) in data.iter().enumerate() {
                if i > 0 {
                    out.push(';');
                }
                put_value(out, e);
            }
            out.push(')');
        }
    }
}

/// Recursive-descent token parser over bytes; `pos` advances past the
/// parsed token.
fn take_value(s: &[u8], pos: &mut usize) -> Result<Value, DecodeError> {
    let start = *pos;
    match s.get(*pos) {
        Some(b'b') => {
            *pos += 1;
            match s.get(*pos) {
                Some(b'0') => {
                    *pos += 1;
                    Ok(Value::Bool(false))
                }
                Some(b'1') => {
                    *pos += 1;
                    Ok(Value::Bool(true))
                }
                _ => Err(format!("bad bool token at byte {start}")),
            }
        }
        Some(b'i') => {
            *pos += 1;
            let num_start = *pos;
            if s.get(*pos) == Some(&b'-') {
                *pos += 1;
            }
            while s.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            let text = std::str::from_utf8(&s[num_start..*pos]).expect("digits are utf8");
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| format!("bad int token at byte {start}: {e}"))
        }
        Some(b'f') => {
            *pos += 1;
            let hex = s
                .get(*pos..*pos + 8)
                .ok_or_else(|| format!("short f32 token at byte {start}"))?;
            let text = std::str::from_utf8(hex).map_err(|_| "non-utf8 f32 token".to_string())?;
            let bits = u32::from_str_radix(text, 16)
                .map_err(|e| format!("bad f32 token at byte {start}: {e}"))?;
            *pos += 8;
            Ok(Value::F32(f32::from_bits(bits)))
        }
        Some(b'p') => {
            *pos += 1;
            Ok(Value::Poison)
        }
        Some(b'v') => {
            *pos += 1;
            let elems = take_paren_list(s, pos, start)?;
            Ok(Value::Vector(elems))
        }
        Some(b't') => {
            *pos += 1;
            let rows = take_u8(s, pos, b'x', start)?;
            let cols = take_u8(s, pos, b'(', start)?;
            *pos -= 1; // take_paren_list expects to consume the '('
            let data = take_paren_list(s, pos, start)?;
            Ok(Value::Tensor {
                shape: TensorShape::new(rows, cols),
                data,
            })
        }
        other => Err(format!(
            "unknown value token {:?} at byte {start}",
            other.map(|&b| b as char)
        )),
    }
}

fn take_u8(s: &[u8], pos: &mut usize, stop: u8, start: usize) -> Result<u8, DecodeError> {
    let num_start = *pos;
    while s.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&s[num_start..*pos]).expect("digits are utf8");
    let n = text
        .parse::<u8>()
        .map_err(|e| format!("bad tensor dim at byte {start}: {e}"))?;
    if s.get(*pos) != Some(&stop) {
        return Err(format!(
            "expected {:?} after tensor dim at byte {start}",
            stop as char
        ));
    }
    *pos += 1;
    Ok(n)
}

fn take_paren_list(s: &[u8], pos: &mut usize, start: usize) -> Result<Vec<Value>, DecodeError> {
    if s.get(*pos) != Some(&b'(') {
        return Err(format!("expected '(' at byte {start}"));
    }
    *pos += 1;
    let mut elems = Vec::new();
    if s.get(*pos) == Some(&b')') {
        *pos += 1;
        return Ok(elems);
    }
    loop {
        elems.push(take_value(s, pos)?);
        match s.get(*pos) {
            Some(b';') => *pos += 1,
            Some(b')') => {
                *pos += 1;
                return Ok(elems);
            }
            _ => return Err(format!("unterminated list starting at byte {start}")),
        }
    }
}

fn parse_value(tok: &str) -> Result<Value, DecodeError> {
    let bytes = tok.as_bytes();
    let mut pos = 0;
    let v = take_value(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(format!("trailing bytes after value token {tok:?}"));
    }
    Ok(v)
}

// ---- line-oriented record ----

struct Lines<'a> {
    inner: std::str::Lines<'a>,
    lineno: usize,
}

impl<'a> Lines<'a> {
    fn next(&mut self, what: &str) -> Result<&'a str, DecodeError> {
        self.lineno += 1;
        self.inner
            .next()
            .ok_or_else(|| format!("unexpected end of record, expected {what}"))
    }

    /// A line `"<key> <fields...>"`; returns the fields.
    fn fields(&mut self, key: &str) -> Result<Vec<&'a str>, DecodeError> {
        let line = self.next(key)?;
        let mut it = line.split(' ');
        let found = it.next().unwrap_or("");
        if found != key {
            return Err(format!(
                "line {}: expected {key:?}, found {found:?}",
                self.lineno
            ));
        }
        Ok(it.collect())
    }
}

fn parse_u64(field: &str, what: &str) -> Result<u64, DecodeError> {
    field
        .parse::<u64>()
        .map_err(|e| format!("bad {what} {field:?}: {e}"))
}

fn parse_u64s(fields: &[&str], what: &str) -> Result<Vec<u64>, DecodeError> {
    fields.iter().map(|f| parse_u64(f, what)).collect()
}

/// A counted list line: `"<key> <n> <item0> <item1> …"` with `n` items.
fn counted<'a>(fields: &[&'a str], what: &str) -> Result<Vec<&'a str>, DecodeError> {
    let n = parse_u64(fields.first().ok_or_else(|| format!("empty {what}"))?, what)? as usize;
    let items = &fields[1..];
    if items.len() != n {
        return Err(format!("{what}: declared {n} items, found {}", items.len()));
    }
    Ok(items.to_vec())
}

fn put_u64_list(out: &mut String, key: &str, vals: &[u64]) {
    let _ = write!(out, "{key} {}", vals.len());
    for v in vals {
        let _ = write!(out, " {v}");
    }
    out.push('\n');
}

fn put_value_list(out: &mut String, key: &str, vals: &[Value]) {
    let _ = write!(out, "{key} {}", vals.len());
    for v in vals {
        out.push(' ');
        put_value(out, v);
    }
    out.push('\n');
}

/// Encode a [`StoredEval`] into the store's result payload.
pub fn encode_eval(eval: &StoredEval) -> Vec<u8> {
    let mut out = String::new();
    out.push_str("stored-eval-v1\n");
    let r = &eval.result;
    let _ = writeln!(out, "cycles {}", r.cycles);
    put_value_list(&mut out, "results", &r.results);
    let s = &r.stats;
    let _ = writeln!(
        out,
        "stats {} {} {} {}",
        s.cycles, s.fires, s.dram_fills, s.sched_visits
    );
    put_u64_list(&mut out, "inv", &s.task_invocations);
    put_u64_list(&mut out, "busy", &s.task_busy_cycles);
    let _ = writeln!(out, "structs {}", s.struct_stats.len());
    for st in &s.struct_stats {
        let _ = writeln!(
            out,
            "struct {} {} {} {} {} {} {}",
            st.requests,
            st.elem_txns,
            st.conflict_stalls,
            st.hits,
            st.misses,
            st.writebacks,
            st.ecc_corrected
        );
    }
    let f = &s.faults;
    let _ = writeln!(
        out,
        "faults {} {} {} {} {} {}",
        f.token_bit_flip, f.token_drop, f.token_dup, f.stuck_handshake, f.mem_ecc, f.dram_timeout
    );
    put_u64_list(&mut out, "bases", &eval.mem.bases);
    let _ = writeln!(out, "objects {}", eval.mem.objects.len());
    for obj in &eval.mem.objects {
        put_value_list(&mut out, "obj", obj);
    }
    out.into_bytes()
}

/// Decode a result payload back into a [`StoredEval`].
///
/// # Errors
/// A human-readable description of the first mismatch; the store maps it
/// to `E-STORE-DECODE` and quarantines the entry.
pub fn decode_eval(payload: &[u8]) -> Result<StoredEval, DecodeError> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not utf8: {e}"))?;
    let mut lines = Lines {
        inner: text.lines(),
        lineno: 0,
    };
    let header = lines.next("header")?;
    if header != "stored-eval-v1" {
        return Err(format!("unknown payload header {header:?}"));
    }
    let cycles_fields = lines.fields("cycles")?;
    let cycles = parse_u64(
        cycles_fields.first().ok_or("cycles line missing value")?,
        "cycles",
    )?;
    let results = counted(&lines.fields("results")?, "results")?
        .iter()
        .map(|t| parse_value(t))
        .collect::<Result<Vec<Value>, _>>()?;
    let stat_fields = lines.fields("stats")?;
    let stat_nums = parse_u64s(&stat_fields, "stats")?;
    if stat_nums.len() != 4 {
        return Err(format!(
            "stats line has {} fields, expected 4",
            stat_nums.len()
        ));
    }
    let task_invocations = parse_u64s(&counted(&lines.fields("inv")?, "inv")?, "inv")?;
    let task_busy_cycles = parse_u64s(&counted(&lines.fields("busy")?, "busy")?, "busy")?;
    let nstructs = parse_u64(
        lines
            .fields("structs")?
            .first()
            .ok_or("structs line missing count")?,
        "structs",
    )? as usize;
    let mut struct_stats = Vec::with_capacity(nstructs);
    for _ in 0..nstructs {
        let nums = parse_u64s(&lines.fields("struct")?, "struct")?;
        if nums.len() != 7 {
            return Err(format!("struct line has {} fields, expected 7", nums.len()));
        }
        struct_stats.push(StructStats {
            requests: nums[0],
            elem_txns: nums[1],
            conflict_stalls: nums[2],
            hits: nums[3],
            misses: nums[4],
            writebacks: nums[5],
            ecc_corrected: nums[6],
        });
    }
    let fault_nums = parse_u64s(&lines.fields("faults")?, "faults")?;
    if fault_nums.len() != 6 {
        return Err(format!(
            "faults line has {} fields, expected 6",
            fault_nums.len()
        ));
    }
    let faults = FaultCounts {
        token_bit_flip: fault_nums[0],
        token_drop: fault_nums[1],
        token_dup: fault_nums[2],
        stuck_handshake: fault_nums[3],
        mem_ecc: fault_nums[4],
        dram_timeout: fault_nums[5],
    };
    let bases = parse_u64s(&counted(&lines.fields("bases")?, "bases")?, "bases")?;
    let nobjects = parse_u64(
        lines
            .fields("objects")?
            .first()
            .ok_or("objects line missing count")?,
        "objects",
    )? as usize;
    let mut objects = Vec::with_capacity(nobjects);
    for _ in 0..nobjects {
        let obj = counted(&lines.fields("obj")?, "obj")?
            .iter()
            .map(|t| parse_value(t))
            .collect::<Result<Vec<Value>, _>>()?;
        objects.push(obj);
    }
    Ok(StoredEval {
        result: SimResult {
            cycles,
            results,
            stats: SimStats {
                cycles: stat_nums[0],
                fires: stat_nums[1],
                dram_fills: stat_nums[2],
                sched_visits: stat_nums[3],
                task_invocations,
                task_busy_cycles,
                struct_stats,
                faults,
            },
            profile: None,
            trace: None,
        },
        mem: Memory { objects, bases },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_eval() -> StoredEval {
        StoredEval {
            result: SimResult {
                cycles: 123,
                results: vec![
                    Value::Int(-7),
                    Value::Bool(true),
                    Value::F32(1.5),
                    Value::F32(f32::NEG_INFINITY),
                    Value::Poison,
                    Value::Vector(vec![Value::Int(1), Value::F32(0.25)]),
                    Value::Tensor {
                        shape: TensorShape::new(2, 2),
                        data: vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Poison],
                    },
                ],
                stats: SimStats {
                    cycles: 123,
                    fires: 456,
                    task_invocations: vec![1, 2, 3],
                    task_busy_cycles: vec![10, 20, 30],
                    struct_stats: vec![StructStats {
                        requests: 1,
                        elem_txns: 2,
                        conflict_stalls: 3,
                        hits: 4,
                        misses: 5,
                        writebacks: 6,
                        ecc_corrected: 7,
                    }],
                    dram_fills: 9,
                    faults: FaultCounts {
                        mem_ecc: 2,
                        ..FaultCounts::default()
                    },
                    sched_visits: 777,
                },
                profile: None,
                trace: None,
            },
            mem: Memory {
                objects: vec![
                    vec![Value::Int(5), Value::F32(-0.0)],
                    vec![],
                    vec![Value::Vector(vec![Value::Bool(false)])],
                ],
                bases: vec![0, 2, 2],
            },
        }
    }

    #[test]
    fn round_trips_exactly() {
        let eval = sample_eval();
        let decoded = decode_eval(&encode_eval(&eval)).unwrap();
        assert_eq!(decoded, eval);
        // -0.0 == 0.0 under PartialEq; check the bit pattern survived too.
        match (&decoded.mem.objects[0][1], &eval.mem.objects[0][1]) {
            (Value::F32(a), Value::F32(b)) => assert_eq!(a.to_bits(), b.to_bits()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let mut eval = sample_eval();
        let nan = f32::from_bits(0x7fc0_1234);
        eval.result.results = vec![Value::F32(nan)];
        let decoded = decode_eval(&encode_eval(&eval)).unwrap();
        match decoded.result.results[0] {
            Value::F32(f) => assert_eq!(f.to_bits(), 0x7fc0_1234),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_mangled_records() {
        let eval = sample_eval();
        let good = encode_eval(&eval);
        let text = String::from_utf8(good.clone()).unwrap();
        // Wrong header.
        assert!(decode_eval(b"stored-eval-v9\n").is_err());
        // Truncated record.
        assert!(decode_eval(&good[..good.len() / 2]).is_err());
        // Miscounted list.
        let bad = text.replacen("results 7", "results 8", 1);
        assert!(decode_eval(bad.as_bytes()).is_err());
        // Garbled value token.
        let bad = text.replacen("i-7", "q-7", 1);
        assert!(decode_eval(bad.as_bytes()).is_err());
    }

    #[test]
    fn value_tokens_are_whitespace_free() {
        for v in sample_eval().result.results {
            let mut s = String::new();
            put_value(&mut s, &v);
            assert!(!s.contains(' '), "{s}");
            assert_eq!(parse_value(&s).unwrap(), v);
        }
    }
}
