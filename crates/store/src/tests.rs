//! Crash-recovery and round-trip tests for the persistent store.

use super::*;
use muir_core::envelope::HEADER_LEN;
use muir_frontend::{translate, FrontendConfig};
use muir_mir::instr::ValueRef;
use muir_mir::types::ScalarType;
use muir_mir::{FunctionBuilder, Module};
use muir_sim::{result_hash, simulate_compiled, SimConfig};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique per-test store root under the system temp dir (no tempfile
/// dependency; the process id + a counter keep parallel tests apart).
fn test_root(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("muir-store-test-{}-{tag}-{n}", std::process::id()))
}

/// A small real accelerator (the doubling loop from the sim docs) plus a
/// fresh memory image and a completed evaluation to store.
fn sample_eval() -> (std::sync::Arc<CompiledAccel>, SimConfig, StoredEval) {
    let mut m = Module::new("double");
    let a = m.add_mem_object("a", ScalarType::I32, 16);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(16), 1, |b, i| {
        let v = b.load(a, i);
        let w = b.add(v, v);
        b.store(a, i, w);
    });
    b.ret(None);
    m.add_function(b.finish());
    let acc = translate(&m, &FrontendConfig::default()).unwrap();
    let comp = CompiledAccel::compile_cached(&acc).unwrap();
    let mut mem = Memory::from_module(&m);
    mem.init_i64(a, &[1; 16]);
    let cfg = SimConfig::default();
    let result = simulate_compiled(&comp, &mut mem, &[], &cfg).unwrap();
    (comp, cfg, StoredEval { result, mem })
}

#[test]
fn result_round_trip_is_identity() {
    let root = test_root("roundtrip");
    let (comp, cfg, eval) = sample_eval();
    let key = ResultKey::new(&comp, &cfg, &[], &eval.mem);
    let mut store = Store::open(&root);
    assert!(!store.is_disabled());
    assert!(store.get_result(key).unwrap().is_none(), "cold miss");
    store.put_result(key, &eval).unwrap();
    let warm = store.get_result(key).unwrap().expect("warm hit");
    assert_eq!(warm, eval);
    assert_eq!(result_hash(&warm.result), result_hash(&eval.result));
    let s = store.stats();
    assert_eq!((s.result_puts, s.result_hits, s.result_misses), (1, 1, 1));
    assert_eq!(s.corrupt_entries, 0);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn torn_write_is_quarantined_and_recoverable() {
    let root = test_root("torn");
    let (comp, cfg, eval) = sample_eval();
    let key = ResultKey::new(&comp, &cfg, &[], &eval.mem);
    let mut store = Store::open(&root);
    store.put_result(key, &eval).unwrap();
    // Crash mid-write: truncate the published entry below its declared
    // payload length (but past the magic, the torn-write signature).
    let path = store.result_path(key);
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..HEADER_LEN + 4]).unwrap();
    let err = store.get_result(key).unwrap_err();
    assert_eq!(err.code(), "E-STORE-TRUNC", "{err}");
    assert!(!err.is_transient());
    assert_eq!(store.quarantine_len(), 1, "evidence kept");
    // The slot is now empty: clean miss, recompute, re-put, warm hit.
    assert!(store.get_result(key).unwrap().is_none());
    store.put_result(key, &eval).unwrap();
    assert_eq!(store.get_result(key).unwrap().unwrap(), eval);
    let s = store.stats();
    assert_eq!(s.corrupt_entries, 1);
    assert_eq!(s.quarantined, 1);
    assert_eq!(s.result_hits, 1);
    assert_eq!(s.result_misses, 1);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn checksum_mismatch_is_quarantined_and_recoverable() {
    let root = test_root("bitrot");
    let (comp, cfg, eval) = sample_eval();
    let key = ResultKey::new(&comp, &cfg, &[], &eval.mem);
    let mut store = Store::open(&root);
    store.put_result(key, &eval).unwrap();
    // Bit rot: flip one payload bit in place.
    let path = store.result_path(key);
    let mut bytes = fs::read(&path).unwrap();
    bytes[HEADER_LEN + 3] ^= 0x10;
    fs::write(&path, &bytes).unwrap();
    let err = store.get_result(key).unwrap_err();
    assert_eq!(err.code(), "E-STORE-CHECKSUM", "{err}");
    assert_eq!(store.quarantine_len(), 1);
    assert!(store.get_result(key).unwrap().is_none(), "clean miss after");
    store.put_result(key, &eval).unwrap();
    assert_eq!(store.get_result(key).unwrap().unwrap(), eval);
    let s = store.stats();
    assert_eq!((s.corrupt_entries, s.quarantined), (1, 1));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn injected_stale_version_surfaces_version_skew() {
    let root = test_root("skew");
    let (comp, cfg, eval) = sample_eval();
    let key = ResultKey::new(&comp, &cfg, &[], &eval.mem);
    let mut store = Store::open_with_faults(
        &root,
        StoreFaultPlan::single(StoreFaultClass::StaleVersion, 3),
    );
    store.put_result(key, &eval).unwrap();
    assert_eq!(store.stats().faults.stale_version, 1);
    let err = store.get_result(key).unwrap_err();
    assert_eq!(err.code(), "E-STORE-VERSION", "{err}");
    assert_eq!(store.quarantine_len(), 1);
    assert!(store.get_result(key).unwrap().is_none());
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn injected_truncate_write_surfaces_torn_write() {
    let root = test_root("inj-torn");
    let (comp, cfg, eval) = sample_eval();
    let key = ResultKey::new(&comp, &cfg, &[], &eval.mem);
    let mut store = Store::open_with_faults(
        &root,
        StoreFaultPlan::single(StoreFaultClass::TruncateWrite, 11),
    );
    store.put_result(key, &eval).unwrap();
    assert_eq!(store.stats().faults.truncate_write, 1);
    let err = store.get_result(key).unwrap_err();
    assert_eq!(err.code(), "E-STORE-TRUNC", "{err}");
    assert_eq!(store.quarantine_len(), 1);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn injected_rename_failure_is_transient_and_publishes_nothing() {
    let root = test_root("rename");
    let (comp, cfg, eval) = sample_eval();
    let key = ResultKey::new(&comp, &cfg, &[], &eval.mem);
    let mut store = Store::open_with_faults(
        &root,
        StoreFaultPlan::single(StoreFaultClass::RenameFail, 5),
    );
    let err = store.put_result(key, &eval).unwrap_err();
    assert_eq!(err.code(), "E-STORE-IO", "{err}");
    assert!(err.is_transient(), "I/O failures are retryable");
    assert!(
        store.get_result(key).unwrap().is_none(),
        "nothing published"
    );
    assert_eq!(
        fs::read_dir(root.join("tmp")).unwrap().count(),
        0,
        "no debris"
    );
    assert_eq!(store.stats().put_errors, 1);
    // The budgeted fault is spent: the retry succeeds.
    store.put_result(key, &eval).unwrap();
    assert_eq!(store.get_result(key).unwrap().unwrap(), eval);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn injected_bit_flip_on_read_is_detected_typed() {
    let root = test_root("inj-flip");
    let (comp, cfg, eval) = sample_eval();
    let key = ResultKey::new(&comp, &cfg, &[], &eval.mem);
    let mut store = Store::open_with_faults(
        &root,
        StoreFaultPlan::single(StoreFaultClass::BitFlipRead, 21),
    );
    store.put_result(key, &eval).unwrap();
    // The flipped bit can land in the payload (checksum) or the header
    // (magic/version/length) — all must surface typed, never decode.
    let err = store.get_result(key).unwrap_err();
    assert!(
        matches!(
            err.code(),
            "E-STORE-CHECKSUM" | "E-STORE-MAGIC" | "E-STORE-VERSION" | "E-STORE-TRUNC"
        ),
        "{err}"
    );
    assert_eq!(store.stats().faults.bit_flip_read, 1);
    assert_eq!(store.quarantine_len(), 1);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn disabled_store_degrades_with_typed_error() {
    // Root the store under a *file* so the directory layout cannot exist.
    let blocker = test_root("blocker");
    fs::create_dir_all(&blocker).unwrap();
    let file = blocker.join("occupied");
    fs::write(&file, b"x").unwrap();
    let mut store = Store::open(&file.join("sub"));
    assert!(store.is_disabled());
    assert!(store.stats().disabled);
    let (comp, cfg, eval) = sample_eval();
    let key = ResultKey::new(&comp, &cfg, &[], &eval.mem);
    let err = store.get_result(key).unwrap_err();
    assert_eq!(err.code(), "E-STORE-DISABLED", "{err}");
    assert!(!err.is_transient());
    assert_eq!(
        store.put_result(key, &eval).unwrap_err().code(),
        "E-STORE-DISABLED"
    );
    assert_eq!(
        store.put_artifact(&comp).unwrap_err().code(),
        "E-STORE-DISABLED"
    );
    let _ = fs::remove_dir_all(&blocker);
}

#[test]
fn artifact_records_round_trip_and_dedup() {
    let root = test_root("artifact");
    let (comp, _cfg, _eval) = sample_eval();
    let mut store = Store::open(&root);
    assert!(store.get_artifact(comp.content_hash()).unwrap().is_none());
    assert!(store.put_artifact(&comp).unwrap(), "first put writes");
    assert!(!store.put_artifact(&comp).unwrap(), "second put dedups");
    let text = store
        .get_artifact(comp.content_hash())
        .unwrap()
        .expect("artifact present");
    assert_eq!(text, print_accelerator(comp.accel()));
    assert_eq!(store.stats().artifact_puts, 1);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn traced_configs_are_not_memoizable() {
    let mut cfg = SimConfig::default();
    assert!(memoizable(&cfg));
    cfg.trace.enabled = true;
    assert!(!memoizable(&cfg));
}
