//! `muir-store` — crash-safe persistent store for compiled artifacts and
//! memoized simulation results.
//!
//! ROADMAP item 1 promotes the process-local `CompiledAccel` cache to a
//! durable, content-addressed layer — the turbo-tasks-style architecture
//! where every evaluation is memoized by the hash of its inputs. The
//! store is built *robustness-first*:
//!
//! * **content-addressed keys** — artifacts live at
//!   `objects/<hash(CompiledAccel)>.art`; results at
//!   `results/<hash(artifact)>-<hash(job)>.res`, where the job hash
//!   covers the normalized `SimConfig` plus the run's actual inputs
//!   (root arguments and initial memory);
//! * **every byte checksummed** — entries are wrapped in the versioned
//!   envelope of [`muir_core::envelope`], so torn writes, bit rot, and
//!   version skew are *detected and typed* (`E-STORE-*`), never silently
//!   deserialized;
//! * **every write atomic** — write-to-temp + fsync + rename, so a crash
//!   at any instant leaves either the old entry or the new one, never a
//!   half-written file a reader could trust;
//! * **corruption is quarantined** — a failing entry is moved to
//!   `quarantine/` (keeping the evidence) and reported with a typed
//!   error; the next put repairs the slot;
//! * **degradation, never failure** — a store whose root cannot be
//!   created, or any typed error, degrades the caller to
//!   recompute-in-memory. The store can make evaluation *faster*, never
//!   *wrong* and never *impossible*.
//!
//! A seeded [`StoreFaultPlan`] can inject the four storage failure
//! classes deterministically; the `muir-bench` campaign uses it to prove
//! end state after any injected fault is bit-identical to a fault-free
//! cold run.

pub mod codec;
pub mod error;
pub mod fault;

pub use codec::StoredEval;
pub use error::StoreError;
pub use fault::{StoreFaultClass, StoreFaultCounts, StoreFaultPlan, StoreFaultSpec};

use fault::Injector;
use muir_core::envelope::{self, EnvelopeError, PayloadKind, FORMAT_VERSION};
use muir_core::printer::print_accelerator;
use muir_core::telemetry;
use muir_core::CompiledAccel;
use muir_mir::interp::Memory;
use muir_mir::value::Value;
use muir_sim::SimConfig;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The key of one memoized result: which artifact, which job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// `hash(CompiledAccel)` — the sealed artifact's content hash.
    pub artifact: u64,
    /// `hash(job)` — normalized config + root args + initial memory
    /// ([`muir_sim::job_hash`]).
    pub job: u64,
}

impl ResultKey {
    /// The key for evaluating `comp` with `(cfg, args, mem)`.
    pub fn new(comp: &CompiledAccel, cfg: &SimConfig, args: &[Value], mem: &Memory) -> ResultKey {
        ResultKey {
            artifact: comp.content_hash(),
            job: muir_sim::job_hash(cfg, args, mem),
        }
    }
}

/// Whether a configuration's results may be memoized. Traced runs are
/// excluded: traces are observability artifacts the codec deliberately
/// does not persist, and silently returning a hit without the requested
/// trace would violate the "identical to a standalone run" contract.
pub fn memoizable(cfg: &SimConfig) -> bool {
    !cfg.trace.enabled
}

/// Operation counters of one [`Store`] instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Artifact records written.
    pub artifact_puts: u64,
    /// Result entries written.
    pub result_puts: u64,
    /// Result lookups served from disk.
    pub result_hits: u64,
    /// Result lookups that found no entry (clean miss).
    pub result_misses: u64,
    /// Entries that failed validation (truncated / bad magic / version
    /// skew / checksum / decode) and were reported with a typed error.
    pub corrupt_entries: u64,
    /// Corrupt entries successfully moved to `quarantine/`.
    pub quarantined: u64,
    /// Writes that failed (I/O or injected rename failure); the entry was
    /// not published.
    pub put_errors: u64,
    /// Injected storage faults, per class.
    pub faults: StoreFaultCounts,
    /// Whether the store is running disabled (everything degrades to
    /// recompute).
    pub disabled: bool,
}

/// The persistent store. All methods take `&mut self` (stats and the
/// fault stream are instance state); share a store across threads by
/// wrapping it in a mutex at the service layer.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    /// `Some(reason)` when degraded: every operation returns
    /// [`StoreError::Disabled`] without touching the filesystem.
    disabled: Option<String>,
    injector: Injector,
    stats: StoreStats,
    tmp_counter: u64,
}

impl Store {
    /// Open (creating if needed) a store rooted at `root`. Never fails:
    /// if the directory layout cannot be created the store opens
    /// *disabled* and every operation degrades to a typed
    /// [`StoreError::Disabled`] — callers recompute in memory.
    pub fn open(root: &Path) -> Store {
        Store::open_with_faults(root, StoreFaultPlan::none())
    }

    /// [`Store::open`] with a seeded fault-injection plan (test/campaign
    /// harnesses only).
    pub fn open_with_faults(root: &Path, faults: StoreFaultPlan) -> Store {
        let mut disabled = None;
        for sub in ["objects", "results", "tmp", "quarantine"] {
            if let Err(e) = fs::create_dir_all(root.join(sub)) {
                disabled = Some(format!("cannot create {}: {e}", root.join(sub).display()));
                break;
            }
        }
        let stats = StoreStats {
            disabled: disabled.is_some(),
            ..StoreStats::default()
        };
        Store {
            root: root.to_path_buf(),
            disabled,
            injector: Injector::new(&faults),
            stats,
            tmp_counter: 0,
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Whether the store is degraded to recompute-only.
    pub fn is_disabled(&self) -> bool {
        self.disabled.is_some()
    }

    /// Operation counters so far (fault tallies included).
    pub fn stats(&self) -> StoreStats {
        let mut s = self.stats;
        s.faults = self.injector.counts;
        s
    }

    fn check_enabled(&self) -> Result<(), StoreError> {
        match &self.disabled {
            Some(reason) => Err(StoreError::Disabled {
                reason: reason.clone(),
            }),
            None => Ok(()),
        }
    }

    fn artifact_path(&self, hash: u64) -> PathBuf {
        self.root.join("objects").join(format!("{hash:016x}.art"))
    }

    fn result_path(&self, key: ResultKey) -> PathBuf {
        self.root
            .join("results")
            .join(format!("{:016x}-{:016x}.res", key.artifact, key.job))
    }

    // ---- atomic write path ----

    /// Publish `payload` at `dest` via write-to-temp + fsync + atomic
    /// rename. A crash at any point leaves either no entry or a complete
    /// sealed entry — never bytes a reader could half-trust. Injected
    /// faults ([`StoreFaultPlan`]) deliberately break each step of this
    /// protocol to prove the read side catches the damage.
    fn write_atomic(
        &mut self,
        dest: &Path,
        kind: PayloadKind,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        telemetry::count("store.writes", 1);
        let io_t0 = telemetry::enabled().then(std::time::Instant::now);
        let out = self.write_atomic_inner(dest, kind, payload);
        if let Some(t0) = io_t0 {
            telemetry::observe(
                "store.write_us",
                &telemetry::US_BUCKETS,
                t0.elapsed().as_micros() as u64,
            );
        }
        out
    }

    fn write_atomic_inner(
        &mut self,
        dest: &Path,
        kind: PayloadKind,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        let version = if self.injector.roll(StoreFaultClass::StaleVersion) {
            FORMAT_VERSION + 1
        } else {
            FORMAT_VERSION
        };
        let mut sealed = envelope::seal_with_version(kind, version, payload);
        if self.injector.roll(StoreFaultClass::TruncateWrite) {
            // A torn write: only a prefix (at least the magic, so the
            // reader sees "envelope, but cut short", not "not a file we
            // wrote") survives the crash.
            let cut = 8 + self.injector.below(sealed.len() as u64 - 8) as usize;
            sealed.truncate(cut);
        }
        self.tmp_counter += 1;
        let tmp = self.root.join("tmp").join(format!(
            "{}-{:x}.tmp",
            std::process::id(),
            self.tmp_counter
        ));
        let io_err = |op: &'static str, path: &Path, e: std::io::Error| StoreError::Io {
            op,
            path: path.display().to_string(),
            detail: e.to_string(),
        };
        let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        f.write_all(&sealed).map_err(|e| io_err("write", &tmp, e))?;
        f.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
        drop(f);
        if self.injector.roll(StoreFaultClass::RenameFail) {
            let _ = fs::remove_file(&tmp);
            return Err(StoreError::Io {
                op: "rename",
                path: dest.display().to_string(),
                detail: "injected rename failure".to_string(),
            });
        }
        fs::rename(&tmp, dest).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            io_err("rename", dest, e)
        })?;
        // Durability of the *name* needs the directory fsynced too;
        // best-effort — a failure here cannot un-publish the rename.
        if let Some(dir) = dest.parent() {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    // ---- read path ----

    /// Read and validate one entry. `Ok(None)` is a clean miss; any
    /// validation failure quarantines the file and returns the typed
    /// error.
    fn read_validated(
        &mut self,
        path: &Path,
        expect: PayloadKind,
    ) -> Result<Option<Vec<u8>>, StoreError> {
        telemetry::count("store.reads", 1);
        let io_t0 = telemetry::enabled().then(std::time::Instant::now);
        let out = self.read_validated_inner(path, expect);
        if let Some(t0) = io_t0 {
            telemetry::observe(
                "store.read_us",
                &telemetry::US_BUCKETS,
                t0.elapsed().as_micros() as u64,
            );
        }
        out
    }

    fn read_validated_inner(
        &mut self,
        path: &Path,
        expect: PayloadKind,
    ) -> Result<Option<Vec<u8>>, StoreError> {
        let mut bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(StoreError::Io {
                    op: "read",
                    path: path.display().to_string(),
                    detail: e.to_string(),
                })
            }
        };
        if !bytes.is_empty() && self.injector.roll(StoreFaultClass::BitFlipRead) {
            let bit = self.injector.below(bytes.len() as u64 * 8) as usize;
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
        match envelope::open(&bytes) {
            Ok((kind, payload)) if kind == expect => Ok(Some(payload.to_vec())),
            Ok((kind, _)) => Err(self.quarantine(
                path,
                StoreError::Decode {
                    path: path.display().to_string(),
                    detail: format!("payload kind {kind}, expected {expect}"),
                },
            )),
            Err(env_err) => {
                let typed = self.envelope_error(path, env_err);
                Err(self.quarantine(path, typed))
            }
        }
    }

    fn envelope_error(&self, path: &Path, e: EnvelopeError) -> StoreError {
        let p = path.display().to_string();
        match e {
            EnvelopeError::Truncated { expected, found } => StoreError::Truncated {
                path: p,
                expected,
                found,
            },
            EnvelopeError::BadMagic { .. } => StoreError::BadMagic { path: p },
            EnvelopeError::VersionSkew { found, expected } => StoreError::VersionSkew {
                path: p,
                found,
                expected,
            },
            EnvelopeError::BadKind { tag } => StoreError::Decode {
                path: p,
                detail: format!("unknown payload kind tag {tag}"),
            },
            EnvelopeError::ChecksumMismatch { expected, found } => StoreError::ChecksumMismatch {
                path: p,
                expected,
                found,
            },
        }
    }

    /// Move a failed entry aside (keeping the evidence) and tally it.
    /// Returns `err` unchanged so callers can `return Err(...)` in one
    /// expression.
    fn quarantine(&mut self, path: &Path, err: StoreError) -> StoreError {
        self.stats.corrupt_entries += 1;
        telemetry::count("store.corrupt_entries", 1);
        if let Some(name) = path.file_name() {
            let dest = self.root.join("quarantine").join(name);
            if fs::rename(path, &dest).is_ok() {
                self.stats.quarantined += 1;
                telemetry::count("store.quarantined", 1);
                return err;
            }
        }
        // Could not move it: remove it so the poisoned bytes cannot be
        // re-read forever (the error already reported the corruption).
        let _ = fs::remove_file(path);
        err
    }

    // ---- artifacts ----

    /// Persist the artifact record of a sealed accelerator: its canonical
    /// printed text, addressed by content hash. Returns `true` if a new
    /// entry was written, `false` if a valid entry was already present.
    ///
    /// # Errors
    /// [`StoreError`] on I/O failure or when disabled; callers degrade
    /// (the artifact store is a durability record, not a correctness
    /// dependency — simulation always uses the in-memory artifact).
    pub fn put_artifact(&mut self, comp: &CompiledAccel) -> Result<bool, StoreError> {
        self.check_enabled()?;
        let hash = comp.content_hash();
        let path = self.artifact_path(hash);
        if matches!(
            self.read_validated(&path, PayloadKind::Artifact),
            Ok(Some(_))
        ) {
            return Ok(false);
        }
        // Missing, or corrupt (now quarantined): write a fresh entry.
        let mut record = format!("artifact-v1\nhash {hash:016x}\n");
        record.push_str(&print_accelerator(comp.accel()));
        match self.write_atomic(&path, PayloadKind::Artifact, record.as_bytes()) {
            Ok(()) => {
                self.stats.artifact_puts += 1;
                telemetry::count("store.artifact_puts", 1);
                Ok(true)
            }
            Err(e) => {
                self.stats.put_errors += 1;
                telemetry::count("store.put_errors", 1);
                Err(e)
            }
        }
    }

    /// Fetch an artifact record's canonical text by content hash.
    /// `Ok(None)` is a clean miss; corrupt entries are quarantined and
    /// reported typed.
    ///
    /// # Errors
    /// [`StoreError`] on corruption, I/O failure, or when disabled.
    pub fn get_artifact(&mut self, hash: u64) -> Result<Option<String>, StoreError> {
        self.check_enabled()?;
        let path = self.artifact_path(hash);
        let Some(payload) = self.read_validated(&path, PayloadKind::Artifact)? else {
            return Ok(None);
        };
        let text = String::from_utf8(payload).map_err(|e| {
            self.quarantine_missing(&path);
            StoreError::Decode {
                path: path.display().to_string(),
                detail: format!("artifact record is not utf8: {e}"),
            }
        })?;
        let expect = format!("artifact-v1\nhash {hash:016x}\n");
        if !text.starts_with(&expect) {
            self.quarantine_missing(&path);
            return Err(StoreError::Decode {
                path: path.display().to_string(),
                detail: "artifact record header/hash mismatch".to_string(),
            });
        }
        Ok(Some(text[expect.len()..].to_string()))
    }

    /// Quarantine an entry that passed envelope validation but failed
    /// payload decode (the file is still in place at this point).
    fn quarantine_missing(&mut self, path: &Path) {
        let placeholder = StoreError::Decode {
            path: path.display().to_string(),
            detail: String::new(),
        };
        let _ = self.quarantine(path, placeholder);
    }

    // ---- results ----

    /// Memoize one evaluation outcome under `key`.
    ///
    /// # Errors
    /// [`StoreError`] on I/O failure or when disabled; the evaluation
    /// itself already succeeded, so callers warn and move on.
    pub fn put_result(&mut self, key: ResultKey, eval: &StoredEval) -> Result<(), StoreError> {
        self.check_enabled()?;
        let path = self.result_path(key);
        let payload = codec::encode_eval(eval);
        match self.write_atomic(&path, PayloadKind::SimResult, &payload) {
            Ok(()) => {
                self.stats.result_puts += 1;
                telemetry::count("store.result_puts", 1);
                Ok(())
            }
            Err(e) => {
                self.stats.put_errors += 1;
                telemetry::count("store.put_errors", 1);
                Err(e)
            }
        }
    }

    /// Look up a memoized evaluation. `Ok(None)` is a clean miss
    /// (recompute and [`Store::put_result`]); `Err` means an entry
    /// existed but failed validation — it has been quarantined, and the
    /// caller recomputes exactly as on a miss.
    ///
    /// # Errors
    /// [`StoreError`] on corruption, I/O failure, or when disabled.
    pub fn get_result(&mut self, key: ResultKey) -> Result<Option<StoredEval>, StoreError> {
        self.check_enabled()?;
        let path = self.result_path(key);
        let Some(payload) = self.read_validated(&path, PayloadKind::SimResult)? else {
            self.stats.result_misses += 1;
            telemetry::count("store.result_misses", 1);
            return Ok(None);
        };
        match codec::decode_eval(&payload) {
            Ok(eval) => {
                self.stats.result_hits += 1;
                telemetry::count("store.result_hits", 1);
                Ok(Some(eval))
            }
            Err(detail) => {
                self.quarantine_missing(&path);
                Err(StoreError::Decode {
                    path: path.display().to_string(),
                    detail,
                })
            }
        }
    }

    /// Number of entries currently in `quarantine/` (0 for a disabled
    /// store).
    pub fn quarantine_len(&self) -> usize {
        fs::read_dir(self.root.join("quarantine"))
            .map(|d| d.count())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests;
