//! Seeded, deterministic fault injection for the store layer.
//!
//! The structural twin of `muir_sim::fault`: a [`StoreFaultPlan`] arms one
//! or more storage fault classes at a parts-per-million rate, and every
//! injection decision is drawn from a splitmix64 stream derived from the
//! plan's seed — the same plan against the same operation sequence
//! reproduces the same faults, so a corruption found by the campaign can
//! be replayed byte-for-byte.
//!
//! The classes model the storage failure modes the envelope protocol is
//! designed to catch:
//!
//! * [`StoreFaultClass::TruncateWrite`] — a crash mid-write: only a prefix
//!   of the sealed entry reaches the disk (torn write);
//! * [`StoreFaultClass::BitFlipRead`] — bit rot: one bit of the entry
//!   flips between write and read;
//! * [`StoreFaultClass::RenameFail`] — the atomic publish step fails: the
//!   temp file is written but never renamed into place;
//! * [`StoreFaultClass::StaleVersion`] — version skew: the entry is
//!   written by a future/past format revision.

use muir_core::rng::SplitMix64;
use std::fmt;

/// An injectable storage fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreFaultClass {
    /// Write only a prefix of the sealed entry (torn write / crash
    /// mid-write).
    TruncateWrite,
    /// Flip one deterministic bit of an entry as it is read (bit rot).
    BitFlipRead,
    /// Fail the atomic rename publishing a temp file (the entry never
    /// appears; the write reports an I/O error).
    RenameFail,
    /// Seal the entry with a different envelope format version
    /// (version skew).
    StaleVersion,
}

impl StoreFaultClass {
    /// All classes, in stable report order.
    pub const ALL: [StoreFaultClass; 4] = [
        StoreFaultClass::TruncateWrite,
        StoreFaultClass::BitFlipRead,
        StoreFaultClass::RenameFail,
        StoreFaultClass::StaleVersion,
    ];

    /// Stable short name (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            StoreFaultClass::TruncateWrite => "truncate-write",
            StoreFaultClass::BitFlipRead => "bit-flip-read",
            StoreFaultClass::RenameFail => "rename-fail",
            StoreFaultClass::StaleVersion => "stale-version",
        }
    }

    fn index(self) -> usize {
        match self {
            StoreFaultClass::TruncateWrite => 0,
            StoreFaultClass::BitFlipRead => 1,
            StoreFaultClass::RenameFail => 2,
            StoreFaultClass::StaleVersion => 3,
        }
    }
}

impl fmt::Display for StoreFaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One armed fault class with its rate and budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreFaultSpec {
    /// Which class to inject.
    pub class: StoreFaultClass,
    /// Injection probability per opportunity, in parts per million.
    pub rate_ppm: u32,
    /// Maximum injections across the store's lifetime (0 = unlimited).
    pub max_events: u32,
}

/// A deterministic fault-injection schedule for one store instance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreFaultPlan {
    /// Master seed for the injection stream.
    pub seed: u64,
    /// Armed classes. Empty = fault-free store (the default).
    pub specs: Vec<StoreFaultSpec>,
}

impl StoreFaultPlan {
    /// A fault-free plan (the default).
    pub fn none() -> StoreFaultPlan {
        StoreFaultPlan::default()
    }

    /// A plan injecting exactly one event of `class`, guaranteed to fire
    /// at the first opportunity — the campaign's per-class probe.
    pub fn single(class: StoreFaultClass, seed: u64) -> StoreFaultPlan {
        StoreFaultPlan {
            seed,
            specs: vec![StoreFaultSpec {
                class,
                rate_ppm: 1_000_000,
                max_events: 1,
            }],
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.iter().all(|s| s.rate_ppm == 0)
    }
}

/// Per-class injection tallies, surfaced through `StoreStats` so a store
/// that served traffic *despite* injected faults reports exactly what was
/// done to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreFaultCounts {
    /// Torn writes injected.
    pub truncate_write: u64,
    /// Read-side bit flips injected.
    pub bit_flip_read: u64,
    /// Rename failures injected.
    pub rename_fail: u64,
    /// Stale-version seals injected.
    pub stale_version: u64,
}

impl StoreFaultCounts {
    /// Total injections across all classes.
    pub fn total(&self) -> u64 {
        self.truncate_write + self.bit_flip_read + self.rename_fail + self.stale_version
    }

    fn record(&mut self, class: StoreFaultClass) {
        match class {
            StoreFaultClass::TruncateWrite => self.truncate_write += 1,
            StoreFaultClass::BitFlipRead => self.bit_flip_read += 1,
            StoreFaultClass::RenameFail => self.rename_fail += 1,
            StoreFaultClass::StaleVersion => self.stale_version += 1,
        }
    }
}

/// The store's injection state: a private RNG stream plus per-class rate,
/// remaining budget, and tallies (same skeleton as the simulator's
/// injector).
#[derive(Debug, Clone)]
pub(crate) struct Injector {
    rng: SplitMix64,
    rate: [u32; 4],
    left: [u32; 4], // u32::MAX = unlimited
    pub(crate) counts: StoreFaultCounts,
}

impl Injector {
    pub(crate) fn new(plan: &StoreFaultPlan) -> Injector {
        let mut rate = [0u32; 4];
        let mut left = [u32::MAX; 4];
        for spec in &plan.specs {
            let i = spec.class.index();
            rate[i] = spec.rate_ppm;
            left[i] = if spec.max_events == 0 {
                u32::MAX
            } else {
                spec.max_events
            };
        }
        Injector {
            rng: SplitMix64::salted(plan.seed, 0x5704_e0fa_1117),
            rate,
            left,
            counts: StoreFaultCounts::default(),
        }
    }

    /// Decide one injection opportunity for `class`; records the event and
    /// decrements the budget when it fires.
    pub(crate) fn roll(&mut self, class: StoreFaultClass) -> bool {
        let i = class.index();
        if self.rate[i] == 0 || self.left[i] == 0 {
            return false;
        }
        if !self.rng.chance_ppm(self.rate[i]) {
            return false;
        }
        if self.left[i] != u32::MAX {
            self.left[i] -= 1;
        }
        self.counts.record(class);
        if muir_core::telemetry::enabled() {
            muir_core::telemetry::count(&format!("store.fault.{}", class.name()), 1);
        }
        true
    }

    /// Auxiliary randomness for a fired event (bit index, cut point, …).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.rng.below(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_plan_fires_exactly_once() {
        let plan = StoreFaultPlan::single(StoreFaultClass::BitFlipRead, 9);
        let mut inj = Injector::new(&plan);
        let fired: usize = (0..100)
            .filter(|_| inj.roll(StoreFaultClass::BitFlipRead))
            .count();
        assert_eq!(fired, 1);
        assert_eq!(inj.counts.bit_flip_read, 1);
        assert_eq!(inj.counts.total(), 1);
        // Unarmed classes never fire.
        assert!(!(0..100).any(|_| inj.roll(StoreFaultClass::RenameFail)));
    }

    #[test]
    fn plans_reproduce() {
        let plan = StoreFaultPlan {
            seed: 77,
            specs: vec![StoreFaultSpec {
                class: StoreFaultClass::TruncateWrite,
                rate_ppm: 300_000,
                max_events: 0,
            }],
        };
        let pattern = || -> Vec<bool> {
            let mut inj = Injector::new(&plan);
            (0..64)
                .map(|_| inj.roll(StoreFaultClass::TruncateWrite))
                .collect()
        };
        assert_eq!(pattern(), pattern());
    }
}
