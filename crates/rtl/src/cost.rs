//! Area, power, and frequency estimation — the synthesis stand-in behind
//! Table 2.
//!
//! The model is additive over the structural graph (the same property real
//! synthesis has at the granularity the paper reports): each function unit
//! contributes ALMs/registers/DSPs on the FPGA and µm²/mW on the ASIC;
//! frequency comes from the worst pipeline-stage delay, with the Cilk
//! task-queue penalty (§5.1: Cilk accelerators reach only 200–300 MHz
//! because queueing/buffering logic lands on the critical path).

use muir_core::accel::Accelerator;
use muir_core::compiled::CompiledAccel;
use muir_core::hw;
use muir_core::node::{NodeKind, OpKind};
use muir_core::structure::StructureKind;
use muir_core::Type;
use muir_mir::instr::{BinOp, TensorOp, UnOp};

/// Target technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tech {
    /// Intel Arria-10-class FPGA.
    FpgaArria10,
    /// UMC-28nm-class ASIC.
    Asic28,
}

/// Synthesis-quality estimate (Table 2's columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Clock frequency (MHz).
    pub fmax_mhz: f64,
    /// Power (mW).
    pub power_mw: f64,
    /// FPGA adaptive logic modules.
    pub alms: u64,
    /// Registers.
    pub regs: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// ASIC area (mm², 28 nm).
    pub area_mm2: f64,
}

impl CostEstimate {
    /// Scalar area score for design-space ranking: FPGA resources folded
    /// into one integer (ALMs + registers/8 + 120·DSPs — DSP blocks are
    /// the scarce resource on an Arria-10-class part, so they weigh like
    /// the ~120 ALMs a soft multiplier would cost). Integer on purpose:
    /// Pareto dominance over `(cycles, area_score)` pairs stays exact and
    /// platform-independent, which the DSE determinism contract needs.
    pub fn area_score(&self) -> u64 {
        self.alms + self.regs / 8 + 120 * self.dsps
    }
}

/// Per-op FPGA resources: (ALMs, regs, DSPs).
fn op_resources(op: OpKind, ty: Type) -> (u64, u64, u64) {
    let lanes = ty.elems() as u64;
    let base = match op {
        OpKind::Bin(b) => match b {
            BinOp::Add | BinOp::Sub => (35, 40, 0),
            BinOp::Mul => (25, 60, 1),
            BinOp::Div | BinOp::Rem => (300, 350, 0),
            BinOp::And | BinOp::Or | BinOp::Xor => (16, 20, 0),
            BinOp::Shl | BinOp::LShr | BinOp::AShr => (45, 40, 0),
            BinOp::FAdd | BinOp::FSub => (180, 220, 0),
            BinOp::FMul => (60, 150, 1),
            BinOp::FDiv => (450, 500, 1),
        },
        OpKind::Un(u) => match u {
            UnOp::FNeg => (10, 20, 0),
            UnOp::Relu => (20, 25, 0),
            UnOp::Exp | UnOp::Sqrt => (500, 600, 2),
        },
        OpKind::Cmp(_) => (30, 25, 0),
        OpKind::Select => (20, 25, 0),
        OpKind::Cast(_) => (40, 45, 0),
        OpKind::Tensor(t, shape) => {
            let e = shape.elems() as u64;
            return match t {
                // Figure 14's reduction-tree multiplier: e muls + adds,
                // DSP-mapped.
                TensorOp::MatMul => (60 * e, 120 * e, 2 * e),
                TensorOp::Conv => (45 * e, 90 * e, e),
                // Adder tree only: no DSPs.
                TensorOp::Reduce => (24 * e, 40 * e, 0),
                // Exp LUTs dominate; divider uses DSPs.
                TensorOp::Softmax => (80 * e, 120 * e, 2 * e),
                TensorOp::Mul => (25 * e, 60 * e, e),
                TensorOp::Add | TensorOp::Relu => (30 * e, 45 * e, 0),
            };
        }
    };
    (base.0 * lanes, base.1 * lanes, base.2 * lanes)
}

/// Per-node resources including handshake/control overhead.
fn node_resources(kind: &NodeKind, ty: Type) -> (u64, u64, u64) {
    let bits = ty.bits() as u64;
    match kind {
        NodeKind::Compute(op) => {
            let (a, r, d) = op_resources(*op, ty);
            (a + 10, r + bits / 2, d)
        }
        NodeKind::Fused(plan) => {
            let mut acc = (10u64, bits / 2, 0u64);
            for s in &plan.steps {
                let (a, r, d) = op_resources(s.op, s.ty);
                acc.0 += a;
                // Interior handshake registers are eliminated: only the
                // re-timed stage registers remain (half the per-op regs).
                acc.1 += r / 2;
                acc.2 += d;
            }
            acc
        }
        NodeKind::Load { .. } | NodeKind::Store { .. } => (60 + bits / 4, 80 + bits / 2, 0),
        NodeKind::TaskCall { .. } => (50, 70, 0),
        NodeKind::Merge => (15 + bits / 8, 20 + bits, 0),
        NodeKind::FusedAcc { op } => {
            let (a, r, d) = op_resources(*op, ty);
            (a + 20, r + bits, d)
        }
        NodeKind::Input { .. } | NodeKind::Const(_) => (6, 10 + bits / 2, 0),
        NodeKind::IndVar => (40, 70, 0),
        NodeKind::Output => (10, 20 + bits / 2, 0),
    }
}

/// Worst per-stage combinational delay (ns, FPGA reference) over the whole
/// accelerator.
fn critical_stage_delay(acc: &Accelerator) -> f64 {
    let mut worst = 1.6f64; // control/handshake floor
    for task in &acc.tasks {
        for n in &task.dataflow.nodes {
            let d = match &n.kind {
                NodeKind::Compute(op) => {
                    let t = hw::op_timing(*op, n.ty);
                    let full = hw::op_delay_ns(*op, n.ty);
                    if t.latency > 1 {
                        // Internally pipelined unit: balanced stages.
                        (full / t.latency as f64).max(1.4)
                    } else {
                        full
                    }
                }
                NodeKind::Fused(plan) => {
                    let t = hw::fused_timing(plan, hw::BASELINE_PERIOD_NS);
                    hw::fused_path_delay(plan) / t.latency as f64
                }
                _ => 1.6,
            };
            worst = worst.max(d);
        }
    }
    worst
}

/// Whether the design contains Cilk-style spawn interfaces (asynchronous
/// task queues on the critical path, §5.1).
fn has_spawns(acc: &Accelerator) -> bool {
    acc.tasks.iter().any(|t| {
        t.dataflow
            .nodes
            .iter()
            .any(|n| matches!(n.kind, NodeKind::TaskCall { spawn: true, .. }))
    })
}

/// Estimate synthesis quality for a sealed accelerator artifact on `tech`.
///
/// Taking [`CompiledAccel`] (not the mutable graph) means cost estimation
/// shares the verified-once artifact with the simulator and RTL emitter —
/// an unverified graph cannot reach this walk, and design-space sweeps that
/// simulate and cost the same candidate pay a single lowering.
pub fn estimate(comp: &CompiledAccel, tech: Tech) -> CostEstimate {
    let acc = comp.accel();
    let mut alms = 0u64;
    let mut regs = 0u64;
    let mut dsps = 0u64;
    for task in &acc.tasks {
        let tiles = task.tiles.max(1) as u64;
        let (mut ta, mut tr, mut td) = (0u64, 0u64, 0u64);
        for n in &task.dataflow.nodes {
            let (a, r, d) = node_resources(&n.kind, n.ty);
            ta += a;
            tr += r;
            td += d;
        }
        // Edges: one pipeline register of the data width each.
        for e in &task.dataflow.edges {
            let w = task.dataflow.nodes[e.src.0 as usize].ty.bits() as u64;
            tr += w.max(8) / 4;
            ta += 3;
        }
        for j in &task.dataflow.junctions {
            let clients = (j.readers.len() + j.writers.len()) as u64;
            ta += 25 * clients;
            tr += 15 * clients;
        }
        alms += ta * tiles;
        regs += tr * tiles;
        dsps += td * tiles;
        // Issue queue.
        alms += 20 * task.queue_depth as u64;
        regs += 40 * task.queue_depth as u64;
    }
    for s in &acc.structures {
        match &s.kind {
            StructureKind::Scratchpad { banks, .. } => {
                alms += 40 * *banks as u64;
                regs += 60 * *banks as u64;
            }
            StructureKind::Cache { banks, .. } => {
                alms += 250 * *banks as u64 + 150;
                regs += 300 * *banks as u64 + 200;
            }
            StructureKind::Dram { .. } => {
                alms += 120;
                regs += 200;
            }
        }
    }

    let mut stage = critical_stage_delay(acc);
    if has_spawns(acc) {
        // Task queue grant logic chains into the datapath.
        stage += 1.2;
    }
    match tech {
        Tech::FpgaArria10 => {
            let fmax = (1000.0 / stage).min(500.0);
            // Dynamic power ∝ resources × frequency + static.
            let dynamic =
                (alms as f64 * 0.04 + regs as f64 * 0.012 + dsps as f64 * 2.5) * (fmax / 400.0);
            let power = 380.0 + dynamic;
            CostEstimate {
                fmax_mhz: fmax,
                power_mw: power,
                alms,
                regs,
                dsps,
                area_mm2: 0.0,
            }
        }
        Tech::Asic28 => {
            // Standard-cell delay ≈ 0.33× FPGA fabric; FP macros cap lower.
            let scaled = stage * 0.33;
            let cap_ghz = if acc_has_fp(acc) { 1.66 } else { 2.5 };
            let fmax = (1000.0 / scaled).min(cap_ghz * 1000.0);
            // Area: ALM ≈ 420 µm², DSP ≈ 5600 µm², reg ≈ 60 µm² at 28 nm.
            let um2 = alms as f64 * 420.0 + regs as f64 * 60.0 + dsps as f64 * 5600.0;
            let area = um2 / 1.0e6 * 10.0; // ×10 wire/overhead factor, reported like the paper
            let power = (um2 / 1.0e6) * (fmax / 1000.0) * 9.0 + 4.0;
            CostEstimate {
                fmax_mhz: fmax,
                power_mw: power,
                alms,
                regs,
                dsps,
                area_mm2: area,
            }
        }
    }
}

fn acc_has_fp(acc: &Accelerator) -> bool {
    acc.tasks
        .iter()
        .flat_map(|t| t.dataflow.nodes.iter())
        .any(|n| n.ty.is_float())
}

#[cfg(test)]
mod tests {
    use super::*;
    use muir_frontend::{translate, FrontendConfig};
    use muir_mir::builder::FunctionBuilder;
    use muir_mir::instr::ValueRef;
    use muir_mir::module::Module;
    use muir_mir::types::ScalarType;

    fn build(fp: bool, cilk: bool) -> Accelerator {
        let mut m = Module::new("cost");
        let elem = if fp { ScalarType::F32 } else { ScalarType::I32 };
        let a = m.add_mem_object("a", elem, 64);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        let body = |b: &mut FunctionBuilder, i: ValueRef| {
            let v = b.load(a, i);
            let w = if fp {
                b.fmul(v, ValueRef::f32(2.0))
            } else {
                b.add(v, ValueRef::int(1))
            };
            b.store(a, i, w);
        };
        if cilk {
            b.par_for(0, 64, 1, body);
        } else {
            b.for_loop(0, ValueRef::int(64), 1, body);
        }
        b.ret(None);
        m.add_function(b.finish());
        translate(&m, &FrontendConfig::default()).unwrap()
    }

    fn seal(acc: &Accelerator) -> CompiledAccel {
        CompiledAccel::compile(acc).expect("frontend graphs verify")
    }

    #[test]
    fn fpga_numbers_in_table2_band() {
        let comp = seal(&build(true, false));
        let e = estimate(&comp, Tech::FpgaArria10);
        assert!(e.fmax_mhz > 150.0 && e.fmax_mhz <= 500.0, "{e:?}");
        assert!(e.power_mw > 300.0 && e.power_mw < 2500.0, "{e:?}");
        assert!(e.alms > 100, "{e:?}");
        assert!(e.regs > e.alms / 2, "{e:?}");
    }

    #[test]
    fn asic_is_faster_and_lower_power() {
        let comp = seal(&build(true, false));
        let f = estimate(&comp, Tech::FpgaArria10);
        let a = estimate(&comp, Tech::Asic28);
        assert!(
            a.fmax_mhz > 2.0 * f.fmax_mhz,
            "asic {} vs fpga {}",
            a.fmax_mhz,
            f.fmax_mhz
        );
        assert!(
            a.power_mw < f.power_mw / 3.0,
            "asic {} vs fpga {}",
            a.power_mw,
            f.power_mw
        );
        assert!(a.area_mm2 > 0.0);
    }

    #[test]
    fn fp_designs_cap_asic_frequency() {
        let fp = estimate(&seal(&build(true, false)), Tech::Asic28);
        let int = estimate(&seal(&build(false, false)), Tech::Asic28);
        assert!(fp.fmax_mhz <= 1660.0 + 1.0);
        assert!(int.fmax_mhz > fp.fmax_mhz);
    }

    #[test]
    fn cilk_designs_clock_lower() {
        let plain = estimate(&seal(&build(false, false)), Tech::FpgaArria10);
        let cilk = estimate(&seal(&build(false, true)), Tech::FpgaArria10);
        assert!(
            cilk.fmax_mhz < plain.fmax_mhz,
            "cilk {} vs plain {}",
            cilk.fmax_mhz,
            plain.fmax_mhz
        );
    }

    #[test]
    fn dsps_count_multipliers() {
        let comp = seal(&build(true, false));
        let e = estimate(&comp, Tech::FpgaArria10);
        assert!(e.dsps >= 1);
    }

    #[test]
    fn area_score_is_monotone_in_resources() {
        let comp = seal(&build(true, false));
        let e = estimate(&comp, Tech::FpgaArria10);
        assert_eq!(e.area_score(), e.alms + e.regs / 8 + 120 * e.dsps);
        let mut bigger = e;
        bigger.alms += 1;
        assert!(bigger.area_score() > e.area_score());
        let mut dsp = e;
        dsp.dsps += 1;
        assert_eq!(dsp.area_score(), e.area_score() + 120);
    }

    #[test]
    fn tiling_scales_area() {
        let mut acc = build(true, false);
        let base = estimate(&seal(&acc), Tech::FpgaArria10);
        for t in acc.task_ids().collect::<Vec<_>>() {
            acc.task_mut(t).tiles = 4;
        }
        // The sealed artifact is immutable: a graph mutation requires a
        // fresh compile (with a new content hash) to become visible.
        let tiled = estimate(&seal(&acc), Tech::FpgaArria10);
        assert!(tiled.alms > 2 * base.alms);
    }
}
