//! FIRRTL-like circuit lowering for the §7 productivity study.
//!
//! FIRRTL sits at the circuit level: muxes, registers, arbiters, wires. To
//! quantify how concisely μIR expresses architectural change (Table 4), we
//! lower each μIR component to its primitive-cell expansion and count the
//! cells/wires a designer would have to touch to effect the same three
//! transformations directly at circuit level.

use muir_core::accel::{Accelerator, TaskId};
use muir_core::dataflow::{Buffering, Dataflow, EdgeKind};
use muir_core::hw;
use muir_core::node::{Node, NodeKind};
use muir_core::structure::StructureKind;
use muir_mir::instr::MemObjId;

/// Primitive cell kinds in the lowered circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Combinational function (ALU/LUT cluster).
    Alu,
    /// Pipeline or state register.
    Reg,
    /// Multiplexer.
    Mux,
    /// Arbitration/grant logic.
    Arbiter,
    /// Ready/valid handshake controller.
    Handshake,
    /// RAM macro (BRAM/SRAM block).
    Ram,
    /// Queue storage cell.
    Queue,
    /// External port glue (AXI, spawn/sync interfaces).
    Port,
}

/// A lowered circuit: cell population and wire count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CircuitGraph {
    /// Cells by kind.
    pub cells: Vec<(CellKind, usize)>,
    /// Point-to-point wires (data + ready + valid).
    pub wires: usize,
}

impl CircuitGraph {
    fn add(&mut self, kind: CellKind, n: usize) {
        if n == 0 {
            return;
        }
        if let Some(slot) = self.cells.iter_mut().find(|(k, _)| *k == kind) {
            slot.1 += n;
        } else {
            self.cells.push((kind, n));
        }
    }

    /// Total cell count.
    pub fn cell_count(&self) -> usize {
        self.cells.iter().map(|(_, n)| n).sum()
    }

    /// Total graph elements (cells + wires), Table 4's size metric.
    pub fn total_elements(&self) -> usize {
        self.cell_count() + self.wires
    }

    fn merge(&mut self, other: &CircuitGraph) {
        for &(k, n) in &other.cells {
            self.add(k, n);
        }
        self.wires += other.wires;
    }

    fn scale(&self, factor: usize) -> CircuitGraph {
        CircuitGraph {
            cells: self.cells.iter().map(|&(k, n)| (k, n * factor)).collect(),
            wires: self.wires * factor,
        }
    }
}

/// Cells/wires one dataflow node expands to.
fn lower_node(node: &Node) -> CircuitGraph {
    let mut g = CircuitGraph::default();
    let t = hw::node_timing(&node.kind, node.ty, hw::BASELINE_PERIOD_NS);
    match &node.kind {
        NodeKind::Compute(_) => {
            g.add(CellKind::Alu, 1);
            g.add(CellKind::Reg, t.latency as usize);
            g.add(CellKind::Handshake, 2);
            g.wires += 6;
        }
        NodeKind::Fused(plan) => {
            g.add(CellKind::Alu, plan.op_count());
            g.add(CellKind::Reg, t.latency as usize);
            g.add(CellKind::Handshake, 2);
            g.wires += 4 + plan.arity as usize;
        }
        NodeKind::Load { .. } | NodeKind::Store { .. } => {
            // Address gen, request port, response buffer (databox slice),
            // handshake pair.
            g.add(CellKind::Alu, 1);
            g.add(CellKind::Port, 2);
            g.add(CellKind::Reg, 2);
            g.add(CellKind::Handshake, 2);
            g.wires += 10;
        }
        NodeKind::Merge => {
            g.add(CellKind::Mux, 1);
            g.add(CellKind::Reg, 1);
            g.add(CellKind::Handshake, 2);
            g.wires += 6;
        }
        NodeKind::FusedAcc { .. } => {
            g.add(CellKind::Alu, 1);
            g.add(CellKind::Mux, 1);
            g.add(CellKind::Reg, t.latency as usize);
            g.add(CellKind::Handshake, 2);
            g.wires += 6;
        }
        NodeKind::TaskCall { .. } => {
            g.add(CellKind::Port, 2);
            g.add(CellKind::Handshake, 2);
            g.wires += 8;
        }
        NodeKind::Input { .. } | NodeKind::Const(_) | NodeKind::IndVar => {
            g.add(CellKind::Reg, 1);
            g.add(CellKind::Handshake, 1);
            g.wires += 3;
        }
        NodeKind::Output => {
            g.add(CellKind::Reg, 1);
            g.add(CellKind::Handshake, 1);
            g.wires += 3;
        }
    }
    g
}

/// Cells/wires of one task's dataflow (a single execution tile).
pub fn lower_dataflow(df: &Dataflow) -> CircuitGraph {
    let mut g = CircuitGraph::default();
    for n in &df.nodes {
        g.merge(&lower_node(n));
    }
    for e in &df.edges {
        match e.kind {
            EdgeKind::Data | EdgeKind::Order => {
                let regs = match e.buffering {
                    Buffering::Handshake => 1,
                    Buffering::Fifo(d) => d as usize,
                };
                g.add(CellKind::Reg, regs);
                g.wires += 3;
            }
            EdgeKind::Feedback => {
                g.add(CellKind::Reg, 1);
                g.wires += 3;
            }
        }
    }
    for j in &df.junctions {
        let clients = j.readers.len() + j.writers.len();
        g.add(CellKind::Mux, clients);
        g.add(
            CellKind::Arbiter,
            (j.read_ports + j.write_ports) as usize * 2,
        );
        g.wires += clients * 4;
    }
    g
}

/// Lower the whole accelerator.
pub fn lower_to_circuit(acc: &Accelerator) -> CircuitGraph {
    let mut g = CircuitGraph::default();
    for task in &acc.tasks {
        let tile = lower_dataflow(&task.dataflow);
        g.merge(&tile.scale(task.tiles.max(1) as usize));
        // Issue queue + (if tiled) crossbar.
        g.add(CellKind::Queue, task.queue_depth as usize * 2);
        if task.tiles > 1 {
            g.add(CellKind::Arbiter, task.tiles as usize * 2);
            g.wires += task.tiles as usize * 4;
        }
        g.wires += 4;
    }
    for s in &acc.structures {
        match &s.kind {
            StructureKind::Scratchpad { banks, .. } => {
                g.add(CellKind::Ram, *banks as usize);
                g.add(CellKind::Arbiter, *banks as usize);
                g.wires += *banks as usize * 4;
            }
            StructureKind::Cache { banks, .. } => {
                g.add(CellKind::Ram, *banks as usize + 1); // data + tags
                g.add(CellKind::Arbiter, *banks as usize);
                g.add(CellKind::Port, 2);
                g.wires += *banks as usize * 4 + 6;
            }
            StructureKind::Dram { .. } => {
                g.add(CellKind::Port, 4);
                g.wires += 8;
            }
        }
    }
    for _c in &acc.task_conns {
        g.add(CellKind::Queue, 2);
        g.wires += 6;
    }
    for _m in &acc.mem_conns {
        g.wires += 4;
    }
    g
}

/// FIRRTL-level cost of changing a task from 1 to 2 execution tiles: the
/// designer duplicates the tile subcircuit and builds the crossbar by hand.
pub fn tiling_circuit_delta(acc: &Accelerator, task: TaskId) -> (usize, usize) {
    let tile = lower_dataflow(&acc.task(task).dataflow);
    let crossbar_cells = 4;
    let crossbar_wires = 8;
    (
        tile.cell_count() + crossbar_cells,
        tile.wires + crossbar_wires,
    )
}

/// FIRRTL-level cost of adding one more SRAM for `obj`: instantiate the
/// RAM + controller and re-route every memory op on the object.
pub fn sram_circuit_delta(acc: &Accelerator, obj: MemObjId) -> (usize, usize) {
    let mut mem_nodes = 0;
    for t in &acc.tasks {
        mem_nodes += t
            .dataflow
            .nodes
            .iter()
            .filter(|n| match n.kind {
                NodeKind::Load { obj: o, .. } | NodeKind::Store { obj: o, .. } => o == obj,
                _ => false,
            })
            .count();
    }
    // RAM macro + bank controller + arbiter port per rerouted client, plus
    // the rewired request/response wiring of each memory op.
    let cells = 2 + 2 * mem_nodes.max(1);
    let wires = 6 + 10 * mem_nodes.max(1);
    (cells, wires)
}

/// FIRRTL-level cost of the fusions present in an already-fused
/// accelerator: the cells of the primitive units that were ripped out plus
/// the new fused unit's cells.
pub fn fusion_circuit_delta(acc: &Accelerator) -> (usize, usize) {
    let mut cells = 0;
    let mut wires = 0;
    for task in &acc.tasks {
        for n in &task.dataflow.nodes {
            if let NodeKind::Fused(plan) = &n.kind {
                let k = plan.op_count();
                // Removed: k primitive units (ALU + ~1 reg + 2 handshake
                // each) and k-1 interior handshake connections; added: the
                // fused unit.
                cells += k * 4 + lower_node(n).cell_count();
                wires += k * 6 + (k - 1) * 3;
            }
        }
    }
    (cells, wires)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muir_frontend::{translate, FrontendConfig};
    use muir_mir::builder::FunctionBuilder;
    use muir_mir::instr::ValueRef;
    use muir_mir::module::Module;
    use muir_mir::types::ScalarType;

    fn sample() -> Accelerator {
        let mut m = Module::new("circ");
        let a = m.add_mem_object("a", ScalarType::F32, 64);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(64), 1, |b, i| {
            let v = b.load(a, i);
            let w = b.fmul(v, ValueRef::f32(2.0));
            let x = b.fadd(w, ValueRef::f32(1.0));
            b.store(a, i, x);
        });
        b.ret(None);
        m.add_function(b.finish());
        translate(&m, &FrontendConfig::default()).unwrap()
    }

    #[test]
    fn circuit_is_much_bigger_than_uir() {
        let acc = sample();
        let circ = lower_to_circuit(&acc);
        let uir = muir_core::stats::graph_stats(&acc);
        let ratio = circ.total_elements() as f64 / uir.total_elements() as f64;
        // The paper reports 8.4–12.4×; our factors land in the same band.
        assert!(ratio > 4.0, "ratio {ratio}");
        assert!(ratio < 25.0, "ratio {ratio}");
    }

    #[test]
    fn tiling_at_circuit_level_costs_a_whole_tile() {
        let acc = sample();
        let loop_task = acc
            .task_ids()
            .find(|&t| acc.task(t).kind.is_loop())
            .unwrap();
        let (cells, wires) = tiling_circuit_delta(&acc, loop_task);
        // μIR: 1 node, 4 edges. FIRRTL: dozens.
        assert!(cells > 20, "{cells}");
        assert!(wires > 40, "{wires}");
    }

    #[test]
    fn sram_delta_scales_with_memory_ops() {
        let acc = sample();
        let (cells, wires) = sram_circuit_delta(&acc, MemObjId(0));
        assert!(cells >= 6);
        assert!(wires >= 26);
        let (c2, w2) = sram_circuit_delta(&acc, MemObjId(99)); // no ops
        assert!(c2 < cells && w2 < wires);
    }

    #[test]
    fn tiles_multiply_circuit_size() {
        let mut acc = sample();
        let base = lower_to_circuit(&acc).total_elements();
        for t in acc.task_ids().collect::<Vec<_>>() {
            acc.task_mut(t).tiles = 4;
        }
        let tiled = lower_to_circuit(&acc).total_elements();
        assert!(tiled > base * 3, "{tiled} vs {base}");
    }

    #[test]
    fn fusion_delta_counts_fused_plans() {
        let mut acc = sample();
        assert_eq!(fusion_circuit_delta(&acc), (0, 0));
        // Fuse with a generous budget so the fmul+fadd chain merges.
        muir_uopt_like_fuse(&mut acc);
        let (cells, wires) = fusion_circuit_delta(&acc);
        assert!(cells > 0 && wires > 0);
    }

    // Minimal local fusion stand-in to avoid a dev-dependency cycle: mark
    // the fmul+fadd pair as one fused node by hand.
    fn muir_uopt_like_fuse(acc: &mut Accelerator) {
        use muir_core::node::{FusedInput, FusedPlan, FusedStep, OpKind};
        use muir_core::Type;
        use muir_mir::instr::BinOp;
        let t = acc
            .task_ids()
            .find(|&t| acc.task(t).kind.is_loop())
            .unwrap();
        let df = &mut acc.task_mut(t).dataflow;
        df.nodes.push(Node::new(
            "fused_demo",
            NodeKind::Fused(FusedPlan {
                arity: 2,
                steps: vec![
                    FusedStep {
                        op: OpKind::Bin(BinOp::FMul),
                        ty: Type::F32,
                        inputs: vec![FusedInput::External(0), FusedInput::External(1)],
                    },
                    FusedStep {
                        op: OpKind::Bin(BinOp::FAdd),
                        ty: Type::F32,
                        inputs: vec![FusedInput::Step(0), FusedInput::External(1)],
                    },
                ],
            }),
            Type::F32,
        ));
        // Left dangling deliberately: fusion_circuit_delta only reads plans.
    }
}
