//! `muir-rtl` — Stage 3 of the toolflow: lowering μIR out of the graph
//! world.
//!
//! * [`chisel`] emits the Chisel-like structural RTL the paper
//!   auto-generates (Figures 4 and 6): an `Accelerator` class wiring task
//!   blocks and structures with `<||>` / `<==>` connections, and one
//!   `TaskModule` class per task block with node instantiations and
//!   dataflow connections.
//! * [`circuit`] lowers μIR to a FIRRTL-like flat circuit graph of
//!   primitive cells (registers, muxes, arbiters, wires). Replaying μopt
//!   transformations at this level and counting the touched cells/wires
//!   reproduces the Table 4 productivity comparison.
//! * [`cost`] is the synthesis stand-in: an additive area/power model and a
//!   critical-path frequency model over the same structural graph, with
//!   FPGA (Arria-10-class) and ASIC (28 nm-class) technology tables —
//!   Table 2's columns.

pub mod chisel;
pub mod circuit;
pub mod cost;

pub use chisel::emit_chisel;
pub use circuit::{lower_to_circuit, CircuitGraph};
pub use cost::{estimate, CostEstimate, Tech};
