//! Chisel-like RTL emission, mirroring the paper's auto-generated listings
//! (Figure 4: whole-accelerator class; Figure 6: per-task `TaskModule`).
//!
//! Computer architects never edit this output — it exists to demonstrate
//! the lowering path and to make generated designs inspectable.

use muir_core::accel::{Accelerator, TaskKind};
use muir_core::compiled::CompiledAccel;
use muir_core::dataflow::EdgeKind;
use muir_core::node::NodeKind;
use muir_core::structure::StructureKind;
use std::fmt::Write;

/// Emit the full Chisel-like source for a sealed accelerator artifact.
///
/// RTL emission consumes the same verified-once [`CompiledAccel`] the
/// simulator and cost model use, so emitted RTL always corresponds to a
/// graph that passed verification, and the header records the artifact's
/// content hash for provenance.
pub fn emit_chisel(comp: &CompiledAccel) -> String {
    let acc = comp.accel();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// Auto-generated from muIR graph `{}` (artifact {:016x}) — do not edit.",
        acc.name,
        comp.content_hash()
    );
    let _ = writeln!(out, "package accel\n");
    for (ti, task) in acc.tasks.iter().enumerate() {
        emit_task_module(&mut out, acc, ti);
        let _ = ti;
        let _ = task;
    }
    emit_top(&mut out, acc);
    out
}

fn class_name(acc: &Accelerator, ti: usize) -> String {
    let raw = &acc.tasks[ti].name;
    let mut s = String::new();
    let mut cap = true;
    for c in raw.chars() {
        if c.is_alphanumeric() {
            s.push(if cap { c.to_ascii_uppercase() } else { c });
            cap = false;
        } else {
            cap = true;
        }
    }
    if s.is_empty() {
        format!("Task{ti}")
    } else {
        s
    }
}

fn emit_task_module(out: &mut String, acc: &Accelerator, ti: usize) {
    let task = &acc.tasks[ti];
    let df = &task.dataflow;
    let cname = class_name(acc, ti);
    let _ = writeln!(
        out,
        "class {cname}(val p: Parameters) extends TaskModule {{"
    );
    match &task.kind {
        TaskKind::Loop { spec, serial } => {
            let _ = writeln!(
                out,
                "  // loop task: for (i = {:?}; i < {:?}; i += {}){}",
                spec.lo,
                spec.hi,
                spec.step,
                if *serial {
                    "  [serial]"
                } else {
                    "  [pipelined]"
                }
            );
        }
        TaskKind::Region => {
            let _ = writeln!(out, "  // region task");
        }
    }
    let _ = writeln!(
        out,
        "  // tiles = {}, issueQueue = {}",
        task.tiles, task.queue_depth
    );
    let _ = writeln!(out, "\n  /*------- Dataflow specification -------*/");
    for (ni, node) in df.nodes.iter().enumerate() {
        let decl = match &node.kind {
            NodeKind::Input { index } => format!("new LiveIn(idx = {index})"),
            NodeKind::IndVar => "new IterationSequencer()".to_string(),
            NodeKind::Const(c) => format!("new ConstNode(value = {c})"),
            NodeKind::Compute(op) => format!("new ComputeNode(opCode = \"{op}\")"),
            NodeKind::Fused(plan) => format!("new FusedNode(ops = {})", plan.op_count()),
            NodeKind::Merge => "new LoopCarryMerge()".to_string(),
            NodeKind::FusedAcc { op } => {
                format!("new AccumulatorUnit(opCode = \"{}\")", op.mnemonic())
            }
            NodeKind::Load { obj, .. } => format!("new Load(space = {obj})"),
            NodeKind::Store { obj, .. } => format!("new Store(space = {obj})"),
            NodeKind::TaskCall { callee, spawn, .. } => {
                let how = if *spawn { "Spawn" } else { "Call" };
                format!(
                    "new Task{how}(callee = \"{}\")",
                    class_name(acc, callee.0 as usize)
                )
            }
            NodeKind::Output => "new LiveOut()".to_string(),
        };
        let _ = writeln!(out, "  val n{ni} = {decl} ({})", node.ty);
    }
    let _ = writeln!(out, "\n  /*------------ Connections ------------*/");
    for e in &df.edges {
        match e.kind {
            EdgeKind::Data => {
                let _ = writeln!(
                    out,
                    "  n{}.io.In({}) <> n{}.io.Out({})",
                    e.dst.0, e.dst_port, e.src.0, e.src_port
                );
            }
            EdgeKind::Feedback => {
                let _ = writeln!(
                    out,
                    "  n{}.io.Feedback <> n{}.io.Out({})  // loop-carried",
                    e.dst.0, e.src.0, e.src_port
                );
            }
            EdgeKind::Order => {
                let _ = writeln!(out, "  n{}.io.OrderIn <> n{}.io.Done", e.dst.0, e.src.0);
            }
        }
    }
    let _ = writeln!(out, "\n  /*------------ Junctions --------------*/");
    for (ji, j) in df.junctions.iter().enumerate() {
        let _ = writeln!(
            out,
            "  val junc{ji} = new Junction(R = {}, W = {})",
            j.read_ports, j.write_ports
        );
        for (k, r) in j.readers.iter().enumerate() {
            let _ = writeln!(out, "  junc{ji}.io.Read({k}) <==> n{}.io.Mem", r.0);
        }
        for (k, w) in j.writers.iter().enumerate() {
            let _ = writeln!(out, "  junc{ji}.io.Write({k}) <==> n{}.io.Mem", w.0);
        }
    }
    let _ = writeln!(out, "}}\n");
}

fn emit_top(out: &mut String, acc: &Accelerator) {
    let _ = writeln!(
        out,
        "class Accelerator(val p: Parameters) extends architecture {{"
    );
    let _ = writeln!(out, "  /*------------ Task Blocks -------------*/");
    for ti in 0..acc.tasks.len() {
        let _ = writeln!(
            out,
            "  val task_{ti} = new {}()  // tiles = {}",
            class_name(acc, ti),
            acc.tasks[ti].tiles
        );
    }
    let _ = writeln!(out, "\n  /*------------ Structures -------------*/");
    for (si, s) in acc.structures.iter().enumerate() {
        let decl = match &s.kind {
            StructureKind::Scratchpad {
                banks,
                capacity,
                shape,
                ..
            } => {
                let ty = shape
                    .map(|sh| format!("Tensor2D({sh})"))
                    .unwrap_or_else(|| "Scalar".to_string());
                format!("new Scratchpad(banks = {banks}, depth = {capacity}, t = {ty})")
            }
            StructureKind::Cache {
                capacity,
                assoc,
                banks,
                ..
            } => {
                format!(
                    "new Cache(sets = {}, ways = {assoc}, banks = {banks})",
                    capacity / 16
                )
            }
            StructureKind::Dram { .. } => "new AXIPort()".to_string(),
        };
        let _ = writeln!(out, "  val hw_mem_{si} = {decl}  // {}", s.name);
    }
    let _ = writeln!(out, "\n  /*---------- <||> connections ---------*/");
    for c in &acc.task_conns {
        let _ = writeln!(
            out,
            "  task_{}.io.task <||> task_{}.io.spawn({})  // q = {}",
            c.child.0, c.parent.0, c.child.0, c.queue_depth
        );
    }
    let _ = writeln!(out, "\n  /*---------- <==> connections ---------*/");
    for mc in &acc.mem_conns {
        let _ = writeln!(
            out,
            "  hw_mem_{}.io.Mem <==> task_{}.io.junc({})",
            mc.structure.0, mc.task.0, mc.junction.0
        );
    }
    let _ = writeln!(out, "}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use muir_frontend::{translate, FrontendConfig};
    use muir_mir::builder::FunctionBuilder;
    use muir_mir::instr::ValueRef;
    use muir_mir::module::Module;
    use muir_mir::types::ScalarType;

    fn sample_acc() -> Accelerator {
        let mut m = Module::new("chiseldemo");
        let a = m.add_mem_object("a", ScalarType::F32, 64);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(64), 1, |b, i| {
            let v = b.load(a, i);
            let w = b.fmul(v, ValueRef::f32(2.0));
            b.store(a, i, w);
        });
        b.ret(None);
        m.add_function(b.finish());
        translate(&m, &FrontendConfig::default()).unwrap()
    }

    fn seal(acc: &Accelerator) -> CompiledAccel {
        CompiledAccel::compile(acc).expect("frontend graphs verify")
    }

    #[test]
    fn emits_task_modules_and_top() {
        let acc = sample_acc();
        let src = emit_chisel(&seal(&acc));
        assert!(src.contains("extends TaskModule"));
        assert!(src.contains("extends architecture"));
        assert!(src.contains("new ComputeNode(opCode = \"fmul\")"));
        assert!(src.contains("new Load(space = @mem0)"));
        assert!(src.contains("new Junction(R ="));
        assert!(src.contains("<||>"));
        assert!(src.contains("<==>"));
        assert!(src.contains("new Scratchpad("));
        assert!(src.contains("new AXIPort()"));
    }

    #[test]
    fn emits_iteration_sequencer_for_loops() {
        let acc = sample_acc();
        let src = emit_chisel(&seal(&acc));
        assert!(src.contains("IterationSequencer"));
        assert!(src.contains("[pipelined]"));
    }

    #[test]
    fn class_names_are_sanitised() {
        let acc = sample_acc();
        // Loop task is named something like main_loopN.
        let src = emit_chisel(&seal(&acc));
        assert!(src.contains("class Main"), "{src}");
        assert!(!src.contains("class _"));
    }
}

#[cfg(test)]
mod fused_emit_tests {
    use super::*;
    use muir_frontend::{translate, FrontendConfig};
    use muir_mir::builder::FunctionBuilder;
    use muir_mir::instr::ValueRef;
    use muir_mir::module::Module;
    use muir_mir::types::{ScalarType, Type};

    #[test]
    fn accumulator_units_and_fused_nodes_emit() {
        let mut m = Module::new("emit");
        let a = m.add_mem_object("a", ScalarType::I32, 64);
        let out = m.add_mem_object("out", ScalarType::I32, 1);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        let accs = b.for_loop_acc(
            ValueRef::int(0),
            ValueRef::int(64),
            1,
            &[(ValueRef::int(0), Type::I64)],
            |b, i, accs| {
                let x = b.and(i, ValueRef::int(7));
                let y = b.xor(x, ValueRef::int(3));
                let v = b.load(a, y);
                vec![b.add(accs[0], v)]
            },
        );
        b.store(out, ValueRef::int(0), accs[0]);
        b.ret(None);
        m.add_function(b.finish());
        let mut acc = translate(&m, &FrontendConfig::default()).unwrap();
        muir_uopt::PassManager::new()
            .with(muir_uopt::passes::OpFusion::default())
            .run(&mut acc)
            .unwrap();
        let comp = CompiledAccel::compile(&acc).unwrap();
        let src = emit_chisel(&comp);
        assert!(src.contains("AccumulatorUnit(opCode = \"add\")"), "{src}");
        assert!(src.contains("FusedNode(ops = 2)"), "{src}");
    }
}
