//! Statically scheduled HLS execution model (the Figure 9 baseline).
//!
//! Commercial HLS lowers loops to statically scheduled circuits driven by a
//! central FSM (§2.1): each basic block becomes a fixed schedule, innermost
//! loops may be pipelined, nested loops serialize, and every memory access
//! competes for a fixed port budget. We reproduce that model analytically:
//!
//! 1. **Schedule** every basic block: length = max(dependence-critical
//!    path with unit op latencies, resource bound per op class).
//! 2. **Pipeline** innermost loops: II = max(resource II, recurrence II —
//!    a floating-point reduction recurs at the FP-adder latency; a carried
//!    memory dependence serializes the loop).
//! 3. **Account** cycles along the dynamic block trace of the reference
//!    interpreter: a pipelined loop pays its full latency once and II per
//!    subsequent iteration; everything else pays its schedule length.

use muir_mir::analysis::{self, NaturalLoop};
use muir_mir::instr::{BinOp, BlockId, InstrId, Op, UnOp, ValueRef};
use muir_mir::interp::{Interp, InterpError, Memory};
use muir_mir::module::{Function, Module};
use muir_mir::trace::{TraceEvent, TraceSink};
use std::collections::HashMap;

/// FSM resource budget per state (Vivado/LegUp-style defaults).
#[derive(Debug, Clone)]
pub struct HlsResources {
    /// Integer ALU ops per cycle.
    pub int_alu: u32,
    /// FP adders.
    pub fp_add: u32,
    /// FP multipliers.
    pub fp_mul: u32,
    /// Memory read ports.
    pub mem_read: u32,
    /// Memory write ports.
    pub mem_write: u32,
}

impl Default for HlsResources {
    fn default() -> Self {
        HlsResources {
            int_alu: 4,
            fp_add: 1,
            fp_mul: 1,
            mem_read: 2,
            mem_write: 1,
        }
    }
}

/// HLS model configuration.
#[derive(Debug, Clone, Default)]
pub struct HlsModel {
    /// Resource budget.
    pub resources: HlsResources,
    /// Vendor streaming buffers: memory accesses cost nothing extra and do
    /// not compete for ports (the FFT/DENSE advantage of §5.2 the authors
    /// "were unable to turn off").
    pub streaming_buffers: bool,
}

/// Result of an HLS-model run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HlsResult {
    /// Total cycles.
    pub cycles: u64,
    /// Dynamic blocks executed.
    pub blocks: u64,
}

/// Per-block static schedule.
#[derive(Debug, Clone, Copy)]
struct BlockSched {
    /// Schedule length (cycles) when executed as an FSM sequence.
    latency: u64,
    /// When this block belongs to a pipelined innermost loop: the loop's
    /// identity (header id), its initiation interval, the loop's total
    /// fill latency, and whether this block is the header.
    pipelined: Option<PipelinedLoop>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct PipelinedLoop {
    header: u32,
    ii: u64,
    fill: u64,
    is_header: bool,
}

impl HlsModel {
    /// With streaming buffers enabled.
    pub fn with_streaming() -> HlsModel {
        HlsModel {
            streaming_buffers: true,
            ..HlsModel::default()
        }
    }

    /// Run the model over `module` (executing it with the reference
    /// interpreter to obtain the dynamic block trace).
    ///
    /// # Errors
    /// Propagates interpreter faults.
    pub fn run(&self, module: &Module, mem: &mut Memory) -> Result<HlsResult, InterpError> {
        let schedules = self.schedule_module(module);
        let sink = HlsSink {
            schedules,
            cycles: 0,
            blocks: 0,
            current_loop: None,
        };
        let mut interp = Interp::with_sink(module, sink);
        interp.run_main(mem, &[])?;
        let sink = interp.into_sink();
        Ok(HlsResult {
            cycles: sink.cycles,
            blocks: sink.blocks,
        })
    }

    fn schedule_module(&self, module: &Module) -> HashMap<(String, u32), BlockSched> {
        let mut out = HashMap::new();
        for f in &module.functions {
            let loops = analysis::natural_loops(f);
            for b in f.block_ids() {
                let latency = self.block_latency(f, b);
                // A block is pipelined if it belongs to exactly one loop
                // and that loop is innermost and not serialized.
                let owner = loops
                    .iter()
                    .filter(|l| l.blocks.contains(&b))
                    .min_by_key(|l| l.blocks.len());
                let pipelined = owner.and_then(|l| {
                    let is_innermost = !loops
                        .iter()
                        .any(|o| o.parent.is_some_and(|p| std::ptr::eq(&loops[p], l)));
                    if !is_innermost {
                        return None;
                    }
                    let dep = analysis::loop_dependence_in(module, f, l);
                    if !dep.parallel {
                        return None; // carried memory dependence: serialized
                    }
                    let fill: u64 = l.blocks.iter().map(|&lb| self.block_latency(f, lb)).sum();
                    Some(PipelinedLoop {
                        header: l.header.0,
                        ii: self.loop_ii(f, l),
                        fill,
                        is_header: b == l.header,
                    })
                });
                out.insert((f.name.clone(), b.0), BlockSched { latency, pipelined });
            }
        }
        out
    }

    /// Dependence-critical-path + resource-bound schedule length of one
    /// block.
    fn block_latency(&self, f: &Function, b: BlockId) -> u64 {
        let mut level: HashMap<InstrId, u64> = HashMap::new();
        let mut counts = ClassCounts::default();
        let mut depth = 1u64;
        for (iid, instr) in f.block_instrs(b) {
            let op_lat = self.op_latency(&instr.op);
            counts.count(&instr.op, self.streaming_buffers);
            let in_level = instr
                .operands
                .iter()
                .filter_map(|o| match o {
                    ValueRef::Instr(d) => level.get(d).copied(),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            let lvl = in_level + op_lat;
            level.insert(iid, lvl);
            depth = depth.max(lvl);
        }
        depth.max(counts.resource_bound(&self.resources))
    }

    /// Initiation interval of a pipelined innermost loop.
    fn loop_ii(&self, f: &Function, l: &NaturalLoop) -> u64 {
        let mut counts = ClassCounts::default();
        let mut has_fp_reduction = false;
        for &b in &l.blocks {
            for (_iid, instr) in f.block_instrs(b) {
                counts.count(&instr.op, self.streaming_buffers);
                // An accumulator φ feeding a float add/sub is the classic
                // reduction recurrence.
                if let Op::Bin(BinOp::FAdd | BinOp::FSub) = instr.op {
                    for o in &instr.operands {
                        if let ValueRef::Instr(d) = o {
                            if matches!(f.instr(*d).op, Op::Phi { .. }) {
                                has_fp_reduction = true;
                            }
                        }
                    }
                }
            }
        }
        let res_ii = counts.resource_bound(&self.resources);
        let rec_ii = if has_fp_reduction { 4 } else { 1 };
        res_ii.max(rec_ii)
    }

    fn op_latency(&self, op: &Op) -> u64 {
        match op {
            Op::Bin(b) => match b {
                BinOp::Mul => 3,
                BinOp::Div | BinOp::Rem => 16,
                BinOp::FAdd | BinOp::FSub | BinOp::FMul => 4,
                BinOp::FDiv => 14,
                _ => 1,
            },
            Op::Un(UnOp::Exp | UnOp::Sqrt) => 12,
            Op::Load { .. } | Op::Store { .. } => {
                if self.streaming_buffers {
                    1
                } else {
                    2
                }
            }
            Op::Tensor(..) => 8, // HLS has no tensor units: expanded macro
            Op::Call { .. } | Op::Detach { .. } | Op::Sync { .. } => 2,
            _ => 1,
        }
    }
}

#[derive(Debug, Default)]
struct ClassCounts {
    int_alu: u64,
    fp_add: u64,
    fp_mul: u64,
    mem_read: u64,
    mem_write: u64,
}

impl ClassCounts {
    fn count(&mut self, op: &Op, streaming: bool) {
        match op {
            Op::Bin(BinOp::FAdd | BinOp::FSub) => self.fp_add += 1,
            Op::Bin(BinOp::FMul | BinOp::FDiv) => self.fp_mul += 1,
            Op::Bin(_) | Op::Cmp(_) | Op::Select | Op::Cast(_) | Op::Un(_) => self.int_alu += 1,
            Op::Load { .. } if !streaming => self.mem_read += 1,
            Op::Store { .. } if !streaming => self.mem_write += 1,
            Op::Tensor(..) => {
                self.fp_mul += 4;
                self.fp_add += 3;
            }
            _ => {}
        }
    }

    fn resource_bound(&self, r: &HlsResources) -> u64 {
        let b = [
            self.int_alu.div_ceil(r.int_alu as u64),
            self.fp_add.div_ceil(r.fp_add as u64),
            self.fp_mul.div_ceil(r.fp_mul as u64),
            self.mem_read.div_ceil(r.mem_read as u64),
            self.mem_write.div_ceil(r.mem_write as u64),
        ];
        b.into_iter().max().unwrap_or(1).max(1)
    }
}

struct HlsSink {
    schedules: HashMap<(String, u32), BlockSched>,
    cycles: u64,
    blocks: u64,
    /// The pipelined loop currently in steady state: (function, header).
    current_loop: Option<(String, u32)>,
}

impl TraceSink for HlsSink {
    fn event(&mut self, _ev: TraceEvent) {}

    fn block(&mut self, func: &str, block: BlockId) {
        self.blocks += 1;
        let key = (func.to_string(), block.0);
        let sched = self.schedules.get(&key).copied().unwrap_or(BlockSched {
            latency: 1,
            pipelined: None,
        });
        match sched.pipelined {
            Some(pl) => {
                let loop_key = (key.0.clone(), pl.header);
                if self.current_loop.as_ref() == Some(&loop_key) {
                    // Steady state: one II per new iteration, overlapped
                    // body blocks are free.
                    if pl.is_header {
                        self.cycles += pl.ii;
                    }
                } else {
                    // Entering the loop: pay the pipeline fill once.
                    self.cycles += pl.fill;
                    self.current_loop = Some(loop_key);
                }
            }
            None => {
                self.cycles += sched.latency;
                self.current_loop = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muir_mir::builder::FunctionBuilder;
    use muir_mir::types::{ScalarType, Type};

    fn streaming_loop(n: i64) -> Module {
        let mut m = Module::new("hls_t");
        let a = m.add_mem_object("a", ScalarType::F32, n as u64);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(n), 1, |b, i| {
            let v = b.load(a, i);
            let w = b.fmul(v, ValueRef::f32(2.0));
            b.store(a, i, w);
        });
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn pipelined_loop_pays_ii_after_first() {
        let m = streaming_loop(64);
        let mut mem = Memory::from_module(&m);
        let r = HlsModel::default().run(&m, &mut mem).unwrap();
        // ~64 iterations × small II, plus entry/exit blocks. Far below
        // 64 × full-latency.
        assert!(r.cycles > 64, "{r:?}");
        assert!(r.cycles < 64 * 12, "{r:?}");
        assert!(r.blocks > 64);
    }

    #[test]
    fn fp_reduction_recurs_at_adder_latency() {
        let mut m = Module::new("red");
        let a = m.add_mem_object("a", ScalarType::F32, 64);
        let out = m.add_mem_object("out", ScalarType::F32, 1);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        let acc = b.for_loop_acc(
            ValueRef::int(0),
            ValueRef::int(64),
            1,
            &[(ValueRef::f32(0.0), Type::F32)],
            |b, i, accs| {
                let v = b.load(a, i);
                vec![b.fadd(accs[0], v)]
            },
        );
        b.store(out, ValueRef::int(0), acc[0]);
        b.ret(None);
        m.add_function(b.finish());
        let mut mem = Memory::from_module(&m);
        let r = HlsModel::default().run(&m, &mut mem).unwrap();
        // II = 4 → at least 64 × 4 cycles in the loop.
        assert!(r.cycles >= 64 * 4, "{r:?}");
    }

    #[test]
    fn carried_memory_dependence_serializes() {
        let mut m = Module::new("ser");
        let a = m.add_mem_object("a", ScalarType::I32, 64);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(64), 1, |b, i| {
            let v = b.load(a, ValueRef::int(0));
            let w = b.add(v, i);
            b.store(a, ValueRef::int(0), w);
        });
        b.ret(None);
        m.add_function(b.finish());
        let mut mem = Memory::from_module(&m);
        let serial = HlsModel::default().run(&m, &mut mem).unwrap();
        let m2 = streaming_loop(64);
        let mut mem2 = Memory::from_module(&m2);
        let parallel = HlsModel::default().run(&m2, &mut mem2).unwrap();
        assert!(
            serial.cycles > parallel.cycles,
            "{serial:?} vs {parallel:?}"
        );
    }

    #[test]
    fn streaming_buffers_speed_up_memory_bound_loops() {
        let m = streaming_loop(256);
        let mut m1 = Memory::from_module(&m);
        let plain = HlsModel::default().run(&m, &mut m1).unwrap();
        let mut m2 = Memory::from_module(&m);
        let streamed = HlsModel::with_streaming().run(&m, &mut m2).unwrap();
        assert!(streamed.cycles < plain.cycles, "{streamed:?} vs {plain:?}");
    }

    #[test]
    fn nested_loops_serialize() {
        // Outer loop re-pays the inner loop's fill every outer iteration.
        let mut m = Module::new("nest");
        let a = m.add_mem_object("a", ScalarType::F32, 256);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(16), 1, |b, i| {
            let base = b.mul(i, ValueRef::int(16));
            b.for_loop(0, ValueRef::int(16), 1, |b, j| {
                let idx = b.add(base, j);
                let v = b.load(a, idx);
                let w = b.fadd(v, ValueRef::f32(1.0));
                b.store(a, idx, w);
            });
        });
        b.ret(None);
        m.add_function(b.finish());
        let mut mem = Memory::from_module(&m);
        let r = HlsModel::default().run(&m, &mut mem).unwrap();
        // 256 inner iterations plus 16 × (outer overhead + pipeline fill).
        assert!(r.cycles > 256, "{r:?}");
    }
}
