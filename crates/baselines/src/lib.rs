//! `muir-baselines` — the two comparison systems of the evaluation.
//!
//! * [`hls`]: a statically scheduled HLS-style execution model (LegUp /
//!   Intel-HLS stand-in) for Figure 9. It list-schedules every basic block
//!   under FSM resource constraints, pipelines innermost loops (with
//!   recurrence- and resource-bounded initiation intervals), serializes
//!   nested loops (§5.2: "HLS serialize the nested loop executions"), and
//!   charges cycles per dynamic block using the reference interpreter's
//!   block trace. A vendor streaming-buffer option models the FFT/DENSE
//!   advantage the paper could not switch off.
//! * [`cpu`]: an ARM-Cortex-A9-class dual-issue timing model for
//!   Figure 18, driven by the interpreter's dynamic operation trace with a
//!   small L1 cache model.

pub mod cpu;
pub mod hls;

pub use cpu::{CpuModel, CpuResult};
pub use hls::{HlsModel, HlsResult};
