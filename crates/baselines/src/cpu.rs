//! ARM-Cortex-A9-class CPU timing model (the Figure 18 baseline).
//!
//! A trace-driven dual-issue model: the reference interpreter streams
//! dynamic operations into this sink, which accounts issue-slot pressure
//! (2-wide), single FP and load/store pipes, long-latency serializing ops,
//! an L1 data-cache model, and a branch-predictor penalty. §6.6 attributes
//! the accelerator win to ILP beyond dual issue, tensor compute density
//! the CPU pipeline cannot match, and dataflow eliminating front-end
//! overhead — all three are first-order effects here.

use muir_mir::instr::BlockId;
use muir_mir::interp::{Interp, InterpError, Memory};
use muir_mir::module::Module;
use muir_mir::trace::{OpClass, TraceEvent, TraceSink};

/// CPU model parameters (A9-flavoured defaults, 1 GHz).
#[derive(Debug, Clone)]
pub struct CpuModel {
    /// Issue width.
    pub issue_width: u32,
    /// L1 data cache size in elements (32 KB of 4-byte words).
    pub l1_elems: u64,
    /// L1 line size in elements.
    pub line_elems: u64,
    /// L1 associativity.
    pub assoc: u64,
    /// Miss penalty (cycles to L2/DRAM).
    pub miss_penalty: u64,
    /// Branch misprediction rate and penalty.
    pub mispredict_rate: f64,
    /// Pipeline refill cost on a mispredict.
    pub mispredict_penalty: u64,
    /// Clock (MHz).
    pub freq_mhz: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            issue_width: 2,
            l1_elems: 8192,
            line_elems: 8,
            assoc: 4,
            miss_penalty: 24,
            mispredict_rate: 0.06,
            mispredict_penalty: 9,
            freq_mhz: 1000.0,
        }
    }
}

/// Result of a CPU-model run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuResult {
    /// Total cycles at the model clock.
    pub cycles: u64,
    /// Dynamic instructions.
    pub instructions: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// Wall time in microseconds at `freq_mhz`.
    pub time_us: f64,
}

impl CpuModel {
    /// Run `module` on the model.
    ///
    /// # Errors
    /// Propagates interpreter faults.
    pub fn run(&self, module: &Module, mem: &mut Memory) -> Result<CpuResult, InterpError> {
        let sink = CpuSink::new(self.clone());
        let mut interp = Interp::with_sink(module, sink);
        interp.run_main(mem, &[])?;
        let sink = interp.into_sink();
        let cycles = sink.cycles();
        Ok(CpuResult {
            cycles,
            instructions: sink.instructions,
            l1_misses: sink.misses,
            time_us: cycles as f64 / self.freq_mhz,
        })
    }
}

struct CpuSink {
    cfg: CpuModel,
    instructions: u64,
    int_ops: u64,
    fp_ops: u64,
    mem_ops: u64,
    branches: u64,
    serial_stall: u64, // div/exp/sqrt serialization
    misses: u64,
    /// L1 tag store: sets × ways of line tags.
    tags: Vec<Vec<u64>>,
    lru: Vec<Vec<u64>>,
    clock: u64,
}

impl CpuSink {
    fn new(cfg: CpuModel) -> CpuSink {
        let sets = (cfg.l1_elems / cfg.line_elems / cfg.assoc).max(1) as usize;
        CpuSink {
            tags: vec![vec![u64::MAX; cfg.assoc as usize]; sets],
            lru: vec![vec![0; cfg.assoc as usize]; sets],
            cfg,
            instructions: 0,
            int_ops: 0,
            fp_ops: 0,
            mem_ops: 0,
            branches: 0,
            serial_stall: 0,
            misses: 0,
            clock: 0,
        }
    }

    fn access(&mut self, addr: u64) {
        self.clock += 1;
        let line = addr / self.cfg.line_elems;
        let sets = self.tags.len() as u64;
        let set = (line % sets) as usize;
        let tag = line / sets;
        let clock = self.clock;
        if let Some(w) = self.tags[set].iter().position(|&t| t == tag) {
            self.lru[set][w] = clock;
            return;
        }
        self.misses += 1;
        let victim = self.lru[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, &l)| l)
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.tags[set][victim] = tag;
        self.lru[set][victim] = clock;
    }

    fn cycles(&self) -> u64 {
        // Structural bounds: dual-issue front end, one FP pipe, one LSU.
        let slots = self.instructions.div_ceil(self.cfg.issue_width as u64);
        let fp = self.fp_ops; // FP pipe accepts 1/cycle
        let mem = self.mem_ops;
        let structural = slots.max(fp).max(mem);
        let mispredicts =
            (self.branches as f64 * self.cfg.mispredict_rate) as u64 * self.cfg.mispredict_penalty;
        structural + self.serial_stall + self.misses * self.cfg.miss_penalty + mispredicts
    }
}

impl TraceSink for CpuSink {
    fn event(&mut self, ev: TraceEvent) {
        self.instructions += 1;
        match ev.class {
            OpClass::IntAlu => self.int_ops += 1,
            OpClass::IntMul => {
                self.int_ops += 1;
                self.serial_stall += 2;
            }
            OpClass::IntDiv => {
                self.int_ops += 1;
                self.serial_stall += 12;
            }
            OpClass::FpAdd | OpClass::FpMul => self.fp_ops += 1,
            OpClass::FpDiv => {
                self.fp_ops += 1;
                self.serial_stall += 10;
            }
            OpClass::FpSpecial => {
                self.fp_ops += 1;
                self.serial_stall += 20;
            }
            OpClass::Load | OpClass::Store => {
                self.mem_ops += 1;
                if let Some(a) = ev.addr {
                    self.access(a);
                }
            }
            OpClass::Branch => self.branches += 1,
            OpClass::Call => self.serial_stall += 4,
        }
    }

    fn block(&mut self, _func: &str, _block: BlockId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use muir_mir::builder::FunctionBuilder;
    use muir_mir::instr::ValueRef;
    use muir_mir::types::ScalarType;

    fn scale_loop(n: i64) -> Module {
        let mut m = Module::new("cpu_t");
        let a = m.add_mem_object("a", ScalarType::F32, n as u64);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(n), 1, |b, i| {
            let v = b.load(a, i);
            let w = b.fmul(v, ValueRef::f32(2.0));
            b.store(a, i, w);
        });
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn cycles_scale_with_work() {
        let small = scale_loop(64);
        let big = scale_loop(512);
        let mut ms = Memory::from_module(&small);
        let mut mb = Memory::from_module(&big);
        let rs = CpuModel::default().run(&small, &mut ms).unwrap();
        let rb = CpuModel::default().run(&big, &mut mb).unwrap();
        assert!(rb.cycles > 5 * rs.cycles, "{rs:?} vs {rb:?}");
        assert!(rb.instructions > rs.instructions);
    }

    #[test]
    fn dual_issue_bounds_ipc_at_two(/* IPC ≤ 2 */) {
        let m = scale_loop(256);
        let mut mem = Memory::from_module(&m);
        let r = CpuModel::default().run(&m, &mut mem).unwrap();
        let ipc = r.instructions as f64 / r.cycles as f64;
        assert!(ipc <= 2.0, "ipc {ipc}");
        assert!(ipc > 0.2, "ipc {ipc}");
    }

    #[test]
    fn strided_loop_misses_then_hits() {
        let m = scale_loop(512);
        let mut mem = Memory::from_module(&m);
        let r = CpuModel::default().run(&m, &mut mem).unwrap();
        // One miss per 8-element line on the read stream (write allocates
        // hit the same line).
        assert!(r.l1_misses >= 512 / 8, "{r:?}");
        assert!(r.l1_misses <= 2 * 512 / 8 + 8, "{r:?}");
    }

    #[test]
    fn time_reflects_frequency() {
        let m = scale_loop(128);
        let mut mem = Memory::from_module(&m);
        let r = CpuModel::default().run(&m, &mut mem).unwrap();
        assert!((r.time_us - r.cycles as f64 / 1000.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod penalty_tests {
    use super::*;
    use muir_mir::builder::FunctionBuilder;
    use muir_mir::instr::ValueRef;
    use muir_mir::module::Module;
    use muir_mir::types::ScalarType;

    fn loop_with(
        body: impl Fn(&mut FunctionBuilder, ValueRef, muir_mir::instr::MemObjId),
    ) -> Module {
        let mut m = Module::new("pen");
        let a = m.add_mem_object("a", ScalarType::I32, 128);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.for_loop(0, ValueRef::int(128), 1, |b, i| body(b, i, a));
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn division_costs_more_than_addition() {
        let add = loop_with(|b, i, a| {
            let v = b.add(i, ValueRef::int(1));
            b.store(a, i, v);
        });
        let div = loop_with(|b, i, a| {
            let i1 = b.add(i, ValueRef::int(1));
            let v = b.div(ValueRef::int(1000), i1);
            b.store(a, i, v);
        });
        let mut m1 = Memory::from_module(&add);
        let mut m2 = Memory::from_module(&div);
        let r_add = CpuModel::default().run(&add, &mut m1).unwrap();
        let r_div = CpuModel::default().run(&div, &mut m2).unwrap();
        assert!(
            r_div.cycles > r_add.cycles + 128 * 8,
            "{r_add:?} vs {r_div:?}"
        );
    }

    #[test]
    fn exp_serializes_the_fp_pipe() {
        let mul = loop_with(|b, i, a| {
            let f = b.sitofp(i);
            let v = b.fmul(f, ValueRef::f32(1.5));
            let back = b.fptosi(v);
            b.store(a, i, back);
        });
        let exp = loop_with(|b, i, a| {
            let f = b.sitofp(i);
            let v = b.exp(f);
            let back = b.fptosi(v);
            b.store(a, i, back);
        });
        let mut m1 = Memory::from_module(&mul);
        let mut m2 = Memory::from_module(&exp);
        let r_mul = CpuModel::default().run(&mul, &mut m1).unwrap();
        let r_exp = CpuModel::default().run(&exp, &mut m2).unwrap();
        assert!(
            r_exp.cycles > r_mul.cycles + 128 * 10,
            "{r_mul:?} vs {r_exp:?}"
        );
    }
}
