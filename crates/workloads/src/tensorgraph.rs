//! Tensor-graph benchmarks (Table 2, fifth group): workload families
//! expressed in the `muir_frontend::tensor` front door and lowered
//! through the Tensor2D intrinsics — programs the hand-built loop-nest
//! path of `tensorflow.rs` cannot express as single kernels:
//!
//! * **ATTN** — one attention block: `softmax(Q·Kᵀ)·V` over 8×8 tiles
//!   (K is fed pre-transposed so the graph is matmul → softmax →
//!   matmul).
//! * **CONVNET** — a small conv net: 12×12 `conv` 3×3 → `relu` →
//!   `reduce` to a single logit. The relu fuses into the conv's store
//!   loop at lowering.
//! * **MT-INFER** — one multi-tenant inference step: `relu(X·W)` where
//!   each row of `X` is one tenant's activation vector and `W` is the
//!   shared (banked) weight matrix. The batch-service dimension — many
//!   concurrent invocations sharing the sealed artifact — is exercised
//!   through `EvalService` in `muir-bench`.
//!
//! Each builder parses the canonical graph text (kept here as the
//! source of truth, also served by `experiments tensor --builtin`),
//! lowers it with the default tiling/fusion config, and seeds inputs
//! from the fixed-seed PRNG like every other workload.

use crate::{Class, InitData, Prng, Workload};
use muir_frontend::tensor::{TensorGraph, TensorLowerConfig};

/// Canonical ATTN graph text.
pub const ATTN_TEXT: &str = "\
graph attn
input q : f32[8,8]
input kt : f32[8,8]
input v : f32[8,8]
%s = matmul q, kt
%p = softmax %s
%o = matmul %p, v
output %o
";

/// Canonical CONVNET graph text.
pub const CONVNET_TEXT: &str = "\
graph convnet
input img : f32[12,12]
input k : f32[3,3]
%c = conv img, k
%r = relu %c
%l = reduce %r
output %l
";

/// Canonical MT-INFER graph text.
pub const MT_INFER_TEXT: &str = "\
graph mt_infer
input x : f32[8,8]
input w : f32[8,8]
%m = matmul x, w
%a = relu %m
output %a
";

/// Builtin graphs by name (lower-case), for the `experiments tensor
/// --builtin` front door.
pub fn builtin_graph(name: &str) -> Option<&'static str> {
    Some(match name {
        "attn" => ATTN_TEXT,
        "convnet" => CONVNET_TEXT,
        "mt_infer" => MT_INFER_TEXT,
        _ => return None,
    })
}

/// Build a workload from arbitrary graph text — the `experiments tensor`
/// front door. Inputs are seeded exactly like the builtin families.
///
/// # Errors
/// Typed `E-TENSOR-*` parse/verify/lowering failures.
pub fn from_text(
    name: &'static str,
    text: &str,
    seed: u64,
) -> Result<Workload, muir_frontend::tensor::TensorError> {
    let g = TensorGraph::parse(text)?;
    let low = g.lower(&TensorLowerConfig::default())?;
    let mut rng = Prng::new(seed);
    let inits = low
        .inputs
        .iter()
        .zip(&g.inputs)
        .map(|(obj, gi)| (*obj, InitData::F32(rng.f32_vec(gi.dims.elems()))))
        .collect();
    Ok(Workload {
        name,
        class: Class::TensorGraph,
        fp: true,
        tensor: true,
        module: low.module,
        inits,
        outputs: vec![low.output],
    })
}

fn from_graph(name: &'static str, text: &str, seed: u64) -> Workload {
    from_text(name, text, seed).expect("builtin graph builds")
}

/// ATTN: one attention block over 8×8 tiles.
pub fn attn() -> Workload {
    from_graph("ATTN", ATTN_TEXT, 101)
}

/// CONVNET: conv → relu → reduce to one logit.
pub fn convnet() -> Workload {
    from_graph("CONVNET", CONVNET_TEXT, 103)
}

/// MT-INFER: one batched multi-tenant inference step, `relu(X·W)`.
pub fn mt_infer() -> Workload {
    from_graph("MT-INFER", MT_INFER_TEXT, 107)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muir_mir::value::Value;

    /// Each family's lowered module must agree with the *graph-level*
    /// reference evaluator on the same inputs — a differential across
    /// two independent semantics (graph eval vs mir interp).
    #[test]
    fn graph_eval_matches_mir_reference() {
        for (w, text) in [
            (attn(), ATTN_TEXT),
            (convnet(), CONVNET_TEXT),
            (mt_infer(), MT_INFER_TEXT),
        ] {
            let g = TensorGraph::parse(text).unwrap();
            let inputs: Vec<Vec<f32>> = w
                .inits
                .iter()
                .map(|(_, d)| match d {
                    InitData::F32(v) => v.clone(),
                    InitData::I64(_) => panic!("tensor graphs are f32"),
                })
                .collect();
            let want = g.eval(&inputs).unwrap();
            let mem = w.run_reference().unwrap();
            let got = &mem.objects[w.outputs[0].0 as usize];
            assert_eq!(got.len(), want.len(), "{}", w.name);
            for (x, y) in want.iter().zip(got) {
                let y = match y {
                    Value::F32(v) => *v,
                    other => panic!("{}: non-f32 output {other:?}", w.name),
                };
                let scale = x.abs().max(y.abs()).max(1.0);
                assert!((x - y).abs() <= 1e-4 * scale, "{}: {x} vs {y}", w.name);
            }
        }
    }

    #[test]
    fn convnet_fuses_its_relu() {
        let g = TensorGraph::parse(CONVNET_TEXT).unwrap();
        let low = g.lower(&TensorLowerConfig::default()).unwrap();
        assert_eq!(low.fused_relus, 1);
    }

    #[test]
    fn attn_softmax_rows_are_stochastic() {
        // Inside ATTN the softmax output rows each sum to 1; the final
        // output rows are therefore convex combinations of V's rows and
        // must stay within V's min/max envelope.
        let w = attn();
        let mem = w.run_reference().unwrap();
        let out = mem.read_f32(w.outputs[0]);
        let v = match &w.inits[2].1 {
            InitData::F32(d) => d.clone(),
            InitData::I64(_) => unreachable!(),
        };
        for col in 0..8 {
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for row in 0..8 {
                lo = lo.min(v[row * 8 + col]);
                hi = hi.max(v[row * 8 + col]);
            }
            for row in 0..8 {
                let x = out[row * 8 + col];
                assert!(
                    x >= lo - 1e-4 && x <= hi + 1e-4,
                    "out[{row},{col}] = {x} outside [{lo},{hi}]"
                );
            }
        }
    }
}
