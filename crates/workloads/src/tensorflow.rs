//! Tensorflow-derived benchmarks (Table 2, third group): NN layers lowered
//! to loop nests the way the paper's XLA-based front-end emits them.

use crate::{Class, InitData, Prng, Workload};
use muir_mir::builder::FunctionBuilder;
use muir_mir::instr::ValueRef;
use muir_mir::module::Module;
use muir_mir::types::{ScalarType, Type};

/// CONV: 2-D valid convolution, 28×28 input, 3×3 kernel, 26×26 output
/// (scalar MACs; the kernel loops are fully unrolled, as XLA does for
/// constant-trip-3 loops).
pub fn conv() -> Workload {
    const IW: i64 = 28;
    const OW: i64 = 26;
    let mut m = Module::new("conv");
    let input = m.add_ro_mem_object("in", ScalarType::F32, (IW * IW) as u64);
    let kernel = m.add_ro_mem_object("k", ScalarType::F32, 9);
    let output = m.add_mem_object("out", ScalarType::F32, (OW * OW) as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop_par(0, ValueRef::int(OW), 1, |b, i| {
        b.for_loop_par(0, ValueRef::int(OW), 1, |b, j| {
            let mut acc = ValueRef::f32(0.0);
            for di in 0..3i64 {
                for dj in 0..3i64 {
                    let r0 = b.add(i, ValueRef::int(di));
                    let row = b.mul(r0, ValueRef::int(IW));
                    let c0 = b.add(j, ValueRef::int(dj));
                    let idx = b.add(row, c0);
                    let v = b.load(input, idx);
                    let kv = b.load(kernel, ValueRef::int(di * 3 + dj));
                    let p = b.fmul(v, kv);
                    acc = b.fadd(acc, p);
                }
            }
            let orow = b.mul(i, ValueRef::int(OW));
            let oidx = b.add(orow, j);
            b.store(output, oidx, acc);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(47);
    let iin = rng.f32_vec((IW * IW) as usize);
    let ik = rng.f32_vec(9);
    Workload {
        name: "CONV",
        class: Class::Tensorflow,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![(input, InitData::F32(iin)), (kernel, InitData::F32(ik))],
        outputs: vec![output],
    }
}

/// Plain-Rust CONV used by tests.
pub fn conv_reference(input: &[f32], kernel: &[f32], iw: usize, ow: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; ow * ow];
    for i in 0..ow {
        for j in 0..ow {
            let mut acc = 0.0f32;
            for di in 0..3 {
                for dj in 0..3 {
                    acc += input[(i + di) * iw + j + dj] * kernel[di * 3 + dj];
                }
            }
            out[i * ow + j] = acc;
        }
    }
    out
}

/// DENSE layer: `out[b][u] = Σ_k w[u][k]·in[b][k] + bias[u]`, batch 32,
/// 64 inputs, `units` outputs (the paper's DENSE8 / DENSE16).
pub fn dense(units: i64) -> Workload {
    const BATCH: i64 = 32;
    const IN: i64 = 64;
    let mut m = Module::new(if units == 8 { "dense8" } else { "dense16" });
    let input = m.add_ro_mem_object("in", ScalarType::F32, (BATCH * IN) as u64);
    let w = m.add_ro_mem_object("w", ScalarType::F32, (units * IN) as u64);
    let bias = m.add_ro_mem_object("bias", ScalarType::F32, units as u64);
    let output = m.add_mem_object("out", ScalarType::F32, (BATCH * units) as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop_par(0, ValueRef::int(BATCH), 1, |b, bi| {
        b.for_loop_par(0, ValueRef::int(units), 1, |b, u| {
            let wrow = b.mul(u, ValueRef::int(IN));
            let irow = b.mul(bi, ValueRef::int(IN));
            let acc = b.for_loop_acc(
                ValueRef::int(0),
                ValueRef::int(IN),
                1,
                &[(ValueRef::f32(0.0), Type::F32)],
                |b, k, accs| {
                    let wi = b.add(wrow, k);
                    let wv = b.load(w, wi);
                    let ii = b.add(irow, k);
                    let iv = b.load(input, ii);
                    let p = b.fmul(wv, iv);
                    vec![b.fadd(accs[0], p)]
                },
            );
            let bv = b.load(bias, u);
            let s = b.fadd(acc[0], bv);
            let orow = b.mul(bi, ValueRef::int(units));
            let oi = b.add(orow, u);
            b.store(output, oi, s);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(53 + units as u64);
    let iin = rng.f32_vec((BATCH * IN) as usize);
    let iw = rng.f32_vec((units * IN) as usize);
    let ib = rng.f32_vec(units as usize);
    Workload {
        name: if units == 8 { "DENSE8" } else { "DENSE16" },
        class: Class::Tensorflow,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![
            (input, InitData::F32(iin)),
            (w, InitData::F32(iw)),
            (bias, InitData::F32(ib)),
        ],
        outputs: vec![output],
    }
}

/// Plain-Rust DENSE used by tests.
pub fn dense_reference(
    input: &[f32],
    w: &[f32],
    bias: &[f32],
    batch: usize,
    inputs: usize,
    units: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; batch * units];
    for b in 0..batch {
        for u in 0..units {
            let mut acc = 0.0f32;
            for k in 0..inputs {
                acc += w[u * inputs + k] * input[b * inputs + k];
            }
            out[b * units + u] = acc + bias[u];
        }
    }
    out
}

/// SOFTMAX over `width`-wide rows, batch 64 (the paper's SOFTM8 /
/// SOFTM16): per row, `exp` each logit, reduce, divide.
pub fn softmax(width: i64) -> Workload {
    const BATCH: i64 = 64;
    let mut m = Module::new(if width == 8 { "softm8" } else { "softm16" });
    let input = m.add_ro_mem_object("in", ScalarType::F32, (BATCH * width) as u64);
    let output = m.add_mem_object("out", ScalarType::F32, (BATCH * width) as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop_par(0, ValueRef::int(BATCH), 1, |b, r| {
        let row = b.mul(r, ValueRef::int(width));
        let acc = b.for_loop_acc(
            ValueRef::int(0),
            ValueRef::int(width),
            1,
            &[(ValueRef::f32(0.0), Type::F32)],
            |b, k, accs| {
                let idx = b.add(row, k);
                let v = b.load(input, idx);
                let e = b.exp(v);
                vec![b.fadd(accs[0], e)]
            },
        );
        b.for_loop_par(0, ValueRef::int(width), 1, |b, k| {
            let idx = b.add(row, k);
            let v = b.load(input, idx);
            let e = b.exp(v);
            let s = b.fdiv(e, acc[0]);
            b.store(output, idx, s);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(59 + width as u64);
    let iin = rng.f32_vec((BATCH * width) as usize);
    Workload {
        name: if width == 8 { "SOFTM8" } else { "SOFTM16" },
        class: Class::Tensorflow,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![(input, InitData::F32(iin))],
        outputs: vec![output],
    }
}

/// Plain-Rust SOFTMAX used by tests.
pub fn softmax_reference(input: &[f32], batch: usize, width: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; batch * width];
    for r in 0..batch {
        let mut sum = 0.0f32;
        for k in 0..width {
            sum += input[r * width + k].exp();
        }
        for k in 0..width {
            out[r * width + k] = input[r * width + k].exp() / sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let scale = x.abs().max(y.abs()).max(1.0);
            assert!((x - y).abs() <= 1e-4 * scale, "elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn conv_matches_native() {
        let w = conv();
        let mem = w.run_reference().unwrap();
        let InitData::F32(input) = &w.inits[0].1 else {
            panic!()
        };
        let InitData::F32(k) = &w.inits[1].1 else {
            panic!()
        };
        f32_close(
            &mem.read_f32(w.outputs[0]),
            &conv_reference(input, k, 28, 26),
        );
    }

    #[test]
    fn dense_layers_match_native() {
        for units in [8usize, 16] {
            let w = dense(units as i64);
            let mem = w.run_reference().unwrap();
            let InitData::F32(input) = &w.inits[0].1 else {
                panic!()
            };
            let InitData::F32(wt) = &w.inits[1].1 else {
                panic!()
            };
            let InitData::F32(bias) = &w.inits[2].1 else {
                panic!()
            };
            f32_close(
                &mem.read_f32(w.outputs[0]),
                &dense_reference(input, wt, bias, 32, 64, units),
            );
        }
    }

    #[test]
    fn softmax_matches_native_and_normalizes() {
        for width in [8usize, 16] {
            let w = softmax(width as i64);
            let mem = w.run_reference().unwrap();
            let InitData::F32(input) = &w.inits[0].1 else {
                panic!()
            };
            let out = mem.read_f32(w.outputs[0]);
            f32_close(&out, &softmax_reference(input, 64, width));
            // Rows sum to 1.
            for r in 0..64 {
                let s: f32 = out[r * width..(r + 1) * width].iter().sum();
                assert!((s - 1.0).abs() < 1e-3, "row {r} sums to {s}");
            }
        }
    }
}
