//! In-house benchmarks (Table 2, fourth group): the Tensor2D higher-order
//! op workloads of §6.3 (RELU\[T\], 2MM\[T\], CONV\[T\]) plus RGB2YUV (§6.4) and
//! scalar RELU (Figure 18).
//!
//! Tensor workloads use a *tile-major* layout: matrix tile (ti,tj) occupies
//! four consecutive element slots, which is the data organisation the
//! type-specific scratchpads of Pass 3 expose (§4) and what lets the
//! databox fetch a whole tile per request. CONV\[T\] is the stride-2 tiled
//! convolution (each non-overlapping 2×2 window dot-multiplied with the
//! weight tile), matching the tile-granular `Conv` functional unit.

use crate::{Class, InitData, Prng, Workload};
use muir_mir::builder::FunctionBuilder;
use muir_mir::instr::{TensorOp, ValueRef};
use muir_mir::module::Module;
use muir_mir::types::{ScalarType, TensorShape, Type};

const SHAPE: TensorShape = TensorShape { rows: 2, cols: 2 };

/// RELU\[T\]: element-wise ReLU over 256 2×2 tiles (1024 floats).
pub fn relu_tensor() -> Workload {
    const TILES: i64 = 256;
    let mut m = Module::new("relu_t");
    let input = m.add_ro_mem_object("in", ScalarType::F32, (TILES * 4) as u64);
    let output = m.add_mem_object("out", ScalarType::F32, (TILES * 4) as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop_par(0, ValueRef::int(TILES), 1, |b, t| {
        let off = b.mul(t, ValueRef::int(4));
        let tile = b.load_tile(input, off, SHAPE);
        let r = b.tensor1(TensorOp::Relu, SHAPE, tile);
        b.store(output, off, r);
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(61);
    let iin = rng.f32_vec((TILES * 4) as usize);
    Workload {
        name: "RELU[T]",
        class: Class::InHouse,
        fp: true,
        tensor: true,
        module: m,
        inits: vec![(input, InitData::F32(iin))],
        outputs: vec![output],
    }
}

/// 2MM\[T\]: tiled matrix multiply `C = A×B` over 8×8 grids of 2×2 tiles
/// (16×16 matrices), exactly Figure 13: loadTile / mulTile / addTile /
/// storeTile.
pub fn mm2_tensor() -> Workload {
    const NT: i64 = 8;
    let mut m = Module::new("mm2_t");
    let a = m.add_ro_mem_object("A", ScalarType::F32, (NT * NT * 4) as u64);
    let bm = m.add_ro_mem_object("B", ScalarType::F32, (NT * NT * 4) as u64);
    let c = m.add_mem_object("C", ScalarType::F32, (NT * NT * 4) as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop_par(0, ValueRef::int(NT), 1, |b, i| {
        b.for_loop_par(0, ValueRef::int(NT), 1, |b, j| {
            // Zero-tile accumulator: C is zero-initialised, so its own tile
            // provides the init value (Figure 13 accumulates into C).
            let irow = b.mul(i, ValueRef::int(NT * 4));
            let j4 = b.mul(j, ValueRef::int(4));
            let coff = b.add(irow, j4);
            let init = b.load_tile(c, coff, SHAPE);
            let tty = Type::Tensor {
                elem: ScalarType::F32,
                shape: SHAPE,
            };
            let acc = b.for_loop_acc(
                ValueRef::int(0),
                ValueRef::int(NT),
                1,
                &[(init, tty)],
                |b, k, accs| {
                    let k4 = b.mul(k, ValueRef::int(4));
                    let aoff = b.add(irow, k4);
                    let at = b.load_tile(a, aoff, SHAPE);
                    let krow = b.mul(k, ValueRef::int(NT * 4));
                    let boff = b.add(krow, j4);
                    let bt = b.load_tile(bm, boff, SHAPE);
                    let p = b.tensor2(TensorOp::MatMul, SHAPE, at, bt);
                    vec![b.tensor2(TensorOp::Add, SHAPE, accs[0], p)]
                },
            );
            b.store(c, coff, acc[0]);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(67);
    let ia = rng.f32_vec((NT * NT * 4) as usize);
    let ib = rng.f32_vec((NT * NT * 4) as usize);
    Workload {
        name: "2MM[T]",
        class: Class::InHouse,
        fp: true,
        tensor: true,
        module: m,
        inits: vec![(a, InitData::F32(ia)), (bm, InitData::F32(ib))],
        outputs: vec![c],
    }
}

/// Plain-Rust tiled matmul on tile-major data (used by tests).
pub fn mm2_tensor_reference(a: &[f32], b: &[f32], nt: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; nt * nt * 4];
    let tile = |m: &[f32], ti: usize, tj: usize, r: usize, q: usize| -> f32 {
        m[(ti * nt + tj) * 4 + r * 2 + q]
    };
    for i in 0..nt {
        for j in 0..nt {
            let mut acc = [0.0f32; 4];
            for k in 0..nt {
                // 2×2 tile product.
                for r in 0..2 {
                    for q in 0..2 {
                        let mut s = 0.0f32;
                        for t in 0..2 {
                            s += tile(a, i, k, r, t) * tile(b, k, j, t, q);
                        }
                        acc[r * 2 + q] += s;
                    }
                }
            }
            for (e, v) in acc.iter().enumerate() {
                c[(i * nt + j) * 4 + e] = *v;
            }
        }
    }
    c
}

/// CONV\[T\]: stride-2 tiled convolution: each non-overlapping 2×2 input
/// tile dot-multiplied with a 2×2 weight tile (the `Conv` higher-order op,
/// a window dot-product unit). 12×12 tile grid (24×24 image).
pub fn conv_tensor() -> Workload {
    const NT: i64 = 12;
    let mut m = Module::new("conv_t");
    let input = m.add_ro_mem_object("in", ScalarType::F32, (NT * NT * 4) as u64);
    let w = m.add_ro_mem_object("w", ScalarType::F32, 4);
    let output = m.add_mem_object("out", ScalarType::F32, (NT * NT) as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop_par(0, ValueRef::int(NT), 1, |b, i| {
        b.for_loop_par(0, ValueRef::int(NT), 1, |b, j| {
            let off = {
                let irow = b.mul(i, ValueRef::int(NT));
                let t = b.add(irow, j);
                b.mul(t, ValueRef::int(4))
            };
            let tile = b.load_tile(input, off, SHAPE);
            let wt = b.load_tile(w, ValueRef::int(0), SHAPE);
            let dot = b.tensor2(TensorOp::Conv, SHAPE, tile, wt);
            let orow = b.mul(i, ValueRef::int(NT));
            let oidx = b.add(orow, j);
            b.store(output, oidx, dot);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(71);
    let iin = rng.f32_vec((NT * NT * 4) as usize);
    let iw = rng.f32_vec(4);
    Workload {
        name: "CONV[T]",
        class: Class::InHouse,
        fp: true,
        tensor: true,
        module: m,
        inits: vec![(input, InitData::F32(iin)), (w, InitData::F32(iw))],
        outputs: vec![output],
    }
}

/// RGB2YUV: fixed-point colour-space conversion over 1024 pixels — long
/// chains of cheap integer ops, the op-fusion pass's favourite shape
/// (§6.1) and a cache-banking workload (§6.4).
pub fn rgb2yuv() -> Workload {
    const N: i64 = 1024;
    let mut m = Module::new("rgb2yuv");
    let r = m.add_ro_mem_object("r", ScalarType::I64, N as u64);
    let g = m.add_ro_mem_object("g", ScalarType::I64, N as u64);
    let bl = m.add_ro_mem_object("b", ScalarType::I64, N as u64);
    let y = m.add_mem_object("y", ScalarType::I64, N as u64);
    let u = m.add_mem_object("u", ScalarType::I64, N as u64);
    let v = m.add_mem_object("v", ScalarType::I64, N as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop_par(0, ValueRef::int(N), 1, |b, i| {
        let rv = b.load(r, i);
        let gv = b.load(g, i);
        let bv = b.load(bl, i);
        let term = |b: &mut FunctionBuilder, c: i64, x: ValueRef| b.mul(x, ValueRef::int(c));
        // Y = ((66R + 129G + 25B + 128) >> 8) + 16
        let y0 = term(b, 66, rv);
        let y1 = term(b, 129, gv);
        let y2 = term(b, 25, bv);
        let ys0 = b.add(y0, y1);
        let ys1 = b.add(ys0, y2);
        let ys2 = b.add(ys1, ValueRef::int(128));
        let ys3 = b.ashr(ys2, ValueRef::int(8));
        let yv = b.add(ys3, ValueRef::int(16));
        b.store(y, i, yv);
        // U = ((-38R - 74G + 112B + 128) >> 8) + 128
        let u0 = term(b, -38, rv);
        let u1 = term(b, -74, gv);
        let u2 = term(b, 112, bv);
        let us0 = b.add(u0, u1);
        let us1 = b.add(us0, u2);
        let us2 = b.add(us1, ValueRef::int(128));
        let us3 = b.ashr(us2, ValueRef::int(8));
        let uv = b.add(us3, ValueRef::int(128));
        b.store(u, i, uv);
        // V = ((112R - 94G - 18B + 128) >> 8) + 128
        let v0 = term(b, 112, rv);
        let v1 = term(b, -94, gv);
        let v2 = term(b, -18, bv);
        let vs0 = b.add(v0, v1);
        let vs1 = b.add(vs0, v2);
        let vs2 = b.add(vs1, ValueRef::int(128));
        let vs3 = b.ashr(vs2, ValueRef::int(8));
        let vv = b.add(vs3, ValueRef::int(128));
        b.store(v, i, vv);
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(73);
    let ir = rng.i64_vec(N as usize, 256);
    let ig = rng.i64_vec(N as usize, 256);
    let ib = rng.i64_vec(N as usize, 256);
    Workload {
        name: "RGB2YUV",
        class: Class::InHouse,
        fp: false,
        tensor: false,
        module: m,
        inits: vec![
            (r, InitData::I64(ir)),
            (g, InitData::I64(ig)),
            (bl, InitData::I64(ib)),
        ],
        outputs: vec![y, u, v],
    }
}

/// Scalar RELU over 2048 floats (the Figure 18 `RELU` entry).
pub fn relu_scalar() -> Workload {
    const N: i64 = 2048;
    let mut m = Module::new("relu");
    let input = m.add_ro_mem_object("in", ScalarType::F32, N as u64);
    let output = m.add_mem_object("out", ScalarType::F32, N as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop_par(0, ValueRef::int(N), 1, |b, i| {
        let v = b.load(input, i);
        let r = b.relu(v);
        b.store(output, i, r);
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(79);
    let iin = rng.f32_vec(N as usize);
    Workload {
        name: "RELU",
        class: Class::InHouse,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![(input, InitData::F32(iin))],
        outputs: vec![output],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let scale = x.abs().max(y.abs()).max(1.0);
            assert!((x - y).abs() <= 1e-4 * scale, "elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn relu_tensor_matches_native() {
        let w = relu_tensor();
        let mem = w.run_reference().unwrap();
        let InitData::F32(input) = &w.inits[0].1 else {
            panic!()
        };
        let expect: Vec<f32> = input.iter().map(|x| x.max(0.0)).collect();
        f32_close(&mem.read_f32(w.outputs[0]), &expect);
    }

    #[test]
    fn mm2_tensor_matches_native() {
        let w = mm2_tensor();
        let mem = w.run_reference().unwrap();
        let InitData::F32(a) = &w.inits[0].1 else {
            panic!()
        };
        let InitData::F32(b) = &w.inits[1].1 else {
            panic!()
        };
        f32_close(&mem.read_f32(w.outputs[0]), &mm2_tensor_reference(a, b, 8));
    }

    #[test]
    fn conv_tensor_matches_native() {
        let w = conv_tensor();
        let mem = w.run_reference().unwrap();
        let InitData::F32(input) = &w.inits[0].1 else {
            panic!()
        };
        let InitData::F32(wt) = &w.inits[1].1 else {
            panic!()
        };
        let out = mem.read_f32(w.outputs[0]);
        for t in 0..144usize {
            let mut e = 0.0f32;
            for k in 0..4 {
                e += input[t * 4 + k] * wt[k];
            }
            assert!((out[t] - e).abs() < 1e-4, "tile {t}");
        }
    }

    #[test]
    fn rgb2yuv_matches_native() {
        let w = rgb2yuv();
        let mem = w.run_reference().unwrap();
        let InitData::I64(r) = &w.inits[0].1 else {
            panic!()
        };
        let InitData::I64(g) = &w.inits[1].1 else {
            panic!()
        };
        let InitData::I64(bl) = &w.inits[2].1 else {
            panic!()
        };
        let y = mem.read_i64(w.outputs[0]);
        let u = mem.read_i64(w.outputs[1]);
        let v = mem.read_i64(w.outputs[2]);
        for k in 0..r.len() {
            assert_eq!(
                y[k],
                ((66 * r[k] + 129 * g[k] + 25 * bl[k] + 128) >> 8) + 16
            );
            assert_eq!(
                u[k],
                ((-38 * r[k] - 74 * g[k] + 112 * bl[k] + 128) >> 8) + 128
            );
            assert_eq!(
                v[k],
                ((112 * r[k] - 94 * g[k] - 18 * bl[k] + 128) >> 8) + 128
            );
        }
    }

    #[test]
    fn relu_scalar_matches_native() {
        let w = relu_scalar();
        let mem = w.run_reference().unwrap();
        let InitData::F32(input) = &w.inits[0].1 else {
            panic!()
        };
        let expect: Vec<f32> = input.iter().map(|x| x.max(0.0)).collect();
        f32_close(&mem.read_f32(w.outputs[0]), &expect);
    }
}

/// Scalar-source baseline of [`relu_tensor`]: the same computation written
/// without tensor intrinsics ("implements the operation through the
/// pipeline", §6.3). One element per loop iteration.
pub fn relu_tensor_scalar() -> Workload {
    const N: i64 = 1024;
    let mut m = Module::new("relu_t_scalar");
    let input = m.add_ro_mem_object("in", ScalarType::F32, N as u64);
    let output = m.add_mem_object("out", ScalarType::F32, N as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop_par(0, ValueRef::int(N), 1, |b, i| {
        let v = b.load(input, i);
        let r = b.relu(v);
        b.store(output, i, r);
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(61); // same inputs as relu_tensor
    let iin = rng.f32_vec(N as usize);
    Workload {
        name: "RELU[T]/scalar",
        class: Class::InHouse,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![(input, InitData::F32(iin))],
        outputs: vec![output],
    }
}

/// Scalar-source baseline of [`mm2_tensor`]: scalar loops over the same
/// tile-major data (per-element dot products walking tiles).
pub fn mm2_tensor_scalar() -> Workload {
    const NT: i64 = 8;
    let mut m = Module::new("mm2_t_scalar");
    let a = m.add_ro_mem_object("A", ScalarType::F32, (NT * NT * 4) as u64);
    let bm = m.add_ro_mem_object("B", ScalarType::F32, (NT * NT * 4) as u64);
    let c = m.add_mem_object("C", ScalarType::F32, (NT * NT * 4) as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    // For each output tile (i,j) and each element (r,q) of it: dot product
    // over k tiles × 2 inner elements.
    b.for_loop_par(0, ValueRef::int(NT), 1, |b, i| {
        b.for_loop_par(0, ValueRef::int(NT), 1, |b, j| {
            let irow = b.mul(i, ValueRef::int(NT * 4));
            let j4 = b.mul(j, ValueRef::int(4));
            let coff0 = b.add(irow, j4);
            for r in 0..2i64 {
                for q in 0..2i64 {
                    let acc = b.for_loop_acc(
                        ValueRef::int(0),
                        ValueRef::int(NT),
                        1,
                        &[(ValueRef::f32(0.0), Type::F32)],
                        |b, k, accs| {
                            let k4 = b.mul(k, ValueRef::int(4));
                            let aoff = b.add(irow, k4);
                            let krow = b.mul(k, ValueRef::int(NT * 4));
                            let boff = b.add(krow, j4);
                            let mut sum = accs[0];
                            for t in 0..2i64 {
                                let ai = b.add(aoff, ValueRef::int(r * 2 + t));
                                let av = b.load(a, ai);
                                let bi = b.add(boff, ValueRef::int(t * 2 + q));
                                let bv = b.load(bm, bi);
                                let p = b.fmul(av, bv);
                                sum = b.fadd(sum, p);
                            }
                            vec![sum]
                        },
                    );
                    let ci = b.add(coff0, ValueRef::int(r * 2 + q));
                    b.store(c, ci, acc[0]);
                }
            }
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(67); // same inputs as mm2_tensor
    let ia = rng.f32_vec((NT * NT * 4) as usize);
    let ib = rng.f32_vec((NT * NT * 4) as usize);
    Workload {
        name: "2MM[T]/scalar",
        class: Class::InHouse,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![(a, InitData::F32(ia)), (bm, InitData::F32(ib))],
        outputs: vec![c],
    }
}

/// Scalar-source baseline of [`conv_tensor`]: the stride-2 window dot
/// product written as four scalar MACs per output.
pub fn conv_tensor_scalar() -> Workload {
    const NT: i64 = 12;
    let mut m = Module::new("conv_t_scalar");
    let input = m.add_ro_mem_object("in", ScalarType::F32, (NT * NT * 4) as u64);
    let w = m.add_ro_mem_object("w", ScalarType::F32, 4);
    let output = m.add_mem_object("out", ScalarType::F32, (NT * NT) as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop_par(0, ValueRef::int(NT * NT), 1, |b, t| {
        let off = b.mul(t, ValueRef::int(4));
        let mut acc = ValueRef::f32(0.0);
        for k in 0..4i64 {
            let idx = b.add(off, ValueRef::int(k));
            let v = b.load(input, idx);
            let wv = b.load(w, ValueRef::int(k));
            let p = b.fmul(v, wv);
            acc = b.fadd(acc, p);
        }
        b.store(output, t, acc);
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(71); // same inputs as conv_tensor
    let iin = rng.f32_vec((NT * NT * 4) as usize);
    let iw = rng.f32_vec(4);
    Workload {
        name: "CONV[T]/scalar",
        class: Class::InHouse,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![(input, InitData::F32(iin)), (w, InitData::F32(iw))],
        outputs: vec![output],
    }
}

/// `(tensor, scalar-source)` workload pairs for the Figure 15 comparison.
pub fn tensor_pairs() -> Vec<(Workload, Workload)> {
    vec![
        (relu_tensor(), relu_tensor_scalar()),
        (mm2_tensor(), mm2_tensor_scalar()),
        (conv_tensor(), conv_tensor_scalar()),
    ]
}

#[cfg(test)]
mod scalar_baseline_tests {
    use super::*;

    #[test]
    fn scalar_baselines_compute_the_same_outputs() {
        for (tensor, scalar) in tensor_pairs() {
            let tm = tensor.run_reference().unwrap();
            let sm = scalar.run_reference().unwrap();
            for (&to, &so) in tensor.outputs.iter().zip(&scalar.outputs) {
                let tv = tm.read_f32(to);
                let sv = sm.read_f32(so);
                assert_eq!(tv.len(), sv.len(), "{}", tensor.name);
                for (k, (x, y)) in tv.iter().zip(&sv).enumerate() {
                    assert!(
                        (x - y).abs() <= 1e-4 * x.abs().max(y.abs()).max(1.0),
                        "{}[{k}]: {x} vs {y}",
                        tensor.name
                    );
                }
            }
        }
    }
}
