//! Polybench / MachSuite benchmarks (Table 2, first group): sequential C++
//! loop nests. Independent loops carry the HLS-pragma-equivalent parallel
//! hint (`for_loop_par`), exactly the annotation discipline the paper's HLS
//! comparison baseline also relies on.

use crate::{Class, InitData, Prng, Workload};
use muir_mir::builder::FunctionBuilder;
use muir_mir::instr::ValueRef;
use muir_mir::module::Module;
use muir_mir::types::{ScalarType, Type};

/// GEMM: `C[N][N] = A × B`, N = 32, single-precision.
pub fn gemm() -> Workload {
    const N: i64 = 32;
    let mut m = Module::new("gemm");
    let a = m.add_ro_mem_object("A", ScalarType::F32, (N * N) as u64);
    let bm = m.add_ro_mem_object("B", ScalarType::F32, (N * N) as u64);
    let c = m.add_mem_object("C", ScalarType::F32, (N * N) as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop_par(0, ValueRef::int(N), 1, |b, i| {
        b.for_loop_par(0, ValueRef::int(N), 1, |b, j| {
            let arow = b.mul(i, ValueRef::int(N));
            let acc = b.for_loop_acc(
                ValueRef::int(0),
                ValueRef::int(N),
                1,
                &[(ValueRef::f32(0.0), Type::F32)],
                |b, k, accs| {
                    let ai = b.add(arow, k);
                    let av = b.load(a, ai);
                    let bi0 = b.mul(k, ValueRef::int(N));
                    let bi = b.add(bi0, j);
                    let bv = b.load(bm, bi);
                    let p = b.fmul(av, bv);
                    vec![b.fadd(accs[0], p)]
                },
            );
            let ci = b.add(arow, j);
            b.store(c, ci, acc[0]);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(11);
    let ia = rng.f32_vec((N * N) as usize);
    let ib = rng.f32_vec((N * N) as usize);
    Workload {
        name: "GEMM",
        class: Class::Polybench,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![(a, InitData::F32(ia)), (bm, InitData::F32(ib))],
        outputs: vec![c],
    }
}

/// Plain-Rust GEMM used by the tests.
pub fn gemm_reference(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// COVAR: covariance matrix of `data[N][M]`, N = M = 24 (Polybench shape:
/// column means, centering, then `cov[M][M]`).
pub fn covar() -> Workload {
    const N: i64 = 24;
    const M: i64 = 24;
    let mut m = Module::new("covar");
    let data = m.add_mem_object("data", ScalarType::F32, (N * M) as u64);
    let mean = m.add_mem_object("mean", ScalarType::F32, M as u64);
    let cov = m.add_mem_object("cov", ScalarType::F32, (M * M) as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    // Column means.
    b.for_loop_par(0, ValueRef::int(M), 1, |b, j| {
        let acc = b.for_loop_acc(
            ValueRef::int(0),
            ValueRef::int(N),
            1,
            &[(ValueRef::f32(0.0), Type::F32)],
            |b, i, accs| {
                let idx0 = b.mul(i, ValueRef::int(M));
                let idx = b.add(idx0, j);
                let v = b.load(data, idx);
                vec![b.fadd(accs[0], v)]
            },
        );
        let mn = b.fdiv(acc[0], ValueRef::f32(N as f32));
        b.store(mean, j, mn);
    });
    // Center the data.
    b.for_loop_par(0, ValueRef::int(N), 1, |b, i| {
        b.for_loop_par(0, ValueRef::int(M), 1, |b, j| {
            let idx0 = b.mul(i, ValueRef::int(M));
            let idx = b.add(idx0, j);
            let v = b.load(data, idx);
            let mn = b.load(mean, j);
            let cvd = b.fsub(v, mn);
            b.store(data, idx, cvd);
        });
    });
    // Covariance.
    b.for_loop_par(0, ValueRef::int(M), 1, |b, j1| {
        b.for_loop_par(0, ValueRef::int(M), 1, |b, j2| {
            let acc = b.for_loop_acc(
                ValueRef::int(0),
                ValueRef::int(N),
                1,
                &[(ValueRef::f32(0.0), Type::F32)],
                |b, i, accs| {
                    let r0 = b.mul(i, ValueRef::int(M));
                    let i1 = b.add(r0, j1);
                    let i2 = b.add(r0, j2);
                    let v1 = b.load(data, i1);
                    let v2 = b.load(data, i2);
                    let p = b.fmul(v1, v2);
                    vec![b.fadd(accs[0], p)]
                },
            );
            let cv = b.fdiv(acc[0], ValueRef::f32((N - 1) as f32));
            let o0 = b.mul(j1, ValueRef::int(M));
            let oi = b.add(o0, j2);
            b.store(cov, oi, cv);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(13);
    let idata = rng.f32_vec((N * M) as usize);
    Workload {
        name: "COVAR",
        class: Class::Polybench,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![(data, InitData::F32(idata))],
        outputs: vec![cov],
    }
}

/// Plain-Rust COVAR used by the tests.
pub fn covar_reference(data_in: &[f32], n: usize, m: usize) -> Vec<f32> {
    let mut data = data_in.to_vec();
    let mut mean = vec![0.0f32; m];
    for j in 0..m {
        let mut acc = 0.0f32;
        for i in 0..n {
            acc += data[i * m + j];
        }
        mean[j] = acc / n as f32;
    }
    for i in 0..n {
        for j in 0..m {
            data[i * m + j] -= mean[j];
        }
    }
    let mut cov = vec![0.0f32; m * m];
    for j1 in 0..m {
        for j2 in 0..m {
            let mut acc = 0.0f32;
            for i in 0..n {
                acc += data[i * m + j1] * data[i * m + j2];
            }
            cov[j1 * m + j2] = acc / (n - 1) as f32;
        }
    }
    cov
}

/// FFT: iterative radix-2 DIT on N = 1024 complex points (separate
/// real/imag arrays, MachSuite style). The bit-reversal table and twiddle
/// factors are precomputed inputs, as in MachSuite's `fft/strided`.
pub fn fft() -> Workload {
    const N: i64 = 1024;
    const STAGES: i64 = 10;
    let mut m = Module::new("fft");
    let in_re = m.add_ro_mem_object("in_re", ScalarType::F32, N as u64);
    let in_im = m.add_ro_mem_object("in_im", ScalarType::F32, N as u64);
    let rev = m.add_ro_mem_object("rev", ScalarType::I64, N as u64);
    let tw_re = m.add_ro_mem_object("tw_re", ScalarType::F32, (N / 2) as u64);
    let tw_im = m.add_ro_mem_object("tw_im", ScalarType::F32, (N / 2) as u64);
    let re = m.add_mem_object("re", ScalarType::F32, N as u64);
    let im = m.add_mem_object("im", ScalarType::F32, N as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    // Bit-reversal copy.
    b.for_loop_par(0, ValueRef::int(N), 1, |b, i| {
        let r = b.load(rev, i);
        let vr = b.load(in_re, r);
        let vi = b.load(in_im, r);
        b.store(re, i, vr);
        b.store(im, i, vi);
    });
    // Stages (serial through memory); butterflies within a stage are
    // independent (disjoint pairs) — parallel hint, as the paper's FFT.
    b.for_loop(0, ValueRef::int(STAGES), 1, |b, s| {
        let half = b.shl(ValueRef::int(1), s);
        let twstride_sh = b.sub(ValueRef::int(STAGES - 1), s);
        b.for_loop_par(0, ValueRef::int(N / 2), 1, |b, k| {
            let hm1 = b.sub(half, ValueRef::int(1));
            let j = b.and(k, hm1);
            let grp = b.sub(k, j); // k - (k & (half-1)) = group base / 1
            let base = b.add(grp, grp); // each group spans 2*half
            let i1 = b.add(base, j);
            let i2 = b.add(i1, half);
            let twi = b.shl(j, twstride_sh);
            let wr = b.load(tw_re, twi);
            let wi = b.load(tw_im, twi);
            let ar1 = b.load(re, i1);
            let ai1 = b.load(im, i1);
            let ar2 = b.load(re, i2);
            let ai2 = b.load(im, i2);
            let tr0 = b.fmul(wr, ar2);
            let tr1 = b.fmul(wi, ai2);
            let tr = b.fsub(tr0, tr1);
            let ti0 = b.fmul(wr, ai2);
            let ti1 = b.fmul(wi, ar2);
            let ti = b.fadd(ti0, ti1);
            let or2 = b.fsub(ar1, tr);
            let oi2 = b.fsub(ai1, ti);
            let or1 = b.fadd(ar1, tr);
            let oi1 = b.fadd(ai1, ti);
            b.store(re, i2, or2);
            b.store(im, i2, oi2);
            b.store(re, i1, or1);
            b.store(im, i1, oi1);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    // Inputs.
    let mut rng = Prng::new(17);
    let ire = rng.f32_vec(N as usize);
    let iim = rng.f32_vec(N as usize);
    let mut irev = vec![0i64; N as usize];
    for (i, r) in irev.iter_mut().enumerate() {
        *r = (i as u64).reverse_bits().wrapping_shr(64 - STAGES as u32) as i64;
    }
    let mut itw_re = vec![0.0f32; (N / 2) as usize];
    let mut itw_im = vec![0.0f32; (N / 2) as usize];
    for t in 0..(N / 2) as usize {
        let ang = -2.0 * std::f64::consts::PI * t as f64 / N as f64;
        itw_re[t] = ang.cos() as f32;
        itw_im[t] = ang.sin() as f32;
    }
    Workload {
        name: "FFT",
        class: Class::Polybench,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![
            (in_re, InitData::F32(ire)),
            (in_im, InitData::F32(iim)),
            (rev, InitData::I64(irev)),
            (tw_re, InitData::F32(itw_re)),
            (tw_im, InitData::F32(itw_im)),
        ],
        outputs: vec![re, im],
    }
}

/// Plain-Rust FFT used by the tests (same algorithm and operation order).
pub fn fft_reference(in_re: &[f32], in_im: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let n = in_re.len();
    let stages = n.trailing_zeros();
    let mut re = vec![0.0f32; n];
    let mut im = vec![0.0f32; n];
    for i in 0..n {
        let r = (i as u64).reverse_bits().wrapping_shr(64 - stages) as usize;
        re[i] = in_re[r];
        im[i] = in_im[r];
    }
    let mut tw_re = vec![0.0f32; n / 2];
    let mut tw_im = vec![0.0f32; n / 2];
    for t in 0..n / 2 {
        let ang = -2.0 * std::f64::consts::PI * t as f64 / n as f64;
        tw_re[t] = ang.cos() as f32;
        tw_im[t] = ang.sin() as f32;
    }
    for s in 0..stages {
        let half = 1usize << s;
        for k in 0..n / 2 {
            let j = k & (half - 1);
            let base = 2 * (k - j);
            let i1 = base + j;
            let i2 = i1 + half;
            let twi = j << (stages - 1 - s);
            let (wr, wi) = (tw_re[twi], tw_im[twi]);
            let tr = wr * re[i2] - wi * im[i2];
            let ti = wr * im[i2] + wi * re[i2];
            let (r1, i1v) = (re[i1], im[i1]);
            re[i2] = r1 - tr;
            im[i2] = i1v - ti;
            re[i1] = r1 + tr;
            im[i1] = i1v + ti;
        }
    }
    (re, im)
}

/// SPMV: CSR sparse matrix-vector product, 256 rows, 8 nnz/row.
pub fn spmv() -> Workload {
    const ROWS: i64 = 256;
    const NNZ_PER_ROW: i64 = 8;
    const NNZ: i64 = ROWS * NNZ_PER_ROW;
    let mut m = Module::new("spmv");
    let vals = m.add_ro_mem_object("vals", ScalarType::F32, NNZ as u64);
    let cols = m.add_ro_mem_object("cols", ScalarType::I64, NNZ as u64);
    let rowptr = m.add_ro_mem_object("rowptr", ScalarType::I64, (ROWS + 1) as u64);
    let x = m.add_ro_mem_object("x", ScalarType::F32, ROWS as u64);
    let y = m.add_mem_object("y", ScalarType::F32, ROWS as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop_par(0, ValueRef::int(ROWS), 1, |b, i| {
        let lo = b.load(rowptr, i);
        let ip1 = b.add(i, ValueRef::int(1));
        let hi = b.load(rowptr, ip1);
        let acc = b.for_loop_acc(
            lo,
            hi,
            1,
            &[(ValueRef::f32(0.0), Type::F32)],
            |b, e, accs| {
                let v = b.load(vals, e);
                let cidx = b.load(cols, e);
                let xv = b.load(x, cidx);
                let p = b.fmul(v, xv);
                vec![b.fadd(accs[0], p)]
            },
        );
        b.store(y, i, acc[0]);
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(19);
    let ivals = rng.f32_vec(NNZ as usize);
    let icols: Vec<i64> = (0..NNZ)
        .map(|_| rng.next_below(ROWS as u64) as i64)
        .collect();
    let irowptr: Vec<i64> = (0..=ROWS).map(|r| r * NNZ_PER_ROW).collect();
    let ix = rng.f32_vec(ROWS as usize);
    Workload {
        name: "SPMV",
        class: Class::Polybench,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![
            (vals, InitData::F32(ivals)),
            (cols, InitData::I64(icols)),
            (rowptr, InitData::I64(irowptr)),
            (x, InitData::F32(ix)),
        ],
        outputs: vec![y],
    }
}

/// Plain-Rust SPMV used by the tests.
pub fn spmv_reference(vals: &[f32], cols: &[i64], rowptr: &[i64], x: &[f32]) -> Vec<f32> {
    let rows = rowptr.len() - 1;
    let mut y = vec![0.0f32; rows];
    for i in 0..rows {
        let mut acc = 0.0f32;
        for e in rowptr[i]..rowptr[i + 1] {
            acc += vals[e as usize] * x[cols[e as usize] as usize];
        }
        y[i] = acc;
    }
    y
}

fn matmul_loops(
    b: &mut FunctionBuilder,
    n: i64,
    src_a: muir_mir::instr::MemObjId,
    src_b: muir_mir::instr::MemObjId,
    dst: muir_mir::instr::MemObjId,
) {
    b.for_loop_par(0, ValueRef::int(n), 1, |b, i| {
        b.for_loop_par(0, ValueRef::int(n), 1, |b, j| {
            let row = b.mul(i, ValueRef::int(n));
            let acc = b.for_loop_acc(
                ValueRef::int(0),
                ValueRef::int(n),
                1,
                &[(ValueRef::f32(0.0), Type::F32)],
                |b, k, accs| {
                    let ai = b.add(row, k);
                    let av = b.load(src_a, ai);
                    let bi0 = b.mul(k, ValueRef::int(n));
                    let bi = b.add(bi0, j);
                    let bv = b.load(src_b, bi);
                    let p = b.fmul(av, bv);
                    vec![b.fadd(accs[0], p)]
                },
            );
            let ci = b.add(row, j);
            b.store(dst, ci, acc[0]);
        });
    });
}

/// 2MM: `D = (A×B)×C`, N = 24.
pub fn mm2() -> Workload {
    const N: i64 = 24;
    let mut m = Module::new("mm2");
    let a = m.add_ro_mem_object("A", ScalarType::F32, (N * N) as u64);
    let bb = m.add_ro_mem_object("B", ScalarType::F32, (N * N) as u64);
    let c = m.add_ro_mem_object("C", ScalarType::F32, (N * N) as u64);
    let tmp = m.add_mem_object("tmp", ScalarType::F32, (N * N) as u64);
    let d = m.add_mem_object("D", ScalarType::F32, (N * N) as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    matmul_loops(&mut b, N, a, bb, tmp);
    matmul_loops(&mut b, N, tmp, c, d);
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(23);
    let ia = rng.f32_vec((N * N) as usize);
    let ib = rng.f32_vec((N * N) as usize);
    let ic = rng.f32_vec((N * N) as usize);
    Workload {
        name: "2MM",
        class: Class::Polybench,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![
            (a, InitData::F32(ia)),
            (bb, InitData::F32(ib)),
            (c, InitData::F32(ic)),
        ],
        outputs: vec![d],
    }
}

/// 3MM: `G = (A×B)×(C×D)`, N = 20.
pub fn mm3() -> Workload {
    const N: i64 = 20;
    let mut m = Module::new("mm3");
    let a = m.add_ro_mem_object("A", ScalarType::F32, (N * N) as u64);
    let bb = m.add_ro_mem_object("B", ScalarType::F32, (N * N) as u64);
    let c = m.add_ro_mem_object("C", ScalarType::F32, (N * N) as u64);
    let d = m.add_ro_mem_object("D", ScalarType::F32, (N * N) as u64);
    let e = m.add_mem_object("E", ScalarType::F32, (N * N) as u64);
    let f = m.add_mem_object("F", ScalarType::F32, (N * N) as u64);
    let g = m.add_mem_object("G", ScalarType::F32, (N * N) as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    matmul_loops(&mut b, N, a, bb, e);
    matmul_loops(&mut b, N, c, d, f);
    matmul_loops(&mut b, N, e, f, g);
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(29);
    let ia = rng.f32_vec((N * N) as usize);
    let ib = rng.f32_vec((N * N) as usize);
    let ic = rng.f32_vec((N * N) as usize);
    let id = rng.f32_vec((N * N) as usize);
    Workload {
        name: "3MM",
        class: Class::Polybench,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![
            (a, InitData::F32(ia)),
            (bb, InitData::F32(ib)),
            (c, InitData::F32(ic)),
            (d, InitData::F32(id)),
        ],
        outputs: vec![g],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let scale = x.abs().max(y.abs()).max(1.0);
            assert!((x - y).abs() <= 1e-4 * scale, "elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn gemm_matches_native() {
        let w = gemm();
        let mem = w.run_reference().unwrap();
        let (InitData::F32(a), InitData::F32(b)) = (&w.inits[0].1, &w.inits[1].1) else {
            panic!()
        };
        let expect = gemm_reference(a, b, 32);
        f32_close(&mem.read_f32(w.outputs[0]), &expect);
    }

    #[test]
    fn covar_matches_native() {
        let w = covar();
        let mem = w.run_reference().unwrap();
        let InitData::F32(data) = &w.inits[0].1 else {
            panic!()
        };
        let expect = covar_reference(data, 24, 24);
        f32_close(&mem.read_f32(w.outputs[0]), &expect);
    }

    #[test]
    fn fft_matches_native() {
        let w = fft();
        let mem = w.run_reference().unwrap();
        let (InitData::F32(ire), InitData::F32(iim)) = (&w.inits[0].1, &w.inits[1].1) else {
            panic!()
        };
        let (ere, eim) = fft_reference(ire, iim);
        f32_close(&mem.read_f32(w.outputs[0]), &ere);
        f32_close(&mem.read_f32(w.outputs[1]), &eim);
    }

    #[test]
    fn spmv_matches_native() {
        let w = spmv();
        let mem = w.run_reference().unwrap();
        let InitData::F32(vals) = &w.inits[0].1 else {
            panic!()
        };
        let InitData::I64(cols) = &w.inits[1].1 else {
            panic!()
        };
        let InitData::I64(rowptr) = &w.inits[2].1 else {
            panic!()
        };
        let InitData::F32(x) = &w.inits[3].1 else {
            panic!()
        };
        let expect = spmv_reference(vals, cols, rowptr, x);
        f32_close(&mem.read_f32(w.outputs[0]), &expect);
    }

    #[test]
    fn mm2_matches_native() {
        let w = mm2();
        let mem = w.run_reference().unwrap();
        let InitData::F32(a) = &w.inits[0].1 else {
            panic!()
        };
        let InitData::F32(b) = &w.inits[1].1 else {
            panic!()
        };
        let InitData::F32(c) = &w.inits[2].1 else {
            panic!()
        };
        let tmp = gemm_reference(a, b, 24);
        let expect = gemm_reference(&tmp, c, 24);
        f32_close(&mem.read_f32(w.outputs[0]), &expect);
    }

    #[test]
    fn mm3_matches_native() {
        let w = mm3();
        let mem = w.run_reference().unwrap();
        let InitData::F32(a) = &w.inits[0].1 else {
            panic!()
        };
        let InitData::F32(b) = &w.inits[1].1 else {
            panic!()
        };
        let InitData::F32(c) = &w.inits[2].1 else {
            panic!()
        };
        let InitData::F32(d) = &w.inits[3].1 else {
            panic!()
        };
        let e = gemm_reference(a, b, 20);
        let f = gemm_reference(c, d, 20);
        let expect = gemm_reference(&e, &f, 20);
        f32_close(&mem.read_f32(w.outputs[0]), &expect);
    }
}
