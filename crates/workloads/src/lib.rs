//! `muir-workloads` — every benchmark the paper evaluates, expressed in the
//! `mir` compiler IR exactly as the paper's front-ends would produce them:
//!
//! * **Polybench/MachSuite** (§5.1, Table 2): GEMM, COVAR, FFT, SPMV, 2MM,
//!   3MM — C++-style sequential loop nests (with HLS-pragma-equivalent
//!   parallel hints where iterations are independent).
//! * **Cilk** (Table 2): FIB, MERGESORT, SAXPY, STENCIL, IMG-SCALE —
//!   Tapir `detach`/`sync` parallelism via `par_for`.
//! * **Tensorflow** (Table 2): CONV, DENSE8, DENSE16, SOFTM8, SOFTM16 —
//!   NN layers lowered to loop nests.
//! * **In-house tensor** (Table 2, §6.3): RELU\[T\], 2MM\[T\], CONV\[T\] —
//!   Tensor2D higher-order ops — plus RGB2YUV (§6.4 cache banking) and
//!   scalar RELU (Figure 18).
//!
//! Inputs are deterministic (fixed-seed PRNG); every workload module's test
//! checks the `mir` interpreter against a plain-Rust reference
//! implementation, which transitively validates the simulated accelerators.

pub mod cilk;
pub mod inhouse;
pub mod polybench;
pub mod tensorflow;
pub mod tensorgraph;

use muir_mir::instr::MemObjId;
use muir_mir::interp::{Interp, InterpError, Memory};
use muir_mir::module::Module;

/// Benchmark suite classification (Table 2 groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Polybench / MachSuite loop nests.
    Polybench,
    /// Cilk task-parallel programs.
    Cilk,
    /// Tensorflow-derived NN layers.
    Tensorflow,
    /// In-house (tensor ops, RGB2YUV).
    InHouse,
    /// Tensor-graph front-door families (ATTN, CONVNET, MT-INFER).
    TensorGraph,
}

/// Deterministic initial contents of one memory object.
#[derive(Debug, Clone)]
pub enum InitData {
    /// 32-bit float data.
    F32(Vec<f32>),
    /// Integer data.
    I64(Vec<i64>),
}

/// A complete benchmark: program, inputs, and the objects to verify.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Paper name (e.g. `GEMM`, `2MM\[T\]`).
    pub name: &'static str,
    /// Suite.
    pub class: Class,
    /// Uses floating point (Table 2's `F` superscript).
    pub fp: bool,
    /// Uses Tensor2D higher-order ops (Table 2's `[T]`).
    pub tensor: bool,
    /// The program.
    pub module: Module,
    /// Initial memory contents.
    pub inits: Vec<(MemObjId, InitData)>,
    /// Objects whose final contents define correctness.
    pub outputs: Vec<MemObjId>,
}

impl Workload {
    /// Fresh memory with this workload's inputs loaded.
    pub fn fresh_memory(&self) -> Memory {
        let mut mem = Memory::from_module(&self.module);
        for (obj, data) in &self.inits {
            match data {
                InitData::F32(v) => mem.init_f32(*obj, v),
                InitData::I64(v) => mem.init_i64(*obj, v),
            }
        }
        mem
    }

    /// Run the reference interpreter; returns the final memory.
    ///
    /// # Errors
    /// Propagates interpreter faults.
    pub fn run_reference(&self) -> Result<Memory, InterpError> {
        let mut mem = self.fresh_memory();
        Interp::new(&self.module).run_main(&mut mem, &[])?;
        Ok(mem)
    }

    /// Compare two memories on this workload's output objects with a small
    /// floating-point tolerance (dataflow reassociation never occurs — the
    /// graph evaluates the same expression tree — but exp/div can differ in
    /// the last ulp between environments).
    pub fn outputs_match(&self, a: &Memory, b: &Memory) -> bool {
        for &obj in &self.outputs {
            let (oa, ob) = (&a.objects[obj.0 as usize], &b.objects[obj.0 as usize]);
            if oa.len() != ob.len() {
                return false;
            }
            for (x, y) in oa.iter().zip(ob) {
                use muir_mir::value::Value;
                let ok = match (x, y) {
                    (Value::F32(p), Value::F32(q)) => {
                        let scale = p.abs().max(q.abs()).max(1.0);
                        (p - q).abs() <= 1e-4 * scale
                    }
                    _ => x == y,
                };
                if !ok {
                    return false;
                }
            }
        }
        true
    }
}

/// A deterministic xorshift PRNG for input generation (independent of crate
/// versions so inputs never drift).
#[derive(Debug, Clone)]
pub struct Prng(u64);

impl Prng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Prng {
        Prng(seed.max(1))
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform float in [0, 1).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform integer in [0, bound).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// A vector of floats in [-1, 1).
    pub fn f32_vec(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.next_f32() * 2.0 - 1.0).collect()
    }

    /// A vector of small integers in [0, bound).
    pub fn i64_vec(&mut self, n: usize, bound: u64) -> Vec<i64> {
        (0..n).map(|_| self.next_below(bound) as i64).collect()
    }
}

/// One registry row: the single source of truth tying a paper name to
/// its family tag and builder. Every suite that enumerates workloads
/// (differential tests, the bit-identity matrix, BENCH_sim.json, DSE)
/// iterates this table, so a new family joins them all by construction.
#[derive(Debug, Clone, Copy)]
pub struct RegistryEntry {
    /// Paper name (e.g. `GEMM`, `2MM[T]`, `ATTN`).
    pub name: &'static str,
    /// Suite / family tag.
    pub class: Class,
    /// Builds the full workload (module + inputs + outputs).
    pub build: fn() -> Workload,
}

fn dense8() -> Workload {
    tensorflow::dense(8)
}
fn dense16() -> Workload {
    tensorflow::dense(16)
}
fn softm8() -> Workload {
    tensorflow::softmax(8)
}
fn softm16() -> Workload {
    tensorflow::softmax(16)
}

/// The central workload registry, in the paper's Table 2 order (tensor-
/// graph families appended as the fifth group).
pub const REGISTRY: &[RegistryEntry] = &[
    RegistryEntry {
        name: "GEMM",
        class: Class::Polybench,
        build: polybench::gemm,
    },
    RegistryEntry {
        name: "COVAR",
        class: Class::Polybench,
        build: polybench::covar,
    },
    RegistryEntry {
        name: "FFT",
        class: Class::Polybench,
        build: polybench::fft,
    },
    RegistryEntry {
        name: "SPMV",
        class: Class::Polybench,
        build: polybench::spmv,
    },
    RegistryEntry {
        name: "2MM",
        class: Class::Polybench,
        build: polybench::mm2,
    },
    RegistryEntry {
        name: "3MM",
        class: Class::Polybench,
        build: polybench::mm3,
    },
    RegistryEntry {
        name: "FIB",
        class: Class::Cilk,
        build: cilk::fib,
    },
    RegistryEntry {
        name: "M-SORT",
        class: Class::Cilk,
        build: cilk::mergesort,
    },
    RegistryEntry {
        name: "SAXPY",
        class: Class::Cilk,
        build: cilk::saxpy,
    },
    RegistryEntry {
        name: "STENCIL",
        class: Class::Cilk,
        build: cilk::stencil,
    },
    RegistryEntry {
        name: "IMG-SCALE",
        class: Class::Cilk,
        build: cilk::img_scale,
    },
    RegistryEntry {
        name: "CONV",
        class: Class::Tensorflow,
        build: tensorflow::conv,
    },
    RegistryEntry {
        name: "DENSE8",
        class: Class::Tensorflow,
        build: dense8,
    },
    RegistryEntry {
        name: "DENSE16",
        class: Class::Tensorflow,
        build: dense16,
    },
    RegistryEntry {
        name: "SOFTM8",
        class: Class::Tensorflow,
        build: softm8,
    },
    RegistryEntry {
        name: "SOFTM16",
        class: Class::Tensorflow,
        build: softm16,
    },
    RegistryEntry {
        name: "RELU[T]",
        class: Class::InHouse,
        build: inhouse::relu_tensor,
    },
    RegistryEntry {
        name: "2MM[T]",
        class: Class::InHouse,
        build: inhouse::mm2_tensor,
    },
    RegistryEntry {
        name: "CONV[T]",
        class: Class::InHouse,
        build: inhouse::conv_tensor,
    },
    RegistryEntry {
        name: "RGB2YUV",
        class: Class::InHouse,
        build: inhouse::rgb2yuv,
    },
    RegistryEntry {
        name: "RELU",
        class: Class::InHouse,
        build: inhouse::relu_scalar,
    },
    RegistryEntry {
        name: "ATTN",
        class: Class::TensorGraph,
        build: tensorgraph::attn,
    },
    RegistryEntry {
        name: "CONVNET",
        class: Class::TensorGraph,
        build: tensorgraph::convnet,
    },
    RegistryEntry {
        name: "MT-INFER",
        class: Class::TensorGraph,
        build: tensorgraph::mt_infer,
    },
];

/// All benchmarks, in registry (Table 2) order.
pub fn all() -> Vec<Workload> {
    REGISTRY.iter().map(|e| (e.build)()).collect()
}

/// All registered paper names, in registry order.
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|e| e.name).collect()
}

/// Look up a benchmark by its paper name (builds only that workload).
pub fn by_name(name: &str) -> Option<Workload> {
    REGISTRY
        .iter()
        .find(|e| e.name == name)
        .map(|e| (e.build)())
}

/// All benchmarks of one family.
pub fn by_class(class: Class) -> Vec<Workload> {
    REGISTRY
        .iter()
        .filter(|e| e.class == class)
        .map(|e| (e.build)())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        let ws = all();
        assert_eq!(ws.len(), REGISTRY.len());
        assert_eq!(ws.len(), 24);
        let names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        for expect in [
            "GEMM",
            "COVAR",
            "FFT",
            "SPMV",
            "2MM",
            "3MM",
            "FIB",
            "M-SORT",
            "SAXPY",
            "STENCIL",
            "IMG-SCALE",
            "CONV",
            "DENSE8",
            "DENSE16",
            "SOFTM8",
            "SOFTM16",
            "RELU[T]",
            "2MM[T]",
            "CONV[T]",
            "RGB2YUV",
            "RELU",
            "ATTN",
            "CONVNET",
            "MT-INFER",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn registry_tags_match_built_workloads() {
        for e in REGISTRY {
            let w = (e.build)();
            assert_eq!(w.name, e.name, "registry name drifted");
            assert_eq!(w.class, e.class, "{}: family tag drifted", e.name);
        }
        // Names are unique.
        let mut ns = names();
        ns.sort_unstable();
        ns.dedup();
        assert_eq!(ns.len(), REGISTRY.len());
    }

    #[test]
    fn lookup_by_class() {
        assert_eq!(by_class(Class::TensorGraph).len(), 3);
        assert_eq!(by_class(Class::Polybench).len(), 6);
    }

    #[test]
    fn all_modules_verify() {
        for w in all() {
            muir_mir::verify::verify_module(&w.module)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn all_references_run() {
        for w in all() {
            w.run_reference()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn prng_is_deterministic() {
        let mut a = Prng::new(7);
        let mut b = Prng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let v = Prng::new(9).f32_vec(32);
        assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("GEMM").is_some());
        assert!(by_name("2MM[T]").is_some());
        assert!(by_name("NOPE").is_none());
    }
}
