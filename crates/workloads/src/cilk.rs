//! Cilk benchmarks (Table 2, second group): Tapir `detach`/`sync` task
//! parallelism via `par_for`, matching the paper's Cilk front-end.
//!
//! FIB and MERGESORT are recursive in the paper; the paper converts
//! recursion to an iterative pattern in LLVM before translation (§3.5).
//! MERGESORT here is the standard bottom-up (iterative) formulation. FIB is
//! modelled as its recursion-to-iteration conversion: the call tree of
//! `fib(15)` is flattened into an array of task nodes processed by
//! `parallel_for`, preserving the task count (1973 calls) and the
//! per-task work of the original — this is what gives FIB its "extensive
//! parallelism" in Figure 12.

use crate::{Class, InitData, Prng, Workload};
use muir_mir::builder::FunctionBuilder;
use muir_mir::instr::{CmpPred, ValueRef};
use muir_mir::module::Module;
use muir_mir::types::{ScalarType, Type};

/// Number of calls in the recursion tree of `fib(n)`.
pub fn fib_call_count(n: u64) -> u64 {
    // calls(n) = calls(n-1) + calls(n-2) + 1; calls(0) = calls(1) = 1.
    let (mut a, mut b) = (1u64, 1u64);
    if n == 0 || n == 1 {
        return 1;
    }
    for _ in 2..=n {
        let c = a + b + 1;
        a = b;
        b = c;
    }
    b
}

/// FIB(15): the flattened task tree of the Cilk `spawn fib(n-1); spawn
/// fib(n-2)` recursion — one parallel task per call node. Each task
/// computes its node's depth-local contribution; results accumulate per
/// node and the per-node values are the verified output.
pub fn fib() -> Workload {
    const N: u64 = 15;
    let calls = fib_call_count(N) as i64; // 1973
    let mut m = Module::new("fib");
    let depth = m.add_ro_mem_object("depth", ScalarType::I64, calls as u64);
    let out = m.add_mem_object("out", ScalarType::I64, calls as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.par_for(0, calls, 1, |b, i| {
        // Per-call work: the base-case test + add of the two child results
        // (modelled as a small arithmetic body over the node's depth).
        let d = b.load(depth, i);
        let is_base = b.icmp(CmpPred::Le, d, ValueRef::int(1));
        let dm1 = b.sub(d, ValueRef::int(1));
        let dm2 = b.sub(d, ValueRef::int(2));
        let sum = b.add(dm1, dm2);
        let r = b.select(is_base, ValueRef::int(1), sum);
        b.store(out, i, r);
    });
    b.ret(None);
    m.add_function(b.finish());
    // The depth of each call node in DFS order of the fib(15) tree.
    let mut depths = Vec::with_capacity(calls as usize);
    fn walk(n: i64, depths: &mut Vec<i64>) {
        depths.push(n);
        if n > 1 {
            walk(n - 1, depths);
            walk(n - 2, depths);
        }
    }
    walk(N as i64, &mut depths);
    assert_eq!(depths.len(), calls as usize);
    Workload {
        name: "FIB",
        class: Class::Cilk,
        fp: false,
        tensor: false,
        module: m,
        inits: vec![(depth, InitData::I64(depths))],
        outputs: vec![out],
    }
}

/// Bottom-up MERGESORT over 256 integers: stage loop doubles the run
/// width; runs within a stage merge in parallel (Cilk spawns); a copy-back
/// loop ping-pongs the buffers.
pub fn mergesort() -> Workload {
    const N: i64 = 256;
    const STAGES: i64 = 8; // log2(N)
    let mut m = Module::new("msort");
    let a = m.add_mem_object("a", ScalarType::I64, N as u64);
    let buf = m.add_mem_object("buf", ScalarType::I64, N as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.for_loop(0, ValueRef::int(STAGES), 1, |b, s| {
        let width = b.shl(ValueRef::int(1), s);
        let two_w = b.add(width, width);
        let runs = b.div(ValueRef::int(N), two_w);
        // Merge each pair of runs (parallel tasks).
        b.par_for_dyn(ValueRef::int(0), runs, 1, |b, p| {
            let lo = b.mul(p, two_w);
            let mid = b.add(lo, width);
            b.for_loop_acc(
                ValueRef::int(0),
                two_w,
                1,
                &[(ValueRef::int(0), Type::I64), (ValueRef::int(0), Type::I64)],
                |b, k, accs| {
                    let (i, j) = (accs[0], accs[1]);
                    let li = b.add(lo, i);
                    let rj = b.add(mid, j);
                    // Clamp the right index so speculative loads stay in
                    // bounds when j == width on the last pair.
                    let rj_ok = b.icmp(CmpPred::Lt, rj, ValueRef::int(N));
                    let rj_c = b.select(rj_ok, rj, ValueRef::int(N - 1));
                    let li_ok = b.icmp(CmpPred::Lt, li, ValueRef::int(N));
                    let li_c = b.select(li_ok, li, ValueRef::int(N - 1));
                    let av = b.load(a, li_c);
                    let bv = b.load(a, rj_c);
                    let left_has = b.icmp(CmpPred::Lt, i, width);
                    let right_has = b.icmp(CmpPred::Lt, j, width);
                    let a_le_b = b.icmp(CmpPred::Le, av, bv);
                    let no_right = b.xor(
                        right_has,
                        ValueRef::Const(muir_mir::instr::ConstVal::Bool(true)),
                    );
                    let pick_cmp = b.and(a_le_b, left_has);
                    let pick_left0 = b.or(pick_cmp, no_right);
                    let pick_left = b.and(pick_left0, left_has);
                    let outv = b.select(pick_left, av, bv);
                    let ok = b.add(lo, k);
                    b.store(buf, ok, outv);
                    let i1 = b.add(i, ValueRef::int(1));
                    let j1 = b.add(j, ValueRef::int(1));
                    let ni = b.select(pick_left, i1, i);
                    let nj = b.select(pick_left, j, j1);
                    vec![ni, nj]
                },
            );
        });
        // Copy back (parallel).
        b.par_for(0, N, 1, |b, i| {
            let v = b.load(buf, i);
            b.store(a, i, v);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(31);
    let init = rng.i64_vec(N as usize, 10_000);
    Workload {
        name: "M-SORT",
        class: Class::Cilk,
        fp: false,
        tensor: false,
        module: m,
        inits: vec![(a, InitData::I64(init))],
        outputs: vec![a],
    }
}

/// SAXPY: `y = a·x + y` over 4096 floats, one Cilk task per element chunk.
pub fn saxpy() -> Workload {
    const N: i64 = 4096;
    let mut m = Module::new("saxpy");
    let x = m.add_ro_mem_object("x", ScalarType::F32, N as u64);
    let y = m.add_mem_object("y", ScalarType::F32, N as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.par_for(0, N, 1, |b, i| {
        let xv = b.load(x, i);
        let yv = b.load(y, i);
        let ax = b.fmul(xv, ValueRef::f32(2.5));
        let s = b.fadd(ax, yv);
        b.store(y, i, s);
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(37);
    let ix = rng.f32_vec(N as usize);
    let iy = rng.f32_vec(N as usize);
    Workload {
        name: "SAXPY",
        class: Class::Cilk,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![(x, InitData::F32(ix)), (y, InitData::F32(iy))],
        outputs: vec![y],
    }
}

/// STENCIL: 3×3 mean filter over a 34×34 grid producing the 32×32
/// interior, one Cilk task per output row.
pub fn stencil() -> Workload {
    const W: i64 = 34;
    const OW: i64 = 32;
    let mut m = Module::new("stencil");
    let input = m.add_ro_mem_object("in", ScalarType::F32, (W * W) as u64);
    let output = m.add_mem_object("out", ScalarType::F32, (OW * OW) as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.par_for(0, OW, 1, |b, i| {
        b.for_loop(0, ValueRef::int(OW), 1, |b, j| {
            let mut acc = ValueRef::f32(0.0);
            let mut acc_node = None;
            for di in 0..3i64 {
                for dj in 0..3i64 {
                    let r0 = b.add(i, ValueRef::int(di));
                    let row = b.mul(r0, ValueRef::int(W));
                    let c0 = b.add(j, ValueRef::int(dj));
                    let idx = b.add(row, c0);
                    let v = b.load(input, idx);
                    let nacc = b.fadd(acc, v);
                    acc = nacc;
                    acc_node = Some(nacc);
                }
            }
            let total = acc_node.expect("nonempty stencil");
            let mean = b.fmul(total, ValueRef::f32(1.0 / 9.0));
            let orow = b.mul(i, ValueRef::int(OW));
            let oidx = b.add(orow, j);
            b.store(output, oidx, mean);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(41);
    let iin = rng.f32_vec((W * W) as usize);
    Workload {
        name: "STENCIL",
        class: Class::Cilk,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![(input, InitData::F32(iin))],
        outputs: vec![output],
    }
}

/// IMG-SCALE: 2× box downscale of a 64×64 image to 32×32, one Cilk task
/// per output row.
pub fn img_scale() -> Workload {
    const IW: i64 = 64;
    const OW: i64 = 32;
    let mut m = Module::new("imgscale");
    let input = m.add_ro_mem_object("in", ScalarType::F32, (IW * IW) as u64);
    let output = m.add_mem_object("out", ScalarType::F32, (OW * OW) as u64);
    let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
    b.par_for(0, OW, 1, |b, i| {
        b.for_loop(0, ValueRef::int(OW), 1, |b, j| {
            let si = b.mul(i, ValueRef::int(2));
            let sj = b.mul(j, ValueRef::int(2));
            let r0 = b.mul(si, ValueRef::int(IW));
            let i00 = b.add(r0, sj);
            let v00 = b.load(input, i00);
            let i01 = b.add(i00, ValueRef::int(1));
            let v01 = b.load(input, i01);
            let i10 = b.add(i00, ValueRef::int(IW));
            let v10 = b.load(input, i10);
            let i11 = b.add(i10, ValueRef::int(1));
            let v11 = b.load(input, i11);
            let s0 = b.fadd(v00, v01);
            let s1 = b.fadd(v10, v11);
            let s = b.fadd(s0, s1);
            let mean = b.fmul(s, ValueRef::f32(0.25));
            let orow = b.mul(i, ValueRef::int(OW));
            let oidx = b.add(orow, j);
            b.store(output, oidx, mean);
        });
    });
    b.ret(None);
    m.add_function(b.finish());
    let mut rng = Prng::new(43);
    let iin = rng.f32_vec((IW * IW) as usize);
    Workload {
        name: "IMG-SCALE",
        class: Class::Cilk,
        fp: true,
        tensor: false,
        module: m,
        inits: vec![(input, InitData::F32(iin))],
        outputs: vec![output],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fib_call_counts() {
        assert_eq!(fib_call_count(0), 1);
        assert_eq!(fib_call_count(1), 1);
        assert_eq!(fib_call_count(2), 3);
        assert_eq!(fib_call_count(5), 15);
        assert_eq!(fib_call_count(15), 1973);
    }

    #[test]
    fn fib_leaf_and_interior_values() {
        let w = fib();
        let mem = w.run_reference().unwrap();
        let out = mem.read_i64(w.outputs[0]);
        let InitData::I64(depths) = &w.inits[0].1 else {
            panic!()
        };
        for (k, &d) in depths.iter().enumerate() {
            let expect = if d <= 1 { 1 } else { 2 * d - 3 };
            assert_eq!(out[k], expect, "node {k} depth {d}");
        }
    }

    #[test]
    fn mergesort_sorts() {
        let w = mergesort();
        let mem = w.run_reference().unwrap();
        let out = mem.read_i64(w.outputs[0]);
        let InitData::I64(init) = &w.inits[0].1 else {
            panic!()
        };
        let mut expect = init.clone();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn saxpy_matches_native() {
        let w = saxpy();
        let mem = w.run_reference().unwrap();
        let InitData::F32(x) = &w.inits[0].1 else {
            panic!()
        };
        let InitData::F32(y) = &w.inits[1].1 else {
            panic!()
        };
        let out = mem.read_f32(w.outputs[0]);
        for k in 0..x.len() {
            let e = 2.5 * x[k] + y[k];
            assert!((out[k] - e).abs() < 1e-5, "{k}");
        }
    }

    #[test]
    fn stencil_matches_native() {
        let w = stencil();
        let mem = w.run_reference().unwrap();
        let InitData::F32(input) = &w.inits[0].1 else {
            panic!()
        };
        let out = mem.read_f32(w.outputs[0]);
        for i in 0..32usize {
            for j in 0..32usize {
                let mut acc = 0.0f32;
                for di in 0..3 {
                    for dj in 0..3 {
                        acc += input[(i + di) * 34 + j + dj];
                    }
                }
                let e = acc * (1.0 / 9.0);
                let got = out[i * 32 + j];
                assert!((got - e).abs() < 1e-4, "({i},{j}): {got} vs {e}");
            }
        }
    }

    #[test]
    fn img_scale_matches_native() {
        let w = img_scale();
        let mem = w.run_reference().unwrap();
        let InitData::F32(input) = &w.inits[0].1 else {
            panic!()
        };
        let out = mem.read_f32(w.outputs[0]);
        for i in 0..32usize {
            for j in 0..32usize {
                let e = 0.25
                    * (input[2 * i * 64 + 2 * j]
                        + input[2 * i * 64 + 2 * j + 1]
                        + input[(2 * i + 1) * 64 + 2 * j]
                        + input[(2 * i + 1) * 64 + 2 * j + 1]);
                assert!((out[i * 32 + j] - e).abs() < 1e-4);
            }
        }
    }
}
