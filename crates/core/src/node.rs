//! Dataflow nodes: the function units, memory transit points, and
//! child-task call sites inside a task block's pipeline (§3.3).

use crate::dataflow::JunctionId;
use muir_mir::instr::{BinOp, CastOp, CmpPred, ConstVal, MemObjId, TensorOp, UnOp};
use muir_mir::types::{TensorShape, Type};
use std::fmt;

/// The operation a compute node performs. Nodes are *polymorphic*: the same
/// op kind instantiates scalar, vector, or tensor function units depending
/// on the node's [`Type`]; the RTL backend infers physical wire widths from
/// the type (§3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpKind {
    /// Binary arithmetic/logic.
    Bin(BinOp),
    /// Unary math.
    Un(UnOp),
    /// Comparison.
    Cmp(CmpPred),
    /// 3-input select (also used for dataflow predication merges).
    Select,
    /// Type cast.
    Cast(CastOp),
    /// Tensor higher-order op over tiles of the given shape (§6.3).
    Tensor(TensorOp, TensorShape),
}

impl OpKind {
    /// Number of data inputs the op consumes.
    pub fn arity(self) -> usize {
        match self {
            OpKind::Bin(_) | OpKind::Cmp(_) => 2,
            OpKind::Un(_) | OpKind::Cast(_) => 1,
            OpKind::Select => 3,
            OpKind::Tensor(t, _) => {
                if t.is_unary() {
                    1
                } else {
                    2
                }
            }
        }
    }

    /// Mnemonic for printing and RTL emission.
    pub fn mnemonic(self) -> String {
        match self {
            OpKind::Bin(b) => b.mnemonic().to_string(),
            OpKind::Un(u) => u.mnemonic().to_string(),
            OpKind::Cmp(p) => format!("cmp.{p}"),
            OpKind::Select => "select".to_string(),
            OpKind::Cast(CastOp::SiToFp) => "sitofp".to_string(),
            OpKind::Cast(CastOp::FpToSi) => "fptosi".to_string(),
            OpKind::Cast(CastOp::IntResize) => "resize".to_string(),
            OpKind::Tensor(t, s) => format!("{}<{s}>", t.mnemonic()),
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

/// Input source of a step inside a fused node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedInput {
    /// The fused node's external input port `n`.
    External(u16),
    /// The result of an earlier step of the plan.
    Step(u16),
}

/// One operation inside a fused node.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedStep {
    /// The operation.
    pub op: OpKind,
    /// Its result type.
    pub ty: Type,
    /// Where each operand comes from.
    pub inputs: Vec<FusedInput>,
}

/// Evaluation plan of a fused node: a mini-DAG of ops executed as one
/// (deeper) pipeline stage group, eliminating the interior ready/valid
/// handshakes and pipeline registers (§6.1, Figure 10).
#[derive(Debug, Clone, PartialEq)]
pub struct FusedPlan {
    /// Number of external input ports.
    pub arity: u16,
    /// Steps in dependence order; the last step's result is the output.
    pub steps: Vec<FusedStep>,
}

impl FusedPlan {
    /// Total number of primitive ops fused together.
    pub fn op_count(&self) -> usize {
        self.steps.len()
    }
}

/// What a dataflow node is (§3.3's three flavours — single-cycle
/// combinational, multi-cycle internally-pipelined, and non-deterministic
/// transit — are distinguished by [`crate::hw::op_timing`] over these
/// kinds).
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Delivers the task's `index`-th argument each invocation (live-in
    /// buffer, §3.5).
    Input {
        /// Argument index.
        index: u32,
    },
    /// Induction-variable stream of a loop task: emits one token per
    /// iteration.
    IndVar,
    /// Constant generator.
    Const(ConstVal),
    /// A function unit.
    Compute(OpKind),
    /// A fused function-unit group (op-fusion pass output).
    Fused(FusedPlan),
    /// Loop-carried merge: iteration 0 takes port 0 (init); iteration i>0
    /// takes port 1 (the feedback edge from iteration i-1). Breaks the
    /// combinational loop of backward edges with a registered,
    /// latency-insensitive edge (§3.5, after Arvind & Nikhil).
    Merge,
    /// A re-timed accumulator unit: the op-fusion pass (§4 Pass 5) fuses a
    /// `Merge` + commutative binary op + feedback triangle into one
    /// self-accumulating function unit, eliminating the handshake hops on
    /// the loop-carried path. Port 0 = per-invocation initial value
    /// (static); port 1 = the per-iteration operand. The recurrence runs
    /// at the member op's own latency.
    FusedAcc {
        /// The accumulation op (commutative: scalar or tensor add/mul).
        op: OpKind,
    },
    /// Memory-load transit point; the databox behind the junction slices
    /// the typed access into word transactions (§3.4). Port 0 = element
    /// index; port 1 = predicate when `predicated`.
    Load {
        /// Accessed object (address space).
        obj: MemObjId,
        /// Junction routing this node to its structure.
        junction: JunctionId,
        /// Whether a predicate input gates the access.
        predicated: bool,
    },
    /// Memory-store transit point. Port 0 = element index, port 1 = value,
    /// port 2 = predicate when `predicated`.
    Store {
        /// Accessed object (address space).
        obj: MemObjId,
        /// Junction routing this node to its structure.
        junction: JunctionId,
        /// Whether a predicate input gates the access.
        predicated: bool,
    },
    /// Invocation of a child task block: a variable-latency
    /// non-deterministic request/response node (§3.5). Ports 0..n = child
    /// arguments, then the predicate when `predicated`. Output ports =
    /// child results.
    TaskCall {
        /// Callee task.
        callee: crate::accel::TaskId,
        /// Whether a predicate input gates the call.
        predicated: bool,
        /// Cilk-style spawn: the call completes at *enqueue* (the parent
        /// continues immediately); the enclosing invocation's implicit sync
        /// waits for the child's response. Blocking calls (`false`)
        /// complete at the child's response (nested sequential loops).
        spawn: bool,
    },
    /// Collects the task's results; completes invocations in order (§3.2).
    Output,
}

impl NodeKind {
    /// Short kind tag (used by dot dumps and stats).
    pub fn tag(&self) -> &'static str {
        match self {
            NodeKind::Input { .. } => "input",
            NodeKind::IndVar => "indvar",
            NodeKind::Const(_) => "const",
            NodeKind::Compute(_) => "compute",
            NodeKind::Fused(_) => "fused",
            NodeKind::Merge => "merge",
            NodeKind::FusedAcc { .. } => "fusedacc",
            NodeKind::Load { .. } => "load",
            NodeKind::Store { .. } => "store",
            NodeKind::TaskCall { .. } => "taskcall",
            NodeKind::Output => "output",
        }
    }

    /// Whether this node is a memory transit point.
    pub fn is_mem(&self) -> bool {
        matches!(self, NodeKind::Load { .. } | NodeKind::Store { .. })
    }
}

/// A node in a task's dataflow.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Debug name.
    pub name: String,
    /// What the node is.
    pub kind: NodeKind,
    /// Output value type (for `Store`/`Output`, the consumed value type).
    pub ty: Type,
}

impl Node {
    /// Construct a node.
    pub fn new(name: impl Into<String>, kind: NodeKind, ty: Type) -> Node {
        Node {
            name: name.into(),
            kind,
            ty,
        }
    }

    /// Number of input ports this node exposes, given `task_arity` lookup
    /// for task calls (pass 0 if unknown).
    pub fn input_arity(&self, callee_args: usize) -> usize {
        match &self.kind {
            NodeKind::Input { .. } | NodeKind::IndVar | NodeKind::Const(_) => 0,
            NodeKind::Compute(op) => op.arity(),
            NodeKind::Fused(plan) => plan.arity as usize,
            NodeKind::Merge | NodeKind::FusedAcc { .. } => 2,
            NodeKind::Load { predicated, .. } => 1 + usize::from(*predicated),
            NodeKind::Store { predicated, .. } => 2 + usize::from(*predicated),
            NodeKind::TaskCall { predicated, .. } => callee_args + usize::from(*predicated),
            NodeKind::Output => usize::MAX, // determined by the task's result count
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muir_mir::instr::BinOp;
    use muir_mir::types::ScalarType;

    #[test]
    fn op_arity() {
        assert_eq!(OpKind::Bin(BinOp::Add).arity(), 2);
        assert_eq!(OpKind::Un(UnOp::Relu).arity(), 1);
        assert_eq!(OpKind::Select.arity(), 3);
        assert_eq!(
            OpKind::Tensor(TensorOp::MatMul, TensorShape::new(2, 2)).arity(),
            2
        );
        assert_eq!(
            OpKind::Tensor(TensorOp::Relu, TensorShape::new(2, 2)).arity(),
            1
        );
    }

    #[test]
    fn node_input_arity() {
        let n = Node::new("add", NodeKind::Compute(OpKind::Bin(BinOp::Add)), Type::I64);
        assert_eq!(n.input_arity(0), 2);
        let ld = Node::new(
            "ld",
            NodeKind::Load {
                obj: MemObjId(0),
                junction: JunctionId(0),
                predicated: true,
            },
            Type::F32,
        );
        assert_eq!(ld.input_arity(0), 2);
        let st = Node::new(
            "st",
            NodeKind::Store {
                obj: MemObjId(0),
                junction: JunctionId(0),
                predicated: false,
            },
            Type::F32,
        );
        assert_eq!(st.input_arity(0), 2);
        let tc = Node::new(
            "call",
            NodeKind::TaskCall {
                callee: crate::accel::TaskId(1),
                predicated: false,
                spawn: false,
            },
            Type::I64,
        );
        assert_eq!(tc.input_arity(3), 3);
    }

    #[test]
    fn fused_plan_counts() {
        let plan = FusedPlan {
            arity: 2,
            steps: vec![
                FusedStep {
                    op: OpKind::Bin(BinOp::Add),
                    ty: Type::I64,
                    inputs: vec![FusedInput::External(0), FusedInput::External(1)],
                },
                FusedStep {
                    op: OpKind::Bin(BinOp::Shl),
                    ty: Type::I64,
                    inputs: vec![FusedInput::Step(0), FusedInput::External(1)],
                },
            ],
        };
        assert_eq!(plan.op_count(), 2);
    }

    #[test]
    fn mnemonics_and_tags() {
        assert_eq!(OpKind::Bin(BinOp::FMul).mnemonic(), "fmul");
        assert!(OpKind::Tensor(TensorOp::MatMul, TensorShape::new(2, 2))
            .mnemonic()
            .contains("tensor.matmul"));
        let n = Node::new(
            "x",
            NodeKind::Load {
                obj: MemObjId(0),
                junction: JunctionId(0),
                predicated: false,
            },
            Type::Scalar(ScalarType::F32),
        );
        assert_eq!(n.kind.tag(), "load");
        assert!(n.kind.is_mem());
        assert!(!NodeKind::Merge.is_mem());
    }
}
