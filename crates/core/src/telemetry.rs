//! Cross-layer telemetry: a process-global metrics registry and a
//! hierarchical wall-clock span recorder (DESIGN.md §13).
//!
//! Every layer of the stack — compile cache, persistent store, eval
//! service, simulator — records into one registry of named **counters**,
//! **gauges**, and fixed-bucket **histograms**, and wraps its phases in
//! RAII **spans**. The registry renders two expositions:
//!
//! * a Prometheus-style text format ([`Snapshot::to_prometheus`]), and
//! * a JSON snapshot ([`Snapshot::to_json`]) validated against
//!   `scripts/metrics_schema.json` by the CI gate;
//!
//! and the span log exports as Chrome/Perfetto `ph:"X"` duration events
//! ([`chrome_span_events`]) that merge with the simulator's PR-2 trace
//! into one timeline.
//!
//! **Zero-perturbation contract.** Telemetry is *observation only*: it
//! must never change cycle counts, end-state hashes, or trace bytes
//! (pinned by the determinism guard in `muir-bench`). The master switch
//! is a single relaxed [`AtomicBool`], default **off**; every recording
//! call checks it first, so a disabled registry costs one predictable
//! branch on the hot path and allocates nothing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::Instant;

/// Master switch. Relaxed is sufficient: the flag gates *observation*,
/// never synchronizes data, and a racy first/last event is harmless.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry recording is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off. Enabling pins the process timebase for
/// span timestamps (first enable wins).
pub fn set_enabled(on: bool) {
    if on {
        // Pin t0 before any span can read it.
        let mut r = registry().lock().expect("telemetry registry");
        if r.t0.is_none() {
            r.t0 = Some(Instant::now());
        }
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Standard microsecond latency buckets (upper bounds) shared by the IO
/// and compile histograms: 1µs … 1s, roughly half-decade spaced.
pub const US_BUCKETS: [u64; 13] = [
    1, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000,
];

/// Small-count buckets (upper bounds) for batch sizes and the like.
pub const COUNT_BUCKETS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

// ---------------------------------------------------------------------------
// Registry internals
// ---------------------------------------------------------------------------

struct HistInner {
    bounds: Vec<u64>,
    /// One count per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// One completed span: a named wall-clock interval with its category,
/// free-form detail, nesting depth, and the recording thread's ordinal.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Hierarchical span name, e.g. `service.drain`.
    pub name: &'static str,
    /// Category (Chrome `cat`): `service`, `compile`, or `store`.
    pub cat: &'static str,
    /// Free-form detail string (Chrome `args.detail`).
    pub detail: String,
    /// Start offset from the telemetry timebase, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Ordinal of the recording thread (0 = first thread seen).
    pub tid: u32,
    /// Nesting depth within the recording thread (1 = top level).
    pub depth: u32,
}

#[derive(Default)]
struct Registry {
    counters: Vec<(String, Arc<AtomicU64>)>,
    gauges: Vec<(String, Arc<AtomicU64>)>,
    hists: Vec<(String, Arc<HistInner>)>,
    spans: Vec<SpanRec>,
    threads: HashMap<ThreadId, u32>,
    t0: Option<Instant>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

impl Registry {
    fn thread_ordinal(&mut self, id: ThreadId) -> u32 {
        let next = self.threads.len() as u32;
        *self.threads.entry(id).or_insert(next)
    }
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// A monotonically increasing counter handle. Cheap to clone; recording
/// is one relaxed atomic add (after the enabled check).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `delta` (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, delta: u64) {
        if enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge handle.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, value: u64) {
        if enabled() {
            self.0.store(value, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram handle. A value lands in the first bucket
/// whose upper bound is `>= value`; values above every bound land in the
/// overflow bucket (rendered `le="+Inf"`).
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Record one observation (no-op while telemetry is disabled).
    pub fn observe(&self, value: u64) {
        if !enabled() {
            return;
        }
        let h = &self.0;
        let idx = h
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(h.bounds.len());
        h.counts[idx].fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(value, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

/// Register (or fetch) the counter named `name`.
pub fn counter(name: &str) -> Counter {
    let mut r = registry().lock().expect("telemetry registry");
    if let Some((_, c)) = r.counters.iter().find(|(n, _)| n == name) {
        return Counter(Arc::clone(c));
    }
    let c = Arc::new(AtomicU64::new(0));
    r.counters.push((name.to_string(), Arc::clone(&c)));
    Counter(c)
}

/// Register (or fetch) the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut r = registry().lock().expect("telemetry registry");
    if let Some((_, g)) = r.gauges.iter().find(|(n, _)| n == name) {
        return Gauge(Arc::clone(g));
    }
    let g = Arc::new(AtomicU64::new(0));
    r.gauges.push((name.to_string(), Arc::clone(&g)));
    Gauge(g)
}

/// Register (or fetch) the histogram named `name` with the given upper
/// bounds (must be non-empty and strictly increasing; an existing
/// registration keeps its original bounds).
pub fn histogram(name: &str, bounds: &[u64]) -> Histogram {
    debug_assert!(!bounds.is_empty() && bounds.windows(2).all(|w| w[0] < w[1]));
    let mut r = registry().lock().expect("telemetry registry");
    if let Some((_, h)) = r.hists.iter().find(|(n, _)| n == name) {
        return Histogram(Arc::clone(h));
    }
    let h = Arc::new(HistInner {
        bounds: bounds.to_vec(),
        counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
        sum: AtomicU64::new(0),
        count: AtomicU64::new(0),
    });
    r.hists.push((name.to_string(), Arc::clone(&h)));
    Histogram(h)
}

/// One-shot counter add. Convenience for cold paths; hot paths should
/// hold a [`Counter`] handle. No-op (and no registration) when disabled.
#[inline]
pub fn count(name: &str, delta: u64) {
    if enabled() {
        counter(name).add(delta);
    }
}

/// One-shot gauge set (see [`count`] for the cost note).
#[inline]
pub fn gauge_set(name: &str, value: u64) {
    if enabled() {
        gauge(name).set(value);
    }
}

/// One-shot histogram observation (see [`count`] for the cost note).
#[inline]
pub fn observe(name: &str, bounds: &[u64], value: u64) {
    if enabled() {
        histogram(name, bounds).observe(value);
    }
}

/// Zero every counter/gauge/histogram and clear the span log. Intended
/// for tests and for the `experiments metrics` command's fresh capture;
/// registrations (names, bounds) survive.
pub fn reset() {
    let mut r = registry().lock().expect("telemetry registry");
    for (_, c) in &r.counters {
        c.store(0, Ordering::Relaxed);
    }
    for (_, g) in &r.gauges {
        g.store(0, Ordering::Relaxed);
    }
    for (_, h) in &r.hists {
        for c in &h.counts {
            c.store(0, Ordering::Relaxed);
        }
        h.sum.store(0, Ordering::Relaxed);
        h.count.store(0, Ordering::Relaxed);
    }
    r.spans.clear();
    r.t0 = Some(Instant::now());
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// RAII guard recording a wall-clock span from construction to drop.
/// Inert (records nothing) when telemetry was disabled at construction.
pub struct SpanGuard(Option<SpanActive>);

struct SpanActive {
    name: &'static str,
    cat: &'static str,
    detail: String,
    start: Instant,
    start_us: u64,
    depth: u32,
}

/// Open a span; the returned guard records it when dropped. Spans on the
/// same thread nest by construction order (Perfetto renders same-`tid`
/// time-nested `X` events as a flame stack).
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    span_with(cat, name, String::new())
}

/// [`span`] with a free-form detail string (shown in the trace viewer's
/// args panel). The detail is only built by callers when telemetry is
/// enabled — pass `String::new()` on the cheap path.
pub fn span_with(cat: &'static str, name: &'static str, detail: String) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    let start = Instant::now();
    let t0 = {
        let mut r = registry().lock().expect("telemetry registry");
        *r.t0.get_or_insert(start)
    };
    let depth = DEPTH.with(|d| {
        let v = d.get() + 1;
        d.set(v);
        v
    });
    SpanGuard(Some(SpanActive {
        name,
        cat,
        detail,
        start,
        start_us: start.duration_since(t0).as_micros() as u64,
        depth,
    }))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let dur_us = a.start.elapsed().as_micros() as u64;
        let mut r = registry().lock().expect("telemetry registry");
        let tid = r.thread_ordinal(std::thread::current().id());
        r.spans.push(SpanRec {
            name: a.name,
            cat: a.cat,
            detail: a.detail,
            start_us: a.start_us,
            dur_us,
            tid,
            depth: a.depth,
        });
    }
}

/// The recorded spans so far, in completion order.
pub fn spans() -> Vec<SpanRec> {
    registry().lock().expect("telemetry registry").spans.clone()
}

/// Render spans as Chrome/Perfetto `ph:"X"` complete-duration events
/// under process `pid` (one JSON object per string, no trailing commas —
/// the caller joins them into a `traceEvents` array). Sorted by start
/// time so nesting renders deterministically.
pub fn chrome_span_events(spans: &[SpanRec], pid: u32) -> Vec<String> {
    let mut sorted: Vec<&SpanRec> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start_us, std::cmp::Reverse(s.dur_us)));
    sorted
        .iter()
        .map(|s| {
            format!(
                r#"{{"name":"{}","cat":"{}","ph":"X","ts":{},"dur":{},"pid":{},"tid":{},"args":{{"detail":"{}","depth":{}}}}}"#,
                esc(s.name),
                esc(s.cat),
                s.start_us,
                s.dur_us.max(1),
                pid,
                s.tid,
                esc(&s.detail),
                s.depth
            )
        })
        .collect()
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Snapshot + expositions
// ---------------------------------------------------------------------------

/// A histogram's frozen state.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Metric name.
    pub name: String,
    /// Bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (overflow
    /// last).
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

/// A point-in-time copy of every registered metric, name-sorted.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counters as `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Gauges as `(name, value)`.
    pub gauges: Vec<(String, u64)>,
    /// Histograms.
    pub histograms: Vec<HistSnapshot>,
}

/// Schema version of the JSON snapshot exposition.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Freeze the registry into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    let r = registry().lock().expect("telemetry registry");
    let mut counters: Vec<(String, u64)> = r
        .counters
        .iter()
        .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
        .collect();
    counters.sort();
    let mut gauges: Vec<(String, u64)> = r
        .gauges
        .iter()
        .map(|(n, g)| (n.clone(), g.load(Ordering::Relaxed)))
        .collect();
    gauges.sort();
    let mut histograms: Vec<HistSnapshot> = r
        .hists
        .iter()
        .map(|(n, h)| HistSnapshot {
            name: n.clone(),
            bounds: h.bounds.clone(),
            counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            sum: h.sum.load(Ordering::Relaxed),
            count: h.count.load(Ordering::Relaxed),
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    Snapshot {
        counters,
        gauges,
        histograms,
    }
}

impl Snapshot {
    /// Look up a counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Look up a gauge value (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Prometheus text exposition. Metric names are sanitized to the
    /// Prometheus charset (`.` and `-` become `_`) and prefixed `muir_`;
    /// histogram buckets render cumulatively with an `+Inf` terminal.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for h in &self.histograms {
            let n = prom_name(&h.name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (i, b) in h.bounds.iter().enumerate() {
                cum += h.counts[i];
                out.push_str(&format!("{n}_bucket{{le=\"{b}\"}} {cum}\n"));
            }
            cum += h.counts[h.bounds.len()];
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cum}\n"));
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// JSON snapshot exposition (validated against
    /// `scripts/metrics_schema.json` by the CI gate).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"version\": {SNAPSHOT_VERSION},\n  \"generator\": \"muir-telemetry\",\n"
        ));
        out.push_str("  \"counters\": [");
        let cs: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!("{{\"name\":\"{}\",\"value\":{v}}}", esc(n)))
            .collect();
        out.push_str(&cs.join(","));
        out.push_str("],\n  \"gauges\": [");
        let gs: Vec<String> = self
            .gauges
            .iter()
            .map(|(n, v)| format!("{{\"name\":\"{}\",\"value\":{v}}}", esc(n)))
            .collect();
        out.push_str(&gs.join(","));
        out.push_str("],\n  \"histograms\": [");
        let hs: Vec<String> = self
            .histograms
            .iter()
            .map(|h| {
                format!(
                    "{{\"name\":\"{}\",\"bounds\":{},\"counts\":{},\"sum\":{},\"count\":{}}}",
                    esc(&h.name),
                    json_u64_array(&h.bounds),
                    json_u64_array(&h.counts),
                    h.sum,
                    h.count
                )
            })
            .collect();
        out.push_str(&hs.join(","));
        out.push_str("]\n}\n");
        out
    }
}

fn json_u64_array(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

fn prom_name(name: &str) -> String {
    let body: String = name
        .chars()
        .map(|c| if c == '.' || c == '-' { '_' } else { c })
        .collect();
    format!("muir_{body}")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global switch.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _g = guard();
        set_enabled(false);
        let c = counter("test.disabled.counter");
        let before = c.get();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), before);
        let h = histogram("test.disabled.hist", &US_BUCKETS);
        h.observe(7);
        assert_eq!(h.count(), 0);
        let s = span("service", "test.disabled.span");
        drop(s);
        assert!(!spans().iter().any(|s| s.name == "test.disabled.span"));
    }

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let _g = guard();
        set_enabled(true);
        let h = histogram("test.boundary.hist", &[10, 100]);
        // A value equal to a bound lands in that bound's bucket; one past
        // it lands in the next; past every bound → overflow.
        h.observe(0);
        h.observe(10);
        h.observe(11);
        h.observe(100);
        h.observe(101);
        set_enabled(false);
        let snap = snapshot();
        let hs = snap
            .histograms
            .iter()
            .find(|h| h.name == "test.boundary.hist")
            .expect("registered");
        assert_eq!(hs.bounds, vec![10, 100]);
        assert_eq!(hs.counts, vec![2, 2, 1]);
        assert_eq!(hs.sum, 222);
        assert_eq!(hs.count, 5);
    }

    #[test]
    fn prometheus_exposition_is_cumulative() {
        let _g = guard();
        set_enabled(true);
        let h = histogram("test.prom.hist", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        counter("test.prom.counter").add(3);
        set_enabled(false);
        let text = snapshot().to_prometheus();
        assert!(text.contains("muir_test_prom_counter 3"));
        assert!(text.contains("muir_test_prom_hist_bucket{le=\"10\"} 1"));
        assert!(text.contains("muir_test_prom_hist_bucket{le=\"100\"} 2"));
        assert!(text.contains("muir_test_prom_hist_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("muir_test_prom_hist_count 3"));
    }

    #[test]
    fn spans_nest_by_thread_depth() {
        let _g = guard();
        set_enabled(true);
        {
            let _outer = span("service", "test.span.outer");
            let _inner = span_with("service", "test.span.inner", "detail \"quoted\"".into());
        }
        set_enabled(false);
        let all = spans();
        let outer = all.iter().find(|s| s.name == "test.span.outer").unwrap();
        let inner = all.iter().find(|s| s.name == "test.span.inner").unwrap();
        assert_eq!(inner.depth, outer.depth + 1);
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_us >= outer.start_us);
        let events = chrome_span_events(&all, 2000);
        assert!(events
            .iter()
            .any(|e| e.contains("test.span.inner") && e.contains("detail \\\"quoted\\\"")));
    }

    #[test]
    fn snapshot_json_shape_is_stable() {
        let _g = guard();
        set_enabled(true);
        counter("test.json.counter").inc();
        gauge("test.json.gauge").set(9);
        histogram("test.json.hist", &[1, 2]).observe(2);
        set_enabled(false);
        let j = snapshot().to_json();
        assert!(j.contains("\"version\": 1"));
        assert!(j.contains("{\"name\":\"test.json.counter\",\"value\":"));
        assert!(j.contains("{\"name\":\"test.json.gauge\",\"value\":"));
        assert!(j.contains("\"bounds\":[1,2]"));
    }
}
