//! The per-task dataflow graph: typed nodes, 1-1 polymorphic connections,
//! and junctions (§3.3, §3.4).

use crate::node::{Node, NodeKind};
use crate::structure::StructureId;
use std::fmt;

/// Index of a node within its [`Dataflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of a junction within its [`Dataflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JunctionId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
impl fmt::Display for JunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// Buffering discipline of an edge.
///
/// Every edge is latency-insensitive: tokens flow under ready/valid
/// flow-control, and buffering can be inserted or removed without affecting
/// correctness (§3.1). The default is a 1-deep handshake register; the
/// task-queueing pass (Pass 1) widens inter-task edges to FIFOs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Buffering {
    /// Single pipeline register with handshake (default).
    Handshake,
    /// FIFO queue of the given depth.
    Fifo(u32),
}

impl Buffering {
    /// Token capacity of the edge.
    pub fn capacity(self) -> u32 {
        match self {
            Buffering::Handshake => 1,
            Buffering::Fifo(d) => d.max(1),
        }
    }
}

/// Data vs feedback classification of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Ordinary forward dataflow.
    Data,
    /// Loop-carried feedback into a `Merge` node's port 1: the token
    /// produced by iteration *i* is consumed by iteration *i+1*.
    Feedback,
    /// A token-only memory-ordering edge: the consumer may not fire until
    /// the producer has *completed* (store committed, load responded, task
    /// call returned). Carries no data; enforces program-order between
    /// effectful nodes whose address spaces may conflict.
    Order,
}

/// A polymorphic 1-1 connection between a producer port and a consumer port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producer node.
    pub src: NodeId,
    /// Producer output port.
    pub src_port: u16,
    /// Consumer node.
    pub dst: NodeId,
    /// Consumer input port.
    pub dst_port: u16,
    /// Buffering on the connection.
    pub buffering: Buffering,
    /// Forward data or loop feedback.
    pub kind: EdgeKind,
}

/// Arbitration policy of a junction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arbitration {
    /// Rotating priority (default).
    #[default]
    RoundRobin,
    /// Fixed priority by registration order.
    FixedPriority,
}

/// A junction: the generic 1:N / N:1 / M:N connection through which a
/// task's distributed memory nodes reach a scratchpad or cache (§3.4). The
/// physical network it lowers to (bus, tree) is a parameter; `read_ports` /
/// `write_ports` bound how many requests it accepts per cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Junction {
    /// The structure this junction connects to.
    pub structure: StructureId,
    /// Load nodes registered on this junction.
    pub readers: Vec<NodeId>,
    /// Store nodes registered on this junction.
    pub writers: Vec<NodeId>,
    /// Read requests accepted per cycle.
    pub read_ports: u32,
    /// Write requests accepted per cycle.
    pub write_ports: u32,
    /// Request arbitration.
    pub arbitration: Arbitration,
}

impl Junction {
    /// A junction to `structure` with the given port counts.
    pub fn new(structure: StructureId, read_ports: u32, write_ports: u32) -> Junction {
        Junction {
            structure,
            readers: Vec::new(),
            writers: Vec::new(),
            read_ports: read_ports.max(1),
            write_ports: write_ports.max(1),
            arbitration: Arbitration::RoundRobin,
        }
    }
}

/// A task block's internal pipelined dataflow.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataflow {
    /// Node arena; [`NodeId`] indexes into this.
    pub nodes: Vec<Node>,
    /// Connections.
    pub edges: Vec<Edge>,
    /// Junctions to hardware structures.
    pub junctions: Vec<Junction>,
}

impl Dataflow {
    /// New empty dataflow.
    pub fn new() -> Dataflow {
        Dataflow::default()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Add a junction, returning its id.
    pub fn add_junction(&mut self, junction: Junction) -> JunctionId {
        let id = JunctionId(self.junctions.len() as u32);
        self.junctions.push(junction);
        id
    }

    /// Connect `src.src_port` → `dst.dst_port` with default handshake
    /// buffering.
    pub fn connect(&mut self, src: NodeId, src_port: u16, dst: NodeId, dst_port: u16) {
        self.edges.push(Edge {
            src,
            src_port,
            dst,
            dst_port,
            buffering: Buffering::Handshake,
            kind: EdgeKind::Data,
        });
    }

    /// Connect a token-only ordering edge: `dst` may not fire until `src`
    /// completes.
    pub fn connect_order(&mut self, src: NodeId, dst: NodeId) {
        self.edges.push(Edge {
            src,
            src_port: 0,
            dst,
            dst_port: u16::MAX,
            buffering: Buffering::Handshake,
            kind: EdgeKind::Order,
        });
    }

    /// Connect a loop-carried feedback edge into a merge node's port 1.
    pub fn connect_feedback(&mut self, src: NodeId, src_port: u16, dst: NodeId) {
        self.edges.push(Edge {
            src,
            src_port,
            dst,
            dst_port: 1,
            buffering: Buffering::Handshake,
            kind: EdgeKind::Feedback,
        });
    }

    /// The node behind `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Mutable access to the node behind `id`.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Build the CSR adjacency index of the current edge set. O(nodes +
    /// edges) once; every per-node adjacency query through the index is
    /// then a slice lookup instead of a full edge scan. The index is a
    /// snapshot — rebuild it after mutating `edges`.
    pub fn edge_index(&self) -> EdgeIndex {
        EdgeIndex::build(self)
    }

    /// Ids of memory (load/store) nodes.
    pub fn mem_nodes(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| self.node(id).kind.is_mem())
            .collect()
    }

    /// The single `Output` node, if present.
    pub fn output_node(&self) -> Option<NodeId> {
        self.node_ids()
            .find(|&id| matches!(self.node(id).kind, NodeKind::Output))
    }

    /// The `IndVar` node, if present (loop tasks).
    pub fn indvar_node(&self) -> Option<NodeId> {
        self.node_ids()
            .find(|&id| matches!(self.node(id).kind, NodeKind::IndVar))
    }

    /// Register a load on its junction (keeps junction bookkeeping in sync).
    pub fn register_reader(&mut self, j: JunctionId, n: NodeId) {
        self.junctions[j.0 as usize].readers.push(n);
    }

    /// Register a store on its junction.
    pub fn register_writer(&mut self, j: JunctionId, n: NodeId) {
        self.junctions[j.0 as usize].writers.push(n);
    }
}

/// CSR (compressed sparse row) adjacency over a [`Dataflow`]'s edges.
///
/// Replaces the old `Vec<&Edge>`-allocating `in_edges`/`out_edges`/
/// `fanout` linear scans: one O(nodes + edges) build, then every
/// adjacency query is an O(1) slice and every edge visit an index
/// lookup. Incoming rows are sorted by `(dst_port, edge index)` —
/// the input-port order the old accessor guaranteed (order edges carry
/// `dst_port == u16::MAX`, so they sort last); outgoing rows are in
/// edge-arena order.
///
/// The index is a snapshot of the edge set at build time; rebuild after
/// mutating the graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeIndex {
    in_off: Vec<u32>,
    in_idx: Vec<u32>,
    out_off: Vec<u32>,
    out_idx: Vec<u32>,
}

impl EdgeIndex {
    /// Build the CSR tables for `df`.
    pub fn build(df: &Dataflow) -> EdgeIndex {
        let n = df.nodes.len();
        let mut in_off = vec![0u32; n + 1];
        let mut out_off = vec![0u32; n + 1];
        for e in &df.edges {
            in_off[e.dst.0 as usize + 1] += 1;
            out_off[e.src.0 as usize + 1] += 1;
        }
        for i in 0..n {
            in_off[i + 1] += in_off[i];
            out_off[i + 1] += out_off[i];
        }
        let mut in_idx = vec![0u32; df.edges.len()];
        let mut out_idx = vec![0u32; df.edges.len()];
        let mut in_cur = in_off.clone();
        let mut out_cur = out_off.clone();
        for (ei, e) in df.edges.iter().enumerate() {
            let d = e.dst.0 as usize;
            in_idx[in_cur[d] as usize] = ei as u32;
            in_cur[d] += 1;
            let s = e.src.0 as usize;
            out_idx[out_cur[s] as usize] = ei as u32;
            out_cur[s] += 1;
        }
        for i in 0..n {
            let row = &mut in_idx[in_off[i] as usize..in_off[i + 1] as usize];
            row.sort_unstable_by_key(|&ei| (df.edges[ei as usize].dst_port, ei));
        }
        EdgeIndex {
            in_off,
            in_idx,
            out_off,
            out_idx,
        }
    }

    /// Indices (into `Dataflow::edges`) of `id`'s incoming edges, sorted
    /// by destination port.
    pub fn ins(&self, id: NodeId) -> &[u32] {
        let i = id.0 as usize;
        &self.in_idx[self.in_off[i] as usize..self.in_off[i + 1] as usize]
    }

    /// Indices (into `Dataflow::edges`) of `id`'s outgoing edges.
    pub fn outs(&self, id: NodeId) -> &[u32] {
        let i = id.0 as usize;
        &self.out_idx[self.out_off[i] as usize..self.out_off[i + 1] as usize]
    }

    /// Incoming edges of `id` in input-port order, without allocating.
    pub fn in_edges<'d>(&'d self, df: &'d Dataflow, id: NodeId) -> impl Iterator<Item = &'d Edge> {
        self.ins(id).iter().map(move |&ei| &df.edges[ei as usize])
    }

    /// Outgoing edges of `id`, without allocating.
    pub fn out_edges<'d>(&'d self, df: &'d Dataflow, id: NodeId) -> impl Iterator<Item = &'d Edge> {
        self.outs(id).iter().map(move |&ei| &df.edges[ei as usize])
    }

    /// Number of consumers of `id`'s outputs — O(1) from the offsets.
    pub fn fanout(&self, id: NodeId) -> usize {
        self.outs(id).len()
    }

    /// Number of edges feeding `id` — O(1) from the offsets.
    pub fn fanin(&self, id: NodeId) -> usize {
        self.ins(id).len()
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        (self.in_off.len() + self.in_idx.len() + self.out_off.len() + self.out_idx.len())
            * size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeKind, OpKind};
    use muir_mir::instr::{BinOp, ConstVal};
    use muir_mir::types::Type;

    fn add_const(df: &mut Dataflow, v: i64) -> NodeId {
        df.add_node(Node::new(
            format!("c{v}"),
            NodeKind::Const(ConstVal::Int(v)),
            Type::I64,
        ))
    }

    #[test]
    fn build_small_dataflow() {
        let mut df = Dataflow::new();
        let a = add_const(&mut df, 1);
        let b = add_const(&mut df, 2);
        let add = df.add_node(Node::new(
            "add",
            NodeKind::Compute(OpKind::Bin(BinOp::Add)),
            Type::I64,
        ));
        let out = df.add_node(Node::new("out", NodeKind::Output, Type::I64));
        df.connect(a, 0, add, 0);
        df.connect(b, 0, add, 1);
        df.connect(add, 0, out, 0);
        assert_eq!(df.nodes.len(), 4);
        assert_eq!(df.edges.len(), 3);
        let idx = df.edge_index();
        assert_eq!(idx.fanin(add), 2);
        assert_eq!(idx.fanout(add), 1);
        assert_eq!(df.output_node(), Some(out));
        assert!(df.indvar_node().is_none());
        assert!(df.mem_nodes().is_empty());
    }

    #[test]
    fn in_edges_sorted_by_port() {
        let mut df = Dataflow::new();
        let a = add_const(&mut df, 1);
        let b = add_const(&mut df, 2);
        let add = df.add_node(Node::new(
            "add",
            NodeKind::Compute(OpKind::Bin(BinOp::Add)),
            Type::I64,
        ));
        // Connect port 1 before port 0.
        df.connect(b, 0, add, 1);
        df.connect(a, 0, add, 0);
        let idx = df.edge_index();
        let ins: Vec<&Edge> = idx.in_edges(&df, add).collect();
        assert_eq!(ins[0].dst_port, 0);
        assert_eq!(ins[1].dst_port, 1);
        // The CSR rows point at the right arena slots.
        assert_eq!(idx.ins(add), &[1, 0]);
        assert_eq!(idx.outs(a), &[1]);
        assert!(idx.out_edges(&df, b).all(|e| e.src == b));
    }

    #[test]
    fn feedback_edges_marked() {
        let mut df = Dataflow::new();
        let init = add_const(&mut df, 0);
        let merge = df.add_node(Node::new("acc", NodeKind::Merge, Type::I64));
        let upd = df.add_node(Node::new(
            "upd",
            NodeKind::Compute(OpKind::Bin(BinOp::Add)),
            Type::I64,
        ));
        df.connect(init, 0, merge, 0);
        df.connect(merge, 0, upd, 0);
        df.connect(init, 0, upd, 1);
        df.connect_feedback(upd, 0, merge);
        let fb: Vec<&Edge> = df
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Feedback)
            .collect();
        assert_eq!(fb.len(), 1);
        assert_eq!(fb[0].dst_port, 1);
    }

    #[test]
    fn buffering_capacity() {
        assert_eq!(Buffering::Handshake.capacity(), 1);
        assert_eq!(Buffering::Fifo(8).capacity(), 8);
        assert_eq!(Buffering::Fifo(0).capacity(), 1);
    }

    #[test]
    fn junction_registration() {
        let mut df = Dataflow::new();
        let j = df.add_junction(Junction::new(StructureId(0), 2, 1));
        let ld = df.add_node(Node::new(
            "ld",
            NodeKind::Load {
                obj: muir_mir::instr::MemObjId(0),
                junction: j,
                predicated: false,
            },
            Type::F32,
        ));
        df.register_reader(j, ld);
        assert_eq!(df.junctions[0].readers, vec![ld]);
        assert_eq!(df.junctions[0].read_ports, 2);
        assert_eq!(df.mem_nodes(), vec![ld]);
    }
}
