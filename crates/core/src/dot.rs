//! GraphViz rendering of μIR graphs (debugging aid; mirrors the paper's
//! Figure 4 schematic: blue task blocks, yellow structures, junction ports).

use crate::accel::Accelerator;
use crate::dataflow::EdgeKind;
use std::fmt::Write;

/// Render the accelerator as a GraphViz `digraph` with one cluster per task
/// block.
pub fn to_dot(acc: &Accelerator) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", acc.name);
    let _ = writeln!(out, "  rankdir=TB; compound=true;");
    for (si, s) in acc.structures.iter().enumerate() {
        let _ = writeln!(
            out,
            "  s{si} [shape=cylinder style=filled fillcolor=lightyellow label=\"{} ({})\"];",
            s.name,
            s.kind.tag()
        );
    }
    for (ti, t) in acc.tasks.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_t{ti} {{");
        let _ = writeln!(
            out,
            "    label=\"{} [{} tile(s), q{}]\";",
            t.name, t.tiles, t.queue_depth
        );
        let _ = writeln!(out, "    style=filled; fillcolor=lightblue;");
        for (ni, n) in t.dataflow.nodes.iter().enumerate() {
            let shape = match n.kind.tag() {
                "load" | "store" => "box3d",
                "taskcall" => "doubleoctagon",
                "merge" => "diamond",
                _ => "box",
            };
            let _ = writeln!(
                out,
                "    t{ti}n{ni} [shape={shape} label=\"{}\\n{}\"];",
                n.name,
                n.kind.tag()
            );
        }
        for e in &t.dataflow.edges {
            let style = match e.kind {
                EdgeKind::Data => "solid",
                EdgeKind::Feedback => "dashed",
                EdgeKind::Order => "dotted",
            };
            let _ = writeln!(
                out,
                "    t{ti}n{} -> t{ti}n{} [style={style}];",
                e.src.0, e.dst.0
            );
        }
        let _ = writeln!(out, "  }}");
        for (ji, j) in t.dataflow.junctions.iter().enumerate() {
            let _ = writeln!(
                out,
                "  t{ti}j{ji} [shape=trapezium label=\"junction {}R/{}W\"];",
                j.read_ports, j.write_ports
            );
            let _ = writeln!(out, "  t{ti}j{ji} -> s{} [dir=both];", j.structure.0);
            for r in j.readers.iter().chain(&j.writers) {
                let _ = writeln!(
                    out,
                    "  t{ti}n{} -> t{ti}j{ji} [dir=both style=dotted];",
                    r.0
                );
            }
        }
    }
    for c in &acc.task_conns {
        let _ = writeln!(
            out,
            "  t{}n0 -> t{}n0 [lhead=cluster_t{} ltail=cluster_t{} penwidth=2 color=red label=\"<||> q{}\"];",
            c.parent.0, c.child.0, c.child.0, c.parent.0, c.queue_depth
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::{TaskBlock, TaskKind};
    use crate::node::{Node, NodeKind};
    use crate::structure::Structure;
    use muir_mir::instr::ConstVal;
    use muir_mir::types::Type;

    #[test]
    fn renders_clusters_and_structures() {
        let mut acc = Accelerator::new("dotdemo");
        acc.add_structure(Structure::scratchpad("spad", 16));
        let mut t = TaskBlock::new("main", TaskKind::Region);
        t.dataflow
            .add_node(Node::new("c", NodeKind::Const(ConstVal::Int(1)), Type::I64));
        t.dataflow
            .add_node(Node::new("out", NodeKind::Output, Type::I64));
        let tid = acc.add_task(t);
        acc.root = tid;
        let dot = to_dot(&acc);
        assert!(dot.contains("digraph \"dotdemo\""));
        assert!(dot.contains("cluster_t0"));
        assert!(dot.contains("scratchpad"));
        assert!(dot.ends_with("}\n"));
    }
}
