//! `muir-core` — the μIR microarchitecture graph (the paper's contribution).
//!
//! μIR represents an accelerator as a **latency-agnostic structural graph**
//! (§3.1): components execute in parallel and communicate through sequences
//! of atomic tokens over ready/valid edges, so the timing of individual
//! components never affects functional correctness. The graph is organised
//! in a hierarchy mirroring a compiler IR's
//! module→function→block→instruction structure:
//!
//! * **whole-accelerator level** ([`accel::Accelerator`]): asynchronous
//!   [`accel::TaskBlock`]s wired by `<||>` spawn/sync connections, hardware
//!   [`structure::Structure`]s (scratchpads, caches, the DRAM/AXI port)
//!   wired by `<==>` request/response connections (§3.2);
//! * **per-task dataflow** ([`dataflow::Dataflow`]): polymorphic typed
//!   [`node::Node`]s (function units, memory transit points, child-task
//!   calls) connected 1-1, plus [`dataflow::Junction`]s giving the
//!   distributed memory nodes time-multiplexed access to structures (§3.3,
//!   §3.4).
//!
//! The graph is *transformed* by `muir-uopt` passes, *measured* by the
//! `muir-sim` cycle-level simulator, and *lowered* by `muir-rtl` to
//! Chisel-like RTL and a FIRRTL-like circuit graph.

pub mod accel;
pub mod compiled;
pub mod dataflow;
pub mod dot;
pub mod envelope;
pub mod hw;
pub mod node;
pub mod printer;
pub mod rng;
pub mod stats;
pub mod structure;
pub mod telemetry;
pub mod verify;

pub use accel::{
    Accelerator, ArgExpr, LoopSpec, MemConnection, ResultInit, TaskBlock, TaskConnection, TaskId,
    TaskKind,
};
pub use compiled::{content_hash, CompiledAccel, CompiledTask, ContentHasher};
pub use dataflow::{Buffering, Dataflow, Edge, EdgeIndex, EdgeKind, Junction, JunctionId, NodeId};
pub use node::{FusedInput, FusedPlan, FusedStep, Node, NodeKind, OpKind};
pub use structure::{Structure, StructureId, StructureKind};

// The type system is shared with the compiler IR.
pub use muir_mir::types::{ScalarType, TensorShape, Type};
