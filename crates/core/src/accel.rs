//! The whole-accelerator circuit: task blocks, structures, and connections
//! (§3.2).

use crate::dataflow::{Dataflow, JunctionId};
use crate::structure::{Structure, StructureId};
use std::fmt;

/// Index of a task block within the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An argument-or-constant expression used in a loop bound specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgExpr {
    /// The task's `n`-th argument.
    Arg(u32),
    /// A compile-time constant.
    Const(i64),
}

/// Canonical loop bounds of a loop task: `for (i = lo; i < hi; i += step)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopSpec {
    /// Lower bound.
    pub lo: ArgExpr,
    /// Upper (exclusive) bound.
    pub hi: ArgExpr,
    /// Step (nonzero, positive).
    pub step: i64,
}

/// What a task block is.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskKind {
    /// A straight dataflow region: one dataflow instance per invocation
    /// (Cilk spawned bodies, function bodies).
    Region,
    /// A loop encapsulated as a self-scheduling task (§3.5): the dataflow
    /// runs once per iteration, pipelined. `serial` loops admit iteration
    /// *i+1* only after iteration *i* commits (conservative loop-carried
    /// memory dependence).
    Loop {
        /// Canonical bounds.
        spec: LoopSpec,
        /// Whether carried memory dependences force serialization.
        serial: bool,
    },
}

impl TaskKind {
    /// Whether this is a loop task.
    pub fn is_loop(&self) -> bool {
        matches!(self, TaskKind::Loop { .. })
    }
}

/// An asynchronous task block (§3.2): a closure-like execution block with a
/// hardware issue queue and `tiles` replicated execution units (Pass 2).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskBlock {
    /// Debug name.
    pub name: String,
    /// Region or loop.
    pub kind: TaskKind,
    /// The internal pipelined dataflow.
    pub dataflow: Dataflow,
    /// Number of replicated execution units (execution tiling, §6.2).
    pub tiles: u32,
    /// Depth of the hardware issue queue holding ready/pending invocations.
    pub queue_depth: u32,
    /// Number of arguments (live-ins) per invocation.
    pub num_args: u32,
    /// Number of results (live-outs) per invocation.
    pub num_results: u32,
    /// For loop tasks: per-result fallback used when the trip count is zero
    /// (a loop-carried accumulator's result is then its initial value).
    /// `None` when the result has no zero-trip definition.
    pub loop_result_inits: Vec<Option<ResultInit>>,
}

/// Zero-trip fallback source for a loop task's result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResultInit {
    /// The task's `n`-th argument.
    Arg(u32),
    /// A constant.
    Const(muir_mir::instr::ConstVal),
}

impl TaskBlock {
    /// A new task block with baseline parameters (1 tile, depth-2 queue).
    pub fn new(name: impl Into<String>, kind: TaskKind) -> TaskBlock {
        TaskBlock {
            name: name.into(),
            kind,
            dataflow: Dataflow::new(),
            tiles: 1,
            queue_depth: 2,
            num_args: 0,
            num_results: 0,
            loop_result_inits: Vec::new(),
        }
    }
}

/// A `<||>` spawn/sync connection between a parent and child task (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskConnection {
    /// Parent (spawner).
    pub parent: TaskId,
    /// Child (spawned).
    pub child: TaskId,
    /// FIFO depth decoupling the two (Pass 1: task-block queueing). Depth 1
    /// means tightly coupled.
    pub queue_depth: u32,
}

/// A `<==>` request/response connection from a task's junction to a
/// hardware structure (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConnection {
    /// The task whose junction connects.
    pub task: TaskId,
    /// The junction within the task's dataflow.
    pub junction: JunctionId,
    /// The structure it reaches.
    pub structure: StructureId,
}

/// The whole accelerator: a structural, concurrent graph of task blocks,
/// hardware structures, and connections.
#[derive(Debug, Clone, PartialEq)]
pub struct Accelerator {
    /// Accelerator (workload) name.
    pub name: String,
    /// Task-block arena; [`TaskId`] indexes into this.
    pub tasks: Vec<TaskBlock>,
    /// Hardware structures; [`StructureId`] indexes into this.
    pub structures: Vec<Structure>,
    /// `<||>` connections.
    pub task_conns: Vec<TaskConnection>,
    /// `<==>` connections.
    pub mem_conns: Vec<MemConnection>,
    /// The root task (invoked once from the host).
    pub root: TaskId,
    /// Per memory object: element count and whether the accelerator only
    /// reads it (stream-in data). Indexed by `MemObjId`; filled by the
    /// front-end and consumed by localization sizing and the DMA model.
    pub object_info: Vec<(u64, bool)>,
}

impl Accelerator {
    /// An empty accelerator (root is fixed up once tasks exist).
    pub fn new(name: impl Into<String>) -> Accelerator {
        Accelerator {
            name: name.into(),
            tasks: Vec::new(),
            structures: Vec::new(),
            task_conns: Vec::new(),
            mem_conns: Vec::new(),
            root: TaskId(0),
            object_info: Vec::new(),
        }
    }

    /// Add a task block, returning its id.
    pub fn add_task(&mut self, task: TaskBlock) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(task);
        id
    }

    /// Add a hardware structure, returning its id.
    pub fn add_structure(&mut self, s: Structure) -> StructureId {
        let id = StructureId(self.structures.len() as u32);
        self.structures.push(s);
        id
    }

    /// Record a parent→child `<||>` connection.
    pub fn connect_tasks(&mut self, parent: TaskId, child: TaskId, queue_depth: u32) {
        self.task_conns.push(TaskConnection {
            parent,
            child,
            queue_depth,
        });
    }

    /// Record a junction→structure `<==>` connection.
    pub fn connect_mem(&mut self, task: TaskId, junction: JunctionId, structure: StructureId) {
        self.mem_conns.push(MemConnection {
            task,
            junction,
            structure,
        });
    }

    /// The task behind `id`.
    pub fn task(&self, id: TaskId) -> &TaskBlock {
        &self.tasks[id.0 as usize]
    }

    /// Mutable access to the task behind `id`.
    pub fn task_mut(&mut self, id: TaskId) -> &mut TaskBlock {
        &mut self.tasks[id.0 as usize]
    }

    /// The structure behind `id`.
    pub fn structure(&self, id: StructureId) -> &Structure {
        &self.structures[id.0 as usize]
    }

    /// Mutable access to the structure behind `id`.
    pub fn structure_mut(&mut self, id: StructureId) -> &mut Structure {
        &mut self.structures[id.0 as usize]
    }

    /// All task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// All structure ids.
    pub fn structure_ids(&self) -> impl Iterator<Item = StructureId> {
        (0..self.structures.len() as u32).map(StructureId)
    }

    /// Children of `t` per the `<||>` connections.
    pub fn children(&self, t: TaskId) -> Vec<TaskId> {
        self.task_conns
            .iter()
            .filter(|c| c.parent == t)
            .map(|c| c.child)
            .collect()
    }

    /// Parent of `t`, if any.
    pub fn parent(&self, t: TaskId) -> Option<TaskId> {
        self.task_conns
            .iter()
            .find(|c| c.child == t)
            .map(|c| c.parent)
    }

    /// The structure that homes `obj`, if any.
    pub fn structure_for(&self, obj: muir_mir::instr::MemObjId) -> Option<StructureId> {
        self.structure_ids()
            .find(|&s| self.structure(s).serves(obj))
    }

    /// The `<||>` connection between `parent` and `child`, mutably.
    pub fn task_conn_mut(&mut self, parent: TaskId, child: TaskId) -> Option<&mut TaskConnection> {
        self.task_conns
            .iter_mut()
            .find(|c| c.parent == parent && c.child == child)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muir_mir::instr::MemObjId;

    #[test]
    fn accelerator_wiring() {
        let mut acc = Accelerator::new("demo");
        let root = acc.add_task(TaskBlock::new("main", TaskKind::Region));
        let child = acc.add_task(TaskBlock::new(
            "loop",
            TaskKind::Loop {
                spec: LoopSpec {
                    lo: ArgExpr::Const(0),
                    hi: ArgExpr::Arg(0),
                    step: 1,
                },
                serial: false,
            },
        ));
        acc.root = root;
        acc.connect_tasks(root, child, 1);
        assert_eq!(acc.children(root), vec![child]);
        assert_eq!(acc.parent(child), Some(root));
        assert_eq!(acc.parent(root), None);
        assert!(acc.task(child).kind.is_loop());
        assert!(!acc.task(root).kind.is_loop());
    }

    #[test]
    fn structure_lookup_by_object() {
        let mut acc = Accelerator::new("demo");
        let mut spad = Structure::scratchpad("spad", 256);
        spad.serve(MemObjId(1));
        let sid = acc.add_structure(spad);
        acc.add_structure(Structure::dram("axi"));
        assert_eq!(acc.structure_for(MemObjId(1)), Some(sid));
        assert_eq!(acc.structure_for(MemObjId(9)), None);
    }

    #[test]
    fn task_conn_queue_tuning() {
        let mut acc = Accelerator::new("demo");
        let a = acc.add_task(TaskBlock::new("a", TaskKind::Region));
        let b = acc.add_task(TaskBlock::new("b", TaskKind::Region));
        acc.connect_tasks(a, b, 1);
        acc.task_conn_mut(a, b).unwrap().queue_depth = 8;
        assert_eq!(acc.task_conns[0].queue_depth, 8);
        assert!(acc.task_conn_mut(b, a).is_none());
    }

    #[test]
    fn default_task_parameters() {
        let t = TaskBlock::new("t", TaskKind::Region);
        assert_eq!(t.tiles, 1);
        assert_eq!(t.queue_depth, 2);
        assert_eq!(t.num_args, 0);
    }
}
