//! Graph statistics: node/edge counts and pipeline depth.
//!
//! Table 4 compares μIR graph sizes against FIRRTL; §5.2 reports dataflow
//! pipeline depths (15–40 stages). Both are computed here.

use crate::accel::Accelerator;
use crate::dataflow::{Dataflow, EdgeKind};
use crate::hw::{self, BASELINE_PERIOD_NS};
use crate::node::NodeKind;

/// Size statistics of a μIR graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphStats {
    /// Task blocks.
    pub tasks: usize,
    /// Dataflow nodes across all tasks.
    pub nodes: usize,
    /// Dataflow edges across all tasks.
    pub edges: usize,
    /// Junctions across all tasks.
    pub junctions: usize,
    /// Hardware structures.
    pub structures: usize,
    /// Memory (load/store) nodes.
    pub mem_nodes: usize,
    /// Whole-accelerator connections (`<||>` + `<==>`).
    pub connections: usize,
    /// Deepest task pipeline in cycles (§5.2).
    pub pipeline_depth: u32,
}

impl GraphStats {
    /// Total graph elements (nodes + edges + structures + connections) —
    /// the quantity Table 4's size ratio is computed over.
    pub fn total_elements(&self) -> usize {
        self.nodes + self.edges + self.structures + self.connections + self.junctions
    }
}

/// Compute statistics for an accelerator.
pub fn graph_stats(acc: &Accelerator) -> GraphStats {
    let mut s = GraphStats {
        tasks: acc.tasks.len(),
        structures: acc.structures.len(),
        connections: acc.task_conns.len() + acc.mem_conns.len(),
        ..GraphStats::default()
    };
    for t in &acc.tasks {
        s.nodes += t.dataflow.nodes.len();
        s.edges += t.dataflow.edges.len();
        s.junctions += t.dataflow.junctions.len();
        s.mem_nodes += t.dataflow.mem_nodes().len();
        s.pipeline_depth = s.pipeline_depth.max(pipeline_depth(&t.dataflow));
    }
    s
}

/// Longest latency path (cycles) through a dataflow, following forward
/// (non-feedback) edges only. Each edge adds one handshake-register cycle;
/// each node adds its pipeline latency.
pub fn pipeline_depth(df: &Dataflow) -> u32 {
    let n = df.nodes.len();
    if n == 0 {
        return 0;
    }
    // Longest path over the forward-edge DAG via memoised DFS over the CSR
    // index (one O(E) build instead of an O(E) rescan per node visit).
    let idx = df.edge_index();
    let mut memo: Vec<Option<u32>> = vec![None; n];
    let mut best = 0;
    for id in df.node_ids() {
        best = best.max(depth_of(df, &idx, id.0 as usize, &mut memo, 0));
    }
    best
}

fn depth_of(
    df: &Dataflow,
    idx: &crate::dataflow::EdgeIndex,
    i: usize,
    memo: &mut Vec<Option<u32>>,
    guard: u32,
) -> u32 {
    if let Some(d) = memo[i] {
        return d;
    }
    if guard > df.nodes.len() as u32 + 1 {
        // Defensive: a forward-edge cycle would be a verifier bug.
        return 0;
    }
    let node = &df.nodes[i];
    let own = hw::node_timing(&node.kind, node.ty, BASELINE_PERIOD_NS).latency;
    let mut in_depth = 0;
    for &ei in idx.ins(crate::dataflow::NodeId(i as u32)) {
        let e = &df.edges[ei as usize];
        if e.kind != EdgeKind::Feedback {
            in_depth = in_depth.max(depth_of(df, idx, e.src.0 as usize, memo, guard + 1) + 1);
        }
    }
    let d = own + in_depth;
    memo[i] = Some(d);
    d
}

/// Count of μIR nodes whose values feed an `Output` node transitively —
/// used by simplification sanity checks.
pub fn live_node_count(df: &Dataflow) -> usize {
    let Some(out) = df.output_node() else {
        return 0;
    };
    let idx = df.edge_index();
    let mut seen = vec![false; df.nodes.len()];
    let mut work = vec![out];
    while let Some(n) = work.pop() {
        if seen[n.0 as usize] {
            continue;
        }
        seen[n.0 as usize] = true;
        for e in idx.in_edges(df, n) {
            work.push(e.src);
        }
    }
    // Stores and task calls are live by side effect.
    for id in df.node_ids() {
        if matches!(
            df.node(id).kind,
            NodeKind::Store { .. } | NodeKind::TaskCall { .. }
        ) && !seen[id.0 as usize]
        {
            seen[id.0 as usize] = true;
            let mut work = vec![id];
            while let Some(n) = work.pop() {
                for e in idx.in_edges(df, n) {
                    if !seen[e.src.0 as usize] {
                        seen[e.src.0 as usize] = true;
                        work.push(e.src);
                    }
                }
            }
        }
    }
    seen.iter().filter(|&&s| s).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::{TaskBlock, TaskKind};
    use crate::node::{Node, OpKind};
    use muir_mir::instr::{BinOp, ConstVal};
    use muir_mir::types::Type;

    fn chain_df(len: usize) -> Dataflow {
        let mut df = Dataflow::new();
        let c = df.add_node(Node::new(
            "c",
            NodeKind::Const(ConstVal::F32(1.0)),
            Type::F32,
        ));
        let mut prev = c;
        for i in 0..len {
            let n = df.add_node(Node::new(
                format!("f{i}"),
                NodeKind::Compute(OpKind::Bin(BinOp::FAdd)),
                Type::F32,
            ));
            df.connect(prev, 0, n, 0);
            df.connect(c, 0, n, 1);
            prev = n;
        }
        let out = df.add_node(Node::new("out", NodeKind::Output, Type::F32));
        df.connect(prev, 0, out, 0);
        df
    }

    #[test]
    fn pipeline_depth_of_chain() {
        // const(1) + 3 × (fadd 4 + edge 1) + output(1) + edges
        let df = chain_df(3);
        let d = pipeline_depth(&df);
        // const 1, then each fadd adds 4+1, output adds 1+1.
        assert_eq!(d, 1 + 3 * 5 + 2);
    }

    #[test]
    fn deeper_chain_is_deeper() {
        assert!(pipeline_depth(&chain_df(10)) > pipeline_depth(&chain_df(2)));
    }

    #[test]
    fn stats_aggregate() {
        let mut acc = Accelerator::new("s");
        let mut t = TaskBlock::new("main", TaskKind::Region);
        t.dataflow = chain_df(2);
        let tid = acc.add_task(t);
        acc.root = tid;
        let s = graph_stats(&acc);
        assert_eq!(s.tasks, 1);
        assert_eq!(s.nodes, 4);
        assert!(s.edges >= 4);
        assert!(s.pipeline_depth > 0);
        assert!(s.total_elements() >= s.nodes + s.edges);
    }

    #[test]
    fn live_nodes_reach_everything_in_chain() {
        let df = chain_df(3);
        assert_eq!(live_node_count(&df), df.nodes.len());
    }
}
