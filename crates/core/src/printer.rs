//! Textual rendering of μIR graphs.
//!
//! μIR is "simply implemented as a data structure" (§3), but a stable
//! textual form makes transformations reviewable: dump the graph before and
//! after a pass and diff. The format is line-oriented, one entity per line.

use crate::accel::{Accelerator, ArgExpr, TaskKind};
use crate::dataflow::{Buffering, EdgeKind};
use crate::node::NodeKind;
use crate::structure::StructureKind;
use std::fmt::Write;

fn arg_expr(e: &ArgExpr) -> String {
    match e {
        ArgExpr::Arg(a) => format!("arg{a}"),
        ArgExpr::Const(k) => k.to_string(),
    }
}

/// Render the whole accelerator as text.
pub fn print_accelerator(acc: &Accelerator) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "accelerator \"{}\" {{", acc.name);
    for (si, s) in acc.structures.iter().enumerate() {
        let desc = match &s.kind {
            StructureKind::Scratchpad { banks, ports_per_bank, latency, capacity, shape } => {
                let sh = shape.map(|x| format!(", shape={x}")).unwrap_or_default();
                format!(
                    "scratchpad(banks={banks}, ports={ports_per_bank}, lat={latency}, cap={capacity}{sh})"
                )
            }
            StructureKind::Cache { capacity, assoc, line_elems, banks, hit_latency } => format!(
                "cache(cap={capacity}, ways={assoc}, line={line_elems}, banks={banks}, hit={hit_latency})"
            ),
            StructureKind::Dram { latency, elems_per_cycle } => {
                format!("dram(lat={latency}, bw={elems_per_cycle})")
            }
        };
        let objs: Vec<String> = s.objects.iter().map(|o| o.to_string()).collect();
        let _ = writeln!(
            out,
            "  structure s{si} \"{}\": {desc} serves [{}]",
            s.name,
            objs.join(", ")
        );
    }
    for (ti, t) in acc.tasks.iter().enumerate() {
        let kind = match &t.kind {
            TaskKind::Region => "region".to_string(),
            TaskKind::Loop { spec, serial } => format!(
                "loop({}..{} step {}{})",
                arg_expr(&spec.lo),
                arg_expr(&spec.hi),
                spec.step,
                if *serial { ", serial" } else { "" }
            ),
        };
        let _ = writeln!(
            out,
            "  task t{ti} \"{}\" {kind} tiles={} queue={} args={} results={} {{",
            t.name, t.tiles, t.queue_depth, t.num_args, t.num_results
        );
        for (ni, n) in t.dataflow.nodes.iter().enumerate() {
            let k = match &n.kind {
                NodeKind::Input { index } => format!("input({index})"),
                NodeKind::IndVar => "indvar".to_string(),
                NodeKind::Const(c) => format!("const({c})"),
                NodeKind::Compute(op) => format!("compute({op})"),
                NodeKind::Fused(p) => format!("fused({} ops)", p.op_count()),
                NodeKind::FusedAcc { op } => format!("fusedacc({})", op.mnemonic()),
                NodeKind::Merge => "merge".to_string(),
                NodeKind::Load {
                    obj,
                    junction,
                    predicated,
                } => format!(
                    "load({obj} via {junction}{})",
                    if *predicated { ", pred" } else { "" }
                ),
                NodeKind::Store {
                    obj,
                    junction,
                    predicated,
                } => format!(
                    "store({obj} via {junction}{})",
                    if *predicated { ", pred" } else { "" }
                ),
                NodeKind::TaskCall {
                    callee,
                    predicated,
                    spawn,
                } => format!(
                    "call(t{}{}{})",
                    callee.0,
                    if *spawn { ", spawn" } else { "" },
                    if *predicated { ", pred" } else { "" }
                ),
                NodeKind::Output => "output".to_string(),
            };
            let _ = writeln!(out, "    n{ni} = {k} : {} ; \"{}\"", n.ty, n.name);
        }
        for e in &t.dataflow.edges {
            let buf = match e.buffering {
                Buffering::Handshake => String::new(),
                Buffering::Fifo(d) => format!(" fifo({d})"),
            };
            let kind = match e.kind {
                EdgeKind::Data => "->",
                EdgeKind::Feedback => "~>",
                EdgeKind::Order => "=>",
            };
            let _ = writeln!(
                out,
                "    n{}.{} {kind} n{}.{}{buf}",
                e.src.0, e.src_port, e.dst.0, e.dst_port
            );
        }
        for (ji, j) in t.dataflow.junctions.iter().enumerate() {
            let rd: Vec<String> = j.readers.iter().map(|n| n.to_string()).collect();
            let wr: Vec<String> = j.writers.iter().map(|n| n.to_string()).collect();
            let _ = writeln!(
                out,
                "    junction j{ji} -> s{} ({}R/{}W) readers=[{}] writers=[{}]",
                j.structure.0,
                j.read_ports,
                j.write_ports,
                rd.join(", "),
                wr.join(", ")
            );
        }
        let _ = writeln!(out, "  }}");
    }
    for c in &acc.task_conns {
        let _ = writeln!(
            out,
            "  t{} <||> t{} (q={})",
            c.parent.0, c.child.0, c.queue_depth
        );
    }
    for mc in &acc.mem_conns {
        let _ = writeln!(
            out,
            "  t{}.j{} <==> s{}",
            mc.task.0, mc.junction.0, mc.structure.0
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::TaskBlock;
    use crate::node::Node;
    use crate::structure::Structure;
    use crate::Type;
    use muir_mir::instr::{ConstVal, MemObjId};

    fn demo() -> Accelerator {
        let mut acc = Accelerator::new("demo");
        let mut spad = Structure::scratchpad("spad", 64);
        spad.serve(MemObjId(0));
        acc.add_structure(spad);
        let mut t = TaskBlock::new("main", TaskKind::Region);
        t.dataflow
            .add_node(Node::new("c", NodeKind::Const(ConstVal::Int(3)), Type::I64));
        t.dataflow
            .add_node(Node::new("out", NodeKind::Output, Type::I64));
        let tid = acc.add_task(t);
        acc.root = tid;
        acc
    }

    #[test]
    fn prints_structures_tasks_nodes() {
        let text = print_accelerator(&demo());
        assert!(text.contains("accelerator \"demo\""));
        assert!(text.contains("structure s0 \"spad\": scratchpad("));
        assert!(text.contains("serves [@mem0]"));
        assert!(text.contains("task t0 \"main\" region tiles=1"));
        assert!(text.contains("n0 = const(3) : i64"));
        assert!(text.contains("n1 = output : i64"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn prints_loop_specs_and_connections() {
        let mut acc = demo();
        let mut lp = TaskBlock::new(
            "lp",
            TaskKind::Loop {
                spec: crate::accel::LoopSpec {
                    lo: ArgExpr::Const(0),
                    hi: ArgExpr::Arg(1),
                    step: 2,
                },
                serial: true,
            },
        );
        lp.dataflow
            .add_node(Node::new("i", NodeKind::IndVar, Type::I64));
        lp.dataflow
            .add_node(Node::new("out", NodeKind::Output, Type::I64));
        let child = acc.add_task(lp);
        acc.connect_tasks(acc.root, child, 4);
        let text = print_accelerator(&acc);
        assert!(text.contains("loop(0..arg1 step 2, serial)"), "{text}");
        assert!(text.contains("t0 <||> t1 (q=4)"));
        assert!(text.contains("indvar"));
    }

    #[test]
    fn edge_kinds_have_distinct_arrows() {
        let mut acc = demo();
        let df = &mut acc.tasks[0].dataflow;
        let a = df.add_node(Node::new("m", NodeKind::Merge, Type::I64));
        df.connect(crate::dataflow::NodeId(0), 0, a, 0);
        df.connect_feedback(crate::dataflow::NodeId(0), 0, a);
        df.connect_order(crate::dataflow::NodeId(0), a);
        let text = print_accelerator(&acc);
        assert!(text.contains("->"));
        assert!(text.contains("~>"));
        assert!(text.contains("=>"));
    }
}
