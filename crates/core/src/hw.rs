//! Hardware timing characteristics of μIR components.
//!
//! μIR nodes correspond to microarchitecture-level hardware blocks, so each
//! op kind carries a pipeline latency, an initiation interval, and a
//! combinational per-stage delay estimate. The delays drive the critical-
//! path frequency model (Table 2) and the op-fusion pass's clock-period
//! constraint (§6.1: fusion must not create frequency-robbing stages).

use crate::node::{FusedInput, FusedPlan, NodeKind, OpKind};
use muir_mir::instr::{BinOp, CastOp, TensorOp, UnOp};
use muir_mir::types::Type;

/// Pipeline timing of a function unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Cycles from operand arrival to result (≥ 1).
    pub latency: u32,
    /// Cycles between successive independent inputs (1 = fully pipelined).
    pub ii: u32,
}

impl Timing {
    /// A fully pipelined unit of the given depth.
    pub fn pipelined(latency: u32) -> Timing {
        Timing {
            latency: latency.max(1),
            ii: 1,
        }
    }
}

/// Timing of a compute op on the given type.
pub fn op_timing(op: OpKind, ty: Type) -> Timing {
    let base = match op {
        OpKind::Bin(b) => match b {
            BinOp::Mul => Timing::pipelined(3),
            BinOp::Div | BinOp::Rem => Timing { latency: 16, ii: 8 },
            BinOp::FAdd | BinOp::FSub => Timing::pipelined(4),
            BinOp::FMul => Timing::pipelined(4),
            BinOp::FDiv => Timing { latency: 14, ii: 6 },
            _ => Timing::pipelined(1),
        },
        OpKind::Un(u) => match u {
            UnOp::FNeg | UnOp::Relu => Timing::pipelined(1),
            UnOp::Exp | UnOp::Sqrt => Timing { latency: 12, ii: 2 },
        },
        OpKind::Cmp(_) | OpKind::Select | OpKind::Cast(_) => Timing::pipelined(1),
        OpKind::Tensor(t, _) => match t {
            // A tile op is a spatial array of scalar units: latency covers
            // the reduction tree of Figure 14, II stays 1.
            TensorOp::MatMul | TensorOp::Conv => Timing::pipelined(4),
            // Adder tree only (no multiplier row): one stage shallower.
            TensorOp::Reduce => Timing::pipelined(3),
            // Softmax serialises through the exp unit, then divides.
            TensorOp::Softmax => Timing { latency: 16, ii: 2 },
            TensorOp::Add | TensorOp::Mul | TensorOp::Relu => Timing::pipelined(2),
        },
    };
    // Wide vector units add one staging cycle for operand distribution.
    if ty.is_composite() && !matches!(op, OpKind::Tensor(..)) {
        Timing {
            latency: base.latency + 1,
            ii: base.ii,
        }
    } else {
        base
    }
}

/// Combinational delay (ns) of one op at the FPGA reference technology
/// (Arria-10-class). The ASIC model scales this down in `muir-rtl`.
pub fn op_delay_ns(op: OpKind, _ty: Type) -> f64 {
    match op {
        OpKind::Bin(b) => match b {
            BinOp::Add | BinOp::Sub => 1.0,
            BinOp::Mul => 1.4,
            BinOp::Div | BinOp::Rem => 3.5,
            BinOp::And | BinOp::Or | BinOp::Xor => 0.5,
            BinOp::Shl | BinOp::LShr | BinOp::AShr => 0.8,
            BinOp::FAdd | BinOp::FSub => 2.5,
            BinOp::FMul => 2.8,
            BinOp::FDiv => 3.4,
        },
        OpKind::Un(u) => match u {
            UnOp::FNeg => 0.5,
            UnOp::Relu => 0.8,
            UnOp::Exp | UnOp::Sqrt => 3.2,
        },
        OpKind::Cmp(_) => 0.9,
        OpKind::Select => 0.6,
        OpKind::Cast(CastOp::IntResize) => 0.3,
        OpKind::Cast(_) => 1.5,
        OpKind::Tensor(t, _) => match t {
            TensorOp::MatMul | TensorOp::Conv => 2.9,
            TensorOp::Add | TensorOp::Mul => 2.6,
            TensorOp::Reduce => 2.4,
            TensorOp::Softmax => 3.2,
            TensorOp::Relu => 1.2,
        },
    }
}

/// Timing of any node kind. Memory and task-call nodes are transit points
/// whose real latency comes from the memory system / callee; this is their
/// local issue timing.
pub fn node_timing(kind: &NodeKind, ty: Type, period_ns: f64) -> Timing {
    match kind {
        NodeKind::Compute(op) => op_timing(*op, ty),
        NodeKind::Fused(plan) => fused_timing(plan, period_ns),
        NodeKind::Load { .. } | NodeKind::Store { .. } => Timing::pipelined(1),
        NodeKind::TaskCall { .. } => Timing::pipelined(1),
        NodeKind::FusedAcc { op } => {
            let t = op_timing(*op, ty);
            // The recurrence wraps inside the unit: II equals the member
            // op's latency (a 1-cycle int add accumulates every cycle).
            Timing {
                latency: t.latency,
                ii: t.latency,
            }
        }
        NodeKind::Input { .. }
        | NodeKind::IndVar
        | NodeKind::Const(_)
        | NodeKind::Merge
        | NodeKind::Output => Timing::pipelined(1),
    }
}

/// Critical combinational path (ns) through a fused plan.
pub fn fused_path_delay(plan: &FusedPlan) -> f64 {
    let mut step_delay = vec![0.0f64; plan.steps.len()];
    for (i, step) in plan.steps.iter().enumerate() {
        let in_max = step
            .inputs
            .iter()
            .map(|inp| match inp {
                FusedInput::External(_) => 0.0,
                FusedInput::Step(s) => step_delay[*s as usize],
            })
            .fold(0.0, f64::max);
        step_delay[i] = in_max + op_delay_ns(step.op, step.ty);
    }
    step_delay.iter().copied().fold(0.0, f64::max)
}

/// Timing of a fused node: ops are chained combinationally and re-timed
/// into the fewest stages that fit the clock period. The initiation
/// interval is the worst II of any member op.
pub fn fused_timing(plan: &FusedPlan, period_ns: f64) -> Timing {
    let path = fused_path_delay(plan);
    let latency = (path / period_ns.max(0.1)).ceil().max(1.0) as u32;
    let ii = plan
        .steps
        .iter()
        .map(|s| op_timing(s.op, s.ty).ii)
        .max()
        .unwrap_or(1);
    Timing { latency, ii }
}

/// The baseline clock period target (ns) at the FPGA reference technology.
/// 2.5 ns = 400 MHz, consistent with the paper's 350–500 MHz baselines.
pub const BASELINE_PERIOD_NS: f64 = 2.5;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::FusedStep;
    use muir_mir::instr::CmpPred;
    use muir_mir::types::{ScalarType, TensorShape};

    #[test]
    fn integer_ops_single_cycle() {
        let t = op_timing(OpKind::Bin(BinOp::Add), Type::I64);
        assert_eq!(t, Timing { latency: 1, ii: 1 });
        let t = op_timing(OpKind::Cmp(CmpPred::Lt), Type::I64);
        assert_eq!(t.latency, 1);
    }

    #[test]
    fn fp_ops_pipelined() {
        let t = op_timing(OpKind::Bin(BinOp::FMul), Type::F32);
        assert_eq!(t.latency, 4);
        assert_eq!(t.ii, 1);
        let t = op_timing(OpKind::Bin(BinOp::FDiv), Type::F32);
        assert!(t.ii > 1, "fdiv is not fully pipelined");
    }

    #[test]
    fn tensor_units_fully_pipelined() {
        let shape = TensorShape::new(2, 2);
        let ty = Type::Tensor {
            elem: ScalarType::F32,
            shape,
        };
        let t = op_timing(OpKind::Tensor(TensorOp::MatMul, shape), ty);
        assert_eq!(t.ii, 1);
        assert!(t.latency >= 2);
    }

    #[test]
    fn fused_timing_packs_stages() {
        // Three 1.0 ns adds chained: 3.0 ns path → 2 stages at 2.5 ns.
        // Compared to 3 separate handshaked nodes (3 cycles + 3 handshake
        // registers), the fused node is shorter.
        let step = |inputs: Vec<FusedInput>| FusedStep {
            op: OpKind::Bin(BinOp::Add),
            ty: Type::I64,
            inputs,
        };
        let plan = FusedPlan {
            arity: 2,
            steps: vec![
                step(vec![FusedInput::External(0), FusedInput::External(1)]),
                step(vec![FusedInput::Step(0), FusedInput::External(1)]),
                step(vec![FusedInput::Step(1), FusedInput::External(0)]),
            ],
        };
        assert!((fused_path_delay(&plan) - 3.0).abs() < 1e-9);
        let t = fused_timing(&plan, BASELINE_PERIOD_NS);
        assert_eq!(t.latency, 2);
        assert_eq!(t.ii, 1);

        // Two cheap logic ops fuse into a single stage.
        let cheap = |inputs: Vec<FusedInput>| FusedStep {
            op: OpKind::Bin(BinOp::And),
            ty: Type::I64,
            inputs,
        };
        let plan2 = FusedPlan {
            arity: 2,
            steps: vec![
                cheap(vec![FusedInput::External(0), FusedInput::External(1)]),
                cheap(vec![FusedInput::Step(0), FusedInput::External(1)]),
            ],
        };
        assert_eq!(fused_timing(&plan2, BASELINE_PERIOD_NS).latency, 1);
    }

    #[test]
    fn fused_parallel_steps_do_not_add() {
        // Two independent ops both fed from externals: path = max, not sum.
        let plan = FusedPlan {
            arity: 2,
            steps: vec![
                FusedStep {
                    op: OpKind::Bin(BinOp::Add),
                    ty: Type::I64,
                    inputs: vec![FusedInput::External(0), FusedInput::External(1)],
                },
                FusedStep {
                    op: OpKind::Bin(BinOp::Mul),
                    ty: Type::I64,
                    inputs: vec![FusedInput::External(0), FusedInput::External(1)],
                },
            ],
        };
        assert!((fused_path_delay(&plan) - 1.4).abs() < 1e-9);
    }

    #[test]
    fn node_timing_covers_all_kinds() {
        assert_eq!(node_timing(&NodeKind::Merge, Type::I64, 2.5).latency, 1);
        assert_eq!(node_timing(&NodeKind::Output, Type::I64, 2.5).latency, 1);
        let c = NodeKind::Compute(OpKind::Bin(BinOp::FAdd));
        assert_eq!(node_timing(&c, Type::F32, 2.5).latency, 4);
    }
}
