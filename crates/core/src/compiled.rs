//! The sealed compilation artifact: [`CompiledAccel`].
//!
//! Every consumer of a μIR graph — the cycle simulator, the Chisel
//! emitter, the cost model — needs the same derived indexes: per-node
//! adjacency, a feedback-free topological order, queue depths resolved
//! from the `<||>` connections, junction→structure routing. Before this
//! module each consumer re-derived them from the mutable
//! [`Accelerator`] on every use, which meant a batch of N simulations
//! paid N verifications and N elaborations of the same graph.
//!
//! [`CompiledAccel`] is the compile-once/run-many artifact (DESIGN.md
//! §11): an immutable, index-dense lowering of a *verified* accelerator,
//! carrying
//!
//! * the owned, frozen graph itself (consumers never re-walk a mutable
//!   borrow);
//! * per-task tables ([`CompiledTask`]): CSR in/out adjacency, the
//!   port-sorted input-edge lists and reverse-topological node order the
//!   schedulers need, static-node masks, and resolved issue-queue depths;
//! * memory-connection maps (structure → client junctions);
//! * a stable splitmix64-based content hash over the canonical form,
//!   which keys the process-local compile cache ([`compile_cached`]) and
//!   backs the pass-idempotence and artifact-determinism gates.
//!
//! Sealing performs verification exactly once: a `CompiledAccel` can only
//! be constructed from a graph that passed
//! [`crate::verify::verify_accelerator`], so downstream layers may assume
//! well-formedness without re-checking.

use crate::accel::{Accelerator, TaskId};
use crate::dataflow::{Buffering, Dataflow, EdgeIndex, EdgeKind, JunctionId};
use crate::node::{FusedPlan, NodeKind, OpKind};
use crate::telemetry;
use crate::verify::{verify_accelerator, GraphError};
use muir_mir::instr::BinOp;
use muir_mir::value::Value;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

/// Dense micro-op opcode: what a node *does*, reduced to a `u8` so the
/// simulator's fire path dispatches through a branch-predictable jump
/// table instead of a full `NodeKind` match with per-fire field
/// destructuring (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum UopKind {
    /// Input/Const: invocation-constant, never fired.
    Static = 0,
    /// Induction-variable stream (`lo + k*step`).
    IndVar,
    /// Loop-carried merge (port 0 at instance 0, port 1 after).
    Merge,
    /// Self-accumulating fused unit (op inline in [`MicroOp::op`]).
    FusedAcc,
    /// Plain function unit (op inline in [`MicroOp::op`]).
    Compute,
    /// Fused group; [`MicroOp::a`] indexes [`CompiledTask::fused_plans`].
    Fused,
    /// Result collector.
    Output,
    /// Memory load transit ([`MicroOp::a`] = object, [`MicroOp::b`] =
    /// junction).
    Load,
    /// Memory store transit (same field use as `Load`).
    Store,
    /// Child-task call ([`MicroOp::a`] = callee, [`MicroOp::b`] packs
    /// `nargs << 16 | nresults`).
    TaskCall,
}

/// [`MicroOp::flags`] bit: a predicate input gates the operation.
pub const UOP_PREDICATED: u8 = 1;
/// [`MicroOp::flags`] bit: a `TaskCall` that completes at enqueue.
pub const UOP_SPAWN: u8 = 2;

/// Input-slot tag ([`CompiledTask::in_slots`] top 2 bits): pop a token
/// from the edge in the payload.
pub const SLOT_TOKEN: u32 = 0 << 30;
/// Slot tag: read the invocation argument indexed by the payload.
pub const SLOT_ARG: u32 = 1 << 30;
/// Slot tag: read [`CompiledTask::consts`] at the payload index.
pub const SLOT_CONST: u32 = 2 << 30;
/// Slot tag: merge feedback edge — poison at instance 0, else pop a token
/// carrying instance `k - 1` from the edge in the payload.
pub const SLOT_FEEDBACK: u32 = 3 << 30;
/// Mask selecting a slot's tag bits.
pub const SLOT_TAG: u32 = 3 << 30;
/// Mask selecting a slot's payload (edge/arg/const index).
pub const SLOT_PAYLOAD: u32 = !SLOT_TAG;

/// One fixed-size micro-op record per node: the node's behaviour with
/// every graph lookup pre-resolved at compile time — input slots, edge
/// ranges, decoded operands — so a firing touches only dense index tables
/// (DESIGN.md §14).
#[derive(Debug, Clone, Copy)]
pub struct MicroOp {
    /// Dense opcode.
    pub kind: UopKind,
    /// [`UOP_PREDICATED`] | [`UOP_SPAWN`].
    pub flags: u8,
    /// Data-input slot count (length of the `in_slots` run at `slot0`).
    pub nin: u16,
    /// Dynamic order-in edge count (first `nord` entries at `ebase`).
    pub nord: u16,
    /// Out edge count (entries `nord..nord + nout` at `ebase`).
    pub nout: u16,
    /// Base index into [`CompiledTask::in_slots`].
    pub slot0: u32,
    /// Base index into [`CompiledTask::edge_refs`].
    pub ebase: u32,
    /// Opcode-specific operand: memory object (`Load`/`Store`), callee
    /// task (`TaskCall`), or fused-plan index (`Fused`).
    pub a: u32,
    /// Opcode-specific operand: junction (`Load`/`Store`) or packed
    /// `nargs << 16 | nresults` (`TaskCall`).
    pub b: u32,
    /// Inline op for `Compute`/`FusedAcc` (placeholder otherwise).
    pub op: OpKind,
}

/// Per-edge facts the micro-op interpreter needs without touching the
/// graph: producer node/port, edge kind, and declared buffering.
#[derive(Debug, Clone, Copy)]
pub struct EdgeMeta {
    /// Producer node.
    pub src: u32,
    /// Producer output port.
    pub src_port: u16,
    /// Order edge: the token payload is an ignored pulse.
    pub is_order: bool,
    /// Explicit FIFO depth, or `u32::MAX` for a default handshake
    /// connection (resolved against `elastic_depth` at elaboration).
    pub fifo: u32,
}

/// Pre-elaborated, immutable tables for one task's dataflow. The fields
/// are exactly the graph-derived (configuration-independent) state the
/// simulator previously rebuilt per run; RTL/cost consumers use the CSR
/// adjacency and the static masks.
///
/// Adjacency lists are `Arc<[usize]>` so scheduler hot paths can detach a
/// cheap O(1) handle instead of cloning a `Vec` per visit.
#[derive(Debug)]
pub struct CompiledTask {
    /// Whether each node is static (Input/Const: invocation-constant).
    pub is_static: Vec<bool>,
    /// Count of dynamic nodes (each fires once per instance).
    pub dynamic_count: u32,
    /// Node processing order: consumers before producers (reverse topo
    /// over forward edges) so single-token edges sustain II=1.
    pub order: Arc<[usize]>,
    /// Inverse of `order`: `pos[node]` is the node's scan position.
    pub pos: Vec<u32>,
    /// Per node: indices of incoming data/feedback edges sorted by port.
    pub in_data: Vec<Arc<[usize]>>,
    /// Per node: indices of incoming order edges.
    pub in_order: Vec<Arc<[usize]>>,
    /// Per node: indices of outgoing (non-static-src) edges.
    pub outs: Vec<Arc<[usize]>>,
    /// CSR adjacency over *all* edges (every kind, both directions);
    /// incoming rows are port-sorted. This is the general-purpose view
    /// for RTL, cost, and analysis consumers.
    pub index: EdgeIndex,
    /// Issue-queue depth contributed by the `<||>` connection feeding
    /// this task (1 when the task has no parent connection).
    pub conn_queue_depth: u32,
    /// Total invocation queue capacity: the task's own issue queue plus
    /// the `<||>` FIFO feeding it.
    pub queue_cap: usize,
    /// Junction count (sizes the simulator's junction-budget slab).
    pub njunctions: usize,
    /// The flat micro-op stream, indexed by node id. One fixed-size
    /// record per node; `Static` records are never dispatched.
    pub uops: Vec<MicroOp>,
    /// Packed input slots ([`SLOT_TOKEN`]/[`SLOT_ARG`]/[`SLOT_CONST`]/
    /// [`SLOT_FEEDBACK`] + payload), one run per node in port order.
    pub in_slots: Vec<u32>,
    /// Per node at [`MicroOp::ebase`]: `nord` dynamic order-in edges
    /// followed by `nout` out edges.
    pub edge_refs: Vec<u32>,
    /// Pre-evaluated `Const` node values, referenced by [`SLOT_CONST`]
    /// slots.
    pub consts: Vec<Value>,
    /// Fused-group plans hoisted out of `NodeKind::Fused` (which is not
    /// `Copy`), referenced by [`UopKind::Fused`] records via
    /// [`MicroOp::a`].
    pub fused_plans: Vec<FusedPlan>,
    /// Per-edge pre-resolved producer/kind/buffering facts, indexed by
    /// edge id.
    pub edge_meta: Vec<EdgeMeta>,
}

impl CompiledTask {
    fn build(acc: &Accelerator, tid: TaskId) -> CompiledTask {
        let task = acc.task(tid);
        let df = &task.dataflow;
        let n = df.nodes.len();
        let is_static: Vec<bool> = df
            .nodes
            .iter()
            .map(|nd| matches!(nd.kind, NodeKind::Input { .. } | NodeKind::Const(_)))
            .collect();
        let mut in_data = vec![Vec::new(); n];
        let mut in_order = vec![Vec::new(); n];
        let mut outs = vec![Vec::new(); n];
        for (ei, e) in df.edges.iter().enumerate() {
            match e.kind {
                EdgeKind::Order => in_order[e.dst.0 as usize].push(ei),
                _ => in_data[e.dst.0 as usize].push(ei),
            }
            if !is_static[e.src.0 as usize] {
                outs[e.src.0 as usize].push(ei);
            }
        }
        for v in &mut in_data {
            v.sort_by_key(|&ei| df.edges[ei].dst_port);
        }
        let order = reverse_topo(df);
        let mut pos = vec![0u32; n];
        for (p, &node) in order.iter().enumerate() {
            pos[node] = p as u32;
        }
        let conn_queue_depth = acc
            .task_conns
            .iter()
            .find(|c| c.child == tid)
            .map(|c| c.queue_depth)
            .unwrap_or(1);
        let dynamic_count = is_static.iter().filter(|s| !**s).count() as u32;
        CompiledTask {
            is_static,
            dynamic_count,
            order: order.into(),
            pos,
            in_data: in_data.into_iter().map(Into::into).collect(),
            in_order: in_order.into_iter().map(Into::into).collect(),
            outs: outs.into_iter().map(Into::into).collect(),
            index: df.edge_index(),
            conn_queue_depth,
            queue_cap: (task.queue_depth + conn_queue_depth) as usize,
            njunctions: df.junctions.len(),
            uops: Vec::new(),
            in_slots: Vec::new(),
            edge_refs: Vec::new(),
            consts: Vec::new(),
            fused_plans: Vec::new(),
            edge_meta: Vec::new(),
        }
    }

    /// Lower the structure tables into the flat micro-op stream: one
    /// [`MicroOp`] per node with inputs resolved to packed slots, edge
    /// lists to index ranges, and operands decoded out of `NodeKind`.
    fn emit_uops(&mut self, acc: &Accelerator, tid: TaskId) {
        let df = &acc.task(tid).dataflow;
        let n = df.nodes.len();
        self.edge_meta = df
            .edges
            .iter()
            .map(|e| EdgeMeta {
                src: e.src.0,
                src_port: e.src_port,
                is_order: e.kind == EdgeKind::Order,
                fifo: match e.buffering {
                    Buffering::Handshake => u32::MAX,
                    Buffering::Fifo(d) => d,
                },
            })
            .collect();
        // A placeholder op keeps `MicroOp` `Copy`-able and fixed-size for
        // the opcodes that carry no inline operation.
        let nop = OpKind::Bin(BinOp::Add);
        let mut uops = Vec::with_capacity(n);
        for node in 0..n {
            let nk = &df.nodes[node].kind;
            let slot0 = self.in_slots.len() as u32;
            let ebase = self.edge_refs.len() as u32;
            // Input slots in port order (`in_data` is already port-sorted).
            for &ei in self.in_data[node].iter() {
                let e = &df.edges[ei];
                let src = e.src.0 as usize;
                let slot = if self.is_static[src] {
                    match &df.nodes[src].kind {
                        NodeKind::Input { index } => SLOT_ARG | index,
                        NodeKind::Const(c) => {
                            let ci = self.consts.len() as u32;
                            self.consts.push(c.to_value());
                            SLOT_CONST | ci
                        }
                        _ => unreachable!("static nodes are Input/Const"),
                    }
                } else if matches!(nk, NodeKind::Merge) && e.dst_port == 1 {
                    SLOT_FEEDBACK | ei as u32
                } else {
                    SLOT_TOKEN | ei as u32
                };
                self.in_slots.push(slot);
            }
            let nin = (self.in_slots.len() as u32 - slot0) as u16;
            // Dynamic order-in edges first, then out edges.
            for &ei in self.in_order[node].iter() {
                if !self.is_static[df.edges[ei].src.0 as usize] {
                    self.edge_refs.push(ei as u32);
                }
            }
            let nord = (self.edge_refs.len() as u32 - ebase) as u16;
            for &ei in self.outs[node].iter() {
                self.edge_refs.push(ei as u32);
            }
            let nout = self.outs[node].len() as u16;
            let (kind, flags, a, b, op) = match nk {
                NodeKind::Input { .. } | NodeKind::Const(_) => (UopKind::Static, 0, 0, 0, nop),
                NodeKind::IndVar => (UopKind::IndVar, 0, 0, 0, nop),
                NodeKind::Merge => (UopKind::Merge, 0, 0, 0, nop),
                NodeKind::FusedAcc { op } => (UopKind::FusedAcc, 0, 0, 0, *op),
                NodeKind::Compute(op) => (UopKind::Compute, 0, 0, 0, *op),
                NodeKind::Fused(plan) => {
                    let pi = self.fused_plans.len() as u32;
                    self.fused_plans.push(plan.clone());
                    (UopKind::Fused, 0, pi, 0, nop)
                }
                NodeKind::Output => (UopKind::Output, 0, 0, 0, nop),
                NodeKind::Load {
                    obj,
                    junction,
                    predicated,
                } => (
                    UopKind::Load,
                    if *predicated { UOP_PREDICATED } else { 0 },
                    obj.0,
                    junction.0,
                    nop,
                ),
                NodeKind::Store {
                    obj,
                    junction,
                    predicated,
                } => (
                    UopKind::Store,
                    if *predicated { UOP_PREDICATED } else { 0 },
                    obj.0,
                    junction.0,
                    nop,
                ),
                NodeKind::TaskCall {
                    callee,
                    predicated,
                    spawn,
                } => {
                    let child = acc.task(*callee);
                    let mut flags = 0;
                    if *predicated {
                        flags |= UOP_PREDICATED;
                    }
                    if *spawn {
                        flags |= UOP_SPAWN;
                    }
                    (
                        UopKind::TaskCall,
                        flags,
                        callee.0,
                        (child.num_args << 16) | child.num_results,
                        nop,
                    )
                }
            };
            uops.push(MicroOp {
                kind,
                flags,
                nin,
                nord,
                nout,
                slot0,
                ebase,
                a,
                b,
                op,
            });
        }
        self.uops = uops;
    }

    /// Number of micro-ops in this task's stream (== node count).
    pub fn uop_count(&self) -> usize {
        self.uops.len()
    }

    /// Heap footprint of the micro-op stream and its side tables, in
    /// bytes (the `compile-stats` per-task column).
    pub fn uop_bytes(&self) -> usize {
        self.uops.len() * size_of::<MicroOp>()
            + self.in_slots.len() * size_of::<u32>()
            + self.edge_refs.len() * size_of::<u32>()
            + self.consts.len() * size_of::<Value>()
            + self.fused_plans.len() * size_of::<FusedPlan>()
            + self
                .fused_plans
                .iter()
                .map(|p| p.steps.len() * size_of::<crate::node::FusedStep>())
                .sum::<usize>()
            + self.edge_meta.len() * size_of::<EdgeMeta>()
    }

    /// Approximate heap footprint of this task's tables, in bytes.
    fn size_bytes(&self) -> usize {
        let adj: usize = self
            .in_data
            .iter()
            .chain(self.in_order.iter())
            .chain(self.outs.iter())
            .map(|a| a.len() * size_of::<usize>())
            .sum();
        self.is_static.len()
            + self.order.len() * size_of::<usize>()
            + self.pos.len() * size_of::<u32>()
            + adj
            + self.index.size_bytes()
            + self.uop_bytes()
    }
}

/// A sealed, immutable, index-dense lowering of a verified
/// [`Accelerator`]. See the module docs for what it carries and why.
#[derive(Debug)]
pub struct CompiledAccel {
    accel: Accelerator,
    hash: u64,
    tasks: Vec<CompiledTask>,
    /// Per structure: the `<==>` client junctions reaching it, in
    /// connection order.
    mem_clients: Vec<Vec<(TaskId, JunctionId)>>,
}

impl CompiledAccel {
    /// Verify `acc` and lower it into a sealed artifact. This is the only
    /// construction path, so holding a `CompiledAccel` *is* the proof the
    /// graph is well-formed.
    ///
    /// # Errors
    /// The graph's first structural violation, if any.
    pub fn compile(acc: &Accelerator) -> Result<CompiledAccel, GraphError> {
        verify_accelerator(acc)?;
        let hash = content_hash(acc);
        let t0 = telemetry::enabled().then(std::time::Instant::now);
        let mut tasks: Vec<CompiledTask> = acc
            .task_ids()
            .map(|tid| CompiledTask::build(acc, tid))
            .collect();
        let t1 = telemetry::enabled().then(std::time::Instant::now);
        if let (Some(t0), Some(t1)) = (t0, t1) {
            telemetry::observe(
                "compile.lower_structure_us",
                &telemetry::US_BUCKETS,
                t1.duration_since(t0).as_micros() as u64,
            );
        }
        for (ti, ct) in tasks.iter_mut().enumerate() {
            ct.emit_uops(acc, TaskId(ti as u32));
        }
        if let Some(t1) = t1 {
            telemetry::observe(
                "compile.lower_uops_us",
                &telemetry::US_BUCKETS,
                t1.elapsed().as_micros() as u64,
            );
        }
        let mut mem_clients = vec![Vec::new(); acc.structures.len()];
        for mc in &acc.mem_conns {
            mem_clients[mc.structure.0 as usize].push((mc.task, mc.junction));
        }
        Ok(CompiledAccel {
            accel: acc.clone(),
            hash,
            tasks,
            mem_clients,
        })
    }

    /// Compile through the process-local content-addressed cache:
    /// repeated bench/fuzz/campaign invocations on the same graph hit
    /// instead of re-verifying and re-lowering. Hits are confirmed by
    /// full structural equality, so a 64-bit hash collision degrades to a
    /// miss, never to a wrong artifact.
    ///
    /// # Errors
    /// The graph's first structural violation, if any (never cached).
    pub fn compile_cached(acc: &Accelerator) -> Result<Arc<CompiledAccel>, GraphError> {
        let hash = content_hash(acc);
        let cache = cache();
        {
            let mut c = cache.lock().expect("compile cache");
            let hit = c
                .map
                .get(&hash)
                .filter(|hit| hit.accel == *acc)
                .map(Arc::clone);
            if let Some(hit) = hit {
                c.hits += 1;
                telemetry::count("compile.cache.hits", 1);
                return Ok(hit);
            }
            c.misses += 1;
            telemetry::count("compile.cache.misses", 1);
        }
        let compiled = {
            let _span = telemetry::span("compile", "compile.lower");
            let t0 = telemetry::enabled().then(std::time::Instant::now);
            let compiled = Arc::new(CompiledAccel::compile(acc)?);
            if let Some(t0) = t0 {
                telemetry::observe(
                    "compile.lower_us",
                    &telemetry::US_BUCKETS,
                    t0.elapsed().as_micros() as u64,
                );
            }
            compiled
        };
        let mut c = cache.lock().expect("compile cache");
        if !c.map.contains_key(&hash) {
            if c.map.len() >= c.cap {
                // Evict the oldest insertion: fuzz/campaign streams touch
                // thousands of distinct graphs and must not pin them all.
                if let Some(old) = c.fifo.pop_front() {
                    c.map.remove(&old);
                    c.evictions += 1;
                    telemetry::count("compile.cache.evictions", 1);
                }
            }
            c.map.insert(hash, Arc::clone(&compiled));
            c.fifo.push_back(hash);
        }
        Ok(compiled)
    }

    /// The sealed graph. Consumers read it immutably; re-walking this
    /// borrow is free of re-verification.
    pub fn accel(&self) -> &Accelerator {
        &self.accel
    }

    /// The stable content hash of the canonical form (the cache key).
    pub fn content_hash(&self) -> u64 {
        self.hash
    }

    /// Per-task lowered tables, index-aligned with `accel().tasks`.
    pub fn tasks(&self) -> &[CompiledTask] {
        &self.tasks
    }

    /// The lowered tables of one task.
    pub fn task(&self, ti: usize) -> &CompiledTask {
        &self.tasks[ti]
    }

    /// The `<==>` client junctions of structure `si`, in connection order.
    pub fn mem_clients(&self, si: usize) -> &[(TaskId, JunctionId)] {
        &self.mem_clients[si]
    }

    /// Approximate heap footprint of the artifact's index tables (the
    /// lowering overhead beyond the graph itself), in bytes.
    pub fn size_bytes(&self) -> usize {
        self.tasks
            .iter()
            .map(CompiledTask::size_bytes)
            .sum::<usize>()
            + self
                .mem_clients
                .iter()
                .map(|v| v.len() * size_of::<(TaskId, JunctionId)>())
                .sum::<usize>()
    }
}

/// Default capacity of the process-local compile cache (overridable via
/// the `MUIR_COMPILE_CACHE_CAP` environment variable, read once at first
/// use; invalid or zero values fall back to the default).
pub const DEFAULT_CACHE_CAP: usize = 64;

fn cache_cap_from_env() -> usize {
    std::env::var("MUIR_COMPILE_CACHE_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&cap| cap > 0)
        .unwrap_or(DEFAULT_CACHE_CAP)
}

struct Cache {
    map: HashMap<u64, Arc<CompiledAccel>>,
    fifo: VecDeque<u64>,
    cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

fn cache() -> &'static Mutex<Cache> {
    static CACHE: OnceLock<Mutex<Cache>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(Cache {
            map: HashMap::new(),
            fifo: VecDeque::new(),
            cap: cache_cap_from_env(),
            hits: 0,
            misses: 0,
            evictions: 0,
        })
    })
}

/// Lifetime statistics of the process-local compile cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Artifacts currently resident.
    pub entries: usize,
    /// Artifacts evicted to stay within `capacity`.
    pub evictions: u64,
    /// Configured capacity (`MUIR_COMPILE_CACHE_CAP`, default
    /// [`DEFAULT_CACHE_CAP`]).
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Snapshot the compile cache's hit/miss/eviction counters.
pub fn cache_stats() -> CacheStats {
    let c = cache().lock().expect("compile cache");
    CacheStats {
        hits: c.hits,
        misses: c.misses,
        entries: c.map.len(),
        evictions: c.evictions,
        capacity: c.cap,
    }
}

/// splitmix64 finalizer: the statistically-mixed core of
/// [`crate::rng::SplitMix64`], reused here as a hash combinator.
fn mix(word: u64) -> u64 {
    let mut z = word.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Streams bytes into a splitmix64-based fold, 8 bytes per absorption.
///
/// This is the repo's one stable content-hash primitive: the compile
/// cache, the persistent store's payload checksums (`muir-store`), and
/// the memoization keys over `SimConfig`/`SimResult` all fold through it,
/// so every layer agrees on what "same content" means.
pub struct ContentHasher {
    state: u64,
    pending: u64,
    npending: u32,
    len: u64,
}

impl Default for ContentHasher {
    fn default() -> Self {
        ContentHasher::new()
    }
}

impl ContentHasher {
    /// A fresh hasher (fixed initial state: hashes are stable across
    /// processes and runs).
    pub fn new() -> ContentHasher {
        ContentHasher {
            state: 0x5ea1_0000_c0de_0001,
            pending: 0,
            npending: 0,
            len: 0,
        }
    }

    fn absorb(&mut self, word: u64) {
        self.state = mix(self.state ^ word);
    }

    /// Absorb raw bytes (little-endian packed into 64-bit words).
    pub fn push(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.pending |= u64::from(b) << (8 * self.npending);
            self.npending += 1;
            if self.npending == 8 {
                let w = self.pending;
                self.pending = 0;
                self.npending = 0;
                self.absorb(w);
            }
        }
        self.len += bytes.len() as u64;
    }

    /// Absorb a `u64` as 8 little-endian bytes. Canonical-encoding
    /// helper shared by every layer that hashes structured keys (the
    /// simulator's config/job/result hashes, the μopt `PassConfig`
    /// dedup hash, the store's result keys).
    pub fn push_u64(&mut self, v: u64) {
        self.push(&v.to_le_bytes());
    }

    /// Absorb a length-prefixed string. The prefix makes the encoding
    /// self-delimiting, so adjacent strings never collide with their
    /// concatenation.
    pub fn push_str(&mut self, s: &str) {
        self.push_u64(s.len() as u64);
        self.push(s.as_bytes());
    }

    /// Absorb an `f64` by its exact bit pattern (total and
    /// deterministic; distinct NaN payloads hash distinct).
    pub fn push_f64_bits(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    /// Finalize: flush the partial word and bind the total length.
    pub fn finish(mut self) -> u64 {
        // Flush the partial word and bind the total length so prefixes
        // never collide with their extensions.
        let tail = self.pending;
        self.absorb(tail);
        let len = self.len;
        self.absorb(len);
        self.state
    }
}

impl std::fmt::Write for ContentHasher {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.push(s.as_bytes());
        Ok(())
    }
}

/// The stable content hash of an accelerator's canonical form.
///
/// The canonical form is the graph's full structural rendering — every
/// task, node, edge, junction, structure, connection, and parameter, in
/// arena order — so two accelerators hash equal iff they are structurally
/// identical (`Accelerator` equality). Used as the compile-cache key and
/// by the pass-idempotence and artifact-determinism gates.
pub fn content_hash(acc: &Accelerator) -> u64 {
    let mut h = ContentHasher::new();
    // `Debug` over the arena-ordered structs is a total, deterministic
    // rendering of every semantic field, and tracks field additions
    // automatically (a hand-rolled field visitor would silently go stale).
    let _ = write!(h, "{acc:?}");
    h.finish()
}

/// Reverse topological order over forward (non-feedback) edges:
/// consumers before producers. This is the schedulers' scan order (a
/// consumer drains its input edge before the producer refills it, so
/// single-token edges sustain II=1).
pub fn reverse_topo(df: &Dataflow) -> Vec<usize> {
    forward_topo(df).into_iter().rev().collect()
}

/// Forward topological order over forward (non-feedback) edges.
pub fn forward_topo(df: &Dataflow) -> Vec<usize> {
    let n = df.nodes.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for e in &df.edges {
        if e.kind == EdgeKind::Feedback {
            continue;
        }
        succs[e.src.0 as usize].push(e.dst.0 as usize);
        indeg[e.dst.0 as usize] += 1;
    }
    let mut work: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(x) = work.pop() {
        order.push(x);
        for &s in &succs[x] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                work.push(s);
            }
        }
    }
    // Any leftover (forward cycle — should not happen) appended for safety.
    for i in 0..n {
        if !order.contains(&i) {
            order.push(i);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::{TaskBlock, TaskKind};
    use crate::node::{Node, OpKind};
    use crate::Type;
    use muir_mir::instr::{BinOp, ConstVal};

    fn tiny_acc() -> Accelerator {
        let mut acc = Accelerator::new("t");
        let mut task = TaskBlock::new("main", TaskKind::Region);
        let df = &mut task.dataflow;
        let a = df.add_node(Node::new("a", NodeKind::Const(ConstVal::Int(1)), Type::I64));
        let b = df.add_node(Node::new("b", NodeKind::Const(ConstVal::Int(2)), Type::I64));
        let add = df.add_node(Node::new(
            "add",
            NodeKind::Compute(OpKind::Bin(BinOp::Add)),
            Type::I64,
        ));
        let out = df.add_node(Node::new("out", NodeKind::Output, Type::I64));
        df.connect(a, 0, add, 0);
        df.connect(b, 0, add, 1);
        df.connect(add, 0, out, 0);
        let tid = acc.add_task(task);
        acc.root = tid;
        acc
    }

    #[test]
    fn hash_is_deterministic_and_content_sensitive() {
        let acc = tiny_acc();
        assert_eq!(content_hash(&acc), content_hash(&acc));
        assert_eq!(content_hash(&acc), content_hash(&acc.clone()));
        let mut other = tiny_acc();
        other.task_mut(crate::accel::TaskId(0)).tiles = 4;
        assert_ne!(content_hash(&acc), content_hash(&other));
    }

    #[test]
    fn compile_seals_verified_graphs_only() {
        let acc = tiny_acc();
        let comp = CompiledAccel::compile(&acc).unwrap();
        assert_eq!(comp.content_hash(), content_hash(&acc));
        assert_eq!(comp.accel(), &acc);
        assert!(comp.size_bytes() > 0);

        let mut bad = tiny_acc();
        bad.tasks[0]
            .dataflow
            .add_node(Node::new("bad", NodeKind::Output, Type::BOOL));
        assert!(CompiledAccel::compile(&bad).is_err());
    }

    #[test]
    fn compiled_tables_match_engine_expectations() {
        let acc = tiny_acc();
        let comp = CompiledAccel::compile(&acc).unwrap();
        let ct = comp.task(0);
        assert_eq!(ct.is_static, vec![true, true, false, false]);
        assert_eq!(ct.dynamic_count, 2);
        // add's inputs are port-sorted; out has a single input.
        assert_eq!(&*ct.in_data[2], &[0usize, 1]);
        assert_eq!(&*ct.in_data[3], &[2usize]);
        // Static sources contribute no `outs` entries.
        assert!(ct.outs[0].is_empty());
        assert_eq!(&*ct.outs[2], &[2usize]);
        // Reverse topo: consumers before producers.
        let pos_of = |n: usize| ct.order.iter().position(|&x| x == n).unwrap();
        assert!(pos_of(3) < pos_of(2));
        assert_eq!(ct.conn_queue_depth, 1);
    }

    #[test]
    fn uop_stream_matches_structure_tables() {
        let acc = tiny_acc();
        let comp = CompiledAccel::compile(&acc).unwrap();
        let ct = comp.task(0);
        assert_eq!(ct.uop_count(), 4);
        assert_eq!(ct.uops[0].kind, UopKind::Static);
        let add = ct.uops[2];
        assert_eq!(add.kind, UopKind::Compute);
        assert_eq!(add.op, OpKind::Bin(BinOp::Add));
        // Both inputs are consts, pre-evaluated into the const pool.
        assert_eq!(add.nin, 2);
        let slots = &ct.in_slots[add.slot0 as usize..(add.slot0 + 2) as usize];
        assert!(slots.iter().all(|&s| s & SLOT_TAG == SLOT_CONST));
        assert_eq!(ct.consts.len(), 2);
        // add has no order inputs and one out edge (edge 2 -> out).
        assert_eq!((add.nord, add.nout), (0, 1));
        assert_eq!(ct.edge_refs[add.ebase as usize], 2);
        assert_eq!(ct.edge_meta[2].src, 2);
        assert!(!ct.edge_meta[2].is_order);
        assert_eq!(ct.edge_meta[2].fifo, u32::MAX);
        assert!(ct.uop_bytes() > 0);
    }

    #[test]
    fn cache_hits_on_identical_content() {
        let acc = tiny_acc();
        let before = cache_stats();
        let a = CompiledAccel::compile_cached(&acc).unwrap();
        let b = CompiledAccel::compile_cached(&acc.clone()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let after = cache_stats();
        assert!(after.hits > before.hits);
        assert!(after.entries >= 1);
    }

    #[test]
    fn cache_rejects_invalid_graphs() {
        let mut bad = tiny_acc();
        bad.name = "cache-invalid".into();
        bad.tasks[0]
            .dataflow
            .add_node(Node::new("bad", NodeKind::Output, Type::BOOL));
        assert!(CompiledAccel::compile_cached(&bad).is_err());
        assert!(CompiledAccel::compile_cached(&bad).is_err());
    }
}
