//! Hardware structures: elements with no software representation —
//! scratchpads, caches, and the DRAM/AXI port (§3.2).

use muir_mir::instr::MemObjId;
use muir_mir::types::TensorShape;
use std::fmt;

/// Index of a structure within the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructureId(pub u32);

impl fmt::Display for StructureId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The kind and parameters of a hardware structure.
#[derive(Debug, Clone, PartialEq)]
pub enum StructureKind {
    /// A software-managed (DMA-filled) local RAM. Access latency is fixed;
    /// banking and ports bound per-cycle throughput (Pass 4). The optional
    /// `shape` types the scratchpad for tensor accesses so the RTL backend
    /// generates wide RAMs that supply a whole tile per cycle (§6.3).
    Scratchpad {
        /// Number of banks (element addresses are striped across banks).
        banks: u32,
        /// Ports per bank (each port serves one element access per cycle).
        ports_per_bank: u32,
        /// Access latency in cycles.
        latency: u32,
        /// Capacity in element slots.
        capacity: u64,
        /// Optional tensor shape specialisation.
        shape: Option<TensorShape>,
    },
    /// A hardware-managed cache in front of DRAM (§3.2: caches are
    /// implicitly managed; scratchpads via DMA).
    Cache {
        /// Total capacity in element slots.
        capacity: u64,
        /// Associativity.
        assoc: u32,
        /// Line size in element slots.
        line_elems: u32,
        /// Number of banks (Pass: cache banking, §6.4).
        banks: u32,
        /// Hit latency in cycles.
        hit_latency: u32,
    },
    /// The AXI-coherent DRAM port backing all address spaces.
    Dram {
        /// Access latency in cycles.
        latency: u32,
        /// Peak elements transferred per cycle.
        elems_per_cycle: u32,
    },
}

impl StructureKind {
    /// Total element-access throughput per cycle (port bound).
    pub fn ports_per_cycle(&self) -> u32 {
        match self {
            StructureKind::Scratchpad {
                banks,
                ports_per_bank,
                ..
            } => banks * ports_per_bank,
            StructureKind::Cache { banks, .. } => *banks,
            StructureKind::Dram {
                elems_per_cycle, ..
            } => *elems_per_cycle,
        }
    }

    /// Short tag for printing.
    pub fn tag(&self) -> &'static str {
        match self {
            StructureKind::Scratchpad { .. } => "scratchpad",
            StructureKind::Cache { .. } => "cache",
            StructureKind::Dram { .. } => "dram",
        }
    }
}

/// A hardware structure instance and the address spaces it serves.
#[derive(Debug, Clone, PartialEq)]
pub struct Structure {
    /// Debug name.
    pub name: String,
    /// Kind and parameters.
    pub kind: StructureKind,
    /// Memory objects (address spaces) homed on this structure.
    pub objects: Vec<MemObjId>,
}

impl Structure {
    /// A scratchpad with default single-bank, single-port, 1-cycle timing.
    pub fn scratchpad(name: impl Into<String>, capacity: u64) -> Structure {
        Structure {
            name: name.into(),
            kind: StructureKind::Scratchpad {
                banks: 1,
                ports_per_bank: 2,
                latency: 1,
                capacity,
                shape: None,
            },
            objects: Vec::new(),
        }
    }

    /// A cache with the paper's 64 KB default (§6.4), 4-way, 16-element
    /// lines, one bank.
    pub fn l1_cache(name: impl Into<String>) -> Structure {
        Structure {
            name: name.into(),
            kind: StructureKind::Cache {
                capacity: 16 * 1024, // 64 KB of 4-byte elements
                assoc: 4,
                line_elems: 16,
                banks: 1,
                hit_latency: 2,
            },
            objects: Vec::new(),
        }
    }

    /// The DRAM/AXI port.
    pub fn dram(name: impl Into<String>) -> Structure {
        Structure {
            name: name.into(),
            kind: StructureKind::Dram {
                latency: 40,
                elems_per_cycle: 8,
            },
            objects: Vec::new(),
        }
    }

    /// Home an object on this structure.
    pub fn serve(&mut self, obj: MemObjId) -> &mut Self {
        if !self.objects.contains(&obj) {
            self.objects.push(obj);
        }
        self
    }

    /// Whether this structure serves `obj`.
    pub fn serves(&self, obj: MemObjId) -> bool {
        self.objects.contains(&obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratchpad_defaults() {
        let s = Structure::scratchpad("spad", 1024);
        assert_eq!(s.kind.tag(), "scratchpad");
        assert_eq!(s.kind.ports_per_cycle(), 2);
    }

    #[test]
    fn cache_defaults() {
        let c = Structure::l1_cache("l1");
        match c.kind {
            StructureKind::Cache {
                capacity,
                assoc,
                banks,
                ..
            } => {
                assert_eq!(capacity, 16 * 1024);
                assert_eq!(assoc, 4);
                assert_eq!(banks, 1);
            }
            _ => panic!("not a cache"),
        }
        assert_eq!(c.kind.ports_per_cycle(), 1);
    }

    #[test]
    fn serving_objects() {
        let mut s = Structure::scratchpad("spad", 64);
        let o = MemObjId(3);
        s.serve(o);
        s.serve(o); // idempotent
        assert!(s.serves(o));
        assert!(!s.serves(MemObjId(4)));
        assert_eq!(s.objects.len(), 1);
    }

    #[test]
    fn dram_port_throughput() {
        let d = Structure::dram("axi");
        assert_eq!(d.kind.ports_per_cycle(), 8);
        assert_eq!(d.kind.tag(), "dram");
    }
}
