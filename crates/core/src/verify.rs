//! Structural verification of the μIR graph.
//!
//! Composability (§1, novelty iv) rests on every edge being governed by a
//! latency-agnostic interface; the verifier enforces the structural
//! invariants that make stacked μopt passes safe: complete port wiring,
//! consistent junction bookkeeping, well-formed task hierarchy, and memory
//! objects homed on exactly one structure.

use crate::accel::{Accelerator, TaskId, TaskKind};
use crate::dataflow::{Dataflow, EdgeKind, NodeId};
use crate::node::NodeKind;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A μIR graph verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphError {
    /// Offending location (task/node description).
    pub at: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "muIR graph error at {}: {}", self.at, self.message)
    }
}

impl GraphError {
    /// Stable machine-readable code, matching the simulator's `E-SIM-*`
    /// taxonomy (campaign tooling buckets on codes, not message text).
    pub fn code(&self) -> &'static str {
        "E-GRAPH"
    }
}

impl std::error::Error for GraphError {}

fn gerr(at: impl Into<String>, message: impl Into<String>) -> GraphError {
    GraphError {
        at: at.into(),
        message: message.into(),
    }
}

/// Verify the whole accelerator graph.
///
/// # Errors
/// Returns the first structural violation found.
pub fn verify_accelerator(acc: &Accelerator) -> Result<(), GraphError> {
    if acc.tasks.is_empty() {
        return Err(gerr(&acc.name, "accelerator has no tasks"));
    }
    if acc.root.0 as usize >= acc.tasks.len() {
        return Err(gerr(&acc.name, "root task out of range"));
    }
    // Task hierarchy: every non-root task has exactly one parent; no self
    // connections; referenced ids valid.
    let ntasks = acc.tasks.len() as u32;
    let mut parent_count: HashMap<TaskId, u32> = HashMap::new();
    for c in &acc.task_conns {
        if c.parent.0 >= ntasks || c.child.0 >= ntasks {
            return Err(gerr(&acc.name, "task connection references missing task"));
        }
        if c.parent == c.child {
            return Err(gerr(
                &acc.name,
                format!("task {} connected to itself", c.parent),
            ));
        }
        *parent_count.entry(c.child).or_insert(0) += 1;
    }
    for t in acc.task_ids() {
        let n = parent_count.get(&t).copied().unwrap_or(0);
        if t == acc.root && n != 0 {
            return Err(gerr(&acc.name, "root task has a parent"));
        }
        if t != acc.root && n != 1 {
            return Err(gerr(
                &acc.name,
                format!(
                    "task {} ({}) has {n} parents, expected 1",
                    t,
                    acc.task(t).name
                ),
            ));
        }
    }
    // Memory objects homed on at most one structure.
    let mut homed: HashMap<u32, usize> = HashMap::new();
    for (si, s) in acc.structures.iter().enumerate() {
        for o in &s.objects {
            if let Some(prev) = homed.insert(o.0, si) {
                return Err(gerr(
                    &acc.name,
                    format!("object {o} homed on structures s{prev} and s{si}"),
                ));
            }
        }
    }
    // Memory connections reference valid pieces.
    for mc in &acc.mem_conns {
        if mc.task.0 >= ntasks {
            return Err(gerr(&acc.name, "mem connection references missing task"));
        }
        let df = &acc.task(mc.task).dataflow;
        if mc.junction.0 as usize >= df.junctions.len() {
            return Err(gerr(
                &acc.name,
                "mem connection references missing junction",
            ));
        }
        if mc.structure.0 as usize >= acc.structures.len() {
            return Err(gerr(
                &acc.name,
                "mem connection references missing structure",
            ));
        }
        if df.junctions[mc.junction.0 as usize].structure != mc.structure {
            return Err(gerr(
                &acc.name,
                format!(
                    "junction {} disagrees with its mem connection target",
                    mc.junction
                ),
            ));
        }
    }
    // Per-task dataflow checks.
    for t in acc.task_ids() {
        verify_task(acc, t)?;
    }
    Ok(())
}

fn verify_task(acc: &Accelerator, tid: TaskId) -> Result<(), GraphError> {
    let task = acc.task(tid);
    let at = format!("{} ({})", tid, task.name);
    let df = &task.dataflow;
    verify_dataflow_ports(acc, tid, df, &at)?;

    // Loop tasks need an IndVar; region tasks must not have one.
    let has_iv = df.indvar_node().is_some();
    match (&task.kind, has_iv) {
        (TaskKind::Loop { .. }, false) => {
            return Err(gerr(&at, "loop task without IndVar node"));
        }
        (TaskKind::Region, true) => {
            return Err(gerr(&at, "region task with IndVar node"));
        }
        _ => {}
    }
    // Exactly one Output node.
    let outputs = df
        .node_ids()
        .filter(|&n| matches!(df.node(n).kind, NodeKind::Output))
        .count();
    if outputs != 1 {
        return Err(gerr(
            &at,
            format!("expected exactly one Output node, found {outputs}"),
        ));
    }
    // Junction bookkeeping matches node registrations, and every mem node's
    // junction serves its object.
    for n in df.node_ids() {
        match &df.node(n).kind {
            NodeKind::Load { obj, junction, .. } => {
                let j = df
                    .junctions
                    .get(junction.0 as usize)
                    .ok_or_else(|| gerr(&at, format!("{n}: missing junction {junction}")))?;
                if !j.readers.contains(&n) {
                    return Err(gerr(
                        &at,
                        format!("{n} not registered as reader on {junction}"),
                    ));
                }
                if !acc.structure(j.structure).serves(*obj) {
                    return Err(gerr(
                        &at,
                        format!("{n}: structure {} does not serve {obj}", j.structure),
                    ));
                }
            }
            NodeKind::Store { obj, junction, .. } => {
                let j = df
                    .junctions
                    .get(junction.0 as usize)
                    .ok_or_else(|| gerr(&at, format!("{n}: missing junction {junction}")))?;
                if !j.writers.contains(&n) {
                    return Err(gerr(
                        &at,
                        format!("{n} not registered as writer on {junction}"),
                    ));
                }
                if !acc.structure(j.structure).serves(*obj) {
                    return Err(gerr(
                        &at,
                        format!("{n}: structure {} does not serve {obj}", j.structure),
                    ));
                }
            }
            NodeKind::TaskCall { callee, .. } => {
                if callee.0 as usize >= acc.tasks.len() {
                    return Err(gerr(&at, format!("{n}: call to missing task {callee}")));
                }
                // Calls must follow the task hierarchy.
                if acc.parent(*callee) != Some(tid) {
                    return Err(gerr(
                        &at,
                        format!("{n}: task call to {callee} without <||> connection"),
                    ));
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn verify_dataflow_ports(
    acc: &Accelerator,
    tid: TaskId,
    df: &Dataflow,
    at: &str,
) -> Result<(), GraphError> {
    let task = acc.task(tid);
    let nnodes = df.nodes.len() as u32;
    let mut in_filled: HashMap<(NodeId, u16), u32> = HashMap::new();
    for e in &df.edges {
        if e.src.0 >= nnodes || e.dst.0 >= nnodes {
            return Err(gerr(at, "edge references missing node"));
        }
        if e.kind == EdgeKind::Order {
            // Token-only ordering edges are exempt from port accounting.
            continue;
        }
        *in_filled.entry((e.dst, e.dst_port)).or_insert(0) += 1;
        // Feedback edges only enter Merge port 1.
        if e.kind == EdgeKind::Feedback
            && !(matches!(df.node(e.dst).kind, NodeKind::Merge) && e.dst_port == 1)
        {
            return Err(gerr(
                at,
                format!("feedback edge must enter a Merge port 1, enters {}", e.dst),
            ));
        }
    }
    for ((n, p), count) in &in_filled {
        if *count != 1 {
            return Err(gerr(
                at,
                format!("{n} input port {p} driven by {count} edges"),
            ));
        }
    }
    for n in df.node_ids() {
        let node = df.node(n);
        let arity = match &node.kind {
            NodeKind::Output => task.num_results as usize,
            NodeKind::TaskCall {
                callee, predicated, ..
            } => acc.task(*callee).num_args as usize + usize::from(*predicated),
            other => {
                let _ = other;
                node.input_arity(0)
            }
        };
        for p in 0..arity {
            if !in_filled.contains_key(&(n, p as u16)) {
                return Err(gerr(
                    at,
                    format!("{n} ({}) input port {p} unconnected", node.name),
                ));
            }
        }
        // Merge nodes: port 1 must be a feedback edge.
        if matches!(node.kind, NodeKind::Merge) {
            let fb_ok = df
                .edges
                .iter()
                .any(|e| e.dst == n && e.dst_port == 1 && e.kind == EdgeKind::Feedback);
            if !fb_ok {
                return Err(gerr(
                    at,
                    format!("{n}: merge port 1 is not a feedback edge"),
                ));
            }
        }
    }
    // No duplicate junction registrations.
    for (ji, j) in df.junctions.iter().enumerate() {
        let mut seen = HashSet::new();
        for n in j.readers.iter().chain(&j.writers) {
            if !seen.insert(*n) {
                return Err(gerr(
                    at,
                    format!("node {n} registered twice on junction j{ji}"),
                ));
            }
            if n.0 >= nnodes {
                return Err(gerr(at, format!("junction j{ji} references missing node")));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::TaskBlock;
    use crate::dataflow::Junction;
    use crate::node::{Node, OpKind};
    use crate::structure::Structure;
    use muir_mir::instr::{BinOp, ConstVal, MemObjId};
    use muir_mir::types::Type;

    /// A minimal, valid one-task accelerator:
    /// `out = (c1 + c2)` stored to a scratchpad-homed object.
    fn valid_accel() -> Accelerator {
        let mut acc = Accelerator::new("v");
        let mut spad = Structure::scratchpad("spad", 64);
        spad.serve(MemObjId(0));
        let sid = acc.add_structure(spad);

        let mut task = TaskBlock::new("main", TaskKind::Region);
        task.num_results = 0;
        let df = &mut task.dataflow;
        let j = df.add_junction(Junction::new(sid, 1, 1));
        let c1 = df.add_node(Node::new(
            "c1",
            NodeKind::Const(ConstVal::Int(1)),
            Type::I64,
        ));
        let c2 = df.add_node(Node::new(
            "c2",
            NodeKind::Const(ConstVal::Int(2)),
            Type::I64,
        ));
        let add = df.add_node(Node::new(
            "add",
            NodeKind::Compute(OpKind::Bin(BinOp::Add)),
            Type::I64,
        ));
        let st = df.add_node(Node::new(
            "st",
            NodeKind::Store {
                obj: MemObjId(0),
                junction: j,
                predicated: false,
            },
            Type::I64,
        ));
        let out = df.add_node(Node::new("out", NodeKind::Output, Type::I64));
        let _ = out;
        df.connect(c1, 0, add, 0);
        df.connect(c2, 0, add, 1);
        df.connect(c1, 0, st, 0);
        df.connect(add, 0, st, 1);
        df.register_writer(j, st);
        let tid = acc.add_task(task);
        acc.root = tid;
        acc.connect_mem(tid, j, sid);
        acc
    }

    #[test]
    fn valid_graph_passes() {
        let acc = valid_accel();
        verify_accelerator(&acc).unwrap();
    }

    #[test]
    fn unconnected_port_caught() {
        let mut acc = valid_accel();
        // Drop the add's second input edge.
        let df = &mut acc.tasks[0].dataflow;
        df.edges
            .retain(|e| !(e.dst == NodeId(2) && e.dst_port == 1));
        let e = verify_accelerator(&acc).unwrap_err();
        assert!(e.message.contains("unconnected"), "{e}");
    }

    #[test]
    fn double_driven_port_caught() {
        let mut acc = valid_accel();
        let df = &mut acc.tasks[0].dataflow;
        df.connect(NodeId(1), 0, NodeId(2), 1);
        let e = verify_accelerator(&acc).unwrap_err();
        assert!(e.message.contains("driven by 2"), "{e}");
    }

    #[test]
    fn unregistered_store_caught() {
        let mut acc = valid_accel();
        acc.tasks[0].dataflow.junctions[0].writers.clear();
        let e = verify_accelerator(&acc).unwrap_err();
        assert!(e.message.contains("not registered"), "{e}");
    }

    #[test]
    fn object_homed_twice_caught() {
        let mut acc = valid_accel();
        let mut other = Structure::scratchpad("spad2", 64);
        other.serve(MemObjId(0));
        acc.add_structure(other);
        let e = verify_accelerator(&acc).unwrap_err();
        assert!(e.message.contains("homed on structures"), "{e}");
    }

    #[test]
    fn orphan_task_caught() {
        let mut acc = valid_accel();
        acc.add_task(TaskBlock::new("orphan", TaskKind::Region));
        let e = verify_accelerator(&acc).unwrap_err();
        assert!(e.message.contains("parents"), "{e}");
    }

    #[test]
    fn missing_output_caught() {
        let mut acc = valid_accel();
        acc.tasks[0]
            .dataflow
            .nodes
            .retain(|n| !matches!(n.kind, NodeKind::Output));
        // Rebuilding ids would be required in general; here Output is last
        // and unreferenced, so the graph stays consistent.
        let e = verify_accelerator(&acc).unwrap_err();
        assert!(e.message.contains("Output"), "{e}");
    }

    #[test]
    fn loop_task_requires_indvar() {
        let mut acc = valid_accel();
        acc.tasks[0].kind = TaskKind::Loop {
            spec: crate::accel::LoopSpec {
                lo: crate::accel::ArgExpr::Const(0),
                hi: crate::accel::ArgExpr::Const(4),
                step: 1,
            },
            serial: false,
        };
        let e = verify_accelerator(&acc).unwrap_err();
        assert!(e.message.contains("IndVar"), "{e}");
    }
}
