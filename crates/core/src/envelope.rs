//! Versioned, checksummed binary envelope for durable artifacts.
//!
//! Everything the persistent store (`muir-store`) writes to disk is
//! wrapped in this envelope so that the three classic on-disk failure
//! modes are *detected and typed* rather than silently deserialized:
//!
//! * **torn writes** — a crash mid-write leaves a file shorter than the
//!   header's declared payload length ([`EnvelopeError::Truncated`]);
//! * **bit rot** — any flipped payload bit fails the splitmix64 fold
//!   checksum ([`EnvelopeError::ChecksumMismatch`]);
//! * **version skew** — an envelope written by a different format
//!   revision is rejected up front ([`EnvelopeError::VersionSkew`]),
//!   never half-parsed.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"MUIRSTOR"
//!      8     4  format version (FORMAT_VERSION)
//!     12     4  payload kind tag (PayloadKind)
//!     16     8  payload length in bytes
//!     24     8  splitmix64 fold checksum of the payload
//!     32     n  payload
//! ```
//!
//! This extends PR 1's "silent corruption must be flagged" invariant from
//! the simulator out to the storage boundary: the store maps each
//! [`EnvelopeError`] onto a stable `E-STORE-*` code and quarantines the
//! offending file.

use crate::compiled::ContentHasher;
use std::fmt;

/// The eight magic bytes opening every envelope.
pub const MAGIC: [u8; 8] = *b"MUIRSTOR";

/// The current envelope format revision. Bump on any layout or payload
/// codec change; readers reject other versions typed, not by crashing.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed header size preceding the payload.
pub const HEADER_LEN: usize = 32;

/// What an envelope's payload contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// A compiled-accelerator artifact record (canonical graph text).
    Artifact,
    /// A memoized simulation outcome (result + final memory image).
    SimResult,
}

impl PayloadKind {
    /// The on-disk tag.
    pub fn tag(self) -> u32 {
        match self {
            PayloadKind::Artifact => 1,
            PayloadKind::SimResult => 2,
        }
    }

    /// Decode a tag.
    pub fn from_tag(tag: u32) -> Option<PayloadKind> {
        match tag {
            1 => Some(PayloadKind::Artifact),
            2 => Some(PayloadKind::SimResult),
            _ => None,
        }
    }
}

impl fmt::Display for PayloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PayloadKind::Artifact => write!(f, "artifact"),
            PayloadKind::SimResult => write!(f, "sim-result"),
        }
    }
}

/// Why an envelope failed to open. Every variant names the evidence, so
/// the store's quarantine report can say exactly what was wrong with the
/// bytes it moved aside.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Fewer bytes than the header (or the header's declared payload
    /// length) requires — the signature of a torn write.
    Truncated {
        /// Bytes the header/payload required.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The first eight bytes are not [`MAGIC`] — not an envelope at all.
    BadMagic {
        /// The bytes found (zero-padded if the file was shorter).
        found: [u8; 8],
    },
    /// Written by a different format revision.
    VersionSkew {
        /// Version recorded in the header.
        found: u32,
        /// Version this reader speaks.
        expected: u32,
    },
    /// The kind tag is not a known [`PayloadKind`].
    BadKind {
        /// The unknown tag.
        tag: u32,
    },
    /// The payload bytes do not hash to the header's checksum — bit rot
    /// or in-place corruption.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload as read.
        found: u64,
    },
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::Truncated { expected, found } => {
                write!(
                    f,
                    "truncated envelope: need {expected} bytes, found {found}"
                )
            }
            EnvelopeError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (expected {MAGIC:02x?})")
            }
            EnvelopeError::VersionSkew { found, expected } => {
                write!(f, "format version {found} (this reader speaks {expected})")
            }
            EnvelopeError::BadKind { tag } => write!(f, "unknown payload kind tag {tag}"),
            EnvelopeError::ChecksumMismatch { expected, found } => write!(
                f,
                "payload checksum {found:016x} does not match header {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for EnvelopeError {}

/// splitmix64 fold checksum of a payload (the same primitive as the
/// compile cache's content hash, so "same bytes" means the same thing
/// everywhere).
pub fn checksum(payload: &[u8]) -> u64 {
    let mut h = ContentHasher::new();
    h.push(payload);
    h.finish()
}

/// Wrap `payload` in a sealed envelope at the current format version.
pub fn seal(kind: PayloadKind, payload: &[u8]) -> Vec<u8> {
    seal_with_version(kind, FORMAT_VERSION, payload)
}

/// [`seal`] at an explicit format version. Exists so fault-injection
/// harnesses can fabricate stale-version envelopes; production writers
/// always use [`seal`].
pub fn seal_with_version(kind: PayloadKind, version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&kind.tag().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn le_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes.try_into().expect("4 bytes"))
}

fn le_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
}

/// Open an envelope, validating magic, version, kind, length, and
/// checksum — in that order, so the most specific diagnosis wins (a
/// truncated file with intact magic reports `Truncated`, not a checksum
/// failure over garbage).
///
/// # Errors
/// The first validation failure (see [`EnvelopeError`]).
pub fn open(bytes: &[u8]) -> Result<(PayloadKind, &[u8]), EnvelopeError> {
    if bytes.len() >= 8 && bytes[..8] != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(EnvelopeError::BadMagic { found });
    }
    if bytes.len() < HEADER_LEN {
        if bytes.len() < 8 {
            // Too short even for the magic: report it as truncation unless
            // the prefix already disagrees with the magic.
            if !MAGIC.starts_with(bytes) {
                let mut found = [0u8; 8];
                found[..bytes.len()].copy_from_slice(bytes);
                return Err(EnvelopeError::BadMagic { found });
            }
        }
        return Err(EnvelopeError::Truncated {
            expected: HEADER_LEN,
            found: bytes.len(),
        });
    }
    let version = le_u32(&bytes[8..12]);
    if version != FORMAT_VERSION {
        return Err(EnvelopeError::VersionSkew {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let tag = le_u32(&bytes[12..16]);
    let kind = PayloadKind::from_tag(tag).ok_or(EnvelopeError::BadKind { tag })?;
    let len = le_u64(&bytes[16..24]) as usize;
    let expected_total = HEADER_LEN + len;
    if bytes.len() < expected_total {
        return Err(EnvelopeError::Truncated {
            expected: expected_total,
            found: bytes.len(),
        });
    }
    let payload = &bytes[HEADER_LEN..expected_total];
    let expected = le_u64(&bytes[24..32]);
    let found = checksum(payload);
    if found != expected {
        return Err(EnvelopeError::ChecksumMismatch { expected, found });
    }
    Ok((kind, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_payloads() {
        for payload in [&b""[..], b"x", b"hello envelope", &[0u8; 1000]] {
            let sealed = seal(PayloadKind::SimResult, payload);
            let (kind, got) = open(&sealed).unwrap();
            assert_eq!(kind, PayloadKind::SimResult);
            assert_eq!(got, payload);
        }
        let sealed = seal(PayloadKind::Artifact, b"graph");
        assert_eq!(open(&sealed).unwrap().0, PayloadKind::Artifact);
    }

    #[test]
    fn detects_truncation_at_every_cut() {
        let sealed = seal(PayloadKind::SimResult, b"a payload long enough to cut");
        for cut in 8..sealed.len() {
            let e = open(&sealed[..cut]).unwrap_err();
            assert!(
                matches!(e, EnvelopeError::Truncated { .. }),
                "cut at {cut}: {e}"
            );
        }
    }

    #[test]
    fn detects_any_payload_bit_flip() {
        let sealed = seal(PayloadKind::SimResult, b"checksummed bytes");
        for bit in 0..((sealed.len() - HEADER_LEN) * 8) {
            let mut bad = sealed.clone();
            bad[HEADER_LEN + bit / 8] ^= 1 << (bit % 8);
            let e = open(&bad).unwrap_err();
            assert!(
                matches!(e, EnvelopeError::ChecksumMismatch { .. }),
                "bit {bit}: {e}"
            );
        }
    }

    #[test]
    fn detects_version_skew_and_bad_magic_and_bad_kind() {
        let stale = seal_with_version(PayloadKind::SimResult, FORMAT_VERSION + 1, b"p");
        assert!(matches!(
            open(&stale).unwrap_err(),
            EnvelopeError::VersionSkew { found, .. } if found == FORMAT_VERSION + 1
        ));

        let mut nonsense = seal(PayloadKind::SimResult, b"p");
        nonsense[0] = b'X';
        assert!(matches!(
            open(&nonsense).unwrap_err(),
            EnvelopeError::BadMagic { .. }
        ));

        let mut bad_kind = seal(PayloadKind::SimResult, b"p");
        bad_kind[12..16].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            open(&bad_kind).unwrap_err(),
            EnvelopeError::BadKind { tag: 99 }
        ));
    }

    #[test]
    fn checksum_matches_content_hasher_fold() {
        // The envelope checksum is the same primitive as the compile
        // cache's content hash: deterministic and length-bound.
        assert_eq!(checksum(b"abc"), checksum(b"abc"));
        assert_ne!(checksum(b"abc"), checksum(b"abcd"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }
}
