//! Deterministic pseudo-randomness shared across the workspace.
//!
//! Both the simulator's fault injection and the tracer's event sampling
//! need the same properties: a tiny, seedable generator whose streams are
//! reproducible run-to-run and cheaply decorrelated per domain via a salt.
//! splitmix64 (Steele et al., "Fast splittable pseudorandom number
//! generators") fits: one 64-bit word of state, three multiplies per draw,
//! and full-period output.

/// splitmix64 — tiny, seedable, deterministic.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`. The same seed always reproduces the
    /// same stream.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// A generator whose stream is decorrelated from every other salt's
    /// while staying a pure function of `(seed, salt)`.
    pub fn salted(seed: u64, salt: u64) -> SplitMix64 {
        SplitMix64(seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n == 0` is treated as 1).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// One Bernoulli trial with probability `ppm` parts per million.
    pub fn chance_ppm(&mut self, ppm: u32) -> bool {
        self.below(1_000_000) < ppm as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut uniq = xs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), xs.len());
    }

    #[test]
    fn salts_decorrelate() {
        let draw = |salt: u64| -> Vec<u64> {
            let mut r = SplitMix64::salted(7, salt);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn chance_ppm_extremes() {
        let mut r = SplitMix64::new(3);
        assert!((0..64).all(|_| !r.chance_ppm(0)));
        assert!((0..64).all(|_| r.chance_ppm(1_000_000)));
    }
}
