//! The enumerable μopt knob surface for design-space exploration.
//!
//! A [`PassConfig`] is one point in the space of μopt pipelines the DSE
//! driver explores: every knob the paper's passes expose — task-queue
//! FIFO depth (Pass 1), execution-tile count and scope (Pass 2), memory
//! localization (Pass 3), scratchpad/cache banking factors (Pass 4), and
//! the op-fusion clock-period budget that decides pipeline-register
//! placement (Pass 5) — quantized to a small set of levels per knob.
//!
//! [`PassSpace`] is the full cross product. Configs are addressable by a
//! mixed-radix index (`nth`), so seeded sampling is just seeded index
//! generation and the whole space is enumerable, deterministic, and
//! reproducible from `(seed, budget)` alone. Index 0 is always the
//! baseline (every knob off), so a sampled sweep always contains the
//! unoptimized anchor point.
//!
//! Two distinct configs can lower to the *same* accelerator (tiling a
//! workload with no spawned tasks is a no-op, fusing a graph with no
//! fusible chains changes nothing). Dedup therefore happens at two
//! levels: [`PassConfig::config_hash`] identifies the knob setting, and
//! the sealed artifact's content hash identifies the resulting hardware —
//! the DSE driver coalesces candidates whose artifacts collide.

use crate::passes::{
    CacheBanking, ExecutionTiling, MemoryLocalization, OpFusion, ScratchpadBanking, TaskFilter,
    TaskQueueing,
};
use crate::PassManager;
use muir_core::rng::SplitMix64;
use muir_core::ContentHasher;
use std::fmt;

/// Task-queue FIFO depths (Pass 1). `0` keeps the frontend's baseline.
pub const QUEUE_DEPTHS: [u32; 4] = [0, 2, 8, 16];
/// Execution-tile counts (Pass 2). `1` disables tiling.
pub const TILE_COUNTS: [u32; 4] = [1, 2, 4, 8];
/// Scratchpad bank counts (Pass 4). `1` keeps single-banked RAMs.
pub const SPAD_BANKS: [u32; 4] = [1, 2, 4, 8];
/// Cache bank counts (§6.4). `1` keeps the unified L1.
pub const CACHE_BANKS: [u32; 3] = [1, 2, 4];
/// Op-fusion clock-period budgets in ns (Pass 5): where pipeline
/// registers land after re-timing. `0.0` disables fusion entirely.
pub const FUSION_PERIODS_NS: [f64; 4] = [0.0, 1.5, muir_core::hw::BASELINE_PERIOD_NS, 8.0];

/// Which tasks execution tiling replicates (the enumerable subset of
/// [`TaskFilter`] — the name-matching variant is not a closed knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileScope {
    /// Cilk-style spawned task subtrees (a no-op without spawns).
    Spawned,
    /// Innermost loop tasks (§3.6's per-region tile count).
    LeafLoops,
}

impl TileScope {
    const ALL: [TileScope; 2] = [TileScope::Spawned, TileScope::LeafLoops];

    fn filter(self) -> TaskFilter {
        match self {
            TileScope::Spawned => TaskFilter::Spawned,
            TileScope::LeafLoops => TaskFilter::LeafLoops,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            TileScope::Spawned => "spawn",
            TileScope::LeafLoops => "leaf",
        }
    }
}

/// One point in the μopt design space: a complete knob assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct PassConfig {
    /// Task-queue FIFO depth (0 = keep baseline; Pass 1).
    pub queue_depth: u32,
    /// Execution tiles per selected task (1 = no tiling; Pass 2).
    pub tiles: u32,
    /// Which tasks tiling replicates (irrelevant when `tiles == 1`).
    pub tile_scope: TileScope,
    /// Run memory localization (Pass 3 + Algorithm 2).
    pub localize: bool,
    /// Scratchpad banks (1 = untouched; Pass 4).
    pub spad_banks: u32,
    /// Cache banks (1 = untouched; §6.4).
    pub cache_banks: u32,
    /// Fusion clock-period budget in ns (0.0 = fusion off; Pass 5).
    pub fusion_period_ns: f64,
}

impl PassConfig {
    /// The all-knobs-off baseline ([`PassSpace::nth`] index 0).
    pub fn baseline() -> PassConfig {
        PassConfig {
            queue_depth: QUEUE_DEPTHS[0],
            tiles: TILE_COUNTS[0],
            tile_scope: TileScope::ALL[0],
            localize: false,
            spad_banks: SPAD_BANKS[0],
            cache_banks: CACHE_BANKS[0],
            fusion_period_ns: FUSION_PERIODS_NS[0],
        }
    }

    /// Whether this config applies no transformation at all.
    pub fn is_baseline(&self) -> bool {
        self.queue_depth == 0
            && self.tiles == 1
            && !self.localize
            && self.spad_banks == 1
            && self.cache_banks == 1
            && self.fusion_period_ns == 0.0
    }

    /// The pass pipeline realizing this config, in the canonical stack
    /// order (queueing → tiling → localization → banking → fusion, the
    /// same order as the Figure 17 stack). Knobs at their off level
    /// contribute no pass, so the baseline config is an empty pipeline.
    pub fn pipeline(&self) -> PassManager {
        let mut pm = PassManager::new();
        if self.queue_depth > 0 {
            pm.push(Box::new(TaskQueueing::all(self.queue_depth)));
        }
        if self.tiles > 1 {
            pm.push(Box::new(ExecutionTiling {
                tiles: self.tiles,
                filter: self.tile_scope.filter(),
            }));
        }
        if self.localize {
            pm.push(Box::new(MemoryLocalization::default()));
        }
        if self.spad_banks > 1 {
            pm.push(Box::new(ScratchpadBanking {
                banks: self.spad_banks,
            }));
        }
        if self.cache_banks > 1 {
            pm.push(Box::new(CacheBanking {
                banks: self.cache_banks,
            }));
        }
        if self.fusion_period_ns > 0.0 {
            pm.push(Box::new(OpFusion::with_period(self.fusion_period_ns)));
        }
        pm
    }

    /// Stable content hash of the knob assignment — the config half of
    /// the DSE dedup key (the artifact content hash is the other half).
    pub fn config_hash(&self) -> u64 {
        let mut h = ContentHasher::new();
        h.push_str("uopt-passcfg-v1");
        h.push_u64(u64::from(self.queue_depth));
        h.push_u64(u64::from(self.tiles));
        h.push_str(self.tile_scope.tag());
        h.push_u64(u64::from(self.localize));
        h.push_u64(u64::from(self.spad_banks));
        h.push_u64(u64::from(self.cache_banks));
        h.push_f64_bits(self.fusion_period_ns);
        h.finish()
    }
}

impl fmt::Display for PassConfig {
    /// Compact knob label, e.g. `q8 t4:leaf loc spad4 cache2 fuse2.5`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_baseline() {
            return write!(f, "baseline");
        }
        let mut parts: Vec<String> = Vec::new();
        if self.queue_depth > 0 {
            parts.push(format!("q{}", self.queue_depth));
        }
        if self.tiles > 1 {
            parts.push(format!("t{}:{}", self.tiles, self.tile_scope.tag()));
        }
        if self.localize {
            parts.push("loc".to_string());
        }
        if self.spad_banks > 1 {
            parts.push(format!("spad{}", self.spad_banks));
        }
        if self.cache_banks > 1 {
            parts.push(format!("cache{}", self.cache_banks));
        }
        if self.fusion_period_ns > 0.0 {
            parts.push(format!("fuse{}", self.fusion_period_ns));
        }
        write!(f, "{}", parts.join(" "))
    }
}

/// The enumerable design space: the cross product of every knob's levels,
/// addressed by a mixed-radix index in `[0, size())`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassSpace;

impl PassSpace {
    /// The full knob surface.
    pub fn full() -> PassSpace {
        PassSpace
    }

    /// Number of distinct knob assignments (including the baseline).
    pub fn size(&self) -> u64 {
        (QUEUE_DEPTHS.len()
            * TILE_COUNTS.len()
            * TileScope::ALL.len()
            * 2
            * SPAD_BANKS.len()
            * CACHE_BANKS.len()
            * FUSION_PERIODS_NS.len()) as u64
    }

    /// Decode the `i`-th config (mixed-radix; `i` is taken modulo
    /// [`PassSpace::size`]). `nth(0)` is the baseline.
    pub fn nth(&self, i: u64) -> PassConfig {
        let mut i = i % self.size();
        let mut digit = |radix: usize| -> usize {
            let d = (i % radix as u64) as usize;
            i /= radix as u64;
            d
        };
        PassConfig {
            queue_depth: QUEUE_DEPTHS[digit(QUEUE_DEPTHS.len())],
            tiles: TILE_COUNTS[digit(TILE_COUNTS.len())],
            tile_scope: TileScope::ALL[digit(TileScope::ALL.len())],
            localize: digit(2) == 1,
            spad_banks: SPAD_BANKS[digit(SPAD_BANKS.len())],
            cache_banks: CACHE_BANKS[digit(CACHE_BANKS.len())],
            fusion_period_ns: FUSION_PERIODS_NS[digit(FUSION_PERIODS_NS.len())],
        }
    }

    /// Seeded sample of up to `budget` *distinct* config indices,
    /// ascending. Index 0 (the baseline) is always included, so every
    /// sampled sweep is anchored at the unoptimized design. Deterministic
    /// in `(seed, budget)`: the same call always returns the same set.
    pub fn sample_indices(&self, seed: u64, budget: u64) -> Vec<u64> {
        let want = budget.clamp(1, self.size());
        let mut rng = SplitMix64::salted(seed, 0xd5e_5a17);
        let mut set = std::collections::BTreeSet::new();
        set.insert(0u64);
        while (set.len() as u64) < want {
            set.insert(rng.below(self.size()));
        }
        set.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_is_enumerable_and_zero_is_baseline() {
        let space = PassSpace::full();
        assert_eq!(space.size(), 3072);
        assert!(space.nth(0).is_baseline());
        assert_eq!(space.nth(0), PassConfig::baseline());
        // nth is total: the last index decodes, and wraps modulo size.
        let last = space.nth(space.size() - 1);
        assert!(!last.is_baseline());
        assert_eq!(space.nth(space.size()), space.nth(0));
    }

    #[test]
    fn nth_is_a_bijection_over_hashes() {
        let space = PassSpace::full();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..space.size() {
            seen.insert(space.nth(i).config_hash());
        }
        assert_eq!(seen.len() as u64, space.size(), "hash collision in space");
    }

    #[test]
    fn sampling_is_seeded_deterministic_and_anchored() {
        let space = PassSpace::full();
        let a = space.sample_indices(0xbeef, 24);
        let b = space.sample_indices(0xbeef, 24);
        assert_eq!(a, b, "same seed, same sample");
        assert_eq!(a.len(), 24);
        assert_eq!(a[0], 0, "baseline always sampled");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "ascending + distinct");
        let c = space.sample_indices(0xbee0, 24);
        assert_ne!(a, c, "different seed, different sample");
        // Budget beyond the space saturates instead of looping forever.
        let all = space.sample_indices(1, space.size() + 100);
        assert_eq!(all.len() as u64, space.size());
    }

    #[test]
    fn baseline_pipeline_is_empty_and_full_config_stacks_passes() {
        assert_eq!(
            format!("{:?}", PassConfig::baseline().pipeline())
                .matches(',')
                .count(),
            0
        );
        let full = PassConfig {
            queue_depth: 8,
            tiles: 4,
            tile_scope: TileScope::LeafLoops,
            localize: true,
            spad_banks: 4,
            cache_banks: 2,
            fusion_period_ns: 2.5,
        };
        let dbg = format!("{:?}", full.pipeline());
        for name in [
            "task-queueing",
            "execution-tiling",
            "memory-localization",
            "scratchpad-banking",
            "cache-banking",
            "op-fusion",
        ] {
            assert!(dbg.contains(name), "{dbg}");
        }
        assert_eq!(full.to_string(), "q8 t4:leaf loc spad4 cache2 fuse2.5");
    }
}
