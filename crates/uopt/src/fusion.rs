//! **Pass 5 — Auto-pipelining and op-fusion** (§6.1, Figure 10).
//!
//! The baseline μIR makes no scheduling decisions: every dataflow edge
//! carries a ready/valid handshake and a pipeline register. This pass walks
//! each task's dataflow depth-first looking for single-consumer chains of
//! cheap scalar operations and greedily fuses them into [`FusedPlan`]
//! nodes, eliminating the interior handshakes and registers. Fusion is
//! constrained by a clock-period budget so the re-timed pipeline never
//! robs frequency (§6.1: "we seek to ensure that the resulting fused
//! pipeline's frequency is not penalized").

use crate::{Pass, PassDelta, PassError};
use muir_core::accel::Accelerator;
use muir_core::dataflow::{Dataflow, EdgeKind, NodeId};
use muir_core::hw;
use muir_core::node::{FusedInput, FusedPlan, FusedStep, Node, NodeKind, OpKind};

/// The op-fusion pass.
#[derive(Debug, Clone)]
pub struct OpFusion {
    /// Clock-period budget (ns): a fused node's combinational path must fit.
    pub max_delay_ns: f64,
    /// Upper bound on primitive ops per fused node.
    pub max_ops: usize,
}

impl Default for OpFusion {
    fn default() -> Self {
        OpFusion {
            max_delay_ns: hw::BASELINE_PERIOD_NS,
            max_ops: 16,
        }
    }
}

impl OpFusion {
    /// Fusion with a custom period budget (frequency/cycle-count tradeoff
    /// ablation).
    pub fn with_period(max_delay_ns: f64) -> OpFusion {
        OpFusion {
            max_delay_ns,
            ..OpFusion::default()
        }
    }
}

impl Pass for OpFusion {
    fn name(&self) -> &'static str {
        "op-fusion"
    }

    fn run(&self, acc: &mut Accelerator) -> Result<PassDelta, PassError> {
        let mut delta = PassDelta::default();
        for t in 0..acc.tasks.len() {
            delta = delta.merge(fuse_accumulators(&mut acc.tasks[t].dataflow));
            delta = delta.merge(fuse_dataflow(
                &mut acc.tasks[t].dataflow,
                self.max_delay_ns,
                self.max_ops,
            ));
        }
        Ok(delta)
    }
}

/// Re-time loop-carried accumulators (§4 Pass 5's worked example fuses the
/// φ-chain): a `Merge` whose feedback comes from a commutative binary op
/// consuming the merge itself collapses into one self-accumulating
/// function unit, removing the handshake hops from the recurrence path —
/// the initiation interval drops from `op latency + merge + registers`
/// to the op's own latency.
pub fn fuse_accumulators(df: &mut Dataflow) -> PassDelta {
    use muir_mir::instr::BinOp;
    let mut delta = PassDelta::default();
    'outer: loop {
        let mut found: Option<(NodeId, NodeId)> = None; // (merge, op)
        for m in df.node_ids() {
            if !matches!(df.node(m).kind, NodeKind::Merge) {
                continue;
            }
            // Feedback producer.
            let Some(fb) = df
                .edges
                .iter()
                .find(|e| e.dst == m && e.dst_port == 1 && e.kind == EdgeKind::Feedback)
            else {
                continue;
            };
            let u = fb.src;
            match df.node(u).kind {
                NodeKind::Compute(OpKind::Bin(
                    BinOp::Add | BinOp::Mul | BinOp::FAdd | BinOp::FMul,
                ))
                | NodeKind::Compute(OpKind::Tensor(
                    muir_mir::instr::TensorOp::Add | muir_mir::instr::TensorOp::Mul,
                    _,
                )) => {}
                _ => continue,
            }
            // The merge's only data consumer must be `u`, and `u` must
            // consume the merge on exactly one port.
            let m_consumers: Vec<_> = df
                .edges
                .iter()
                .filter(|e| e.src == m && e.kind == EdgeKind::Data)
                .collect();
            if m_consumers.len() != 1 || m_consumers[0].dst != u {
                continue;
            }
            // Init must come from a static source (per-invocation constant).
            let init_static = df.edges.iter().any(|e| {
                e.dst == m
                    && e.dst_port == 0
                    && matches!(
                        df.node(e.src).kind,
                        NodeKind::Input { .. } | NodeKind::Const(_)
                    )
            });
            if !init_static {
                continue;
            }
            found = Some((m, u));
            break;
        }
        let Some((m, u)) = found else { break 'outer };
        let op = match df.node(u).kind {
            NodeKind::Compute(op) => op,
            _ => unreachable!(),
        };
        let ty = df.node(u).ty;
        let name = format!("acc_{}", df.node(u).name);
        let a = df.add_node(Node::new(name, NodeKind::FusedAcc { op }, ty));
        // Wire init (merge port 0 source) to acc port 0.
        let init = df
            .edges
            .iter()
            .find(|e| e.dst == m && e.dst_port == 0)
            .copied()
            .expect("merge init edge");
        df.connect(init.src, init.src_port, a, 0);
        // Wire u's non-merge operand to acc port 1.
        let x = df
            .edges
            .iter()
            .find(|e| e.dst == u && e.src != m && e.kind == EdgeKind::Data)
            .copied()
            .expect("op has a second operand");
        df.connect(x.src, x.src_port, a, 1);
        // Redirect u's remaining consumers (Output etc.) to the acc unit,
        // and keep order edges attached.
        for e in df.edges.iter_mut() {
            if e.src == u && e.dst != m {
                e.src = a;
                e.src_port = 0;
                delta.edges += 1;
            } else if e.src == m && e.kind == EdgeKind::Order {
                e.src = a;
            } else if e.dst == u && e.kind == EdgeKind::Order {
                e.dst = a;
            }
        }
        // Drop the triangle's interior edges and the two old nodes.
        df.edges.retain(|e| {
            let interior = e.dst == m
                || (e.src == m && e.dst == u)
                || (e.dst == u && e.kind != EdgeKind::Order);
            !interior
        });
        delta.nodes += 2;
        delta.edges += 3;
        // Remove higher id first so the lower one stays valid.
        let (hi, lo) = if m.0 > u.0 { (m, u) } else { (u, m) };
        remove_node(df, hi);
        remove_node(df, lo);
    }
    delta
}

/// A node's evaluation plan viewed as a (possibly singleton) fused plan.
fn plan_of(node: &Node) -> Option<FusedPlan> {
    match &node.kind {
        NodeKind::Compute(op) => {
            if matches!(op, OpKind::Tensor(..)) {
                return None; // tensor FUs are library macros, not fusable LUT logic
            }
            let arity = op.arity() as u16;
            Some(FusedPlan {
                arity,
                steps: vec![FusedStep {
                    op: *op,
                    ty: node.ty,
                    inputs: (0..arity).map(FusedInput::External).collect(),
                }],
            })
        }
        NodeKind::Fused(plan) => Some(plan.clone()),
        _ => None,
    }
}

/// Fuse producer `u` (single consumer) into consumer `v` at `v_port`.
fn combine(u: &FusedPlan, v: &FusedPlan, v_port: u16) -> FusedPlan {
    let u_arity = u.arity;
    let u_steps = u.steps.len() as u16;
    // New externals: u's externals, then v's externals except `v_port`.
    // Map v-external j to its new index.
    let mut v_ext_map = Vec::with_capacity(v.arity as usize);
    let mut next = u_arity;
    for j in 0..v.arity {
        if j == v_port {
            v_ext_map.push(u16::MAX); // replaced by u's result
        } else {
            v_ext_map.push(next);
            next += 1;
        }
    }
    let mut steps = u.steps.clone();
    for s in &v.steps {
        let inputs = s
            .inputs
            .iter()
            .map(|i| match i {
                FusedInput::External(j) if *j == v_port => FusedInput::Step(u_steps - 1),
                FusedInput::External(j) => FusedInput::External(v_ext_map[*j as usize]),
                FusedInput::Step(k) => FusedInput::Step(k + u_steps),
            })
            .collect();
        steps.push(FusedStep {
            op: s.op,
            ty: s.ty,
            inputs,
        });
    }
    FusedPlan { arity: next, steps }
}

/// One fusion round over a dataflow; returns the touched-element delta.
pub fn fuse_dataflow(df: &mut Dataflow, max_delay_ns: f64, max_ops: usize) -> PassDelta {
    let mut delta = PassDelta::default();
    while let Some((u, v, v_port)) = find_candidate(df, max_delay_ns, max_ops) {
        // Build the fused node in v's slot.
        let u_plan = plan_of(df.node(u)).expect("candidate is fusable");
        let v_plan = plan_of(df.node(v)).expect("candidate is fusable");
        let fused = combine(&u_plan, &v_plan, v_port);
        let name = format!("{}+{}", df.node(u).name, df.node(v).name);
        let out_ty = df.node(v).ty;
        df.nodes[v.0 as usize] = Node::new(name, NodeKind::Fused(fused), out_ty);

        // Rewire: u's inputs become v's ports 0..u_arity; v's other inputs
        // shift; the u→v edge disappears; u dies.
        let mut new_edges = Vec::with_capacity(df.edges.len());
        for e in df.edges.iter().copied() {
            let mut e = e;
            if e.src == u && e.dst == v && e.dst_port == v_port && e.kind == EdgeKind::Data {
                delta.edges += 1; // removed handshake connection
                continue;
            }
            if e.dst == u {
                // u input port i → v port i.
                e.dst = v;
                delta.edges += 1;
            } else if e.dst == v && e.kind != EdgeKind::Order {
                // Remap v's surviving input ports.
                let j = e.dst_port;
                let new_port = if j < v_port {
                    u_plan.arity + j
                } else {
                    u_plan.arity + j - 1
                };
                e.dst_port = new_port;
                delta.edges += 1;
            }
            new_edges.push(e);
        }
        df.edges = new_edges;
        delta.nodes += 2; // producer and consumer replaced by one unit
        remove_node(df, u);
    }
    delta
}

fn find_candidate(
    df: &Dataflow,
    max_delay_ns: f64,
    max_ops: usize,
) -> Option<(NodeId, NodeId, u16)> {
    // One CSR build per round replaces a per-node O(E) rescan.
    let idx = df.edge_index();
    for u in df.node_ids() {
        let Some(u_plan) = plan_of(df.node(u)) else {
            continue;
        };
        // u must have exactly one outgoing edge, a Data edge.
        let outs = idx.outs(u);
        if outs.len() != 1 {
            continue;
        }
        let e = df.edges[outs[0] as usize];
        if e.kind != EdgeKind::Data {
            continue;
        }
        let v = e.dst;
        let Some(v_plan) = plan_of(df.node(v)) else {
            continue;
        };
        if u_plan.steps.len() + v_plan.steps.len() > max_ops {
            continue;
        }
        let fused = combine(&u_plan, &v_plan, e.dst_port);
        if hw::fused_path_delay(&fused) <= max_delay_ns {
            return Some((u, v, e.dst_port));
        }
    }
    None
}

/// Remove one node from a dataflow, remapping every id that follows it.
/// The node must have no remaining edges.
pub fn remove_node(df: &mut Dataflow, dead: NodeId) {
    debug_assert!(
        df.edges.iter().all(|e| e.src != dead && e.dst != dead),
        "removing a connected node"
    );
    let remap = |id: NodeId| -> NodeId {
        if id.0 > dead.0 {
            NodeId(id.0 - 1)
        } else {
            id
        }
    };
    df.nodes.remove(dead.0 as usize);
    for e in &mut df.edges {
        e.src = remap(e.src);
        e.dst = remap(e.dst);
    }
    for j in &mut df.junctions {
        for r in j.readers.iter_mut().chain(j.writers.iter_mut()) {
            *r = remap(*r);
        }
    }
}

/// Dead-node elimination: remove pure nodes whose results nobody consumes
/// (exposed for use after other transformations).
pub fn eliminate_dead(df: &mut Dataflow) -> usize {
    let mut removed = 0;
    loop {
        let idx = df.edge_index();
        let mut dead: Option<NodeId> = None;
        for n in df.node_ids() {
            let pure = matches!(
                df.node(n).kind,
                NodeKind::Compute(_) | NodeKind::Fused(_) | NodeKind::Const(_)
            );
            if pure && idx.fanout(n) == 0 {
                dead = Some(n);
                break;
            }
        }
        let Some(n) = dead else { break };
        // Drop its input edges first.
        df.edges.retain(|e| e.dst != n);
        remove_node(df, n);
        removed += 1;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use muir_core::node::{Node, NodeKind};
    use muir_core::Type;
    use muir_mir::instr::{BinOp, ConstVal};

    fn chain_df(ops: &[BinOp]) -> (Dataflow, NodeId) {
        let mut df = Dataflow::new();
        let a = df.add_node(Node::new("a", NodeKind::Input { index: 0 }, Type::I64));
        let b = df.add_node(Node::new("b", NodeKind::Const(ConstVal::Int(3)), Type::I64));
        let mut prev = a;
        let mut last = a;
        for (i, op) in ops.iter().enumerate() {
            let n = df.add_node(Node::new(
                format!("op{i}"),
                NodeKind::Compute(OpKind::Bin(*op)),
                Type::I64,
            ));
            df.connect(prev, 0, n, 0);
            df.connect(b, 0, n, 1);
            prev = n;
            last = n;
        }
        let out = df.add_node(Node::new("out", NodeKind::Output, Type::I64));
        df.connect(prev, 0, out, 0);
        (df, last)
    }

    #[test]
    fn cheap_chain_fuses_to_one_node() {
        // and → xor → or: 3 × 0.9 ns = 2.7 ns... over 2.5; use 2 ops.
        let (mut df, _) = chain_df(&[BinOp::And, BinOp::Xor]);
        let before = df.nodes.len();
        let delta = fuse_dataflow(&mut df, hw::BASELINE_PERIOD_NS, 16);
        assert!(delta.nodes >= 2);
        assert_eq!(df.nodes.len(), before - 1);
        let fused: Vec<&Node> = df
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Fused(_)))
            .collect();
        assert_eq!(fused.len(), 1);
        if let NodeKind::Fused(plan) = &fused[0].kind {
            assert_eq!(plan.op_count(), 2);
        }
    }

    #[test]
    fn period_budget_limits_fusion() {
        // Two integer multiplies: 5.6 ns — cannot fuse under 2.5 ns.
        let (mut df, _) = chain_df(&[BinOp::Mul, BinOp::Mul]);
        let delta = fuse_dataflow(&mut df, hw::BASELINE_PERIOD_NS, 16);
        assert_eq!(delta, PassDelta::default());
        // A relaxed budget fuses them.
        let (mut df2, _) = chain_df(&[BinOp::Mul, BinOp::Mul]);
        let delta2 = fuse_dataflow(&mut df2, 10.0, 16);
        assert!(delta2.nodes > 0);
    }

    #[test]
    fn fanout_blocks_fusion() {
        let mut df = Dataflow::new();
        let a = df.add_node(Node::new("a", NodeKind::Input { index: 0 }, Type::I64));
        let x = df.add_node(Node::new(
            "x",
            NodeKind::Compute(OpKind::Bin(BinOp::And)),
            Type::I64,
        ));
        let y = df.add_node(Node::new(
            "y",
            NodeKind::Compute(OpKind::Bin(BinOp::Or)),
            Type::I64,
        ));
        let z = df.add_node(Node::new(
            "z",
            NodeKind::Compute(OpKind::Bin(BinOp::Xor)),
            Type::I64,
        ));
        let out = df.add_node(Node::new("out", NodeKind::Output, Type::I64));
        df.connect(a, 0, x, 0);
        df.connect(a, 0, x, 1);
        // x feeds BOTH y and z: not fusable into either.
        df.connect(x, 0, y, 0);
        df.connect(x, 0, z, 0);
        df.connect(a, 0, y, 1);
        df.connect(a, 0, z, 1);
        df.connect(y, 0, out, 0);
        // z dangles deliberately; y→out keeps y's fanout at 1 but out is
        // not fusable.
        let n_before = df.nodes.len();
        fuse_dataflow(&mut df, hw::BASELINE_PERIOD_NS, 16);
        // x cannot fuse (fanout 2); z and y have no fusable consumers.
        assert_eq!(df.nodes.len(), n_before);
    }

    #[test]
    fn fused_plan_evaluates_like_chain() {
        // (a + 3) << 3 = 3.2 ns: fits a relaxed 4 ns budget.
        let (mut df, _) = chain_df(&[BinOp::Add, BinOp::Shl]);
        fuse_dataflow(&mut df, 4.0, 16);
        let plan = df
            .nodes
            .iter()
            .find_map(|n| match &n.kind {
                NodeKind::Fused(p) => Some(p.clone()),
                _ => None,
            })
            .expect("fused node exists");
        assert_eq!(plan.steps.len(), 2);
        // Step 1 consumes step 0.
        assert!(plan.steps[1].inputs.contains(&FusedInput::Step(0)));
    }

    #[test]
    fn remove_node_remaps_everything() {
        let mut df = Dataflow::new();
        let a = df.add_node(Node::new("a", NodeKind::Input { index: 0 }, Type::I64));
        let b = df.add_node(Node::new("b", NodeKind::Const(ConstVal::Int(1)), Type::I64));
        let c = df.add_node(Node::new(
            "c",
            NodeKind::Compute(OpKind::Bin(BinOp::Add)),
            Type::I64,
        ));
        df.connect(a, 0, c, 0);
        df.connect(b, 0, c, 1);
        // Remove a dangling node before c.
        let dangling = b;
        df.edges.retain(|e| e.src != dangling);
        // reconnect c port 1 from a instead
        df.connect(a, 0, c, 1);
        remove_node(&mut df, dangling);
        assert_eq!(df.nodes.len(), 2);
        // c's id shifted down by one; edges must still reference it.
        for e in &df.edges {
            assert!(e.dst.0 < 2 && e.src.0 < 2);
        }
    }

    #[test]
    fn dead_elimination_removes_unused_chains() {
        let mut df = Dataflow::new();
        let a = df.add_node(Node::new("a", NodeKind::Input { index: 0 }, Type::I64));
        let x = df.add_node(Node::new(
            "x",
            NodeKind::Compute(OpKind::Bin(BinOp::And)),
            Type::I64,
        ));
        df.connect(a, 0, x, 0);
        df.connect(a, 0, x, 1);
        let _out = df.add_node(Node::new("out", NodeKind::Output, Type::I64));
        let removed = eliminate_dead(&mut df);
        assert_eq!(removed, 1);
        assert_eq!(df.nodes.len(), 2);
    }
}
