//! `muir-uopt` — the μopt microarchitecture-transformation framework (§4).
//!
//! Architecture ideas are realised as iterative transformations of the μIR
//! graph, never of RTL. Passes implement [`Pass`] and are composed by a
//! [`PassManager`] that verifies the graph's structural invariants after
//! every transformation (latency-agnostic interfaces make stacked passes
//! safe, §1 novelty iv). Each pass reports a [`PassDelta`] — the nodes and
//! edges it touched — which is exactly the quantity Table 4 compares
//! against FIRRTL.
//!
//! The paper's passes:
//!
//! | pass | paper | type |
//! |---|---|---|
//! | [`passes::TaskQueueing`] | Pass 1, §4 | timing |
//! | [`passes::ExecutionTiling`] | Pass 2, §6.2 | spatial |
//! | [`passes::MemoryLocalization`] | Pass 3 + Algorithm 2, §6.4 | timing+spatial |
//! | [`passes::ScratchpadBanking`] / [`passes::CacheBanking`] | Pass 4, §6.4 | timing+spatial |
//! | [`passes::OpFusion`] | Pass 5, §6.1 | timing |
//! | [`passes::LowerTensors`] | §6.3 (inverse direction) | higher-order ops |
//!
//! `LowerTensors` expands Tensor2D higher-order ops into scalar pipelines —
//! it produces the *baseline* of Figure 15, whose comparison against the
//! native tensor graph measures the benefit of the tensor function units.

pub mod config;
pub mod fusion;
pub mod lower_tensors;
pub mod passes;
pub mod simplify;

use muir_core::accel::Accelerator;
use muir_core::compiled::CompiledAccel;
use muir_core::verify::verify_accelerator;
use std::fmt;

/// The graph elements a pass touched — Table 4's ΔNode/ΔEdge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassDelta {
    /// μIR nodes created, removed, or reparameterised.
    pub nodes: usize,
    /// μIR edges/connections created, removed, or rerouted.
    pub edges: usize,
}

impl PassDelta {
    /// Element-wise sum.
    pub fn merge(self, other: PassDelta) -> PassDelta {
        PassDelta {
            nodes: self.nodes + other.nodes,
            edges: self.edges + other.edges,
        }
    }
}

/// Pass failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// Pass that failed.
    pub pass: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pass `{}` failed: {}", self.pass, self.message)
    }
}

impl std::error::Error for PassError {}

/// A μopt transformation.
pub trait Pass {
    /// Pass name (shown in reports and Table 4).
    fn name(&self) -> &'static str;

    /// Transform the accelerator graph, returning the touched-element
    /// delta.
    ///
    /// # Errors
    /// Pass-specific failures (the manager re-verifies the graph after
    /// every pass regardless).
    fn run(&self, acc: &mut Accelerator) -> Result<PassDelta, PassError>;
}

/// Per-pass instrumentation: what the pass did and what it cost.
#[derive(Debug, Clone, Default)]
pub struct PassRecord {
    /// Pass name.
    pub name: String,
    /// Elements touched (Table 4's ΔNode/ΔEdge).
    pub delta: PassDelta,
    /// Host wall time of the pass itself (excludes the manager's post-pass
    /// verification).
    pub wall: std::time::Duration,
    /// Graph node count after the pass (includes verification-visible
    /// growth, so `records[i].nodes_after - records[i-1].nodes_after` is
    /// the pass's net size effect).
    pub nodes_after: usize,
    /// Graph edge count after the pass.
    pub edges_after: usize,
}

/// Report of one manager invocation.
#[derive(Debug, Clone, Default)]
pub struct PassReport {
    /// `(pass name, delta)` in execution order.
    pub deltas: Vec<(String, PassDelta)>,
    /// Full per-pass instrumentation (same order as `deltas`), including
    /// wall time and post-pass graph sizes.
    pub records: Vec<PassRecord>,
}

impl PassReport {
    /// Total delta across all passes.
    pub fn total(&self) -> PassDelta {
        self.deltas
            .iter()
            .fold(PassDelta::default(), |a, (_, d)| a.merge(*d))
    }

    /// Total host wall time across all passes.
    pub fn total_wall(&self) -> std::time::Duration {
        self.records.iter().map(|r| r.wall).sum()
    }

    /// Human-readable per-pass table (name, wall time, Δ, graph size).
    pub fn render(&self) -> String {
        let mut out = String::new();
        use fmt::Write as _;
        let _ = writeln!(
            out,
            "pass pipeline: {} passes, {:.3} ms total",
            self.records.len(),
            self.total_wall().as_secs_f64() * 1e3
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "  {:<24} {:>9.3} ms  Δnodes {:>4}  Δedges {:>4}  -> {} nodes / {} edges",
                r.name,
                r.wall.as_secs_f64() * 1e3,
                r.delta.nodes,
                r.delta.edges,
                r.nodes_after,
                r.edges_after
            );
        }
        out
    }
}

/// Runs passes in order, verifying the μIR graph after each one.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// Empty manager.
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// Append a pass (builder style).
    pub fn with(mut self, pass: impl Pass + 'static) -> PassManager {
        self.passes.push(Box::new(pass));
        self
    }

    /// Append a boxed pass.
    pub fn push(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// Run all passes on `acc`.
    ///
    /// The graph is verified after every pass **and** once more on exit,
    /// so even an empty pipeline hard-errors on an invalid input graph —
    /// downstream consumers (`seal`, the simulator, RTL emission) never
    /// see an unverified accelerator slip through a no-pass run.
    ///
    /// # Errors
    /// The first pass failure or verification failure.
    pub fn run(&self, acc: &mut Accelerator) -> Result<PassReport, PassError> {
        let mut report = PassReport::default();
        for pass in &self.passes {
            let started = std::time::Instant::now();
            let delta = pass.run(acc)?;
            let wall = started.elapsed();
            verify_accelerator(acc).map_err(|e| PassError {
                pass: pass.name().to_string(),
                message: format!("graph invalid after pass: {e}"),
            })?;
            let size = muir_core::stats::graph_stats(acc);
            report.deltas.push((pass.name().to_string(), delta));
            report.records.push(PassRecord {
                name: pass.name().to_string(),
                delta,
                wall,
                nodes_after: size.nodes,
                edges_after: size.edges,
            });
        }
        // Final gate: covers the empty pipeline (no per-pass check ran) and
        // costs one redundant verify otherwise — cheap relative to any pass.
        verify_accelerator(acc).map_err(|e| PassError {
            pass: "<final-verify>".to_string(),
            message: format!("graph invalid after pipeline: {e}"),
        })?;
        Ok(report)
    }

    /// Run all passes, then **seal** the result: verify and lower the
    /// transformed graph exactly once into an immutable, content-addressed
    /// [`CompiledAccel`] shared by the simulator, RTL emission, and cost
    /// layers. This is the intended terminal stage of a μopt pipeline —
    /// everything downstream consumes the sealed artifact, never the
    /// mutable graph.
    ///
    /// Lowering goes through the process-local compile cache, so sealing
    /// the same graph content twice returns the same `Arc`.
    ///
    /// # Errors
    /// The first pass failure, or a verification failure (reported under
    /// the pseudo-pass name `<seal>` when the final lowering rejects the
    /// graph).
    pub fn seal(
        &self,
        acc: &mut Accelerator,
    ) -> Result<(std::sync::Arc<CompiledAccel>, PassReport), PassError> {
        let report = self.run(acc)?;
        let comp = CompiledAccel::compile_cached(acc).map_err(|e| PassError {
            pass: "<seal>".to_string(),
            message: format!("graph rejected at seal: {e}"),
        })?;
        Ok((comp, report))
    }
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("PassManager")
            .field("passes", &names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muir_core::accel::{TaskBlock, TaskKind};
    use muir_core::node::{Node, NodeKind};
    use muir_core::Type;

    struct Nop;
    impl Pass for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn run(&self, _acc: &mut Accelerator) -> Result<PassDelta, PassError> {
            Ok(PassDelta { nodes: 1, edges: 2 })
        }
    }

    struct Breaker;
    impl Pass for Breaker {
        fn name(&self) -> &'static str {
            "breaker"
        }
        fn run(&self, acc: &mut Accelerator) -> Result<PassDelta, PassError> {
            // Add a second Output node: invalid.
            acc.tasks[0]
                .dataflow
                .add_node(Node::new("bad", NodeKind::Output, Type::BOOL));
            Ok(PassDelta::default())
        }
    }

    fn tiny_acc() -> Accelerator {
        let mut acc = Accelerator::new("t");
        let mut task = TaskBlock::new("main", TaskKind::Region);
        task.dataflow
            .add_node(Node::new("out", NodeKind::Output, Type::BOOL));
        let tid = acc.add_task(task);
        acc.root = tid;
        acc
    }

    #[test]
    fn manager_runs_and_accumulates() {
        let mut acc = tiny_acc();
        let pm = PassManager::new().with(Nop).with(Nop);
        let report = pm.run(&mut acc).unwrap();
        assert_eq!(report.deltas.len(), 2);
        assert_eq!(report.total(), PassDelta { nodes: 2, edges: 4 });
        // Instrumentation rides along: per-pass wall time + graph sizes.
        assert_eq!(report.records.len(), 2);
        assert!(report.records.iter().all(|r| r.name == "nop"));
        assert_eq!(report.records[0].nodes_after, 1);
        assert_eq!(report.records[0].edges_after, 0);
        let table = report.render();
        assert!(table.contains("nop"), "{table}");
        assert!(table.contains("2 passes"), "{table}");
    }

    #[test]
    fn manager_catches_graph_corruption() {
        let mut acc = tiny_acc();
        let pm = PassManager::new().with(Breaker);
        let e = pm.run(&mut acc).unwrap_err();
        assert_eq!(e.pass, "breaker");
        assert!(e.message.contains("invalid"), "{e}");
    }

    #[test]
    fn empty_pipeline_still_verifies() {
        // An invalid graph must not slip through a no-pass run.
        let mut acc = tiny_acc();
        acc.tasks[0]
            .dataflow
            .add_node(Node::new("bad", NodeKind::Output, Type::BOOL));
        let e = PassManager::new().run(&mut acc).unwrap_err();
        assert_eq!(e.pass, "<final-verify>");
        assert!(e.message.contains("invalid"), "{e}");
        // And a valid graph passes with an empty report.
        let mut ok = tiny_acc();
        let report = PassManager::new().run(&mut ok).unwrap();
        assert!(report.deltas.is_empty());
    }

    #[test]
    fn seal_returns_content_addressed_artifact() {
        let mut acc = tiny_acc();
        let pm = PassManager::new().with(Nop);
        let (comp, report) = pm.seal(&mut acc).unwrap();
        assert_eq!(report.deltas.len(), 1);
        assert_eq!(comp.content_hash(), muir_core::content_hash(&acc));
        // Sealing the same content again hits the compile cache.
        let (again, _) = pm.seal(&mut acc).unwrap();
        assert!(std::sync::Arc::ptr_eq(&comp, &again));
    }

    #[test]
    fn seal_rejects_invalid_graph() {
        let mut acc = tiny_acc();
        let pm = PassManager::new().with(Breaker);
        let e = pm.seal(&mut acc).unwrap_err();
        assert_eq!(e.pass, "breaker");
    }
}
