//! **Simplify** — classic cleanup transformations at the μIR level:
//! constant folding of compute nodes whose inputs are all constants, and
//! dead-node elimination of pure values nobody consumes.
//!
//! The paper notes (§2.2) that FIRRTL-style IRs support "localized circuit
//! transformations (e.g., common-sub-expression elimination)"; μIR supports
//! the same local cleanups *plus* the global structural passes — this pass
//! is the local half, and it demonstrably composes with every structural
//! pass (the manager re-verifies after it).

use crate::fusion::{eliminate_dead, remove_node};
use crate::{Pass, PassDelta, PassError};
use muir_core::accel::Accelerator;
use muir_core::dataflow::{Dataflow, EdgeKind, NodeId};
use muir_core::node::{Node, NodeKind, OpKind};
use muir_mir::instr::ConstVal;
use muir_mir::interp::{eval_bin, eval_cmp, eval_un};
use muir_mir::value::Value;

/// The simplification pass (constant folding + DCE).
#[derive(Debug, Clone, Copy, Default)]
pub struct Simplify;

impl Pass for Simplify {
    fn name(&self) -> &'static str {
        "simplify"
    }

    fn run(&self, acc: &mut Accelerator) -> Result<PassDelta, PassError> {
        let mut delta = PassDelta::default();
        for t in 0..acc.tasks.len() {
            delta = delta.merge(simplify_dataflow(&mut acc.tasks[t].dataflow));
        }
        Ok(delta)
    }
}

fn const_of(node: &Node) -> Option<Value> {
    match &node.kind {
        NodeKind::Const(c) => Some(c.to_value()),
        _ => None,
    }
}

fn value_to_const(v: &Value) -> Option<ConstVal> {
    match v {
        Value::Bool(b) => Some(ConstVal::Bool(*b)),
        Value::Int(i) => Some(ConstVal::Int(*i)),
        Value::F32(f) => Some(ConstVal::F32(*f)),
        _ => None,
    }
}

/// Fold every compute node whose inputs are all constants, then eliminate
/// dead pure nodes. Returns the touched-element delta.
pub fn simplify_dataflow(df: &mut Dataflow) -> PassDelta {
    let mut delta = PassDelta::default();
    loop {
        let mut folded = false;
        for n in df.node_ids() {
            let op = match &df.node(n).kind {
                NodeKind::Compute(op) => *op,
                _ => continue,
            };
            // Collect constant inputs in port order (data edges only).
            let mut ins = df
                .edges
                .iter()
                .filter(|e| e.dst == n && e.kind == EdgeKind::Data)
                .collect::<Vec<_>>();
            ins.sort_by_key(|e| e.dst_port);
            let vals: Option<Vec<Value>> = ins.iter().map(|e| const_of(df.node(e.src))).collect();
            let Some(vals) = vals else { continue };
            if vals.len() != op.arity() {
                continue;
            }
            let result = match op {
                OpKind::Bin(b) => match eval_bin(b, &vals[0], &vals[1]) {
                    Ok(v) => v,
                    Err(_) => continue, // division by zero: leave it alone
                },
                OpKind::Un(u) => eval_un(u, &vals[0]),
                OpKind::Cmp(p) => eval_cmp(p, &vals[0], &vals[1]),
                OpKind::Select => {
                    if vals[0].as_bool() {
                        vals[1].clone()
                    } else {
                        vals[2].clone()
                    }
                }
                OpKind::Cast(_) | OpKind::Tensor(..) => continue,
            };
            let Some(c) = value_to_const(&result) else {
                continue;
            };
            // Replace the node with a constant; its input edges die.
            let name = format!("fold_{}", df.node(n).name);
            let ty = df.node(n).ty;
            df.nodes[n.0 as usize] = Node::new(name, NodeKind::Const(c), ty);
            df.edges
                .retain(|e| !(e.dst == n && e.kind == EdgeKind::Data));
            delta.nodes += 1;
            delta.edges += vals.len();
            folded = true;
            break;
        }
        if !folded {
            break;
        }
    }
    // Dead pure nodes (including constants orphaned by folding).
    delta.nodes += eliminate_dead(df);
    // Orphaned order-edge stubs: an Order edge whose source became a
    // constant is meaningless; drop it.
    let dead_orders: Vec<usize> = df
        .edges
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            e.kind == EdgeKind::Order && matches!(df.node(e.src).kind, NodeKind::Const(_))
        })
        .map(|(i, _)| i)
        .collect();
    for i in dead_orders.into_iter().rev() {
        df.edges.remove(i);
        delta.edges += 1;
    }
    let _ = remove_node as fn(&mut Dataflow, NodeId); // re-exported utility
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use muir_core::Type;
    use muir_mir::instr::BinOp;

    fn const_node(df: &mut Dataflow, v: i64) -> NodeId {
        df.add_node(Node::new(
            format!("c{v}"),
            NodeKind::Const(ConstVal::Int(v)),
            Type::I64,
        ))
    }

    #[test]
    fn folds_constant_expressions() {
        let mut df = Dataflow::new();
        let a = const_node(&mut df, 6);
        let b = const_node(&mut df, 7);
        let mul = df.add_node(Node::new(
            "mul",
            NodeKind::Compute(OpKind::Bin(BinOp::Mul)),
            Type::I64,
        ));
        let out = df.add_node(Node::new("out", NodeKind::Output, Type::I64));
        df.connect(a, 0, mul, 0);
        df.connect(b, 0, mul, 1);
        df.connect(mul, 0, out, 0);
        let delta = simplify_dataflow(&mut df);
        assert!(delta.nodes >= 1);
        // mul became Const(42); a and b became dead and were removed.
        let consts: Vec<i64> = df
            .nodes
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Const(ConstVal::Int(v)) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(consts, vec![42]);
        assert_eq!(df.nodes.len(), 2); // the folded const + output
    }

    #[test]
    fn folds_transitively() {
        // (2+3)*4 folds to 20 across two rounds.
        let mut df = Dataflow::new();
        let a = const_node(&mut df, 2);
        let b = const_node(&mut df, 3);
        let c = const_node(&mut df, 4);
        let add = df.add_node(Node::new(
            "add",
            NodeKind::Compute(OpKind::Bin(BinOp::Add)),
            Type::I64,
        ));
        let mul = df.add_node(Node::new(
            "mul",
            NodeKind::Compute(OpKind::Bin(BinOp::Mul)),
            Type::I64,
        ));
        let out = df.add_node(Node::new("out", NodeKind::Output, Type::I64));
        df.connect(a, 0, add, 0);
        df.connect(b, 0, add, 1);
        df.connect(add, 0, mul, 0);
        df.connect(c, 0, mul, 1);
        df.connect(mul, 0, out, 0);
        simplify_dataflow(&mut df);
        let consts: Vec<i64> = df
            .nodes
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Const(ConstVal::Int(v)) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(consts, vec![20]);
    }

    #[test]
    fn division_by_zero_not_folded() {
        let mut df = Dataflow::new();
        let a = const_node(&mut df, 1);
        let b = const_node(&mut df, 0);
        let div = df.add_node(Node::new(
            "div",
            NodeKind::Compute(OpKind::Bin(BinOp::Div)),
            Type::I64,
        ));
        let out = df.add_node(Node::new("out", NodeKind::Output, Type::I64));
        df.connect(a, 0, div, 0);
        df.connect(b, 0, div, 1);
        df.connect(div, 0, out, 0);
        simplify_dataflow(&mut df);
        assert!(df
            .nodes
            .iter()
            .any(|n| matches!(n.kind, NodeKind::Compute(OpKind::Bin(BinOp::Div)))));
    }

    #[test]
    fn non_constant_inputs_left_alone() {
        let mut df = Dataflow::new();
        let inp = df.add_node(Node::new("in", NodeKind::Input { index: 0 }, Type::I64));
        let b = const_node(&mut df, 3);
        let add = df.add_node(Node::new(
            "add",
            NodeKind::Compute(OpKind::Bin(BinOp::Add)),
            Type::I64,
        ));
        let out = df.add_node(Node::new("out", NodeKind::Output, Type::I64));
        df.connect(inp, 0, add, 0);
        df.connect(b, 0, add, 1);
        df.connect(add, 0, out, 0);
        let before = df.nodes.len();
        simplify_dataflow(&mut df);
        assert_eq!(df.nodes.len(), before);
    }
}

/// **Common-subexpression elimination** at the μIR level: two compute nodes
/// with the same operation and the same input connections are the same
/// hardware — keep one function unit and fan its result out (§2.2 names
/// CSE as the FIRRTL-class local pass; μIR subsumes it).
#[derive(Debug, Clone, Copy, Default)]
pub struct Cse;

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, acc: &mut Accelerator) -> Result<PassDelta, PassError> {
        let mut delta = PassDelta::default();
        for t in 0..acc.tasks.len() {
            delta = delta.merge(cse_dataflow(&mut acc.tasks[t].dataflow));
        }
        Ok(delta)
    }
}

/// Merge duplicate pure compute nodes; returns the touched-element delta.
pub fn cse_dataflow(df: &mut Dataflow) -> PassDelta {
    let mut delta = PassDelta::default();
    loop {
        let mut victim: Option<(NodeId, NodeId)> = None; // (kept, removed)
        'scan: for a in df.node_ids() {
            let (op_a, ty_a) = match &df.node(a).kind {
                NodeKind::Compute(op) => (*op, df.node(a).ty),
                _ => continue,
            };
            let ins_a = input_signature(df, a);
            for b in df.node_ids() {
                if b.0 <= a.0 {
                    continue;
                }
                let matches_op = match &df.node(b).kind {
                    NodeKind::Compute(op) => *op == op_a && df.node(b).ty == ty_a,
                    _ => false,
                };
                if matches_op && input_signature(df, b) == ins_a && !ins_a.is_empty() {
                    victim = Some((a, b));
                    break 'scan;
                }
            }
        }
        let Some((keep, dead)) = victim else { break };
        // Re-point the duplicate's consumers at the kept node, drop its
        // input edges, and remove it.
        for e in df.edges.iter_mut() {
            if e.src == dead {
                e.src = keep;
                delta.edges += 1;
            }
        }
        df.edges.retain(|e| e.dst != dead);
        remove_node(df, dead);
        delta.nodes += 1;
    }
    delta
}

/// Input connections of a node as a sorted `(port, src, src_port)` list.
fn input_signature(df: &Dataflow, n: NodeId) -> Vec<(u16, NodeId, u16)> {
    let mut v: Vec<(u16, NodeId, u16)> = df
        .edges
        .iter()
        .filter(|e| e.dst == n && e.kind == EdgeKind::Data)
        .map(|e| (e.dst_port, e.src, e.src_port))
        .collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod cse_tests {
    use super::*;
    use muir_core::Type;
    use muir_mir::instr::BinOp;

    #[test]
    fn duplicate_computations_merge() {
        let mut df = Dataflow::new();
        let x = df.add_node(Node::new("x", NodeKind::Input { index: 0 }, Type::I64));
        let y = df.add_node(Node::new("y", NodeKind::Input { index: 1 }, Type::I64));
        let a1 = df.add_node(Node::new(
            "a1",
            NodeKind::Compute(OpKind::Bin(BinOp::Add)),
            Type::I64,
        ));
        let a2 = df.add_node(Node::new(
            "a2",
            NodeKind::Compute(OpKind::Bin(BinOp::Add)),
            Type::I64,
        ));
        let m = df.add_node(Node::new(
            "m",
            NodeKind::Compute(OpKind::Bin(BinOp::Mul)),
            Type::I64,
        ));
        let out = df.add_node(Node::new("out", NodeKind::Output, Type::I64));
        df.connect(x, 0, a1, 0);
        df.connect(y, 0, a1, 1);
        df.connect(x, 0, a2, 0);
        df.connect(y, 0, a2, 1);
        df.connect(a1, 0, m, 0);
        df.connect(a2, 0, m, 1);
        df.connect(m, 0, out, 0);
        let delta = cse_dataflow(&mut df);
        assert_eq!(delta.nodes, 1);
        // One adder remains; the multiplier's two inputs come from it.
        let adders = df
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Compute(OpKind::Bin(BinOp::Add))))
            .count();
        assert_eq!(adders, 1);
        muir_core::verify::verify_accelerator(&wrap(df)).unwrap();
    }

    #[test]
    fn different_inputs_not_merged() {
        let mut df = Dataflow::new();
        let x = df.add_node(Node::new("x", NodeKind::Input { index: 0 }, Type::I64));
        let y = df.add_node(Node::new("y", NodeKind::Input { index: 1 }, Type::I64));
        let a1 = df.add_node(Node::new(
            "a1",
            NodeKind::Compute(OpKind::Bin(BinOp::Add)),
            Type::I64,
        ));
        let a2 = df.add_node(Node::new(
            "a2",
            NodeKind::Compute(OpKind::Bin(BinOp::Add)),
            Type::I64,
        ));
        let out = df.add_node(Node::new("out", NodeKind::Output, Type::I64));
        df.connect(x, 0, a1, 0);
        df.connect(y, 0, a1, 1);
        // a2 swaps the operand order: a different connection pattern.
        df.connect(y, 0, a2, 0);
        df.connect(x, 0, a2, 1);
        df.connect(a1, 0, out, 0);
        let _ = a2;
        let delta = cse_dataflow(&mut df);
        assert_eq!(delta.nodes, 0);
    }

    fn wrap(df: Dataflow) -> Accelerator {
        use muir_core::accel::{TaskBlock, TaskKind};
        let mut acc = Accelerator::new("t");
        let mut task = TaskBlock::new("main", TaskKind::Region);
        task.num_args = 2;
        task.num_results = 1;
        task.dataflow = df;
        let tid = acc.add_task(task);
        acc.root = tid;
        acc
    }
}
