//! **Tensor lowering** — the inverse of §6.3's higher-order ops.
//!
//! The paper evaluates tensor function units by comparing against a
//! baseline that "implements the operation through the pipeline", i.e. a
//! scalar dataflow. This pass produces that baseline from the tensor-typed
//! graph: every Tensor2D value is *lane-expanded* into scalar values, every
//! tensor op into a network of scalar function units (the 2×2 matmul
//! becomes the 8-multiplier/4-adder network that Figure 14's reduction
//! tree replaces), every tile load/store into per-element accesses, and
//! tensor-typed task arguments/results into one scalar slot per element —
//! across task boundaries.
//!
//! Speedup of the untouched graph over the lowered one is Figure 15.

use crate::{Pass, PassDelta, PassError};
use muir_core::accel::{Accelerator, ArgExpr, ResultInit, TaskKind};
use muir_core::dataflow::{Dataflow, EdgeKind, Junction, NodeId};
use muir_core::node::{Node, NodeKind, OpKind};
use muir_core::Type;
use muir_mir::instr::{BinOp, TensorOp, UnOp};
use std::collections::HashMap;

/// The tensor-lowering pass.
#[derive(Debug, Clone, Default)]
pub struct LowerTensors;

/// Per-task interface remapping after lane expansion.
#[derive(Debug, Clone, Default)]
struct TaskRemap {
    /// Old argument index → new argument indices (one per lane).
    arg_map: Vec<Vec<u32>>,
    /// Old result port → new result ports.
    result_map: Vec<Vec<u16>>,
}

impl Pass for LowerTensors {
    fn name(&self) -> &'static str {
        "lower-tensors"
    }

    fn run(&self, acc: &mut Accelerator) -> Result<PassDelta, PassError> {
        let n = acc.tasks.len();
        let mut remaps: Vec<TaskRemap> = vec![TaskRemap::default(); n];
        let mut delta = PassDelta::default();
        // Children always have larger ids than their parents (the
        // front-end reserves parents first), so decreasing order processes
        // callees before their call sites.
        for t in (0..n).rev() {
            let d = expand_task(acc, t, &mut remaps).map_err(|m| PassError {
                pass: "lower-tensors".into(),
                message: m,
            })?;
            delta = delta.merge(d);
        }
        Ok(delta)
    }
}

fn elem_ty(ty: Type) -> Type {
    Type::Scalar(ty.elem())
}

fn lanes_of(ty: Type) -> usize {
    ty.elems() as usize
}

type Lane = (NodeId, u16);

#[allow(clippy::too_many_lines)]
fn expand_task(
    acc: &mut Accelerator,
    t: usize,
    remaps: &mut [TaskRemap],
) -> Result<PassDelta, String> {
    let old_task = acc.tasks[t].clone();
    let old = &old_task.dataflow;
    let mut delta = PassDelta::default();

    // Does anything here need expansion?
    let has_tensor = old.nodes.iter().any(|n| n.ty.is_composite());
    let calls_changed = old.nodes.iter().any(|n| match n.kind {
        NodeKind::TaskCall { callee, .. } => {
            let r = &remaps[callee.0 as usize];
            r.arg_map.iter().any(|v| v.len() > 1) || r.result_map.iter().any(|v| v.len() > 1)
        }
        _ => false,
    });
    // Identity remap prepared up-front.
    let mut identity = TaskRemap::default();
    for i in 0..old_task.num_args {
        identity.arg_map.push(vec![i]);
    }
    for q in 0..old_task.num_results {
        identity.result_map.push(vec![q as u16]);
    }
    if !has_tensor && !calls_changed {
        remaps[t] = identity;
        return Ok(delta);
    }

    // New argument index assignment, in old-index order.
    let mut inputs: Vec<(NodeId, u32, Type)> = old
        .node_ids()
        .filter_map(|n| match old.node(n).kind {
            NodeKind::Input { index } => Some((n, index, old.node(n).ty)),
            _ => None,
        })
        .collect();
    inputs.sort_by_key(|(_, idx, _)| *idx);
    let mut arg_map: Vec<Vec<u32>> = vec![Vec::new(); old_task.num_args as usize];
    let mut next_arg = 0u32;
    for (_, idx, ty) in &inputs {
        let n = lanes_of(*ty) as u32;
        arg_map[*idx as usize] = (next_arg..next_arg + n).collect();
        next_arg += n;
    }

    let mut df = Dataflow::new();
    for j in &old.junctions {
        df.add_junction(Junction {
            readers: Vec::new(),
            writers: Vec::new(),
            ..j.clone()
        });
    }

    // Lanes of each old (node, out-port).
    let mut lanes: HashMap<(NodeId, u16), Vec<Lane>> = HashMap::new();
    let mut result_map: Vec<Vec<u16>> = Vec::new();
    let mut feedback_patch: Vec<(NodeId, u16, Vec<NodeId>)> = Vec::new(); // (old src, port, merge lanes)
    let mut order_map: HashMap<NodeId, Vec<NodeId>> = HashMap::new(); // old node -> new "completion" nodes

    // Helper closures can't borrow df mutably across calls ergonomically;
    // use small fns instead.
    fn in_edges_sorted(old: &Dataflow, n: NodeId) -> Vec<muir_core::dataflow::Edge> {
        let mut v: Vec<_> = old
            .edges
            .iter()
            .copied()
            .filter(|e| e.dst == n && e.kind != EdgeKind::Order)
            .collect();
        v.sort_by_key(|e| e.dst_port);
        v
    }

    let topo = forward_topo(old);
    for &oi in &topo {
        let on = NodeId(oi as u32);
        let node = old.node(on).clone();
        let ins = in_edges_sorted(old, on);
        let get_lanes =
            |lanes: &HashMap<(NodeId, u16), Vec<Lane>>, port: u16| -> Result<Vec<Lane>, String> {
                let e = ins
                    .iter()
                    .find(|e| e.dst_port == port)
                    .ok_or_else(|| format!("missing input port {port} on {on}"))?;
                lanes
                    .get(&(e.src, e.src_port))
                    .cloned()
                    .ok_or_else(|| format!("unlowered operand of {on}"))
            };
        let mut new_primary: Vec<NodeId> = Vec::new();
        match &node.kind {
            NodeKind::Input { index } => {
                let ids = &arg_map[*index as usize];
                let mut lv = Vec::new();
                for (k, &ni) in ids.iter().enumerate() {
                    let nn = df.add_node(Node::new(
                        format!("{}_{k}", node.name),
                        NodeKind::Input { index: ni },
                        elem_ty(node.ty),
                    ));
                    lv.push((nn, 0));
                    new_primary.push(nn);
                }
                if node.ty.is_composite() {
                    delta.nodes += ids.len();
                }
                lanes.insert((on, 0), lv);
            }
            NodeKind::Const(_) | NodeKind::IndVar => {
                let nn = df.add_node(node.clone());
                lanes.insert((on, 0), vec![(nn, 0)]);
                new_primary.push(nn);
            }
            NodeKind::Merge => {
                let nl = lanes_of(node.ty);
                let init = get_lanes(&lanes, 0)?;
                let fb_edge = ins.iter().find(|e| e.dst_port == 1).cloned();
                let mut lv = Vec::new();
                let mut merge_ids = Vec::new();
                for (k, &(s, sp)) in init.iter().enumerate().take(nl) {
                    let nn = df.add_node(Node::new(
                        format!("{}_{k}", node.name),
                        NodeKind::Merge,
                        elem_ty(node.ty),
                    ));
                    df.connect(s, sp, nn, 0);
                    lv.push((nn, 0));
                    merge_ids.push(nn);
                    new_primary.push(nn);
                }
                if nl > 1 {
                    delta.nodes += nl;
                    delta.edges += nl;
                }
                if let Some(fb) = fb_edge {
                    feedback_patch.push((fb.src, fb.src_port, merge_ids));
                }
                lanes.insert((on, 0), lv);
            }
            NodeKind::Compute(op) => {
                let emitted = emit_compute(&mut df, &node, *op, &ins, &lanes, &mut delta)?;
                new_primary.extend(emitted.iter().map(|(n, _)| *n));
                lanes.insert((on, 0), emitted);
            }
            NodeKind::FusedAcc { .. } | NodeKind::Fused(_) => {
                // Fusion runs after lowering in every pipeline we build;
                // a fused node is scalar by construction.
                let nn = df.add_node(node.clone());
                for e in &ins {
                    let l = lanes
                        .get(&(e.src, e.src_port))
                        .ok_or("unlowered operand of fused node")?;
                    df.connect(l[0].0, l[0].1, nn, e.dst_port);
                }
                lanes.insert((on, 0), vec![(nn, 0)]);
                new_primary.push(nn);
            }
            NodeKind::Load {
                obj,
                junction,
                predicated,
            } => {
                let nl = lanes_of(node.ty);
                let addr = get_lanes(&lanes, 0)?[0];
                let pred = if *predicated {
                    Some(get_lanes(&lanes, 1)?[0])
                } else {
                    None
                };
                let mut lv = Vec::new();
                for k in 0..nl {
                    let a = if k == 0 {
                        addr
                    } else {
                        let add = df.add_node(Node::new(
                            format!("{}_a{k}", node.name),
                            NodeKind::Compute(OpKind::Bin(BinOp::Add)),
                            Type::I64,
                        ));
                        let c = df.add_node(Node::new(
                            format!("c{k}"),
                            NodeKind::Const(muir_mir::instr::ConstVal::Int(k as i64)),
                            Type::I64,
                        ));
                        df.connect(addr.0, addr.1, add, 0);
                        df.connect(c, 0, add, 1);
                        delta.nodes += 2;
                        (add, 0)
                    };
                    let ld = df.add_node(Node::new(
                        format!("{}_{k}", node.name),
                        NodeKind::Load {
                            obj: *obj,
                            junction: *junction,
                            predicated: *predicated,
                        },
                        elem_ty(node.ty),
                    ));
                    df.connect(a.0, a.1, ld, 0);
                    if let Some((p, pp)) = pred {
                        df.connect(p, pp, ld, 1);
                    }
                    df.register_reader(*junction, ld);
                    lv.push((ld, 0));
                    new_primary.push(ld);
                }
                if nl > 1 {
                    delta.nodes += nl;
                    delta.edges += nl;
                }
                lanes.insert((on, 0), lv);
            }
            NodeKind::Store {
                obj,
                junction,
                predicated,
            } => {
                let nl = lanes_of(node.ty);
                let addr = get_lanes(&lanes, 0)?[0];
                let vals = get_lanes(&lanes, 1)?;
                let pred = if *predicated {
                    Some(get_lanes(&lanes, 2)?[0])
                } else {
                    None
                };
                if vals.len() != nl {
                    return Err(format!("store value lanes {} != {nl}", vals.len()));
                }
                for (k, &(v, vp)) in vals.iter().enumerate() {
                    let a = if k == 0 {
                        addr
                    } else {
                        let add = df.add_node(Node::new(
                            format!("{}_a{k}", node.name),
                            NodeKind::Compute(OpKind::Bin(BinOp::Add)),
                            Type::I64,
                        ));
                        let c = df.add_node(Node::new(
                            format!("c{k}"),
                            NodeKind::Const(muir_mir::instr::ConstVal::Int(k as i64)),
                            Type::I64,
                        ));
                        df.connect(addr.0, addr.1, add, 0);
                        df.connect(c, 0, add, 1);
                        delta.nodes += 2;
                        (add, 0)
                    };
                    let st = df.add_node(Node::new(
                        format!("{}_{k}", node.name),
                        NodeKind::Store {
                            obj: *obj,
                            junction: *junction,
                            predicated: *predicated,
                        },
                        elem_ty(node.ty),
                    ));
                    df.connect(a.0, a.1, st, 0);
                    df.connect(v, vp, st, 1);
                    if let Some((p, pp)) = pred {
                        df.connect(p, pp, st, 2);
                    }
                    df.register_writer(*junction, st);
                    new_primary.push(st);
                }
                if nl > 1 {
                    delta.nodes += nl;
                    delta.edges += 2 * nl;
                }
            }
            NodeKind::TaskCall {
                callee,
                predicated,
                spawn,
            } => {
                let cr = remaps[callee.0 as usize].clone();
                let new_nargs: u32 = cr.arg_map.iter().map(|v| v.len() as u32).sum();
                let nn = df.add_node(Node::new(
                    node.name.clone(),
                    NodeKind::TaskCall {
                        callee: *callee,
                        predicated: *predicated,
                        spawn: *spawn,
                    },
                    elem_ty(node.ty),
                ));
                // Arguments.
                for (old_arg, new_ids) in cr.arg_map.iter().enumerate() {
                    let src_lanes = get_lanes(&lanes, old_arg as u16)?;
                    if src_lanes.len() != new_ids.len() {
                        return Err(format!(
                            "call arg {old_arg}: {} lanes for {} slots",
                            src_lanes.len(),
                            new_ids.len()
                        ));
                    }
                    for (l, &ni) in src_lanes.iter().zip(new_ids) {
                        df.connect(l.0, l.1, nn, ni as u16);
                        delta.edges += usize::from(new_ids.len() > 1);
                    }
                }
                if *predicated {
                    let p = get_lanes(&lanes, old_arg_count(&cr) as u16)?[0];
                    df.connect(p.0, p.1, nn, new_nargs as u16);
                }
                // Results.
                for (q, ports) in cr.result_map.iter().enumerate() {
                    let lv: Vec<Lane> = ports.iter().map(|&p| (nn, p)).collect();
                    lanes.insert((on, q as u16), lv);
                }
                new_primary.push(nn);
            }
            NodeKind::Output => {
                let nn = df.add_node(Node::new("out", NodeKind::Output, elem_ty(node.ty)));
                let mut next_port = 0u16;
                for e in &ins {
                    let lv = lanes
                        .get(&(e.src, e.src_port))
                        .cloned()
                        .ok_or("unlowered result operand")?;
                    let mut ports = Vec::new();
                    for l in lv {
                        df.connect(l.0, l.1, nn, next_port);
                        ports.push(next_port);
                        next_port += 1;
                    }
                    result_map.push(ports);
                }
                new_primary.push(nn);
            }
        }
        order_map.insert(on, new_primary);
    }

    // Feedback edges, lane-wise.
    for (src, src_port, merges) in feedback_patch {
        let lv = lanes
            .get(&(src, src_port))
            .cloned()
            .ok_or("feedback source not lowered")?;
        if lv.len() != merges.len() {
            return Err("feedback lane mismatch".to_string());
        }
        for (l, m) in lv.iter().zip(&merges) {
            df.connect_feedback(l.0, l.1, *m);
        }
    }
    // Order edges, all-lanes to all-lanes.
    for e in old.edges.iter().filter(|e| e.kind == EdgeKind::Order) {
        let srcs = order_map.get(&e.src).cloned().unwrap_or_default();
        let dsts = order_map.get(&e.dst).cloned().unwrap_or_default();
        for &s in &srcs {
            for &d in &dsts {
                df.connect_order(s, d);
            }
        }
    }

    // Interface updates.
    let new_num_results: u32 = result_map.iter().map(|v| v.len() as u32).sum();
    let mut inits = Vec::new();
    for (q, ports) in result_map.iter().enumerate() {
        let old_init = old_task.loop_result_inits.get(q).copied().flatten();
        for k in 0..ports.len() {
            inits.push(match old_init {
                Some(ResultInit::Arg(a)) => {
                    arg_map[a as usize].get(k).map(|&na| ResultInit::Arg(na))
                }
                Some(ResultInit::Const(c)) => Some(ResultInit::Const(c)),
                None => None,
            });
        }
    }
    let kind = match old_task.kind.clone() {
        TaskKind::Loop { spec, serial } => {
            let remap_expr = |e: ArgExpr| match e {
                ArgExpr::Arg(a) => ArgExpr::Arg(arg_map[a as usize][0]),
                c => c,
            };
            TaskKind::Loop {
                spec: muir_core::accel::LoopSpec {
                    lo: remap_expr(spec.lo),
                    hi: remap_expr(spec.hi),
                    step: spec.step,
                },
                serial,
            }
        }
        k => k,
    };
    let task = &mut acc.tasks[t];
    task.dataflow = df;
    task.kind = kind;
    task.num_args = next_arg;
    task.num_results = new_num_results;
    task.loop_result_inits = inits;
    remaps[t] = TaskRemap {
        arg_map,
        result_map,
    };
    Ok(delta)
}

fn old_arg_count(cr: &TaskRemap) -> usize {
    cr.arg_map.len()
}

/// Lane networks for compute ops.
fn emit_compute(
    df: &mut Dataflow,
    node: &Node,
    op: OpKind,
    ins: &[muir_core::dataflow::Edge],
    lanes: &HashMap<(NodeId, u16), Vec<Lane>>,
    delta: &mut PassDelta,
) -> Result<Vec<Lane>, String> {
    let fetch = |port: u16| -> Result<Vec<Lane>, String> {
        let e = ins
            .iter()
            .find(|e| e.dst_port == port)
            .ok_or_else(|| format!("missing operand port {port}"))?;
        lanes
            .get(&(e.src, e.src_port))
            .cloned()
            .ok_or_else(|| "unlowered operand".to_string())
    };
    let is_float = node.ty.is_float();
    let (mul_op, add_op) = if is_float {
        (OpKind::Bin(BinOp::FMul), OpKind::Bin(BinOp::FAdd))
    } else {
        (OpKind::Bin(BinOp::Mul), OpKind::Bin(BinOp::Add))
    };
    let ety = elem_ty(node.ty);
    match op {
        OpKind::Tensor(TensorOp::Add, _) | OpKind::Tensor(TensorOp::Mul, _) => {
            let a = fetch(0)?;
            let b = fetch(1)?;
            let o = if matches!(op, OpKind::Tensor(TensorOp::Add, _)) {
                add_op
            } else {
                mul_op
            };
            let mut out = Vec::new();
            for k in 0..a.len() {
                let n = df.add_node(Node::new(
                    format!("{}_{k}", node.name),
                    NodeKind::Compute(o),
                    ety,
                ));
                df.connect(a[k].0, a[k].1, n, 0);
                df.connect(b[k].0, b[k].1, n, 1);
                out.push((n, 0));
            }
            delta.nodes += a.len();
            delta.edges += 2 * a.len();
            Ok(out)
        }
        OpKind::Tensor(TensorOp::Relu, _) => {
            let a = fetch(0)?;
            let mut out = Vec::new();
            for (k, &(src, sp)) in a.iter().enumerate() {
                let n = df.add_node(Node::new(
                    format!("{}_{k}", node.name),
                    NodeKind::Compute(OpKind::Un(UnOp::Relu)),
                    ety,
                ));
                df.connect(src, sp, n, 0);
                out.push((n, 0));
            }
            delta.nodes += a.len();
            delta.edges += a.len();
            Ok(out)
        }
        OpKind::Tensor(TensorOp::MatMul, shape) => {
            let a = fetch(0)?;
            let b = fetch(1)?;
            let n = shape.rows as usize;
            let mut out = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    let mut acc: Option<Lane> = None;
                    for t in 0..n {
                        let m = df.add_node(Node::new(
                            format!("{}_m{i}{j}{t}", node.name),
                            NodeKind::Compute(mul_op),
                            ety,
                        ));
                        df.connect(a[i * n + t].0, a[i * n + t].1, m, 0);
                        df.connect(b[t * n + j].0, b[t * n + j].1, m, 1);
                        delta.nodes += 1;
                        delta.edges += 2;
                        acc = Some(match acc {
                            None => (m, 0),
                            Some(prev) => {
                                let s = df.add_node(Node::new(
                                    format!("{}_s{i}{j}{t}", node.name),
                                    NodeKind::Compute(add_op),
                                    ety,
                                ));
                                df.connect(prev.0, prev.1, s, 0);
                                df.connect(m, 0, s, 1);
                                delta.nodes += 1;
                                delta.edges += 2;
                                (s, 0)
                            }
                        });
                    }
                    out.push(acc.expect("n > 0"));
                }
            }
            Ok(out)
        }
        OpKind::Tensor(TensorOp::Conv, _) => {
            let a = fetch(0)?;
            let b = fetch(1)?;
            let mut acc: Option<Lane> = None;
            for k in 0..a.len() {
                let m = df.add_node(Node::new(
                    format!("{}_m{k}", node.name),
                    NodeKind::Compute(mul_op),
                    ety,
                ));
                df.connect(a[k].0, a[k].1, m, 0);
                df.connect(b[k].0, b[k].1, m, 1);
                delta.nodes += 1;
                delta.edges += 2;
                acc = Some(match acc {
                    None => (m, 0),
                    Some(prev) => {
                        let s = df.add_node(Node::new(
                            format!("{}_s{k}", node.name),
                            NodeKind::Compute(add_op),
                            ety,
                        ));
                        df.connect(prev.0, prev.1, s, 0);
                        df.connect(m, 0, s, 1);
                        delta.nodes += 1;
                        delta.edges += 2;
                        (s, 0)
                    }
                });
            }
            Ok(vec![acc.ok_or("empty conv")?])
        }
        OpKind::Tensor(TensorOp::Reduce, _) => {
            let a = fetch(0)?;
            let mut acc: Option<Lane> = None;
            for (k, &(src, sp)) in a.iter().enumerate() {
                acc = Some(match acc {
                    None => (src, sp),
                    Some(prev) => {
                        let s = df.add_node(Node::new(
                            format!("{}_s{k}", node.name),
                            NodeKind::Compute(add_op),
                            ety,
                        ));
                        df.connect(prev.0, prev.1, s, 0);
                        df.connect(src, sp, s, 1);
                        delta.nodes += 1;
                        delta.edges += 2;
                        (s, 0)
                    }
                });
            }
            Ok(vec![acc.ok_or("empty reduce")?])
        }
        OpKind::Tensor(TensorOp::Softmax, _) => {
            let a = fetch(0)?;
            let mut exps = Vec::with_capacity(a.len());
            for (k, &(src, sp)) in a.iter().enumerate() {
                let e = df.add_node(Node::new(
                    format!("{}_e{k}", node.name),
                    NodeKind::Compute(OpKind::Un(UnOp::Exp)),
                    ety,
                ));
                df.connect(src, sp, e, 0);
                delta.nodes += 1;
                delta.edges += 1;
                exps.push((e, 0u16));
            }
            let mut sum: Option<Lane> = None;
            for (k, &(src, sp)) in exps.iter().enumerate() {
                sum = Some(match sum {
                    None => (src, sp),
                    Some(prev) => {
                        let s = df.add_node(Node::new(
                            format!("{}_s{k}", node.name),
                            NodeKind::Compute(OpKind::Bin(BinOp::FAdd)),
                            ety,
                        ));
                        df.connect(prev.0, prev.1, s, 0);
                        df.connect(src, sp, s, 1);
                        delta.nodes += 1;
                        delta.edges += 2;
                        (s, 0)
                    }
                });
            }
            let sum = sum.ok_or("empty softmax")?;
            let mut out = Vec::with_capacity(exps.len());
            for (k, &(src, sp)) in exps.iter().enumerate() {
                let d = df.add_node(Node::new(
                    format!("{}_d{k}", node.name),
                    NodeKind::Compute(OpKind::Bin(BinOp::FDiv)),
                    ety,
                ));
                df.connect(src, sp, d, 0);
                df.connect(sum.0, sum.1, d, 1);
                delta.nodes += 1;
                delta.edges += 2;
                out.push((d, 0));
            }
            Ok(out)
        }
        // Plain scalar op: copy, wiring lane 0 of each operand.
        _ => {
            let nn = df.add_node(node.clone());
            for e in ins {
                let l = lanes.get(&(e.src, e.src_port)).ok_or("unlowered operand")?;
                df.connect(l[0].0, l[0].1, nn, e.dst_port);
            }
            Ok(vec![(nn, 0)])
        }
    }
}

fn forward_topo(df: &Dataflow) -> Vec<usize> {
    let n = df.nodes.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for e in &df.edges {
        if e.kind == EdgeKind::Feedback {
            continue;
        }
        succs[e.src.0 as usize].push(e.dst.0 as usize);
        indeg[e.dst.0 as usize] += 1;
    }
    let mut work: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(x) = work.pop() {
        order.push(x);
        for &s in &succs[x] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                work.push(s);
            }
        }
    }
    for i in 0..n {
        if !order.contains(&i) {
            order.push(i);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PassManager;
    use muir_frontend::{translate, FrontendConfig};
    use muir_mir::interp::Memory;
    use muir_sim::{simulate, SimConfig};
    use muir_workloads as workloads;

    fn lower_and_check(name: &str) -> (u64, u64) {
        let w = workloads::by_name(name).expect("workload exists");
        // Both variants run on localized (type-specific) scratchpads — the
        // memory organisation of §6.3: the tensor variant's scratchpads are
        // tile-shaped, the scalar variant's are not.
        let mut acc = translate(&w.module, &FrontendConfig::default()).unwrap();
        let mut lowered = acc.clone();
        let report = PassManager::new()
            .with(LowerTensors)
            .run(&mut lowered)
            .unwrap();
        PassManager::new()
            .with(crate::passes::MemoryLocalization::default())
            .run(&mut acc)
            .unwrap();
        PassManager::new()
            .with(crate::passes::MemoryLocalization::default())
            .run(&mut lowered)
            .unwrap();
        let acc = acc;
        assert!(report.total().nodes > 0, "{name}: nothing lowered?");
        // No tensor-typed nodes remain.
        for t in &lowered.tasks {
            for n in &t.dataflow.nodes {
                assert!(
                    !n.ty.is_composite(),
                    "{name}: {} still tensor-typed",
                    n.name
                );
            }
        }
        // Functional equivalence of both variants.
        let ref_mem = w.run_reference().unwrap();
        let mut m1 = w.fresh_memory();
        let r1 = simulate(&acc, &mut m1, &[], &SimConfig::default()).unwrap();
        assert!(
            w.outputs_match(&ref_mem, &m1),
            "{name}: native tensor sim wrong"
        );
        let mut m2: Memory = w.fresh_memory();
        let r2 = simulate(&lowered, &mut m2, &[], &SimConfig::default()).unwrap();
        assert!(w.outputs_match(&ref_mem, &m2), "{name}: lowered sim wrong");
        (r1.cycles, r2.cycles)
    }

    #[test]
    fn relu_tensor_lowers_and_slows() {
        let (native, lowered) = lower_and_check("RELU[T]");
        assert!(lowered > native, "native {native} vs lowered {lowered}");
    }

    #[test]
    fn conv_tensor_lowers_and_slows() {
        let (native, lowered) = lower_and_check("CONV[T]");
        assert!(lowered > native, "native {native} vs lowered {lowered}");
    }

    #[test]
    fn reduce_softmax_lower_to_scalar_lanes() {
        use muir_mir::builder::FunctionBuilder;
        use muir_mir::instr::TensorOp;
        use muir_mir::types::{ScalarType, TensorShape};
        use muir_mir::{Module, ValueRef};

        let mut m = Module::new("rs_lower");
        let a = m.add_mem_object("a", ScalarType::F32, 8);
        let o = m.add_mem_object("o", ScalarType::F32, 8);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        let sh = TensorShape::new(1, 4);
        let t = b.load_tile(a, ValueRef::int(0), sh);
        let red = b.tensor1(TensorOp::Reduce, sh, t);
        b.store(o, ValueRef::int(0), red);
        let sm = b.tensor1(TensorOp::Softmax, sh, t);
        b.store(o, ValueRef::int(4), sm);
        b.ret(None);
        m.add_function(b.finish());
        muir_mir::verify::verify_module(&m).unwrap();

        let acc = translate(&m, &FrontendConfig::default()).unwrap();
        let mut lowered = acc.clone();
        let report = PassManager::new()
            .with(LowerTensors)
            .run(&mut lowered)
            .unwrap();
        assert!(report.total().nodes > 0, "nothing lowered?");
        for t in &lowered.tasks {
            for n in &t.dataflow.nodes {
                assert!(!n.ty.is_composite(), "{} still tensor-typed", n.name);
            }
        }
        let run = |acc: &_| {
            let mut mem = Memory::from_module(&m);
            mem.init_f32(a, &[1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0]);
            simulate(acc, &mut mem, &[], &SimConfig::default()).unwrap();
            mem.read_f32(o)
        };
        let (native, low) = (run(&acc), run(&lowered));
        assert_eq!(native[0], 10.0, "reduce wrong: {native:?}");
        let sum: f32 = native[4..8].iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "softmax wrong: {native:?}");
        for (x, y) in native.iter().zip(&low) {
            assert!((x - y).abs() < 1e-5, "native {native:?} vs lowered {low:?}");
        }
    }

    #[test]
    fn mm2_tensor_lowers_across_task_boundaries() {
        // 2MM[T] passes a tensor accumulator into its k-loop child: the
        // lane expansion must rewrite the task interface.
        let (native, lowered) = lower_and_check("2MM[T]");
        assert!(lowered > native, "native {native} vs lowered {lowered}");
    }
}
