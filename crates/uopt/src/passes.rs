//! The paper's μopt passes (§4, §6), minus op-fusion (see
//! [`crate::fusion`]) and tensor lowering (see [`crate::lower_tensors`]).

use crate::{Pass, PassDelta, PassError};
use muir_core::accel::{Accelerator, TaskId};
use muir_core::dataflow::JunctionId;
use muir_core::node::NodeKind;
use muir_core::structure::{Structure, StructureId, StructureKind};
use muir_mir::instr::MemObjId;
use muir_mir::types::TensorShape;
use std::collections::BTreeMap;

pub use crate::fusion::OpFusion;
pub use crate::lower_tensors::LowerTensors;
pub use crate::simplify::{Cse, Simplify};

/// **Pass 1 — Task-block queueing** (§4): widen the `<||>` FIFO between
/// parents and selected children so task blocks proceed at different rates.
/// Deep children (long pipelines) benefit most; `min_child_depth = 0`
/// decouples every connection.
#[derive(Debug, Clone)]
pub struct TaskQueueing {
    /// New queue depth.
    pub depth: u32,
    /// Only decouple children whose pipeline depth is at least this.
    pub min_child_depth: u32,
}

impl TaskQueueing {
    /// Decouple all connections with the given depth.
    pub fn all(depth: u32) -> TaskQueueing {
        TaskQueueing {
            depth,
            min_child_depth: 0,
        }
    }
}

impl Pass for TaskQueueing {
    fn name(&self) -> &'static str {
        "task-queueing"
    }

    fn run(&self, acc: &mut Accelerator) -> Result<PassDelta, PassError> {
        let mut delta = PassDelta::default();
        let depths: Vec<u32> = acc
            .tasks
            .iter()
            .map(|t| muir_core::stats::pipeline_depth(&t.dataflow))
            .collect();
        for c in &mut acc.task_conns {
            if depths[c.child.0 as usize] >= self.min_child_depth && c.queue_depth != self.depth {
                c.queue_depth = self.depth;
                delta.edges += 1;
            }
        }
        Ok(delta)
    }
}

/// Which tasks a spatial pass applies to.
#[derive(Debug, Clone)]
pub enum TaskFilter {
    /// Tasks invoked through Cilk-style spawn calls, plus every task nested
    /// inside them — replicating a worker block replicates its whole
    /// subtree (Figure 8 Pass 2 replicates the entire tensor block).
    Spawned,
    /// Leaf loop tasks (innermost loops): replicating their execution
    /// units lets a pipelined parent keep several invocations in flight
    /// (§3.6: "a user can vary the number of execution tiles for each task
    /// region").
    LeafLoops,
    /// Every non-root task.
    AllChildren,
    /// Tasks whose name contains the string.
    Named(String),
}

impl TaskFilter {
    fn matches(&self, acc: &Accelerator, t: TaskId) -> bool {
        match self {
            TaskFilter::Spawned => {
                // t itself spawned, or any ancestor of t spawned.
                let spawned = |x: TaskId| {
                    acc.tasks.iter().any(|task| {
                        task.dataflow.nodes.iter().any(|n| {
                            matches!(n.kind,
                                NodeKind::TaskCall { callee, spawn: true, .. } if callee == x)
                        })
                    })
                };
                let mut cur = Some(t);
                while let Some(x) = cur {
                    if spawned(x) {
                        return true;
                    }
                    cur = acc.parent(x);
                }
                false
            }
            TaskFilter::LeafLoops => acc.task(t).kind.is_loop() && acc.children(t).is_empty(),
            TaskFilter::AllChildren => t != acc.root,
            TaskFilter::Named(s) => acc.task(t).name.contains(s.as_str()),
        }
    }
}

/// **Pass 2 — Execution tiling** (§6.2): replicate a task block's execution
/// units N× ("multi-core effect"); the RTL generator takes care of the bus
/// and crossbar that route invocations to the tiles.
#[derive(Debug, Clone)]
pub struct ExecutionTiling {
    /// Number of execution units per selected task.
    pub tiles: u32,
    /// Which tasks to replicate.
    pub filter: TaskFilter,
}

impl ExecutionTiling {
    /// Tile the spawned (Cilk) task blocks.
    pub fn spawned(tiles: u32) -> ExecutionTiling {
        ExecutionTiling {
            tiles,
            filter: TaskFilter::Spawned,
        }
    }
}

impl Pass for ExecutionTiling {
    fn name(&self) -> &'static str {
        "execution-tiling"
    }

    fn run(&self, acc: &mut Accelerator) -> Result<PassDelta, PassError> {
        let mut delta = PassDelta::default();
        let targets: Vec<TaskId> = acc
            .task_ids()
            .filter(|&t| self.filter.matches(acc, t))
            .collect();
        for t in targets {
            let task = acc.task_mut(t);
            if task.tiles == self.tiles {
                continue;
            }
            task.tiles = self.tiles;
            // The issue queue must be able to feed the tiles.
            task.queue_depth = task.queue_depth.max(2 * self.tiles);
            if let Some(c) = acc.task_conns.iter_mut().find(|c| c.child == t) {
                c.queue_depth = c.queue_depth.max(self.tiles);
            }
            // Table 4's μIR accounting: one node (the task block) and the
            // crossbar/queue connections around it.
            delta.nodes += 1;
            delta.edges += 4;
        }
        Ok(delta)
    }
}

/// **Pass 3 + Algorithm 2 — Memory localization** (§4, §6.4): partition the
/// address space and direct unrelated accesses to dedicated, type-specific
/// scratchpads.
///
/// *Analysis*: group every memory node by the object (address space) it
/// accesses — `LLVMPointsto` is a field lookup because each `mir` object is
/// its own address space. *Transformation*: for each group homed on a
/// shared structure, create a per-object scratchpad (typed with the tile
/// shape when all accesses are tensor-shaped, §4 Pass 3) and reroute every
/// junction.
#[derive(Debug, Clone)]
pub struct MemoryLocalization {
    /// Objects larger than this stay on the cache (localizing a huge array
    /// into SRAM is not realisable).
    pub max_elems: u64,
}

impl Default for MemoryLocalization {
    fn default() -> Self {
        MemoryLocalization { max_elems: 8192 }
    }
}

impl Pass for MemoryLocalization {
    fn name(&self) -> &'static str {
        "memory-localization"
    }

    #[allow(clippy::too_many_lines)]
    fn run(&self, acc: &mut Accelerator) -> Result<PassDelta, PassError> {
        let mut delta = PassDelta::default();
        // Analysis: memory groups (object -> accessing (task, node) pairs),
        // plus the access shape per object.
        let mut groups: BTreeMap<MemObjId, Vec<(TaskId, muir_core::dataflow::NodeId)>> =
            BTreeMap::new();
        let mut shapes: BTreeMap<MemObjId, Option<TensorShape>> = BTreeMap::new();
        for t in acc.task_ids() {
            let df = &acc.task(t).dataflow;
            for n in df.node_ids() {
                let node = df.node(n);
                let obj = match node.kind {
                    NodeKind::Load { obj, .. } | NodeKind::Store { obj, .. } => obj,
                    _ => continue,
                };
                groups.entry(obj).or_default().push((t, n));
                let shape = match node.ty {
                    muir_core::Type::Tensor { shape, .. } => Some(shape),
                    _ => None,
                };
                shapes
                    .entry(obj)
                    .and_modify(|s| {
                        if *s != shape {
                            *s = None;
                        }
                    })
                    .or_insert(shape);
            }
        }

        for (obj, accessors) in groups {
            let Some(home) = acc.structure_for(obj) else {
                continue;
            };
            let shared = acc.structure(home).objects.len() > 1
                || matches!(acc.structure(home).kind, StructureKind::Cache { .. });
            if !shared {
                continue;
            }
            let len = acc.object_len(obj);
            if len > self.max_elems {
                continue;
            }
            // Transformation: new RAM with parameters from the group.
            let name = format!("spad_{}", obj.0);
            let mut spad = Structure::scratchpad(name, len);
            if let StructureKind::Scratchpad {
                shape,
                ports_per_bank,
                ..
            } = &mut spad.kind
            {
                *shape = shapes.get(&obj).copied().flatten();
                // A typed scratchpad supplies a whole tile per access.
                if shape.is_some() {
                    *ports_per_bank = shape.map(|s| s.elems()).unwrap_or(2);
                }
            }
            let sid = acc.add_structure(spad);
            delta.nodes += 1;
            // Re-home.
            acc.structure_mut(home).objects.retain(|o| *o != obj);
            acc.structure_mut(sid).serve(obj);
            // Reroute: per task, one junction to the new scratchpad.
            let mut task_junction: BTreeMap<TaskId, JunctionId> = BTreeMap::new();
            // §6.3: for typed scratchpads the operand network is widened to
            // transfer all tile elements at once.
            let (jr, jw) = match shapes.get(&obj).copied().flatten() {
                Some(sh) => (sh.elems(), sh.elems().div_ceil(2)),
                None => (2, 1),
            };
            for (t, n) in accessors {
                let j = if let Some(&j) = task_junction.get(&t) {
                    j
                } else {
                    let df = &mut acc.task_mut(t).dataflow;
                    let j = df.add_junction(muir_core::dataflow::Junction::new(sid, jr, jw));
                    acc.connect_mem(t, j, sid);
                    task_junction.insert(t, j);
                    delta.edges += 1; // the <==> connection
                    j
                };
                let df = &mut acc.task_mut(t).dataflow;
                // Move the node's registration.
                let old_j = match &mut df.nodes[n.0 as usize].kind {
                    NodeKind::Load { junction, .. } | NodeKind::Store { junction, .. } => {
                        let old = *junction;
                        *junction = j;
                        old
                    }
                    _ => unreachable!("accessor list only holds memory nodes"),
                };
                let is_load = matches!(df.nodes[n.0 as usize].kind, NodeKind::Load { .. });
                df.junctions[old_j.0 as usize].readers.retain(|x| *x != n);
                df.junctions[old_j.0 as usize].writers.retain(|x| *x != n);
                if is_load {
                    df.register_reader(j, n);
                } else {
                    df.register_writer(j, n);
                }
                delta.edges += 1; // op.connect(Mem) of Algorithm 2
            }
        }
        Ok(delta)
    }
}

/// **Pass 4 — Scratchpad banking** (§4, §6.4): stripe each scratchpad over
/// N banks and widen its junctions so the tensor memory system can source
/// multiple tiles per cycle.
#[derive(Debug, Clone)]
pub struct ScratchpadBanking {
    /// Bank count.
    pub banks: u32,
}

impl Pass for ScratchpadBanking {
    fn name(&self) -> &'static str {
        "scratchpad-banking"
    }

    fn run(&self, acc: &mut Accelerator) -> Result<PassDelta, PassError> {
        bank_structures(acc, self.banks, |k| {
            matches!(k, StructureKind::Scratchpad { .. })
        })
    }
}

/// **Cache banking** (§6.4): bank the L1 cache to parallelize global
/// accesses.
#[derive(Debug, Clone)]
pub struct CacheBanking {
    /// Bank count.
    pub banks: u32,
}

impl Pass for CacheBanking {
    fn name(&self) -> &'static str {
        "cache-banking"
    }

    fn run(&self, acc: &mut Accelerator) -> Result<PassDelta, PassError> {
        bank_structures(acc, self.banks, |k| {
            matches!(k, StructureKind::Cache { .. })
        })
    }
}

fn bank_structures(
    acc: &mut Accelerator,
    banks: u32,
    select: impl Fn(&StructureKind) -> bool,
) -> Result<PassDelta, PassError> {
    let mut delta = PassDelta::default();
    let mut banked: Vec<StructureId> = Vec::new();
    for s in acc.structure_ids().collect::<Vec<_>>() {
        let st = acc.structure_mut(s);
        if !select(&st.kind) {
            continue;
        }
        let changed = match &mut st.kind {
            StructureKind::Scratchpad { banks: b, .. } | StructureKind::Cache { banks: b, .. } => {
                let was = *b;
                *b = banks;
                was != banks
            }
            StructureKind::Dram { .. } => false,
        };
        if changed {
            banked.push(s);
            delta.nodes += 1;
        }
    }
    // Widen the junctions reaching banked structures: the routing network
    // must be able to feed the banks (§6.4: "µIR auto-generates the RTL
    // logic for routing loads/stores to the different memory banks").
    for t in acc.task_ids().collect::<Vec<_>>() {
        for j in 0..acc.task(t).dataflow.junctions.len() {
            let target = acc.task(t).dataflow.junctions[j].structure;
            if banked.contains(&target) {
                let jn = &mut acc.task_mut(t).dataflow.junctions[j];
                jn.read_ports = jn.read_ports.max(banks);
                jn.write_ports = jn.write_ports.max(banks.div_ceil(2));
                delta.edges += 1;
            }
        }
    }
    Ok(delta)
}

/// Convenience: `Accelerator::object_len` is not part of core; passes need
/// object sizes for localization sizing.
trait ObjectLen {
    fn object_len(&self, obj: MemObjId) -> u64;
}

impl ObjectLen for Accelerator {
    fn object_len(&self, obj: MemObjId) -> u64 {
        self.object_info
            .get(obj.0 as usize)
            .map(|(len, _)| *len)
            .unwrap_or(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PassManager;
    use muir_frontend::{translate, FrontendConfig};
    use muir_mir::builder::FunctionBuilder;
    use muir_mir::instr::ValueRef;
    use muir_mir::module::Module;
    use muir_mir::types::ScalarType;

    fn cilk_module() -> Module {
        let mut m = Module::new("t");
        let a = m.add_mem_object("a", ScalarType::I32, 64);
        let big = m.add_mem_object("big", ScalarType::F32, 4096);
        let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
        b.par_for(0, 16, 1, |b, i| {
            let v = b.load(big, i);
            let w = b.fmul(v, ValueRef::f32(2.0));
            b.store(big, i, w);
            let sq = b.mul(i, i);
            b.store(a, i, sq);
        });
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn queueing_widens_connections() {
        let m = cilk_module();
        let mut acc = translate(&m, &FrontendConfig::default()).unwrap();
        let r = PassManager::new()
            .with(TaskQueueing::all(8))
            .run(&mut acc)
            .unwrap();
        assert!(r.total().edges >= 2);
        assert!(acc.task_conns.iter().all(|c| c.queue_depth == 8));
    }

    #[test]
    fn tiling_targets_spawned_tasks() {
        let m = cilk_module();
        let mut acc = translate(&m, &FrontendConfig::default()).unwrap();
        let r = PassManager::new()
            .with(ExecutionTiling::spawned(4))
            .run(&mut acc)
            .unwrap();
        // Exactly one spawned task in this program.
        assert_eq!(r.total(), PassDelta { nodes: 1, edges: 4 });
        let tiled: Vec<u32> = acc.tasks.iter().map(|t| t.tiles).collect();
        assert_eq!(tiled.iter().filter(|&&t| t == 4).count(), 1);
        assert_eq!(acc.task(acc.root).tiles, 1, "root not tiled");
    }

    #[test]
    fn localization_splits_scratchpads() {
        let m = cilk_module();
        let mut acc = translate(&m, &FrontendConfig::default()).unwrap();
        let before = acc.structures.len();
        PassManager::new()
            .with(MemoryLocalization::default())
            .run(&mut acc)
            .unwrap();
        // `big` (cache-homed) gets its own scratchpad; `a` already owns the
        // shared scratchpad alone and stays put.
        assert_eq!(acc.structures.len(), before + 1);
        // All mem nodes now point at sole-owner scratchpads.
        for t in acc.task_ids() {
            for n in acc.task(t).dataflow.node_ids() {
                if let NodeKind::Load { obj, junction, .. }
                | NodeKind::Store { obj, junction, .. } = acc.task(t).dataflow.node(n).kind
                {
                    let sid = acc.task(t).dataflow.junctions[junction.0 as usize].structure;
                    assert_eq!(acc.structure(sid).objects, vec![obj]);
                }
            }
        }
    }

    #[test]
    fn banking_sets_banks_and_widens_junctions() {
        let m = cilk_module();
        let mut acc = translate(&m, &FrontendConfig::default()).unwrap();
        PassManager::new()
            .with(ScratchpadBanking { banks: 4 })
            .run(&mut acc)
            .unwrap();
        let spad_banks: Vec<u32> = acc
            .structures
            .iter()
            .filter_map(|s| match s.kind {
                StructureKind::Scratchpad { banks, .. } => Some(banks),
                _ => None,
            })
            .collect();
        assert!(spad_banks.iter().all(|&b| b == 4));
        // Junctions to the scratchpad widened.
        let widened = acc
            .tasks
            .iter()
            .flat_map(|t| t.dataflow.junctions.iter())
            .any(|j| j.read_ports >= 4);
        assert!(widened);
    }

    #[test]
    fn cache_banking_only_touches_caches() {
        let m = cilk_module();
        let mut acc = translate(&m, &FrontendConfig::default()).unwrap();
        PassManager::new()
            .with(CacheBanking { banks: 2 })
            .run(&mut acc)
            .unwrap();
        for s in &acc.structures {
            match s.kind {
                StructureKind::Cache { banks, .. } => assert_eq!(banks, 2),
                StructureKind::Scratchpad { banks, .. } => assert_eq!(banks, 1),
                StructureKind::Dram { .. } => {}
            }
        }
    }
}
