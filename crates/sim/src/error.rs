//! Typed simulation errors and deadlock diagnostics.
//!
//! The paper's central claim (§3.2, §6) is that μIR's latency-insensitive
//! execution model preserves behaviour under microarchitectural
//! transformation. When a μopt pass breaks that property — an undersized
//! buffer, a bad junction arbitration, a broken fusion plan — the simulator
//! is the first place the damage shows up, so every failure here carries
//! enough structured context (cycle, task, node, invocation) to localize
//! the transformation that caused it, plus a stable error code for
//! campaign-level bucketing.

use muir_core::verify::GraphError;
use std::fmt;

/// What kind of hardware fault a [`SimError::Fault`] reports.
///
/// These are *detections* — the observable symptom at the ready/valid or
/// memory interface — as opposed to [`crate::fault::FaultClass`], which
/// names the injected root causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A token arrived on an edge out of instance order (dropped or
    /// duplicated token upstream).
    TokenMisorder,
    /// An uncorrectable memory-bank ECC error on a load/store response.
    EccUncorrectable,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::TokenMisorder => write!(f, "token misorder"),
            FaultKind::EccUncorrectable => write!(f, "uncorrectable ECC error"),
        }
    }
}

/// Whether a blocked channel is waiting for space or for a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// The producer cannot push: every register/FIFO slot holds a token.
    Full,
    /// The consumer cannot pop: no (visible) token has arrived.
    Empty,
}

impl fmt::Display for ChannelState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelState::Full => write!(f, "full"),
            ChannelState::Empty => write!(f, "empty"),
        }
    }
}

/// One edge of the blocked-channel wait-for cycle: `src` is the node that
/// cannot make progress, waiting on `dst` through `edge`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEdge {
    /// Task index.
    pub task: u32,
    /// Task name.
    pub task_name: String,
    /// Edge index within the task's dataflow.
    pub edge: u32,
    /// The waiting node.
    pub src: u32,
    /// The waiting node's name.
    pub src_name: String,
    /// The node being waited on.
    pub dst: u32,
    /// The waited-on node's name.
    pub dst_name: String,
    /// Token capacity of the channel.
    pub capacity: u32,
    /// Why the channel blocks: full (no space) or empty (no token).
    pub state: ChannelState,
}

impl fmt::Display for WaitEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task {} ({}) {} (n{}) -[e{} {}, cap {}]-> {} (n{})",
            self.task,
            self.task_name,
            self.src_name,
            self.src,
            self.edge,
            self.state,
            self.capacity,
            self.dst_name,
            self.dst
        )
    }
}

/// A concrete fix for a buffer-induced deadlock: re-buffer one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferSuggestion {
    /// Task index of the edge to re-buffer.
    pub task: u32,
    /// Edge index within that task's dataflow.
    pub edge: u32,
    /// Suggested FIFO depth.
    pub depth: u32,
}

/// Occupancy snapshot of one stuck execution tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckTile {
    /// Task index.
    pub task: u32,
    /// Task name.
    pub task_name: String,
    /// Tile index within the task.
    pub tile: u32,
    /// Loop trip count of the active invocation.
    pub trip: u64,
    /// Instances admitted into the pipeline.
    pub admitted: u64,
    /// Instances retired.
    pub completed: u64,
    /// Spawned child invocations not yet finished.
    pub spawns_outstanding: u32,
}

/// Everything the watchdog learned about a stall: the wait-for cycle over
/// blocked channels (if one exists), per-tile occupancy, outstanding memory
/// traffic, and — when a full channel participates in the cycle — the
/// buffer bump that would break it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeadlockReport {
    /// The cycle of blocked channels, in wait-for order (`src` of entry
    /// *i+1* is the `dst` of entry *i*). Empty if the stall has no channel
    /// cycle (e.g. all progress is blocked on memory responses).
    pub wait_cycle: Vec<WaitEdge>,
    /// Occupancy of every still-active tile.
    pub stuck_tiles: Vec<StuckTile>,
    /// Queued-but-not-dispatched invocations per task (task index, depth).
    pub queued: Vec<(u32, usize)>,
    /// Memory requests still outstanding (a nonzero count with an empty
    /// `wait_cycle` points at a lost or timed-out memory response).
    pub mem_outstanding: u32,
    /// Nodes whose output handshake is stuck (task, node) — only populated
    /// under stuck-handshake fault injection.
    pub stuck_nodes: Vec<(u32, u32)>,
    /// Fix for a buffer-induced deadlock, if one of the cycle's channels is
    /// full: re-buffer that edge to the given depth.
    pub suggestion: Option<BufferSuggestion>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.wait_cycle.is_empty() {
            write!(f, "no blocked-channel cycle")?;
        } else {
            write!(f, "blocked-channel cycle: ")?;
            for (i, w) in self.wait_cycle.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "{w}")?;
            }
        }
        if let Some(s) = &self.suggestion {
            write!(
                f,
                "; suggestion: grow task {} edge e{} to Fifo({})",
                s.task, s.edge, s.depth
            )?;
        }
        for t in &self.stuck_tiles {
            write!(
                f,
                "; task {} ({}) tile {}: trip {} admitted {} completed {} spawns {}",
                t.task, t.task_name, t.tile, t.trip, t.admitted, t.completed, t.spawns_outstanding
            )?;
        }
        for (t, n) in &self.queued {
            write!(f, "; task {t} queue {n}")?;
        }
        if self.mem_outstanding > 0 {
            write!(f, "; {} memory requests outstanding", self.mem_outstanding)?;
        }
        for (t, n) in &self.stuck_nodes {
            write!(f, "; stuck handshake at task {t} node n{n}")?;
        }
        Ok(())
    }
}

/// Simulation failure, with structured context for diagnosis.
///
/// Every variant has a stable [`code`](SimError::code) so campaign tooling
/// can bucket outcomes without string-matching the human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The accelerator graph failed structural verification before any
    /// cycle was simulated.
    GraphRejected {
        /// The verifier's finding.
        source: GraphError,
    },
    /// No progress for longer than `SimConfig::deadlock_cycles`.
    Deadlock {
        /// Cycle at which the watchdog gave up.
        cycle: u64,
        /// Wait-for-graph diagnosis.
        report: Box<DeadlockReport>,
    },
    /// The hard cycle limit was reached before root completion.
    CycleLimitExhausted {
        /// The configured limit.
        limit: u64,
    },
    /// A hardware fault was detected at a ready/valid or memory interface.
    Fault {
        /// Cycle of detection.
        cycle: u64,
        /// Task index.
        task: u32,
        /// Task name.
        task_name: String,
        /// Node at whose interface the fault was observed.
        node: u32,
        /// Invocation uid.
        invocation: u64,
        /// Instance (loop iteration) being processed.
        instance: u64,
        /// Observed symptom.
        kind: FaultKind,
        /// Free-form detail (edge, expected/found instance, address…).
        detail: String,
    },
    /// Functional evaluation failed on a live (non-predicated-off) path:
    /// out-of-bounds access, missing argument, poison store, …
    EvalError {
        /// Cycle of the failure (0 if before execution started).
        cycle: u64,
        /// Task index, if the failure is localized to a task.
        task: Option<u32>,
        /// Task name ("" when `task` is `None`).
        task_name: String,
        /// Node index, if localized to a node.
        node: Option<u32>,
        /// Invocation uid, if an invocation was active.
        invocation: Option<u64>,
        /// What went wrong.
        detail: String,
    },
}

impl SimError {
    /// Stable machine-readable error code.
    pub fn code(&self) -> &'static str {
        match self {
            SimError::GraphRejected { .. } => "E-SIM-GRAPH",
            SimError::Deadlock { .. } => "E-SIM-DEADLOCK",
            SimError::CycleLimitExhausted { .. } => "E-SIM-LIMIT",
            SimError::Fault { .. } => "E-SIM-FAULT",
            SimError::EvalError { .. } => "E-SIM-EVAL",
        }
    }

    /// Whether retrying the same job with a larger budget could plausibly
    /// succeed.
    ///
    /// The simulator is deterministic, so almost every failure is
    /// *permanent*: a rejected graph, a deadlock, a detected fault, or an
    /// evaluation error reproduces identically on retry, and a retry
    /// policy that re-runs them only burns budget. The one
    /// budget-shaped failure is [`SimError::CycleLimitExhausted`] — the
    /// run was cut off by a configured ceiling (a service deadline, a
    /// conservative `max_cycles`), not by the program, so a retry with a
    /// doubled budget can complete. Service retry loops key off this
    /// split; `StoreError::is_transient` is its storage-layer mirror.
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::CycleLimitExhausted { .. })
    }

    /// An [`SimError::EvalError`] with no site attached yet; the engine
    /// fills in cycle/task/node via [`SimError::at_site`].
    pub(crate) fn eval(detail: impl Into<String>) -> SimError {
        SimError::EvalError {
            cycle: 0,
            task: None,
            task_name: String::new(),
            node: None,
            invocation: None,
            detail: detail.into(),
        }
    }

    /// Attach execution-site context to a context-free `EvalError`;
    /// other variants (already fully located) pass through unchanged.
    pub(crate) fn at_site(
        self,
        cycle: u64,
        task: u32,
        task_name: &str,
        node: Option<u32>,
        invocation: Option<u64>,
    ) -> SimError {
        match self {
            SimError::EvalError {
                task: None, detail, ..
            } => SimError::EvalError {
                cycle,
                task: Some(task),
                task_name: task_name.to_string(),
                node,
                invocation,
                detail,
            },
            other => other,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            SimError::GraphRejected { source } => write!(f, "graph rejected: {source}"),
            SimError::Deadlock { cycle, report } => {
                write!(f, "deadlock at cycle {cycle}: {report}")
            }
            SimError::CycleLimitExhausted { limit } => {
                write!(f, "cycle limit {limit} exhausted")
            }
            SimError::Fault {
                cycle,
                task,
                task_name,
                node,
                invocation,
                instance,
                kind,
                detail,
            } => write!(
                f,
                "{kind} at cycle {cycle}, task {task} ({task_name}) node n{node} \
                 invocation {invocation} instance {instance}: {detail}"
            ),
            SimError::EvalError {
                cycle,
                task,
                task_name,
                node,
                invocation,
                detail,
            } => {
                write!(f, "evaluation error at cycle {cycle}")?;
                if let Some(t) = task {
                    write!(f, ", task {t} ({task_name})")?;
                }
                if let Some(n) = node {
                    write!(f, " node n{n}")?;
                }
                if let Some(u) = invocation {
                    write!(f, " invocation {u}")?;
                }
                write!(f, ": {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::GraphRejected { source } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let errs = [
            SimError::GraphRejected {
                source: GraphError {
                    at: "t".into(),
                    message: "m".into(),
                },
            },
            SimError::Deadlock {
                cycle: 1,
                report: Box::new(DeadlockReport::default()),
            },
            SimError::CycleLimitExhausted { limit: 10 },
            SimError::Fault {
                cycle: 1,
                task: 0,
                task_name: "main".into(),
                node: 2,
                invocation: 1,
                instance: 0,
                kind: FaultKind::TokenMisorder,
                detail: "d".into(),
            },
            SimError::eval("boom"),
        ];
        let codes: Vec<&str> = errs.iter().map(SimError::code).collect();
        let mut uniq = codes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), codes.len(), "codes must be distinct: {codes:?}");
        for c in codes {
            assert!(c.starts_with("E-SIM-"), "{c}");
        }
    }

    #[test]
    fn only_cycle_limit_is_transient() {
        assert!(SimError::CycleLimitExhausted { limit: 10 }.is_transient());
        let permanent = [
            SimError::GraphRejected {
                source: GraphError {
                    at: "t".into(),
                    message: "m".into(),
                },
            },
            SimError::Deadlock {
                cycle: 1,
                report: Box::new(DeadlockReport::default()),
            },
            SimError::Fault {
                cycle: 1,
                task: 0,
                task_name: "main".into(),
                node: 2,
                invocation: 1,
                instance: 0,
                kind: FaultKind::TokenMisorder,
                detail: "d".into(),
            },
            SimError::eval("boom"),
        ];
        for e in permanent {
            assert!(!e.is_transient(), "{e}");
        }
    }

    #[test]
    fn at_site_fills_eval_context_only() {
        let e = SimError::eval("missing token").at_site(42, 1, "loop", Some(3), Some(7));
        match &e {
            SimError::EvalError {
                cycle,
                task,
                node,
                invocation,
                ..
            } => {
                assert_eq!(*cycle, 42);
                assert_eq!(*task, Some(1));
                assert_eq!(*node, Some(3));
                assert_eq!(*invocation, Some(7));
            }
            other => panic!("unexpected {other:?}"),
        }
        let d = SimError::CycleLimitExhausted { limit: 5 }.at_site(1, 0, "x", None, None);
        assert_eq!(d, SimError::CycleLimitExhausted { limit: 5 });
    }

    #[test]
    fn display_carries_code_and_context() {
        let e = SimError::eval("poison stored").at_site(9, 2, "body", Some(4), Some(11));
        let s = e.to_string();
        assert!(s.contains("E-SIM-EVAL"), "{s}");
        assert!(s.contains("cycle 9"), "{s}");
        assert!(s.contains("task 2 (body)"), "{s}");
        assert!(s.contains("n4"), "{s}");
    }

    #[test]
    fn deadlock_report_renders_cycle_and_suggestion() {
        let report = DeadlockReport {
            wait_cycle: vec![WaitEdge {
                task: 1,
                task_name: "loop".into(),
                edge: 3,
                src: 2,
                src_name: "mul".into(),
                dst: 4,
                dst_name: "store".into(),
                capacity: 0,
                state: ChannelState::Full,
            }],
            suggestion: Some(BufferSuggestion {
                task: 1,
                edge: 3,
                depth: 1,
            }),
            ..DeadlockReport::default()
        };
        let s = SimError::Deadlock {
            cycle: 100,
            report: Box::new(report),
        }
        .to_string();
        assert!(s.contains("blocked-channel cycle"), "{s}");
        assert!(s.contains("e3 full"), "{s}");
        assert!(s.contains("Fifo(1)"), "{s}");
    }
}
