//! Cycle-accurate tracing, stall attribution, and bottleneck reporting.
//!
//! The paper's workflow (§5–§6) is *measure → pick the μopt transform →
//! re-measure*. Aggregate `SimStats` answer "how slow"; this module answers
//! "why": a zero-cost-when-off observer records per-cycle events (node
//! firings, token enqueues/dequeues, typed stalls, memory transactions)
//! into a bounded ring buffer, aggregates them into a [`SimProfile`]
//! (per-node utilization, per-channel occupancy histograms, per-structure
//! wait cycles), and ranks the critical resources in a
//! [`BottleneckReport`] that names the matching μopt transform.
//!
//! Two artifact exporters ride on the ring buffer:
//!
//! * [`Trace::to_chrome_json`] — a Chrome/Perfetto `trace.json` with one
//!   track per functional unit and per memory bank (1 cycle = 1 µs on the
//!   viewer's axis);
//! * [`Trace::to_vcd`] — a VCD waveform of channel occupancy/valid lines
//!   and per-node stall codes, loadable in GTKWave.
//!
//! Observation never perturbs timing: the observer only *reads* engine
//! state, so enabling tracing changes simulated cycle counts by exactly 0
//! (a property the test-suite pins down).

use crate::memory::StructStats;
use muir_core::accel::Accelerator;
use muir_core::rng::SplitMix64;
use muir_core::structure::StructureKind;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Why a node that has work could not fire this cycle.
///
/// The taxonomy mirrors the latency-insensitive protocol: a node fires when
/// every input channel presents a token, every output channel has space,
/// and its shared resources (databox entries, junction ports) grant it a
/// slot. Each failed condition is one stall class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// An input channel holds no visible token (starved by the producer).
    InputEmpty,
    /// An output channel (or downstream task queue) has no space
    /// (backpressured by the consumer).
    OutputFull,
    /// The node's databox is full: every outstanding-access entry is
    /// waiting on the memory system.
    MemoryWait,
    /// The junction arbitrated its read/write ports to other memory nodes
    /// this cycle.
    ArbitrationLoss,
    /// The output handshake is held by an injected fault: valid never
    /// asserts again.
    FaultHold,
}

impl StallReason {
    /// All reasons, in stable report order.
    pub const ALL: [StallReason; 5] = [
        StallReason::InputEmpty,
        StallReason::OutputFull,
        StallReason::MemoryWait,
        StallReason::ArbitrationLoss,
        StallReason::FaultHold,
    ];

    /// Stable short name (used in reports, traces, and waveforms).
    pub fn name(self) -> &'static str {
        match self {
            StallReason::InputEmpty => "input-empty",
            StallReason::OutputFull => "output-full",
            StallReason::MemoryWait => "memory-wait",
            StallReason::ArbitrationLoss => "arbitration-loss",
            StallReason::FaultHold => "fault-hold",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            StallReason::InputEmpty => 0,
            StallReason::OutputFull => 1,
            StallReason::MemoryWait => 2,
            StallReason::ArbitrationLoss => 3,
            StallReason::FaultHold => 4,
        }
    }
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tracing parameters (part of `SimConfig`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. When off (the default), the engine carries a single
    /// `Option` check per blocked node and nothing else.
    pub enabled: bool,
    /// Ring-buffer bound in events. When the run produces more, the oldest
    /// events are dropped (and counted) — aggregation counters are exact
    /// regardless.
    pub capacity: usize,
    /// Sampling rate for the high-volume token enqueue/dequeue events in
    /// the ring buffer, in parts per million (1_000_000 = keep all).
    /// Sampling only thins the event stream; profile counters stay exact.
    pub sample_ppm: u32,
    /// Seed of the sampling stream (deterministic run-to-run).
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 1 << 16,
            sample_ppm: 1_000_000,
            seed: 0,
        }
    }
}

impl TraceConfig {
    /// An enabled config with default bounds.
    pub fn on() -> TraceConfig {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }
}

/// One recorded event. All indices are engine indices (task, node, edge,
/// structure); names live in [`TraceMeta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node fired (started one instance).
    Fire {
        cycle: u64,
        task: u32,
        tile: u32,
        node: u32,
        instance: u64,
    },
    /// A token was enqueued on an edge; `occ` is the occupancy after.
    Enq {
        cycle: u64,
        task: u32,
        edge: u32,
        occ: u32,
    },
    /// A token was dequeued from an edge; `occ` is the occupancy after.
    Deq {
        cycle: u64,
        task: u32,
        edge: u32,
        occ: u32,
    },
    /// A node with work could not fire.
    Stall {
        cycle: u64,
        task: u32,
        tile: u32,
        node: u32,
        reason: StallReason,
        /// The blocking edge, for channel-shaped reasons.
        edge: Option<u32>,
        /// The blocking structure, for memory-shaped reasons.
        structure: Option<u32>,
    },
    /// A memory request entered a structure.
    MemReq {
        cycle: u64,
        structure: u32,
        id: u64,
        bank: u32,
        elems: u32,
        is_write: bool,
    },
    /// A memory request's response was delivered.
    MemResp { cycle: u64, structure: u32, id: u64 },
}

impl TraceEvent {
    fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Fire { cycle, .. }
            | TraceEvent::Enq { cycle, .. }
            | TraceEvent::Deq { cycle, .. }
            | TraceEvent::Stall { cycle, .. }
            | TraceEvent::MemReq { cycle, .. }
            | TraceEvent::MemResp { cycle, .. } => cycle,
        }
    }
}

/// Name/topology tables captured at elaboration so traces are
/// self-describing (exporters never need the `Accelerator` back).
#[derive(Debug, Clone, Default)]
pub struct TraceMeta {
    /// Task names by index.
    pub task_names: Vec<String>,
    /// Node names per task.
    pub node_names: Vec<Vec<String>>,
    /// Node pipeline latencies per task (for track durations).
    pub node_latency: Vec<Vec<u32>>,
    /// Edge endpoints `(src, dst)` per task.
    pub edge_ends: Vec<Vec<(u32, u32)>>,
    /// Edge token capacities per task (elastic depth for handshake edges).
    pub edge_caps: Vec<Vec<u32>>,
    /// Structure names.
    pub struct_names: Vec<String>,
    /// Structure kind names (`scratchpad` / `cache` / `dram`).
    pub struct_kinds: Vec<String>,
}

impl TraceMeta {
    pub(crate) fn capture(acc: &Accelerator, cfg: &crate::SimConfig) -> TraceMeta {
        let mut m = TraceMeta::default();
        for t in &acc.tasks {
            m.task_names.push(t.name.clone());
            m.node_names
                .push(t.dataflow.nodes.iter().map(|n| n.name.clone()).collect());
            m.node_latency.push(
                t.dataflow
                    .nodes
                    .iter()
                    .map(|n| muir_core::hw::node_timing(&n.kind, n.ty, cfg.period_ns).latency)
                    .collect(),
            );
            m.edge_ends.push(
                t.dataflow
                    .edges
                    .iter()
                    .map(|e| (e.src.0, e.dst.0))
                    .collect(),
            );
            m.edge_caps.push(
                t.dataflow
                    .edges
                    .iter()
                    .map(|e| match e.buffering {
                        muir_core::dataflow::Buffering::Handshake => cfg.elastic_depth,
                        muir_core::dataflow::Buffering::Fifo(d) => d,
                    })
                    .collect(),
            );
        }
        for s in &acc.structures {
            m.struct_names.push(s.name.clone());
            m.struct_kinds.push(
                match s.kind {
                    StructureKind::Scratchpad { .. } => "scratchpad",
                    StructureKind::Cache { .. } => "cache",
                    StructureKind::Dram { .. } => "dram",
                }
                .to_string(),
            );
        }
        m
    }

    /// `"task/node"` label.
    fn node_label(&self, task: u32, node: u32) -> String {
        format!(
            "{}/{}",
            self.task_names[task as usize], self.node_names[task as usize][node as usize]
        )
    }

    /// `"task.eN src->dst"` label.
    fn edge_label(&self, task: u32, edge: u32) -> String {
        let (s, d) = self.edge_ends[task as usize][edge as usize];
        format!(
            "{}.e{} {}->{}",
            self.task_names[task as usize],
            edge,
            self.node_names[task as usize][s as usize],
            self.node_names[task as usize][d as usize]
        )
    }
}

/// The recorded event stream plus its metadata — the exporters' input.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Name/topology tables.
    pub meta: TraceMeta,
    /// Events in cycle order (oldest first; the ring may have dropped the
    /// very beginning of long runs — see `dropped`).
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring buffer (0 when `capacity` sufficed).
    pub dropped: u64,
}

/// Occupancy histogram buckets: 0, 1, …, 7, and 8+ tokens.
pub const OCC_BUCKETS: usize = 9;

/// Per-node profile entry.
#[derive(Debug, Clone, Default)]
pub struct NodeProfile {
    /// Task index.
    pub task: u32,
    /// Node index within the task.
    pub node: u32,
    /// `"task/node"` display name.
    pub name: String,
    /// Instances fired.
    pub fires: u64,
    /// Fraction of all cycles in which the node started an instance.
    pub utilization: f64,
    /// Stall cycles by [`StallReason`] (indexed via `StallReason::index`).
    pub stalls: [u64; 5],
}

impl NodeProfile {
    /// Total stall cycles across reasons.
    pub fn stall_cycles(&self) -> u64 {
        self.stalls.iter().sum()
    }
}

/// Per-channel (dataflow edge) profile entry.
#[derive(Debug, Clone, Default)]
pub struct ChannelProfile {
    /// Task index.
    pub task: u32,
    /// Edge index within the task.
    pub edge: u32,
    /// `"task.eN src->dst"` display name.
    pub name: String,
    /// Token capacity.
    pub capacity: u32,
    /// Time-weighted occupancy histogram: `occ_cycles[b]` cycles were spent
    /// at occupancy `b` (last bucket = 8 or more).
    pub occ_cycles: [u64; OCC_BUCKETS],
    /// Producer-side stall cycles attributed to this channel being full.
    pub full_stalls: u64,
    /// Consumer-side stall cycles attributed to this channel being empty.
    pub empty_stalls: u64,
}

/// Per-structure profile entry.
#[derive(Debug, Clone, Default)]
pub struct StructProfile {
    /// Structure index.
    pub structure: u32,
    /// Structure name.
    pub name: String,
    /// Kind name (`scratchpad` / `cache` / `dram`).
    pub kind: String,
    /// Node stall cycles attributed to this structure's databox backlog.
    pub mem_wait_stalls: u64,
    /// Node stall cycles lost to junction arbitration toward it.
    pub arb_stalls: u64,
    /// Bank/port contention cycles inside the structure (from `StructStats`).
    pub conflict_stalls: u64,
    /// Cache hits (caches only).
    pub hits: u64,
    /// Cache misses (caches only).
    pub misses: u64,
}

impl StructProfile {
    /// Total stall pressure this structure exerts.
    pub fn stall_cycles(&self) -> u64 {
        self.mem_wait_stalls + self.arb_stalls + self.conflict_stalls
    }

    /// Miss rate over `hits + misses`, 0 when the structure saw no
    /// cacheable traffic.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Aggregated observability counters for one run. Exact (never sampled).
#[derive(Debug, Clone, Default)]
pub struct SimProfile {
    /// Total cycles of the run (denominator for utilizations).
    pub cycles: u64,
    /// Per-node entries, engine order.
    pub nodes: Vec<NodeProfile>,
    /// Per-channel entries, engine order.
    pub channels: Vec<ChannelProfile>,
    /// Per-structure entries, engine order.
    pub structs: Vec<StructProfile>,
    /// Ring-buffer events kept / dropped.
    pub events_recorded: u64,
    /// Events evicted from the bounded ring.
    pub events_dropped: u64,
}

impl SimProfile {
    /// Total node stall cycles across all reasons.
    pub fn total_stall_cycles(&self) -> u64 {
        self.nodes.iter().map(NodeProfile::stall_cycles).sum()
    }

    /// Stall cycles of one reason summed across nodes.
    pub fn stalls_by_reason(&self, reason: StallReason) -> u64 {
        self.nodes.iter().map(|n| n.stalls[reason.index()]).sum()
    }

    /// Rank the critical resources and suggest the matching μopt transform.
    pub fn bottlenecks(&self, k: usize) -> BottleneckReport {
        let mut entries: Vec<Bottleneck> = Vec::new();
        for s in &self.structs {
            let stall = s.stall_cycles();
            if stall == 0 {
                continue;
            }
            let suggestion = match s.kind.as_str() {
                "scratchpad" => {
                    "ScratchpadBanking (more banks/ports) or wider tile rows".to_string()
                }
                "cache" => format!(
                    "CacheBanking (miss rate {:.1}%{})",
                    100.0 * s.miss_rate(),
                    if s.miss_rate() > 0.2 {
                        "; high — also consider MemoryLocalization"
                    } else {
                        ""
                    }
                ),
                _ => "MemoryLocalization (home hot objects in scratchpads)".to_string(),
            };
            entries.push(Bottleneck {
                kind: BottleneckKind::Structure,
                name: format!("{} ({})", s.name, s.kind),
                stall_cycles: stall,
                share: 0.0,
                suggestion,
            });
        }
        for c in &self.channels {
            if c.full_stalls == 0 {
                continue;
            }
            entries.push(Bottleneck {
                kind: BottleneckKind::Channel,
                name: c.name.clone(),
                stall_cycles: c.full_stalls,
                share: 0.0,
                suggestion: format!(
                    "rebuffer the edge (Buffering::Fifo({})) or TaskQueueing downstream",
                    (c.capacity.max(1)) * 2
                ),
            });
        }
        entries.sort_by(|a, b| {
            b.stall_cycles
                .cmp(&a.stall_cycles)
                .then(a.name.cmp(&b.name))
        });
        let total: u64 = entries.iter().map(|e| e.stall_cycles).sum();
        for e in &mut entries {
            e.share = if total == 0 {
                0.0
            } else {
                e.stall_cycles as f64 / total as f64
            };
        }
        entries.truncate(k);
        BottleneckReport {
            cycles: self.cycles,
            total_stall_cycles: total,
            entries,
        }
    }

    /// Human-readable multi-section profile dump.
    pub fn render(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(out, "profile: {} cycles", self.cycles);
        let _ = writeln!(
            out,
            "  stalls by reason: {}",
            StallReason::ALL
                .iter()
                .map(|r| format!("{}={}", r.name(), self.stalls_by_reason(*r)))
                .collect::<Vec<_>>()
                .join(" ")
        );
        let _ = writeln!(out, "  -- busiest nodes (fires, util, stalls) --");
        let mut nodes: Vec<&NodeProfile> = self.nodes.iter().filter(|n| n.fires > 0).collect();
        nodes.sort_by(|a, b| b.fires.cmp(&a.fires).then(a.name.cmp(&b.name)));
        for n in nodes.iter().take(10) {
            let _ = writeln!(
                out,
                "  {:<32} fires {:>8}  util {:>5.1}%  stalled {:>8}",
                n.name,
                n.fires,
                100.0 * n.utilization,
                n.stall_cycles()
            );
        }
        let _ = writeln!(out, "  -- hottest channels (occupancy, stalls) --");
        let mut chans: Vec<&ChannelProfile> = self
            .channels
            .iter()
            .filter(|c| c.full_stalls + c.empty_stalls > 0)
            .collect();
        chans.sort_by(|a, b| {
            (b.full_stalls + b.empty_stalls)
                .cmp(&(a.full_stalls + a.empty_stalls))
                .then(a.name.cmp(&b.name))
        });
        for c in chans.iter().take(10) {
            let _ = writeln!(
                out,
                "  {:<32} cap {:>3}  full {:>8}  empty {:>8}  occ {}",
                c.name,
                c.capacity,
                c.full_stalls,
                c.empty_stalls,
                render_hist(&c.occ_cycles)
            );
        }
        let _ = writeln!(out, "  -- memory structures --");
        for s in &self.structs {
            let _ = writeln!(
                out,
                "  {:<32} wait {:>8}  arb {:>6}  conflicts {:>8}  miss {:>5.1}%",
                format!("{} ({})", s.name, s.kind),
                s.mem_wait_stalls,
                s.arb_stalls,
                s.conflict_stalls,
                100.0 * s.miss_rate()
            );
        }
        if self.events_dropped > 0 {
            let _ = writeln!(
                out,
                "  (ring buffer kept {} events, dropped the oldest {})",
                self.events_recorded, self.events_dropped
            );
        }
        out
    }
}

fn render_hist(h: &[u64; OCC_BUCKETS]) -> String {
    let max = h.iter().copied().max().unwrap_or(0).max(1);
    const GLYPHS: [char; 5] = ['.', '_', 'o', 'O', '#'];
    h.iter()
        .map(|&v| {
            if v == 0 {
                ' '
            } else {
                GLYPHS[((v * 4).div_ceil(max) as usize).min(4)]
            }
        })
        .collect::<String>()
}

/// What a bottleneck entry names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BottleneckKind {
    /// A hardware structure (scratchpad, cache, DRAM channel).
    Structure,
    /// A ready/valid channel (dataflow edge).
    Channel,
}

impl fmt::Display for BottleneckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BottleneckKind::Structure => write!(f, "structure"),
            BottleneckKind::Channel => write!(f, "channel"),
        }
    }
}

/// One ranked critical resource.
#[derive(Debug, Clone)]
pub struct Bottleneck {
    /// Resource class.
    pub kind: BottleneckKind,
    /// Display name.
    pub name: String,
    /// Stall cycles attributed to the resource.
    pub stall_cycles: u64,
    /// Fraction of all attributed stall cycles.
    pub share: f64,
    /// The μopt transform that targets this resource.
    pub suggestion: String,
}

/// Top-k critical resources by stall pressure.
#[derive(Debug, Clone, Default)]
pub struct BottleneckReport {
    /// Run length (cycles).
    pub cycles: u64,
    /// All attributed stall cycles (the ranking's denominator).
    pub total_stall_cycles: u64,
    /// Ranked entries, worst first.
    pub entries: Vec<Bottleneck>,
}

impl fmt::Display for BottleneckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bottleneck report ({} cycles, {} attributed stall cycles):",
            self.cycles, self.total_stall_cycles
        )?;
        if self.entries.is_empty() {
            return writeln!(f, "  no stalls recorded — the graph runs unthrottled");
        }
        for (i, e) in self.entries.iter().enumerate() {
            writeln!(
                f,
                "  #{} {:<9} {:<36} {:>9} stall-cycles ({:>5.1}%)  => {}",
                i + 1,
                e.kind.to_string(),
                e.name,
                e.stall_cycles,
                100.0 * e.share,
                e.suggestion
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Observer: the engine-side recorder
// ---------------------------------------------------------------------------

/// Per-run observer owned by the engine (boxed behind an `Option` so the
/// traced-off hot loop pays one pointer test). All methods only *read*
/// engine-provided facts; nothing feeds back into simulation state.
#[derive(Debug)]
pub(crate) struct Observer {
    capacity: usize,
    sample_ppm: u32,
    rng: SplitMix64,
    meta: TraceMeta,
    ring: VecDeque<TraceEvent>,
    dropped: u64,
    // Exact aggregation counters (never sampled).
    node_fires: Vec<Vec<u64>>,
    node_stalls: Vec<Vec<[u64; 5]>>,
    edge_full: Vec<Vec<u64>>,
    edge_empty: Vec<Vec<u64>>,
    edge_occ_hist: Vec<Vec<[u64; OCC_BUCKETS]>>,
    /// Per-edge `(last change cycle, occupancy since)` for time-weighting.
    edge_occ_state: Vec<Vec<(u64, u32)>>,
    struct_wait: Vec<u64>,
    struct_arb: Vec<u64>,
}

impl Observer {
    pub(crate) fn new(acc: &Accelerator, cfg: &crate::SimConfig) -> Observer {
        let meta = TraceMeta::capture(acc, cfg);
        let node_fires: Vec<Vec<u64>> = meta.node_names.iter().map(|v| vec![0; v.len()]).collect();
        let node_stalls = meta
            .node_names
            .iter()
            .map(|v| vec![[0u64; 5]; v.len()])
            .collect();
        let edge_full: Vec<Vec<u64>> = meta.edge_ends.iter().map(|v| vec![0; v.len()]).collect();
        let edge_empty = edge_full.clone();
        let edge_occ_hist = meta
            .edge_ends
            .iter()
            .map(|v| vec![[0u64; OCC_BUCKETS]; v.len()])
            .collect();
        let edge_occ_state = meta
            .edge_ends
            .iter()
            .map(|v| vec![(0u64, 0u32); v.len()])
            .collect();
        let nstructs = meta.struct_names.len();
        Observer {
            capacity: cfg.trace.capacity.max(1),
            sample_ppm: cfg.trace.sample_ppm,
            rng: SplitMix64::salted(cfg.trace.seed, 0x0b5e_0001),
            meta,
            ring: VecDeque::new(),
            dropped: 0,
            node_fires,
            node_stalls,
            edge_full,
            edge_empty,
            edge_occ_hist,
            edge_occ_state,
            struct_wait: vec![0; nstructs],
            struct_arb: vec![0; nstructs],
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// A node started one instance.
    pub(crate) fn fire(&mut self, cycle: u64, site: (usize, usize, usize), instance: u64) {
        let (ti, tk, node) = site;
        self.node_fires[ti][node] += 1;
        self.push(TraceEvent::Fire {
            cycle,
            task: ti as u32,
            tile: tk as u32,
            node: node as u32,
            instance,
        });
    }

    /// A node with work could not fire; attribute the cycle.
    pub(crate) fn stall(
        &mut self,
        cycle: u64,
        site: (usize, usize, usize),
        reason: StallReason,
        edge: Option<usize>,
        structure: Option<usize>,
    ) {
        let (ti, tk, node) = site;
        self.node_stalls[ti][node][reason.index()] += 1;
        if let Some(ei) = edge {
            match reason {
                StallReason::OutputFull => self.edge_full[ti][ei] += 1,
                StallReason::InputEmpty => self.edge_empty[ti][ei] += 1,
                _ => {}
            }
        }
        if let Some(si) = structure {
            match reason {
                StallReason::MemoryWait => self.struct_wait[si] += 1,
                StallReason::ArbitrationLoss => self.struct_arb[si] += 1,
                _ => {}
            }
        }
        self.push(TraceEvent::Stall {
            cycle,
            task: ti as u32,
            tile: tk as u32,
            node: node as u32,
            reason,
            edge: edge.map(|e| e as u32),
            structure: structure.map(|s| s as u32),
        });
    }

    /// A token count on `(task, edge)` changed to `occ`.
    pub(crate) fn edge_delta(&mut self, cycle: u64, ti: usize, ei: usize, occ: u32, enq: bool) {
        let (last, prev) = self.edge_occ_state[ti][ei];
        let bucket = (prev as usize).min(OCC_BUCKETS - 1);
        self.edge_occ_hist[ti][ei][bucket] += cycle.saturating_sub(last);
        self.edge_occ_state[ti][ei] = (cycle, occ);
        if self.sample_ppm >= 1_000_000 || self.rng.chance_ppm(self.sample_ppm) {
            let ev = if enq {
                TraceEvent::Enq {
                    cycle,
                    task: ti as u32,
                    edge: ei as u32,
                    occ,
                }
            } else {
                TraceEvent::Deq {
                    cycle,
                    task: ti as u32,
                    edge: ei as u32,
                    occ,
                }
            };
            self.push(ev);
        }
    }

    /// A memory request entered structure `si`.
    pub(crate) fn mem_req(
        &mut self,
        cycle: u64,
        si: usize,
        id: u64,
        bank: u32,
        elems: u32,
        is_write: bool,
    ) {
        self.push(TraceEvent::MemReq {
            cycle,
            structure: si as u32,
            id,
            bank,
            elems,
            is_write,
        });
    }

    /// A memory response was delivered for request `id`.
    pub(crate) fn mem_resp(&mut self, cycle: u64, si: usize, id: u64) {
        self.push(TraceEvent::MemResp {
            cycle,
            structure: si as u32,
            id,
        });
    }

    /// Close the books and build the profile + trace artifacts.
    pub(crate) fn finish(
        mut self,
        cycles: u64,
        struct_stats: &[StructStats],
    ) -> (SimProfile, Trace) {
        // Flush the occupancy intervals still open at the end of the run.
        for ti in 0..self.edge_occ_state.len() {
            for ei in 0..self.edge_occ_state[ti].len() {
                let (last, occ) = self.edge_occ_state[ti][ei];
                let bucket = (occ as usize).min(OCC_BUCKETS - 1);
                self.edge_occ_hist[ti][ei][bucket] += cycles.saturating_sub(last);
            }
        }
        let mut profile = SimProfile {
            cycles,
            events_recorded: self.ring.len() as u64,
            events_dropped: self.dropped,
            ..SimProfile::default()
        };
        for (ti, fires) in self.node_fires.iter().enumerate() {
            for (ni, &f) in fires.iter().enumerate() {
                let stalls = self.node_stalls[ti][ni];
                if f == 0 && stalls.iter().all(|&s| s == 0) {
                    continue;
                }
                profile.nodes.push(NodeProfile {
                    task: ti as u32,
                    node: ni as u32,
                    name: self.meta.node_label(ti as u32, ni as u32),
                    fires: f,
                    utilization: if cycles == 0 {
                        0.0
                    } else {
                        f as f64 / cycles as f64
                    },
                    stalls,
                });
            }
        }
        for (ti, ends) in self.meta.edge_ends.iter().enumerate() {
            for ei in 0..ends.len() {
                let hist = self.edge_occ_hist[ti][ei];
                let full = self.edge_full[ti][ei];
                let empty = self.edge_empty[ti][ei];
                // Skip channels that never carried or blocked anything.
                if full == 0 && empty == 0 && hist[1..].iter().all(|&v| v == 0) {
                    continue;
                }
                profile.channels.push(ChannelProfile {
                    task: ti as u32,
                    edge: ei as u32,
                    name: self.meta.edge_label(ti as u32, ei as u32),
                    capacity: self.meta.edge_caps[ti][ei],
                    occ_cycles: hist,
                    full_stalls: full,
                    empty_stalls: empty,
                });
            }
        }
        for (si, name) in self.meta.struct_names.iter().enumerate() {
            let ss = struct_stats.get(si).copied().unwrap_or_default();
            profile.structs.push(StructProfile {
                structure: si as u32,
                name: name.clone(),
                kind: self.meta.struct_kinds[si].clone(),
                mem_wait_stalls: self.struct_wait[si],
                arb_stalls: self.struct_arb[si],
                conflict_stalls: ss.conflict_stalls,
                hits: ss.hits,
                misses: ss.misses,
            });
        }
        let trace = Trace {
            meta: self.meta,
            events: self.ring.into_iter().collect(),
            dropped: self.dropped,
        };
        (profile, trace)
    }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Escape a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Process id offset used for memory-structure tracks in the Chrome trace
/// (task tracks use the plain task index).
pub const MEM_PID_BASE: u32 = 1000;

impl Trace {
    /// Export as Chrome/Perfetto `trace.json` (JSON object format).
    ///
    /// Tracks: one process per task with one thread per functional unit
    /// (firings as complete events, stalls as 1-cycle events named by
    /// reason); one process per memory structure with one thread per bank
    /// (request lifetimes); channel occupancies as counter tracks.
    /// Timebase: 1 cycle = 1 µs on the viewer's axis.
    pub fn to_chrome_json(&self) -> String {
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"generator\":\"muir-sim\",\"timebase\":\"1 cycle = 1us\",\"droppedEvents\":{}}}}}\n",
            self.chrome_events(0).join(",\n"),
            self.dropped
        )
    }

    /// The raw Chrome event fragments of [`Trace::to_chrome_json`] (one
    /// JSON object per string), with every timestamp shifted by
    /// `ts_offset` microseconds. Callers merging the sim trace with other
    /// event sources (the telemetry span log) join the fragments into one
    /// `traceEvents` array; `ts_offset` places the sim timeline under its
    /// enclosing wall-clock span.
    pub fn chrome_events(&self, ts_offset: u64) -> Vec<String> {
        let off = ts_offset;
        let mut evs: Vec<String> = Vec::new();
        // Metadata: humane process/thread names.
        for (ti, name) in self.meta.task_names.iter().enumerate() {
            evs.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{ti},\"args\":{{\"name\":\"task:{}\"}}}}",
                esc(name)
            ));
            for (ni, nname) in self.meta.node_names[ti].iter().enumerate() {
                evs.push(format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{ti},\"tid\":{ni},\"args\":{{\"name\":\"{}\"}}}}",
                    esc(nname)
                ));
            }
        }
        for (si, name) in self.meta.struct_names.iter().enumerate() {
            evs.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"mem:{} ({})\"}}}}",
                MEM_PID_BASE + si as u32,
                esc(name),
                esc(&self.meta.struct_kinds[si])
            ));
        }
        // Pair memory request/response events into lifetimes.
        let mut open_reqs: HashMap<(u32, u64), (u64, u32, u32, bool)> = HashMap::new();
        let last_cycle = self.events.last().map(TraceEvent::cycle).unwrap_or(0);
        for ev in &self.events {
            match *ev {
                TraceEvent::Fire {
                    cycle,
                    task,
                    tile,
                    node,
                    instance,
                } => {
                    let dur = self.meta.node_latency[task as usize][node as usize].max(1);
                    let ts = cycle + off;
                    evs.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"fire\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{task},\"tid\":{node},\"args\":{{\"instance\":{instance},\"tile\":{tile}}}}}",
                        esc(&self.meta.node_names[task as usize][node as usize]),
                    ));
                }
                TraceEvent::Stall {
                    cycle,
                    task,
                    node,
                    reason,
                    edge,
                    ..
                } => {
                    let extra = match edge {
                        Some(e) => format!(",\"edge\":{e}"),
                        None => String::new(),
                    };
                    let ts = cycle + off;
                    evs.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"stall\",\"ph\":\"X\",\"ts\":{ts},\"dur\":1,\"pid\":{task},\"tid\":{node},\"args\":{{\"reason\":\"{}\"{extra}}}}}",
                        reason.name(),
                        reason.name(),
                    ));
                }
                TraceEvent::Enq {
                    cycle,
                    task,
                    edge,
                    occ,
                }
                | TraceEvent::Deq {
                    cycle,
                    task,
                    edge,
                    occ,
                } => {
                    let ts = cycle + off;
                    evs.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"chan\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{task},\"args\":{{\"occ\":{occ}}}}}",
                        esc(&self.meta.edge_label(task, edge)),
                    ));
                }
                TraceEvent::MemReq {
                    cycle,
                    structure,
                    id,
                    bank,
                    elems,
                    is_write,
                } => {
                    open_reqs.insert((structure, id), (cycle, bank, elems, is_write));
                }
                TraceEvent::MemResp {
                    cycle,
                    structure,
                    id,
                } => {
                    // A request whose submit was evicted from the ring still
                    // gets a 1-cycle completion marker.
                    let (start, bank, elems, is_write) = open_reqs
                        .remove(&(structure, id))
                        .unwrap_or((cycle.saturating_sub(1), 0, 0, false));
                    evs.push(mem_x_event(
                        structure,
                        id,
                        start + off,
                        cycle + off,
                        bank,
                        elems,
                        is_write,
                    ));
                }
            }
        }
        // Requests still in flight when the trace ended.
        #[allow(clippy::type_complexity)]
        let mut rest: Vec<((u32, u64), (u64, u32, u32, bool))> = open_reqs.into_iter().collect();
        rest.sort_unstable_by_key(|&(k, _)| k);
        for ((structure, id), (start, bank, elems, is_write)) in rest {
            evs.push(mem_x_event(
                structure,
                id,
                start + off,
                last_cycle + 1 + off,
                bank,
                elems,
                is_write,
            ));
        }
        evs
    }

    /// Export as a VCD waveform: per-channel occupancy (8-bit) and valid
    /// lines, per-node stall codes (3-bit: 0 = flowing, 1 + reason index
    /// otherwise) and fire pulses.
    pub fn to_vcd(&self) -> String {
        // Assign VCD identifiers to every signal that actually changes.
        let mut occ_ids: HashMap<(u32, u32), String> = HashMap::new(); // (task, edge)
        let mut stall_ids: HashMap<(u32, u32), String> = HashMap::new(); // (task, node)
        let mut fire_ids: HashMap<(u32, u32), String> = HashMap::new();
        let mut next_id = 0usize;
        let fresh = |n: &mut usize| -> String {
            let id = vcd_id(*n);
            *n += 1;
            id
        };
        for ev in &self.events {
            match *ev {
                TraceEvent::Enq { task, edge, .. } | TraceEvent::Deq { task, edge, .. } => {
                    occ_ids
                        .entry((task, edge))
                        .or_insert_with(|| fresh(&mut next_id));
                }
                TraceEvent::Stall { task, node, .. } => {
                    stall_ids
                        .entry((task, node))
                        .or_insert_with(|| fresh(&mut next_id));
                }
                TraceEvent::Fire { task, node, .. } => {
                    fire_ids
                        .entry((task, node))
                        .or_insert_with(|| fresh(&mut next_id));
                }
                _ => {}
            }
        }
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(out, "$date muir-sim trace $end");
        let _ = writeln!(out, "$version muir-sim observability $end");
        let _ = writeln!(out, "$timescale 1 ns $end");
        let _ = writeln!(out, "$scope module muir $end");
        let mut occ_sorted: Vec<(&(u32, u32), &String)> = occ_ids.iter().collect();
        occ_sorted.sort();
        for (&(task, edge), id) in &occ_sorted {
            let name = sanitize(&self.meta.edge_label(task, edge));
            let _ = writeln!(out, "$var wire 8 {id} occ_{name} $end");
            let _ = writeln!(out, "$var wire 1 {id}v valid_{name} $end");
        }
        let mut stall_sorted: Vec<(&(u32, u32), &String)> = stall_ids.iter().collect();
        stall_sorted.sort();
        for (&(task, node), id) in &stall_sorted {
            let name = sanitize(&self.meta.node_label(task, node));
            let _ = writeln!(out, "$var wire 3 {id} stall_{name} $end");
        }
        let mut fire_sorted: Vec<(&(u32, u32), &String)> = fire_ids.iter().collect();
        fire_sorted.sort();
        for (&(task, node), id) in &fire_sorted {
            let name = sanitize(&self.meta.node_label(task, node));
            let _ = writeln!(out, "$var wire 1 {id} fire_{name} $end");
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");

        // Change sets per cycle: signal id -> rendered value line.
        let mut changes: std::collections::BTreeMap<u64, HashMap<String, String>> =
            std::collections::BTreeMap::new();
        let set = |changes: &mut std::collections::BTreeMap<u64, HashMap<String, String>>,
                   cycle: u64,
                   id: &str,
                   line: String| {
            changes
                .entry(cycle)
                .or_default()
                .insert(id.to_string(), line);
        };
        // Pulse resets (fire back to 0, stall back to 0) are provisional:
        // an explicit value at that cycle wins.
        let mut resets: std::collections::BTreeMap<u64, HashMap<String, String>> =
            std::collections::BTreeMap::new();
        for ev in &self.events {
            match *ev {
                TraceEvent::Enq {
                    cycle,
                    task,
                    edge,
                    occ,
                }
                | TraceEvent::Deq {
                    cycle,
                    task,
                    edge,
                    occ,
                } => {
                    let id = &occ_ids[&(task, edge)];
                    set(
                        &mut changes,
                        cycle,
                        id,
                        format!("b{:08b} {id}", occ.min(255)),
                    );
                    let vid = format!("{id}v");
                    set(
                        &mut changes,
                        cycle,
                        &vid,
                        format!("{}{vid}", u8::from(occ > 0)),
                    );
                }
                TraceEvent::Stall {
                    cycle,
                    task,
                    node,
                    reason,
                    ..
                } => {
                    let id = &stall_ids[&(task, node)];
                    set(
                        &mut changes,
                        cycle,
                        id,
                        format!("b{:03b} {id}", reason.index() + 1),
                    );
                    resets
                        .entry(cycle + 1)
                        .or_default()
                        .insert(id.clone(), format!("b000 {id}"));
                }
                TraceEvent::Fire {
                    cycle, task, node, ..
                } => {
                    let id = &fire_ids[&(task, node)];
                    set(&mut changes, cycle, id, format!("1{id}"));
                    resets
                        .entry(cycle + 1)
                        .or_default()
                        .insert(id.clone(), format!("0{id}"));
                }
                _ => {}
            }
        }
        for (cycle, vals) in resets {
            let slot = changes.entry(cycle).or_default();
            for (id, line) in vals {
                slot.entry(id).or_insert(line);
            }
        }
        // Initial values.
        let _ = writeln!(out, "$dumpvars");
        for (_, id) in &occ_sorted {
            let _ = writeln!(out, "b00000000 {id}");
            let _ = writeln!(out, "0{id}v");
        }
        for (_, id) in &stall_sorted {
            let _ = writeln!(out, "b000 {id}");
        }
        for (_, id) in &fire_sorted {
            let _ = writeln!(out, "0{id}");
        }
        let _ = writeln!(out, "$end");
        for (cycle, vals) in changes {
            let _ = writeln!(out, "#{cycle}");
            let mut lines: Vec<(&String, &String)> = vals.iter().collect();
            lines.sort();
            for (_, line) in lines {
                let _ = writeln!(out, "{line}");
            }
        }
        out
    }
}

fn mem_x_event(
    structure: u32,
    id: u64,
    start: u64,
    end: u64,
    bank: u32,
    elems: u32,
    is_write: bool,
) -> String {
    let dur = end.saturating_sub(start).max(1);
    format!(
        "{{\"name\":\"{}\",\"cat\":\"mem\",\"ph\":\"X\",\"ts\":{start},\"dur\":{dur},\"pid\":{},\"tid\":{bank},\"args\":{{\"req\":{id},\"elems\":{elems}}}}}",
        if is_write { "store" } else { "load" },
        MEM_PID_BASE + structure,
    )
}

/// Short printable VCD identifier for signal `n`.
fn vcd_id(n: usize) -> String {
    // Printable ASCII 33..=126, avoiding none: base-94 little-endian.
    let mut n = n;
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

/// VCD identifiers must not contain whitespace; names become identifiers.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace() -> Trace {
        let meta = TraceMeta {
            task_names: vec!["main".into()],
            node_names: vec![vec!["a".into(), "b".into()]],
            node_latency: vec![vec![1, 4]],
            edge_ends: vec![vec![(0, 1)]],
            edge_caps: vec![vec![2]],
            struct_names: vec!["spad".into()],
            struct_kinds: vec!["scratchpad".into()],
        };
        Trace {
            meta,
            events: vec![
                TraceEvent::Fire {
                    cycle: 0,
                    task: 0,
                    tile: 0,
                    node: 0,
                    instance: 0,
                },
                TraceEvent::Enq {
                    cycle: 0,
                    task: 0,
                    edge: 0,
                    occ: 1,
                },
                TraceEvent::MemReq {
                    cycle: 1,
                    structure: 0,
                    id: 9,
                    bank: 0,
                    elems: 4,
                    is_write: false,
                },
                TraceEvent::Stall {
                    cycle: 1,
                    task: 0,
                    tile: 0,
                    node: 1,
                    reason: StallReason::MemoryWait,
                    edge: None,
                    structure: Some(0),
                },
                TraceEvent::MemResp {
                    cycle: 5,
                    structure: 0,
                    id: 9,
                },
                TraceEvent::Deq {
                    cycle: 6,
                    task: 0,
                    edge: 0,
                    occ: 0,
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn chrome_export_has_tracks_and_lifetimes() {
        let json = tiny_trace().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""), "metadata names present");
        assert!(json.contains("\"ph\":\"X\""), "complete events present");
        assert!(json.contains("\"ph\":\"C\""), "counter events present");
        assert!(json.contains("\"dur\":4"), "mem lifetime paired: 1..5");
        assert!(json.contains("\"cat\":\"stall\""));
        assert!(json.contains("memory-wait"));
        // Balanced braces — a cheap well-formedness smoke check.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn vcd_export_declares_and_changes() {
        let vcd = tiny_trace().to_vcd();
        assert!(vcd.contains("$timescale"));
        assert!(vcd.contains("$var wire 8"), "occupancy vector declared");
        assert!(vcd.contains("$var wire 3"), "stall code declared");
        assert!(vcd.contains("$dumpvars"));
        assert!(vcd.contains("#0"), "time marks emitted");
        assert!(vcd.contains("#6"));
        // The stall pulse resets the cycle after it was recorded.
        assert!(vcd.contains("b011"), "memory-wait code 3 present");
    }

    #[test]
    fn bottleneck_ranking_orders_by_stalls() {
        let profile = SimProfile {
            cycles: 100,
            structs: vec![StructProfile {
                structure: 0,
                name: "l1".into(),
                kind: "cache".into(),
                mem_wait_stalls: 50,
                arb_stalls: 0,
                conflict_stalls: 10,
                hits: 10,
                misses: 30,
            }],
            channels: vec![ChannelProfile {
                task: 0,
                edge: 0,
                name: "main.e0 a->b".into(),
                capacity: 1,
                full_stalls: 5,
                ..ChannelProfile::default()
            }],
            ..SimProfile::default()
        };
        let report = profile.bottlenecks(5);
        assert_eq!(report.entries.len(), 2);
        assert_eq!(report.entries[0].kind, BottleneckKind::Structure);
        assert!(report.entries[0].suggestion.contains("CacheBanking"));
        assert!(report.entries[0].share > report.entries[1].share);
        assert_eq!(report.entries[1].kind, BottleneckKind::Channel);
        assert!(report.entries[1].suggestion.contains("Fifo(2)"));
        assert!(report.to_string().contains("#1"));
    }

    #[test]
    fn miss_rate_guards_zero() {
        let s = StructProfile::default();
        assert_eq!(s.miss_rate(), 0.0);
        let s = StructProfile {
            hits: 3,
            misses: 1,
            ..StructProfile::default()
        };
        assert!((s.miss_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn vcd_ids_are_unique_and_printable() {
        let ids: Vec<String> = (0..200).map(vcd_id).collect();
        let mut uniq = ids.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), ids.len());
        assert!(ids
            .iter()
            .all(|i| i.bytes().all(|b| (33..127).contains(&b))));
    }
}
