//! Content hashes over simulation inputs and outcomes.
//!
//! The persistent result store keys memoized evaluations by
//! `(hash(artifact), hash(job))` and proves determinism by comparing
//! `hash(end state)` across cold, warm, and post-fault runs. Both sides
//! use the same splitmix64 fold ([`muir_core::ContentHasher`]) as the
//! compile cache, so "same bytes" means the same thing at every layer.
//!
//! Two normalization rules keep the keys honest:
//!
//! * **scheduler, threads, and exec mode are excluded** from
//!   [`config_hash`]: the determinism contract (DESIGN.md §9–§10, §14)
//!   guarantees bit-identical observables across `Dense`/`Ready`/
//!   `Parallel` at any thread count and across the `Interp`/`MicroOp`
//!   firing interpreters, so a result computed under one combination is
//!   a valid warm hit for any other;
//! * **`sched_visits` is excluded** from [`result_hash`]: it counts
//!   simulator effort, not hardware behaviour, and legitimately differs
//!   between schedulers.

use crate::{SimConfig, SimResult};
use muir_core::ContentHasher;
use muir_mir::interp::Memory;
use muir_mir::value::Value;

fn push_value(h: &mut ContentHasher, v: &Value) {
    // Debug on Value renders f32 via shortest-round-trip, so distinct bit
    // patterns of interest (other than NaN payloads) stay distinct and the
    // rendering is deterministic.
    h.push_str(&format!("{v:?}"));
}

/// Hash the parts of a [`SimConfig`] that can affect simulation
/// observables. Scheduler choice, thread count, and exec mode are
/// deliberately excluded (see module docs); tracing is excluded too
/// because traces are never stored — the store layer refuses tracing
/// configs instead.
pub fn config_hash(cfg: &SimConfig) -> u64 {
    let mut h = ContentHasher::new();
    h.push_str("cfg-v1");
    h.push_u64(cfg.max_cycles);
    h.push_u64(cfg.window);
    h.push_f64_bits(cfg.period_ns);
    h.push_u64(cfg.deadlock_cycles);
    h.push_u64(u64::from(cfg.databox_entries));
    h.push_u64(u64::from(cfg.elastic_depth));
    h.push_u64(cfg.faults.seed);
    h.push_u64(cfg.faults.specs.len() as u64);
    for spec in &cfg.faults.specs {
        h.push_str(spec.class.name());
        h.push_u64(u64::from(spec.rate_ppm));
        h.push_u64(u64::from(spec.max_events));
    }
    h.finish()
}

/// Hash one evaluation job: configuration plus the run's actual inputs
/// (root arguments and the initial memory image). This is the `job` half
/// of the store's result key — strictly finer than hashing the config
/// alone, so two design points that share a config but differ in data can
/// never collide onto one memoized result.
pub fn job_hash(cfg: &SimConfig, args: &[Value], mem: &Memory) -> u64 {
    let mut h = ContentHasher::new();
    h.push_str("job-v1");
    h.push_u64(config_hash(cfg));
    h.push_u64(args.len() as u64);
    for a in args {
        push_value(&mut h, a);
    }
    h.push_u64(mem.bases.len() as u64);
    for b in &mem.bases {
        h.push_u64(*b);
    }
    h.push_u64(mem.objects.len() as u64);
    for obj in &mem.objects {
        h.push_u64(obj.len() as u64);
        for v in obj {
            push_value(&mut h, v);
        }
    }
    h.finish()
}

/// Hash a simulation outcome: cycles, root results, and every stat that is
/// a hardware observable. `sched_visits`, `profile`, and `trace` are
/// excluded (simulator-effort / observability artifacts, not behaviour).
pub fn result_hash(r: &SimResult) -> u64 {
    let mut h = ContentHasher::new();
    h.push_str("res-v1");
    h.push_u64(r.cycles);
    h.push_u64(r.results.len() as u64);
    for v in &r.results {
        push_value(&mut h, v);
    }
    let s = &r.stats;
    h.push_u64(s.cycles);
    h.push_u64(s.fires);
    h.push_u64(s.task_invocations.len() as u64);
    for v in &s.task_invocations {
        h.push_u64(*v);
    }
    h.push_u64(s.task_busy_cycles.len() as u64);
    for v in &s.task_busy_cycles {
        h.push_u64(*v);
    }
    h.push_u64(s.struct_stats.len() as u64);
    for st in &s.struct_stats {
        h.push_u64(st.requests);
        h.push_u64(st.elem_txns);
        h.push_u64(st.conflict_stalls);
        h.push_u64(st.hits);
        h.push_u64(st.misses);
        h.push_u64(st.writebacks);
        h.push_u64(st.ecc_corrected);
    }
    h.push_u64(s.dram_fills);
    h.push_u64(s.faults.token_bit_flip);
    h.push_u64(s.faults.token_drop);
    h.push_u64(s.faults.token_dup);
    h.push_u64(s.faults.stuck_handshake);
    h.push_u64(s.faults.mem_ecc);
    h.push_u64(s.faults.dram_timeout);
    h.finish()
}

/// Hash the complete end state of an evaluation: the outcome plus the
/// final memory image. This is what the store's differential campaign
/// compares across cold / warm / post-fault runs.
pub fn end_state_hash(r: &SimResult, mem: &Memory) -> u64 {
    let mut h = ContentHasher::new();
    h.push_str("end-v1");
    h.push_u64(result_hash(r));
    h.push_u64(mem.bases.len() as u64);
    for b in &mem.bases {
        h.push_u64(*b);
    }
    h.push_u64(mem.objects.len() as u64);
    for obj in &mem.objects {
        h.push_u64(obj.len() as u64);
        for v in obj {
            push_value(&mut h, v);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecMode, SchedulerKind};

    #[test]
    fn config_hash_ignores_scheduler_and_threads() {
        let base = SimConfig::default();
        let h = config_hash(&base);
        for sched in [
            SchedulerKind::Dense,
            SchedulerKind::Ready,
            SchedulerKind::Parallel,
        ] {
            for threads in [1, 2, 8] {
                for exec in [ExecMode::Interp, ExecMode::MicroOp] {
                    let cfg = base
                        .clone()
                        .with_scheduler(sched)
                        .with_threads(threads)
                        .with_exec(exec);
                    assert_eq!(config_hash(&cfg), h, "{sched:?} @ {threads} / {exec:?}");
                }
            }
        }
    }

    #[test]
    fn config_hash_sees_every_observable_knob() {
        let base = SimConfig::default();
        let h = config_hash(&base);
        let mut c = base.clone();
        c.max_cycles += 1;
        assert_ne!(config_hash(&c), h);
        let mut c = base.clone();
        c.window += 1;
        assert_ne!(config_hash(&c), h);
        let mut c = base.clone();
        c.deadlock_cycles += 1;
        assert_ne!(config_hash(&c), h);
        let mut c = base.clone();
        c.databox_entries += 1;
        assert_ne!(config_hash(&c), h);
        let mut c = base.clone();
        c.elastic_depth += 1;
        assert_ne!(config_hash(&c), h);
        let mut c = base.clone();
        c.faults = crate::FaultPlan::single(crate::FaultClass::TokenDrop, 1);
        assert_ne!(config_hash(&c), h);
    }

    #[test]
    fn job_hash_sees_args_and_memory() {
        let cfg = SimConfig::default();
        let mem = Memory {
            objects: vec![],
            bases: vec![],
        };
        let h = job_hash(&cfg, &[], &mem);
        assert_eq!(job_hash(&cfg, &[], &mem), h, "deterministic");
        assert_ne!(job_hash(&cfg, &[Value::Int(1)], &mem), h, "args");
        let mem2 = Memory {
            objects: vec![vec![Value::Int(7)]],
            bases: vec![0],
        };
        assert_ne!(job_hash(&cfg, &[], &mem2), h, "memory");
    }

    #[test]
    fn result_hash_ignores_sched_visits_and_observability() {
        let mut r = SimResult {
            cycles: 10,
            results: vec![Value::Int(3)],
            stats: crate::SimStats {
                cycles: 10,
                fires: 5,
                sched_visits: 100,
                ..crate::SimStats::default()
            },
            profile: None,
            trace: None,
        };
        let h = result_hash(&r);
        r.stats.sched_visits = 999_999;
        assert_eq!(result_hash(&r), h, "sched_visits is simulator effort");
        r.cycles = 11;
        assert_ne!(result_hash(&r), h, "cycles are observable");
    }
}
