//! `muir-sim` — cycle-level simulation of μIR accelerators.
//!
//! The authors evaluate μIR-generated Chisel on an Arria 10 FPGA; this
//! crate is the substitution: a cycle-level simulator of the μIR execution
//! model itself. The paper's own thesis (§1, novelty ii) is that μIR
//! "preserves the expected cycle-level performance tradeoffs when
//! translated to RTL", so measuring cycles at the μIR level — with faithful
//! ready/valid handshakes, junction arbitration, bank conflicts, cache
//! misses, task queues and execution tiles — reproduces the *shape* of
//! every performance experiment.
//!
//! Simulations are functional: the accelerator computes real values against
//! a real memory image, which the test-suite compares word-for-word with
//! the `mir` reference interpreter.
//!
//! # Example
//!
//! ```
//! use muir_frontend::{translate, FrontendConfig};
//! use muir_mir::{FunctionBuilder, Module};
//! use muir_mir::types::ScalarType;
//! use muir_mir::instr::ValueRef;
//! use muir_mir::interp::Memory;
//! use muir_sim::{simulate, SimConfig};
//!
//! let mut m = Module::new("double");
//! let a = m.add_mem_object("a", ScalarType::I32, 16);
//! let mut b = FunctionBuilder::new("main", &[]).with_mem(&m);
//! b.for_loop(0, ValueRef::int(16), 1, |b, i| {
//!     let v = b.load(a, i);
//!     let w = b.add(v, v);
//!     b.store(a, i, w);
//! });
//! b.ret(None);
//! m.add_function(b.finish());
//!
//! let acc = translate(&m, &FrontendConfig::default()).unwrap();
//! let mut mem = Memory::from_module(&m);
//! mem.init_i64(a, &[1; 16]);
//! let r = simulate(&acc, &mut mem, &[], &SimConfig::default()).unwrap();
//! assert_eq!(mem.read_i64(a), vec![2; 16]);
//! assert!(r.cycles > 0);
//! ```

mod engine;
pub mod error;
pub mod fault;
pub mod hashing;
pub mod memory;
pub mod trace;

pub use error::{
    BufferSuggestion, ChannelState, DeadlockReport, FaultKind, SimError, StuckTile, WaitEdge,
};
pub use fault::{Ecc, FaultClass, FaultCounts, FaultPlan, FaultSpec};
pub use hashing::{config_hash, end_state_hash, job_hash, result_hash};
pub use memory::StructStats;
pub use trace::{
    Bottleneck, BottleneckKind, BottleneckReport, ChannelProfile, NodeProfile, SimProfile,
    StallReason, StructProfile, Trace, TraceConfig, TraceEvent, TraceMeta,
};

use muir_core::accel::Accelerator;
use muir_core::compiled::CompiledAccel;
use muir_mir::interp::Memory;
use muir_mir::value::Value;

/// Which cycle-engine scheduler drives phase 4 (admission + node firing).
///
/// Both schedulers implement the *same* execution model and produce
/// bit-identical observable behaviour (cycles, results, stats, traces);
/// `Ready` is simply cheaper. `Dense` rescans every node of every active
/// tile each cycle; `Ready` tracks per-tile ready sets updated only by
/// token movement, admission, memory responses, and scheduled events, and
/// skips cycles in which provably nothing can happen (see DESIGN.md §9).
///
/// With tracing enabled the engine always uses the dense visitation order
/// (stall attribution is inherently a per-cycle scan), so `Ready` or
/// `Parallel` + tracing still yields bit-identical trace streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Poll every node of every active tile each cycle (the original
    /// scanner; kept alive as the differential-testing oracle).
    Dense,
    /// Event-driven ready sets + idle-cycle skipping.
    #[default]
    Ready,
    /// Two-phase plan/commit cycle: tiles are planned in parallel across a
    /// fixed worker pool ([`SimConfig::threads`]), then committed
    /// sequentially in tile-index order so every observable — cycles,
    /// results, stats, fault behaviour, traces — is bit-identical to
    /// `Dense`/`Ready` at any thread count (DESIGN.md §10).
    Parallel,
}

/// Which firing interpreter executes a node once the scheduler selects it.
///
/// Orthogonal to [`SchedulerKind`]: the scheduler decides *which* nodes to
/// visit each cycle, the exec mode decides *how* a visit is executed. Both
/// modes implement the same execution model and are bit-identical in every
/// observable (cycles, results, stats, fault behaviour, traces) — re-proven
/// by the four-way differential suites in `muir-bench` (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Walk the structure tables and `match` on `NodeKind` per firing (the
    /// original interpreter; kept alive as the differential oracle).
    Interp,
    /// Drive firings from the compiled artifact's flat [`MicroOp`] stream:
    /// a dense `u8` opcode dispatch over pre-resolved input slots and edge
    /// ranges (DESIGN.md §14).
    ///
    /// [`MicroOp`]: muir_core::compiled::MicroOp
    #[default]
    MicroOp,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Hard cycle limit.
    pub max_cycles: u64,
    /// Per-tile maximum in-flight instances (pipeline window).
    pub window: u64,
    /// Clock period (ns) used for fused-node re-timing.
    pub period_ns: f64,
    /// Cycles without progress before a deadlock is reported.
    pub deadlock_cycles: u64,
    /// Databox entries per memory node: outstanding typed accesses a
    /// load/store transit point may have in flight (§3.4, Figure 7).
    pub databox_entries: u32,
    /// Token capacity of a default handshake connection. Baseline μIR
    /// edges are *pipelined connections* (§3.6): short paths buffer tokens
    /// while long paths drain, so unbalanced forks do not collapse the
    /// initiation interval.
    pub elastic_depth: u32,
    /// Seeded fault-injection schedule (empty = fault-free run).
    pub faults: FaultPlan,
    /// Observability: per-cycle event tracing and stall attribution
    /// (disabled by default; never perturbs timing when enabled).
    pub trace: TraceConfig,
    /// Phase-4 scheduling strategy (identical observable behaviour; only
    /// simulator wall-time differs).
    pub scheduler: SchedulerKind,
    /// Worker threads for [`SchedulerKind::Parallel`] planning (ignored by
    /// the other schedulers; `1` = plan inline on the simulation thread).
    /// Never affects simulation results — only wall time.
    pub threads: u32,
    /// Firing interpreter (identical observable behaviour; only simulator
    /// wall-time differs).
    pub exec: ExecMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_cycles: 500_000_000,
            window: 64,
            period_ns: muir_core::hw::BASELINE_PERIOD_NS,
            deadlock_cycles: 100_000,
            databox_entries: 8,
            elastic_depth: 8,
            faults: FaultPlan::none(),
            trace: TraceConfig::default(),
            scheduler: SchedulerKind::default(),
            threads: 1,
            exec: ExecMode::default(),
        }
    }
}

impl SimConfig {
    /// The same configuration with a different phase-4 scheduler.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The same configuration with a different planning thread count
    /// (meaningful only under [`SchedulerKind::Parallel`]; clamped to ≥ 1).
    #[must_use]
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The same configuration with a different firing interpreter.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }
}

/// Aggregate statistics of one simulation.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Total cycles to root completion.
    pub cycles: u64,
    /// Total node firings.
    pub fires: u64,
    /// Invocations per task.
    pub task_invocations: Vec<u64>,
    /// Busy (tile-occupied) cycles per task.
    pub task_busy_cycles: Vec<u64>,
    /// Per-structure memory statistics.
    pub struct_stats: Vec<StructStats>,
    /// DRAM line fills.
    pub dram_fills: u64,
    /// Injected-fault tallies. A run that completes with `faults.total() >
    /// 0` may have corrupted outputs — differential harnesses must treat
    /// the flag as "outputs suspect", never as a silent pass.
    pub faults: FaultCounts,
    /// Scheduler visits: `try_fire` attempts across the run. This is a
    /// *simulator effort* counter, not a hardware observable — it differs
    /// between [`SchedulerKind`]s by design (the whole point of `Ready` is
    /// fewer visits) and must be excluded from differential comparisons.
    pub sched_visits: u64,
}

impl SimStats {
    /// Total cache hits across structures.
    pub fn cache_hits(&self) -> u64 {
        self.struct_stats.iter().map(|s| s.hits).sum()
    }

    /// Total cache misses across structures.
    pub fn cache_misses(&self) -> u64 {
        self.struct_stats.iter().map(|s| s.misses).sum()
    }

    /// Total bank-conflict stall events.
    pub fn bank_conflicts(&self) -> u64 {
        self.struct_stats.iter().map(|s| s.conflict_stalls).sum()
    }

    /// Total injected faults (0 on a fault-free run).
    pub fn faults_injected(&self) -> u64 {
        self.faults.total()
    }

    /// ECC events corrected in flight across structures.
    pub fn ecc_corrected(&self) -> u64 {
        self.struct_stats.iter().map(|s| s.ecc_corrected).sum()
    }

    /// Per-structure miss rates, index-aligned with `struct_stats`. Each
    /// rate is guarded: a structure with no cacheable traffic reports 0.
    pub fn miss_rates(&self) -> Vec<f64> {
        self.struct_stats
            .iter()
            .map(StructStats::miss_rate)
            .collect()
    }

    /// Overall miss rate across every structure (guarded like the
    /// per-struct rates).
    pub fn overall_miss_rate(&self) -> f64 {
        let total = self.cache_hits() + self.cache_misses();
        if total == 0 {
            0.0
        } else {
            self.cache_misses() as f64 / total as f64
        }
    }
}

impl std::fmt::Display for SimStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "sim stats: {} cycles, {} fires, {} task invocations",
            self.cycles,
            self.fires,
            self.task_invocations.iter().sum::<u64>()
        )?;
        for (ti, (inv, busy)) in self
            .task_invocations
            .iter()
            .zip(&self.task_busy_cycles)
            .enumerate()
        {
            writeln!(f, "  task {ti}: {inv} invocations, {busy} busy cycles")?;
        }
        for (si, s) in self.struct_stats.iter().enumerate() {
            writeln!(
                f,
                "  struct {si}: {} reqs, {} elem txns, {} conflict stalls, \
                 {} hits / {} misses (miss rate {:.1}%), {} writebacks",
                s.requests,
                s.elem_txns,
                s.conflict_stalls,
                s.hits,
                s.misses,
                100.0 * s.miss_rate(),
                s.writebacks
            )?;
        }
        writeln!(f, "  dram fills: {}", self.dram_fills)?;
        if self.faults.total() > 0 {
            writeln!(
                f,
                "  faults injected: {} (outputs suspect), ecc corrected: {}",
                self.faults.total(),
                self.ecc_corrected()
            )?;
        }
        Ok(())
    }
}

/// Process-wide count of tile commits dispatched through the parallel
/// scheduler's epoch path (DESIGN.md §14). Engagement diagnostics only —
/// monotone across runs, never part of [`SimStats`] or any hash. The
/// `check.sh` gate reads it to prove epoch commit actually engages under
/// `Parallel` at ≥2 threads with the micro-op interpreter.
pub fn epoch_tile_commits() -> u64 {
    engine::parallel::EPOCH_TILE_COMMITS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Bridge one completed run's aggregate statistics into the global
/// telemetry registry (`muir_core::telemetry`). Observation only: call
/// sites feed counters after the run completes, so the bridge can never
/// perturb the determinism contract. `wall_s` is the run's measured
/// wall-clock seconds (pass 0.0 when unknown; the cycles/sec gauge is
/// skipped).
pub fn record_stats_telemetry(stats: &SimStats, wall_s: f64) {
    use muir_core::telemetry as tm;
    if !tm::enabled() {
        return;
    }
    tm::count("sim.runs", 1);
    tm::count("sim.cycles", stats.cycles);
    tm::count("sim.fires", stats.fires);
    tm::count("sim.cache_hits", stats.cache_hits());
    tm::count("sim.cache_misses", stats.cache_misses());
    tm::count("sim.bank_conflicts", stats.bank_conflicts());
    tm::count("sim.dram_fills", stats.dram_fills);
    tm::count("sim.faults_injected", stats.faults_injected());
    tm::count("sim.ecc_corrected", stats.ecc_corrected());
    if wall_s > 0.0 {
        tm::gauge_set("sim.cycles_per_sec", (stats.cycles as f64 / wall_s) as u64);
    }
}

/// Bridge a traced run's stall totals into the registry, one counter per
/// [`StallReason`], plus the trace ring's kept/dropped tallies.
pub fn record_profile_telemetry(profile: &SimProfile) {
    use muir_core::telemetry as tm;
    if !tm::enabled() {
        return;
    }
    for reason in StallReason::ALL {
        let cycles = profile.stalls_by_reason(reason);
        if cycles > 0 {
            tm::count(&format!("sim.stall.{}", reason.name()), cycles);
        }
    }
    tm::count("sim.trace_events_recorded", profile.events_recorded);
    tm::count("sim.trace_events_dropped", profile.events_dropped);
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Cycles from launch to root-task completion.
    pub cycles: u64,
    /// The root task's results.
    pub results: Vec<Value>,
    /// Statistics.
    pub stats: SimStats,
    /// Aggregated observability profile (`Some` iff tracing was enabled).
    pub profile: Option<SimProfile>,
    /// The recorded event stream (`Some` iff tracing was enabled).
    pub trace: Option<Trace>,
}

/// Simulate the accelerator's root task once against `mem`.
///
/// Compilation goes through the process-local content-addressed cache
/// ([`CompiledAccel::compile_cached`]): the first call on a graph
/// verifies and lowers it, repeat calls (bench loops, campaigns, fuzz
/// reruns) reuse the sealed artifact. Callers holding a
/// [`CompiledAccel`] already should use [`simulate_compiled`].
///
/// # Errors
/// Graph rejection (verification failure at compile), deadlock,
/// cycle-limit exhaustion, or a functional fault (e.g. an out-of-bounds
/// access on a non-predicated path).
pub fn simulate(
    acc: &Accelerator,
    mem: &mut Memory,
    args: &[Value],
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    // A malformed graph (dangling port, unregistered junction client, …)
    // would otherwise surface as a confusing mid-run fault or deadlock;
    // compile() verifies before sealing.
    let comp =
        CompiledAccel::compile_cached(acc).map_err(|source| SimError::GraphRejected { source })?;
    simulate_compiled(&comp, mem, args, cfg)
}

/// Run one simulation of a sealed accelerator artifact. This is the
/// no-recompile hot path shared by [`simulate`], [`simulate_batch`], and
/// every multi-run harness.
///
/// # Errors
/// Deadlock, cycle-limit exhaustion, or a functional fault.
pub fn simulate_compiled(
    comp: &CompiledAccel,
    mem: &mut Memory,
    args: &[Value],
    cfg: &SimConfig,
) -> Result<SimResult, SimError> {
    let engine = engine::Engine::new(comp, mem, cfg);
    let (cycles, results, stats, observed) = engine.run(args)?;
    let (profile, trace) = match observed {
        Some((p, t)) => (Some(p), Some(t)),
        None => (None, None),
    };
    Ok(SimResult {
        cycles,
        results,
        stats,
        profile,
        trace,
    })
}

/// One independent simulation in a [`simulate_batch`] call: the root
/// arguments, the private memory image the run mutates, and the full
/// simulation configuration (schedulers/faults/tracing may differ per job).
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Root-task arguments.
    pub args: Vec<Value>,
    /// Initial memory image; mutated in place by the run and returned in
    /// [`BatchRun::mem`].
    pub mem: Memory,
    /// Per-job simulation parameters.
    pub cfg: SimConfig,
}

/// Outcome of one [`BatchJob`]: exactly what a standalone [`simulate`] call
/// with the same inputs produces, plus the final memory image.
#[derive(Debug)]
pub struct BatchRun {
    /// The simulation outcome (identical to a standalone [`simulate`]).
    pub outcome: Result<SimResult, SimError>,
    /// The job's memory image after the run.
    pub mem: Memory,
}

/// Run many independent simulations of one accelerator concurrently.
///
/// The graph is compiled once (through the content-addressed cache) and
/// the sealed [`CompiledAccel`] is shared immutably across workers; each
/// job gets its own memory image and engine, so every run is
/// bit-identical to a standalone [`simulate`] call with the same inputs
/// regardless of `threads` or completion order. A batch of N jobs pays
/// one verify+lower, not N. Results come back index-aligned with `jobs`.
/// This is the throughput path for campaign/fuzz/bench workloads:
/// multi-run scaling comes from running whole simulations side by side,
/// not from threading inside one run.
pub fn simulate_batch(acc: &Accelerator, jobs: Vec<BatchJob>, threads: usize) -> Vec<BatchRun> {
    match CompiledAccel::compile_cached(acc) {
        Ok(comp) => simulate_batch_compiled(&comp, jobs, threads),
        Err(source) => {
            // Every job gets the same `GraphRejected` outcome a standalone
            // `simulate` call on this graph would produce.
            jobs.into_iter()
                .map(|j| BatchRun {
                    outcome: Err(SimError::GraphRejected {
                        source: source.clone(),
                    }),
                    mem: j.mem,
                })
                .collect()
        }
    }
}

/// [`simulate_batch`] over an already-sealed artifact: no verify, no
/// lowering, no cache probe — jobs go straight to engines.
pub fn simulate_batch_compiled(
    comp: &CompiledAccel,
    jobs: Vec<BatchJob>,
    threads: usize,
) -> Vec<BatchRun> {
    let n = jobs.len();
    let slots: Vec<std::sync::Mutex<Option<BatchJob>>> = jobs
        .into_iter()
        .map(|j| std::sync::Mutex::new(Some(j)))
        .collect();
    let results: Vec<std::sync::Mutex<Option<BatchRun>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let run_one = |i: usize| {
        let BatchJob { args, mut mem, cfg } = slots[i]
            .lock()
            .expect("batch job slot")
            .take()
            .expect("each job index is claimed exactly once");
        let outcome = simulate_compiled(comp, &mut mem, &args, &cfg);
        *results[i].lock().expect("batch result slot") = Some(BatchRun { outcome, mem });
    };
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        for i in 0..n {
            run_one(i);
        }
    } else {
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    run_one(i);
                });
            }
        });
    }
    results
        .into_iter()
        .map(|r| {
            r.into_inner()
                .expect("batch result mutex")
                .expect("every job ran")
        })
        .collect()
}

#[cfg(test)]
mod tests;
