//! Tile-parallel planning for [`crate::SchedulerKind::Parallel`]
//! (DESIGN.md §10).
//!
//! One simulated cycle splits into a *plan* phase and a *commit* phase.
//! This module owns the plan phase: a pure, read-only pass over each
//! active tile that predicts admission and collects firing candidates,
//! plus the fixed worker pool that shards tiles across threads. The
//! commit phase lives in `engine.rs` (`phase4_parallel`) and replays the
//! candidates through the ordinary `try_fire` gates in dense scan order.
//!
//! # Why the result is bit-identical to the dense scan
//!
//! The contract is: *the commit's gate-passing visits are exactly the
//! dense scan's gate-passing visits, in the same order.* Everything
//! observable follows, because every global side effect (fault-RNG draws,
//! event sequence numbers, memory request ids, junction budget
//! consumption, memory writes) happens inside `try_fire` after its gates
//! pass, and the commit drains candidates in (tile index, scan position)
//! ascending order — the dense iteration order.
//!
//! The candidate list only needs to be a **superset** of the dense firing
//! set (commit re-checks every gate; a spurious candidate just fails a
//! gate, with no side effects), but it must never *miss* a dense firing.
//! Gate by gate, against the frozen start-of-phase state:
//!
//! * **instance gate** (`fired < admitted`): exact. Admission is at most
//!   one instance per tile per cycle and is a pure function of frozen
//!   state (`admitted`, `completed`, `trip` change only in phases 1–3 or
//!   at this tile's own commit), so the plan predicts it exactly.
//! * **II gate** (`cycle >= ready_at`): exact; `ready_at` changes only at
//!   the node's own firing. Blocked nodes record their wake cycle into
//!   `next_wake` for the idle skip.
//! * **input gates**: exact. Every edge has a single consumer, pushes
//!   during phase 4 land invisible (`visible_at: None`), and replies/
//!   completions only patch tokens in phases 1–2 — so each front token the
//!   dense scan would test is frozen. A visible front with the wrong
//!   instance is a detected hardware fault: the node is kept as a
//!   candidate so the commit raises `TokenMisorder` at the identical
//!   visit.
//! * **pending gate** (`pending < max_pending`): exact; retirements only
//!   happen in phases 1–2, issues only at the node's own firing.
//! * **output-space gate**: checked against a per-tile scratch copy of
//!   `edge_vis` with every earlier candidate's pops applied. Candidate
//!   pops are a superset of dense pops and phase-4 pushes don't count
//!   (invisible), so scratch ≤ dense pointwise: scratch-full ⇒ dense-full
//!   ⇒ exclusion is safe. Inclusion is re-checked at commit.
//! * **child-queue gate** (`TaskCall`): the child's queue only grows
//!   during phase 4, so a full snapshot means full at the dense visit;
//!   exclusion is safe, inclusion re-checked.
//! * **junction port budgets**: deliberately *not* modelled — budget is
//!   consumed at actual firings, and consuming it for a candidate the
//!   commit later rejects could wrongly starve a node the dense scan
//!   fires. Always include; the commit re-checks.
//! * **stuck set**: frozen for planning; a node is only stuck at its own
//!   visit, which the commit replays.
//!
//! Fault injection needs no per-shard RNG split: the `StuckHandshake`
//! roll happens only after *all* gates pass (including the junction gate
//! the plan skips), and the token-fault rolls happen per out-edge at
//! actual firings — both therefore consume the engine's single global
//! splitmix64 stream in exactly the dense order.
//!
//! For pure `Compute`/`Fused` candidates the plan also precomputes the
//! output value from the frozen inputs — the only part of a firing that
//! actually parallelizes — tagged with the instance so the commit can
//! validate it.

use super::{ActiveInv, ElabTask, TaskState};
use muir_core::accel::Accelerator;
use muir_core::node::NodeKind;
use muir_mir::value::Value;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One firing candidate: the node's scan position and, for pure compute
/// nodes, the precomputed `(instance, output value)`.
#[derive(Debug)]
pub(crate) struct Cand {
    pub pos: u32,
    pub pre: Option<(u64, Value)>,
}

/// The plan for one active tile: admission prediction, firing candidates
/// in scan order, and the earliest known future wake (for the idle skip).
#[derive(Debug)]
pub(crate) struct TilePlan {
    pub admit: bool,
    pub cands: Vec<Cand>,
    pub next_wake: u64,
}

impl Default for TilePlan {
    fn default() -> Self {
        TilePlan {
            admit: false,
            cands: Vec::new(),
            next_wake: u64::MAX,
        }
    }
}

/// Read-only engine facts the plan phase needs. All references point at
/// engine state that is frozen for the duration of the plan phase.
pub(crate) struct PlanCtx<'e> {
    pub acc: &'e Accelerator,
    pub elab: &'e [ElabTask<'e>],
    pub tasks: &'e [TaskState],
    pub stuck: &'e HashSet<(usize, usize, usize)>,
    pub faults_on: bool,
    pub cycle: u64,
    pub window: u64,
    pub elastic_depth: u32,
}

impl PlanCtx<'_> {
    /// Mirror of `Engine::edge_capacity`.
    fn edge_cap(&self, ti: usize, ei: usize) -> usize {
        match self.acc.tasks[ti].dataflow.edges[ei].buffering {
            muir_core::dataflow::Buffering::Handshake => self.elastic_depth as usize,
            muir_core::dataflow::Buffering::Fifo(d) => d as usize,
        }
    }
}

/// Precompute the output value of a pure `Compute`/`Fused` candidate from
/// its frozen inputs. `None` when any input can't be assembled or the
/// evaluation fails — the commit then recomputes (and reproduces any
/// error at the dense visit).
fn precompute(
    ctx: &PlanCtx<'_>,
    ti: usize,
    inv: &ActiveInv,
    node: usize,
    k: u64,
) -> Option<(u64, Value)> {
    let df = &ctx.acc.tasks[ti].dataflow;
    let kind = &df.nodes[node].kind;
    if !matches!(kind, NodeKind::Compute(_) | NodeKind::Fused(_)) {
        return None;
    }
    let elab = &ctx.elab[ti];
    let in_data = &elab.in_data[node];
    let mut vals: Vec<Value> = Vec::with_capacity(in_data.len());
    for &ei in in_data.iter() {
        let src = df.edges[ei].src.0 as usize;
        if elab.is_static[src] {
            match &df.nodes[src].kind {
                NodeKind::Input { index } => vals.push(inv.args.get(*index as usize)?.clone()),
                NodeKind::Const(c) => vals.push(c.to_value()),
                _ => return None,
            }
        } else {
            // The input gate guaranteed a visible, instance-matching front.
            vals.push(inv.edge_q[ei].front()?.value.clone());
        }
    }
    let v = match kind {
        NodeKind::Compute(op) => super::eval_op(*op, &vals).ok()?,
        NodeKind::Fused(plan) => super::eval_fused(plan, &vals).ok()?,
        _ => unreachable!("matched above"),
    };
    Some((k, v))
}

/// Plan one active tile: a pure function of the frozen engine state (plus
/// a reusable scratch buffer), so it can run on any thread.
pub(crate) fn plan_tile(
    ctx: &PlanCtx<'_>,
    ti: usize,
    tk: usize,
    scratch_vis: &mut Vec<u32>,
    out: &mut TilePlan,
) {
    out.cands.clear();
    out.next_wake = u64::MAX;
    out.admit = false;
    let Some(inv) = ctx.tasks[ti].tiles[tk].as_ref() else {
        return;
    };
    let elab = &ctx.elab[ti];
    let df = &ctx.acc.tasks[ti].dataflow;
    let cycle = ctx.cycle;
    // Mirror of `Engine::admit` on frozen state (exact, see module docs).
    let can = inv.admitted < inv.trip
        && if inv.serial {
            inv.completed == inv.admitted
        } else {
            inv.admitted - inv.completed < ctx.window
        };
    out.admit = can;
    let admitted_eff = inv.admitted + u64::from(can);
    scratch_vis.clear();
    scratch_vis.extend_from_slice(&inv.edge_vis);
    'nodes: for (pos, &node) in elab.order.iter().enumerate() {
        if elab.is_static[node] {
            continue;
        }
        if ctx.faults_on && ctx.stuck.contains(&(ti, tk, node)) {
            continue;
        }
        let k = inv.fired[node];
        if k >= admitted_eff {
            continue;
        }
        let ra = inv.ready_at[node];
        if cycle < ra {
            out.next_wake = out.next_wake.min(ra);
            continue;
        }
        let kind = &df.nodes[node].kind;
        let is_merge = matches!(kind, NodeKind::Merge);
        // Input gates, in the dense scan's edge order. A visible front with
        // the wrong instance stays a candidate: the commit must replay the
        // dense scan's `TokenMisorder` error at this exact visit.
        let mut misorder = false;
        for &ei in elab.in_data[node].iter().chain(elab.in_order[node].iter()) {
            let e = &df.edges[ei];
            if elab.is_static[e.src.0 as usize] {
                continue;
            }
            let expect = if is_merge && e.dst_port == 1 {
                if k == 0 {
                    continue;
                }
                k - 1
            } else {
                k
            };
            match inv.edge_q[ei].front() {
                Some(t) if t.visible_at.is_some_and(|v| v <= cycle) => {
                    if t.instance != expect {
                        misorder = true;
                        break;
                    }
                }
                _ => continue 'nodes,
            }
        }
        if !misorder {
            if inv.pending[node] >= elab.max_pending[node] {
                continue;
            }
            let mut full = false;
            for &ei in elab.outs[node].iter() {
                if scratch_vis[ei] as usize >= ctx.edge_cap(ti, ei) {
                    full = true;
                    break;
                }
            }
            if full {
                continue;
            }
            if let NodeKind::TaskCall { callee, .. } = kind {
                let child = callee.0 as usize;
                if ctx.tasks[child].queue.len() >= ctx.elab[child].queue_cap {
                    continue;
                }
            }
            // Junction port budgets are deliberately not checked here (see
            // module docs); the commit re-checks them.
        }
        let pre = if misorder {
            None
        } else {
            precompute(ctx, ti, inv, node, k)
        };
        out.cands.push(Cand {
            pos: pos as u32,
            pre,
        });
        if !misorder {
            // Mirror the pops this candidate would perform, so later
            // producers in the scan see the freed slots the dense scan
            // would. (Over-popping for a candidate the commit rejects only
            // widens the superset — exclusions stay safe.)
            for &ei in elab.in_data[node].iter() {
                let e = &df.edges[ei];
                if elab.is_static[e.src.0 as usize] {
                    continue;
                }
                if is_merge && e.dst_port == 1 && k == 0 {
                    continue;
                }
                scratch_vis[ei] = scratch_vis[ei].saturating_sub(1);
            }
            for &ei in elab.in_order[node].iter() {
                if elab.is_static[df.edges[ei].src.0 as usize] {
                    continue;
                }
                scratch_vis[ei] = scratch_vis[ei].saturating_sub(1);
            }
        }
    }
}

/// A plan job handed to the worker pool: raw pointers because worker
/// threads are `'static` while the engine state is not. The pointers are
/// only dereferenced between job publication and the main thread's
/// completion wait, during which `Pool::plan`'s borrows pin the referents.
#[derive(Clone, Copy)]
struct JobDesc {
    ctx: *const (),
    tiles: *const (u32, u32),
    plans: *mut TilePlan,
    n: usize,
}

/// State shared between the main thread and the workers.
///
/// Handoff protocol (generation-tagged claims): for job generation `s`,
/// `claim[i]` holds `s << 1` while tile `i` is unclaimed and `s << 1 | 1`
/// once claimed. A worker acquires tile `i` with a CAS; a failed CAS
/// whose observed generation differs from `s` means the job has moved on
/// (or `i >= n`), so stale workers can never burn a later job's claims.
/// The job descriptor is read only *after* a successful CAS: the main
/// thread's Release store of the fresh claim word (written after the
/// descriptor) synchronizes-with the worker's Acquire CAS, and the
/// descriptor is never rewritten until every claim of the current job has
/// been consumed and counted in `done`.
struct Shared {
    seq: AtomicU64,
    quit: AtomicBool,
    done: AtomicUsize,
    job: std::cell::UnsafeCell<JobDesc>,
    claim: Box<[AtomicU64]>,
    parked: Mutex<u32>,
    cv: Condvar,
}

// SAFETY: `job` is the only non-Sync field; the claim protocol above
// guarantees it is never read while it may be written.
unsafe impl Sync for Shared {}
// SAFETY: the raw pointers inside `job` are only dereferenced within the
// window in which `Pool::plan`'s borrows keep them alive.
unsafe impl Send for Shared {}

/// Fixed pool of plan workers, created once per engine. The main thread
/// participates in every job, so `Pool::new(0, _)` still works (and a
/// one-thread configuration never constructs a pool at all).
pub(crate) struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// A pool with `extra_workers` background threads and claim capacity
    /// for `max_tiles` tiles (the accelerator's total tile count, fixed at
    /// elaboration).
    pub(crate) fn new(extra_workers: usize, max_tiles: usize) -> Pool {
        let shared = Arc::new(Shared {
            seq: AtomicU64::new(0),
            quit: AtomicBool::new(false),
            done: AtomicUsize::new(0),
            job: std::cell::UnsafeCell::new(JobDesc {
                ctx: std::ptr::null(),
                tiles: std::ptr::null(),
                plans: std::ptr::null_mut(),
                n: 0,
            }),
            claim: (0..max_tiles.max(1)).map(|_| AtomicU64::new(0)).collect(),
            parked: Mutex::new(0),
            cv: Condvar::new(),
        });
        let handles = (0..extra_workers)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("muir-sim-plan".into())
                    .spawn(move || worker(&sh))
                    .expect("spawn plan worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Plan all `tiles` into `plans`, sharded across the pool. Blocks until
    /// every plan is complete.
    pub(crate) fn plan(
        &self,
        ctx: &PlanCtx<'_>,
        tiles: &[(u32, u32)],
        plans: &mut [TilePlan],
        scratch: &mut Vec<u32>,
    ) {
        let n = tiles.len();
        debug_assert!(n <= self.shared.claim.len());
        debug_assert_eq!(n, plans.len());
        let s = &*self.shared;
        let seq = s.seq.load(Ordering::Relaxed) + 1;
        let plans_ptr = plans.as_mut_ptr();
        // SAFETY: the previous job (if any) is fully drained — `plan`
        // returned only after `done == n`, and a worker increments `done`
        // strictly after its last read of the descriptor — so no thread
        // can be reading `job` now.
        unsafe {
            *s.job.get() = JobDesc {
                ctx: (ctx as *const PlanCtx<'_>).cast(),
                tiles: tiles.as_ptr(),
                plans: plans_ptr,
                n,
            };
        }
        s.done.store(0, Ordering::Relaxed);
        let tag_un = seq << 1;
        let tag_cl = tag_un | 1;
        // Release: publishes the descriptor to whoever claims the tile.
        for c in &s.claim[..n] {
            c.store(tag_un, Ordering::Release);
        }
        {
            // Publish the generation under the park mutex so a worker
            // deciding to park cannot miss the wakeup.
            let g = s.parked.lock().expect("pool mutex");
            s.seq.store(seq, Ordering::Release);
            if *g > 0 {
                s.cv.notify_all();
            }
        }
        // Participate: claim tiles alongside the workers.
        for (i, &(ti, tk)) in tiles.iter().enumerate() {
            if s.claim[i]
                .compare_exchange(tag_un, tag_cl, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: `i < n` and the claim guarantees exclusive access
                // to `plans[i]`.
                let plan = unsafe { &mut *plans_ptr.add(i) };
                plan_tile(ctx, ti as usize, tk as usize, scratch, plan);
                s.done.fetch_add(1, Ordering::Release);
            }
        }
        // The tail wait is bounded by one tile's plan time.
        while s.done.load(Ordering::Acquire) < n {
            std::hint::spin_loop();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.quit.store(true, Ordering::Release);
        {
            let _g = self.shared.parked.lock().expect("pool mutex");
            self.shared.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Worker loop: spin briefly for the next job generation, then yield, then
/// park on the condvar; claim and plan tiles until the generation moves on.
fn worker(shared: &Shared) {
    let mut scratch: Vec<u32> = Vec::new();
    let mut seen = 0u64;
    'outer: loop {
        let mut spins = 0u32;
        let seq = loop {
            if shared.quit.load(Ordering::Acquire) {
                return;
            }
            let s = shared.seq.load(Ordering::Acquire);
            if s != seen {
                break s;
            }
            spins += 1;
            if spins < 1 << 14 {
                std::hint::spin_loop();
            } else if spins < (1 << 14) + 64 {
                std::thread::yield_now();
            } else {
                let mut g = shared.parked.lock().expect("pool mutex");
                // Re-check under the lock: `plan` publishes `seq` under the
                // same lock, so this cannot miss a notify.
                if shared.seq.load(Ordering::Acquire) == seen
                    && !shared.quit.load(Ordering::Acquire)
                {
                    *g += 1;
                    g = shared.cv.wait(g).expect("pool condvar");
                    *g -= 1;
                }
                drop(g);
                spins = 0;
            }
        };
        seen = seq;
        let tag_un = seq << 1;
        let tag_cl = tag_un | 1;
        for i in 0..shared.claim.len() {
            match shared.claim[i].compare_exchange(
                tag_un,
                tag_cl,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // SAFETY: the successful Acquire CAS synchronizes with
                    // the main thread's Release store of this claim word,
                    // making the descriptor write visible; the descriptor
                    // stays frozen until `done` reaches `n`, which cannot
                    // happen before this tile's increment below.
                    let job = unsafe { *shared.job.get() };
                    debug_assert!(i < job.n);
                    // SAFETY: the claim gives exclusive access to tile `i`;
                    // the referents outlive the job window (see `JobDesc`).
                    let ctx = unsafe { &*job.ctx.cast::<PlanCtx<'_>>() };
                    let (ti, tk) = unsafe { *job.tiles.add(i) };
                    let plan = unsafe { &mut *job.plans.add(i) };
                    plan_tile(ctx, ti as usize, tk as usize, &mut scratch, plan);
                    shared.done.fetch_add(1, Ordering::Release);
                }
                // Claimed by a peer in this generation: keep scanning.
                Err(v) if v >> 1 == seq => {}
                // Stale tag: past the job's tile count, or the job moved on.
                Err(_) => continue 'outer,
            }
        }
    }
}
