//! Tile-parallel planning and epoch commit for
//! [`crate::SchedulerKind::Parallel`] (DESIGN.md §10, §14).
//!
//! One simulated cycle splits into a *plan* phase and a *commit* phase.
//! This module owns the plan phase — a pure, read-only pass over each
//! active tile that predicts admission and collects firing candidates —
//! plus the fixed worker pool that shards work across threads, plus the
//! *epoch commit*: a tile-local commit body that lets the commit phase
//! itself shard across workers when a tile's candidates are provably free
//! of global side effects. The merge that stitches epoch results back
//! into dense order lives in `engine.rs` (`phase4_parallel`).
//!
//! # Why the result is bit-identical to the dense scan
//!
//! The contract is: *the commit's gate-passing visits are exactly the
//! dense scan's gate-passing visits, in the same order.* Everything
//! observable follows, because every global side effect (fault-RNG draws,
//! event sequence numbers, memory request ids, junction budget
//! consumption, memory writes) happens inside `try_fire` after its gates
//! pass, and the commit drains candidates in (tile index, scan position)
//! ascending order — the dense iteration order.
//!
//! The candidate list only needs to be a **superset** of the dense firing
//! set (commit re-checks every gate; a spurious candidate just fails a
//! gate, with no side effects), but it must never *miss* a dense firing.
//! Gate by gate, against the frozen start-of-phase state:
//!
//! * **instance gate** (`fired < admitted`): exact. Admission is at most
//!   one instance per tile per cycle and is a pure function of frozen
//!   state (`admitted`, `completed`, `trip` change only in phases 1–3 or
//!   at this tile's own commit), so the plan predicts it exactly.
//! * **II gate** (`cycle >= ready_at`): exact; `ready_at` changes only at
//!   the node's own firing. Blocked nodes record their wake cycle into
//!   `next_wake` for the idle skip.
//! * **input gates**: exact. Every edge has a single consumer, pushes
//!   during phase 4 land invisible (`vis == u64::MAX`), and replies/
//!   completions only patch tokens in phases 1–2 — so each front token the
//!   dense scan would test is frozen. A visible front with the wrong
//!   instance is a detected hardware fault: the node is kept as a
//!   candidate so the commit raises `TokenMisorder` at the identical
//!   visit.
//! * **pending gate** (`pending < max_pending`): exact; retirements only
//!   happen in phases 1–2, issues only at the node's own firing.
//! * **output-space gate**: checked against a per-tile scratch copy of
//!   the arena's visible counts with every earlier candidate's pops
//!   applied. Candidate pops are a superset of dense pops and phase-4
//!   pushes don't count (invisible), so scratch ≤ dense pointwise:
//!   scratch-full ⇒ dense-full ⇒ exclusion is safe. Inclusion is
//!   re-checked at commit.
//! * **child-queue gate** (`TaskCall`): the child's queue only grows
//!   during phase 4, so a full snapshot means full at the dense visit;
//!   exclusion is safe, inclusion re-checked.
//! * **junction port budgets**: deliberately *not* modelled — budget is
//!   consumed at actual firings, and consuming it for a candidate the
//!   commit later rejects could wrongly starve a node the dense scan
//!   fires. Always include; the commit re-checks.
//! * **stuck set**: frozen for planning; a node is only stuck at its own
//!   visit, which the commit replays.
//!
//! Fault injection needs no per-shard RNG split: the `StuckHandshake`
//! roll happens only after *all* gates pass (including the junction gate
//! the plan skips), and the token-fault rolls happen per out-edge at
//! actual firings — both therefore consume the engine's single global
//! splitmix64 stream in exactly the dense order.
//!
//! # Epoch commit (DESIGN.md §14)
//!
//! A tile's plan is **local** when every candidate is a pure micro-op
//! (`IndVar`/`Merge`/`FusedAcc`/`Compute`/`Fused`/`Output`) with in-order
//! tokens. Firing such a candidate touches only the tile's own
//! `ActiveInv` (token arena, `fired`/`ready_at`/`pending`, accumulator
//! registers) plus four engine-global effects that all commute into a
//! deferred merge: the `fires`/`sched_visits` counters (summed per tile,
//! added in dense order), `last_progress` (idempotent: set to the one
//! current cycle), and completion-event scheduling (buffered per tile in
//! firing order, drained in dense tile order at the merge — reproducing
//! the sequential `ev_seq` assignment exactly, and safe to defer because
//! events land at `>= cycle + 1`, never in the current cycle). The engine
//! enables epoch commit only when fault injection is off (token-fault RNG
//! draws must stay in dense order) and the micro-op exec mode is active,
//! so `commit_local` mirrors `try_fire_uop`'s gates and `fire_uop`'s
//! effects for the pure opcodes — bit-for-bit, as the four-way
//! differential suite checks. Tiles whose plan is *not* local (memory,
//! calls, misordered tokens) commit sequentially at the merge, in their
//! dense slot, exactly as before.
//!
//! For pure `Compute`/`Fused` candidates the plan can also precompute the
//! output value from the frozen inputs, tagged with the instance so the
//! commit can validate it. Under epoch commit this is disabled
//! (`skip_pre`): the commit body evaluates on a worker anyway, so the
//! plan-phase evaluation would be pure double work.

use super::{ActiveInv, ElabTask, TaskState};
use crate::SimError;
use muir_core::accel::Accelerator;
use muir_core::compiled::{UopKind, SLOT_ARG, SLOT_CONST, SLOT_FEEDBACK, SLOT_PAYLOAD, SLOT_TAG};
use muir_core::node::NodeKind;
use muir_mir::value::Value;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Process-wide count of tile commits dispatched through the epoch path.
///
/// Pure engagement diagnostics — read via [`crate::epoch_tile_commits`] by
/// the `check.sh` gate that proves epoch commit actually engages at 2
/// threads. Never part of `SimStats` or any hash: it counts simulator
/// strategy, not hardware behaviour.
pub static EPOCH_TILE_COMMITS: AtomicU64 = AtomicU64::new(0);

/// One firing candidate: the node's scan position and, for pure compute
/// nodes, the precomputed `(instance, output value)`.
#[derive(Debug)]
pub(crate) struct Cand {
    pub pos: u32,
    pub pre: Option<(u64, Value)>,
}

/// The plan for one active tile: admission prediction, firing candidates
/// in scan order, the earliest known future wake (for the idle skip), and
/// whether every candidate is local (eligible for epoch commit).
#[derive(Debug)]
pub(crate) struct TilePlan {
    pub admit: bool,
    pub cands: Vec<Cand>,
    pub next_wake: u64,
    pub local: bool,
}

impl Default for TilePlan {
    fn default() -> Self {
        TilePlan {
            admit: false,
            cands: Vec::new(),
            next_wake: u64::MAX,
            local: true,
        }
    }
}

/// Read-only engine facts the plan phase needs. All references point at
/// engine state that is frozen for the duration of the plan phase.
pub(crate) struct PlanCtx<'e> {
    pub acc: &'e Accelerator,
    pub elab: &'e [ElabTask<'e>],
    pub tasks: &'e [TaskState],
    pub stuck: &'e HashSet<(usize, usize, usize)>,
    pub faults_on: bool,
    pub cycle: u64,
    pub window: u64,
    /// Skip the plan-phase `Compute`/`Fused` precompute (epoch commit
    /// evaluates on a worker anyway).
    pub skip_pre: bool,
}

/// Per-thread scratch shared by the plan and commit job bodies.
#[derive(Debug, Default)]
pub(crate) struct WorkerScratch {
    /// Plan: working copy of the arena's per-edge visible counts.
    vis: Vec<u32>,
    /// Commit: input-value buffer (mirrors `Engine::val_scratch`).
    vals: Vec<Value>,
    /// Commit: output-value buffer (mirrors `Engine::out_scratch`).
    outs: Vec<Value>,
}

/// Precompute the output value of a pure `Compute`/`Fused` candidate from
/// its frozen inputs. `None` when any input can't be assembled or the
/// evaluation fails — the commit then recomputes (and reproduces any
/// error at the dense visit).
fn precompute(
    ctx: &PlanCtx<'_>,
    ti: usize,
    inv: &ActiveInv,
    node: usize,
    k: u64,
) -> Option<(u64, Value)> {
    let df = &ctx.acc.tasks[ti].dataflow;
    let kind = &df.nodes[node].kind;
    if !matches!(kind, NodeKind::Compute(_) | NodeKind::Fused(_)) {
        return None;
    }
    let elab = &ctx.elab[ti];
    let in_data = &elab.in_data[node];
    let mut vals: Vec<Value> = Vec::with_capacity(in_data.len());
    for &ei in in_data.iter() {
        let src = df.edges[ei].src.0 as usize;
        if elab.is_static[src] {
            match &df.nodes[src].kind {
                NodeKind::Input { index } => vals.push(inv.args.get(*index as usize)?.clone()),
                NodeKind::Const(c) => vals.push(c.to_value()),
                _ => return None,
            }
        } else {
            // The input gate guaranteed a visible, instance-matching front.
            vals.push(inv.arena.front_value(ei)?.clone());
        }
    }
    let v = match kind {
        NodeKind::Compute(op) => super::eval_op(*op, &vals).ok()?,
        NodeKind::Fused(plan) => super::eval_fused(plan, &vals).ok()?,
        _ => unreachable!("matched above"),
    };
    Some((k, v))
}

/// Plan one active tile: a pure function of the frozen engine state (plus
/// a reusable scratch buffer), so it can run on any thread.
pub(crate) fn plan_tile(
    ctx: &PlanCtx<'_>,
    ti: usize,
    tk: usize,
    scratch: &mut WorkerScratch,
    out: &mut TilePlan,
) {
    out.cands.clear();
    out.next_wake = u64::MAX;
    out.admit = false;
    out.local = true;
    let Some(inv) = ctx.tasks[ti].tiles[tk].as_ref() else {
        return;
    };
    let elab = &ctx.elab[ti];
    let df = &ctx.acc.tasks[ti].dataflow;
    let cycle = ctx.cycle;
    // Mirror of `Engine::admit` on frozen state (exact, see module docs).
    let can = inv.admitted < inv.trip
        && if inv.serial {
            inv.completed == inv.admitted
        } else {
            inv.admitted - inv.completed < ctx.window
        };
    out.admit = can;
    let admitted_eff = inv.admitted + u64::from(can);
    let scratch_vis = &mut scratch.vis;
    scratch_vis.clear();
    scratch_vis.extend_from_slice(inv.arena.visible_counts());
    'nodes: for (pos, &node) in elab.order.iter().enumerate() {
        if elab.is_static[node] {
            continue;
        }
        if ctx.faults_on && ctx.stuck.contains(&(ti, tk, node)) {
            continue;
        }
        let k = inv.fired[node];
        if k >= admitted_eff {
            continue;
        }
        let ra = inv.ready_at[node];
        if cycle < ra {
            out.next_wake = out.next_wake.min(ra);
            continue;
        }
        let kind = &df.nodes[node].kind;
        let is_merge = matches!(kind, NodeKind::Merge);
        // Input gates, in the dense scan's edge order. A visible front with
        // the wrong instance stays a candidate: the commit must replay the
        // dense scan's `TokenMisorder` error at this exact visit.
        let mut misorder = false;
        for &ei in elab.in_data[node].iter().chain(elab.in_order[node].iter()) {
            let e = &df.edges[ei];
            if elab.is_static[e.src.0 as usize] {
                continue;
            }
            let expect = if is_merge && e.dst_port == 1 {
                if k == 0 {
                    continue;
                }
                k - 1
            } else {
                k
            };
            match inv.arena.front(ei) {
                Some((inst, vis)) if vis <= cycle => {
                    if inst != expect {
                        misorder = true;
                        break;
                    }
                }
                _ => continue 'nodes,
            }
        }
        if !misorder {
            if inv.pending[node] >= elab.max_pending[node] {
                continue;
            }
            let mut full = false;
            for &ei in elab.outs[node].iter() {
                if scratch_vis[ei] >= elab.cap[ei] {
                    full = true;
                    break;
                }
            }
            if full {
                continue;
            }
            if let NodeKind::TaskCall { callee, .. } = kind {
                let child = callee.0 as usize;
                if ctx.tasks[child].queue.len() >= ctx.elab[child].queue_cap {
                    continue;
                }
            }
            // Junction port budgets are deliberately not checked here (see
            // module docs); the commit re-checks them.
        }
        // Memory, calls, and misordered tokens have global side effects
        // (request ids, junction budgets, child queues, RNG, errors whose
        // order matters): they force this tile onto the sequential commit.
        if misorder
            || matches!(
                kind,
                NodeKind::Load { .. } | NodeKind::Store { .. } | NodeKind::TaskCall { .. }
            )
        {
            out.local = false;
        }
        let pre = if misorder || ctx.skip_pre {
            None
        } else {
            precompute(ctx, ti, inv, node, k)
        };
        out.cands.push(Cand {
            pos: pos as u32,
            pre,
        });
        if !misorder {
            // Mirror the pops this candidate would perform, so later
            // producers in the scan see the freed slots the dense scan
            // would. (Over-popping for a candidate the commit rejects only
            // widens the superset — exclusions stay safe.)
            for &ei in elab.in_data[node].iter() {
                let e = &df.edges[ei];
                if elab.is_static[e.src.0 as usize] {
                    continue;
                }
                if is_merge && e.dst_port == 1 && k == 0 {
                    continue;
                }
                scratch_vis[ei] = scratch_vis[ei].saturating_sub(1);
            }
            for &ei in elab.in_order[node].iter() {
                if elab.is_static[df.edges[ei].src.0 as usize] {
                    continue;
                }
                scratch_vis[ei] = scratch_vis[ei].saturating_sub(1);
            }
        }
    }
}

/// Read-only engine facts the epoch commit needs (everything else it
/// touches lives inside the tile's own `ActiveInv`).
pub(crate) struct CommitCtx<'e> {
    pub elab: &'e [ElabTask<'e>],
    pub cycle: u64,
    pub window: u64,
}

/// One epoch-commit work item: the tile's invocation state and its plan.
/// Raw pointers for the same reason as [`JobDesc`]; each item's `inv` is
/// distinct (one per tile), so claimed items never alias.
#[derive(Clone, Copy)]
pub(crate) struct CommitItem {
    pub ti: u32,
    pub inv: *mut ActiveInv,
    pub plan: *const TilePlan,
}

/// The deferred global effects of one tile's epoch commit, merged into
/// the engine in dense tile order by `phase4_parallel`.
#[derive(Debug, Default)]
pub(crate) struct CommitOut {
    /// Successful firings (merged into `Engine::fires`).
    pub fires: u64,
    /// Candidate visits (merged into `Engine::sched_visits`).
    pub visits: u64,
    /// Whether admission or a firing happened (`last_progress = cycle`).
    pub progressed: bool,
    /// A candidate failed a commit-time gate (blocks the idle skip).
    pub shortfall: bool,
    /// Earliest `ready_at` among fired nodes with remaining instances.
    pub min_ready: u64,
    /// Buffered completion events `(at, node, instance)` in firing order;
    /// all `at >= cycle + 1`, so deferring them to the merge is invisible.
    pub events: Vec<(u64, u32, u64)>,
    /// First evaluation error, at the candidate that raised it.
    pub err: Option<(u32, SimError)>,
}

/// Commit one *local* tile: mirror of `Engine::admit` plus
/// `try_fire_uop`/`fire_uop` restricted to the pure opcodes, buffering
/// every engine-global effect into `out`. Runs on any thread — the only
/// state it mutates is the tile's own `ActiveInv` and `out`.
pub(crate) fn commit_local(
    ctx: &CommitCtx<'_>,
    ti: usize,
    inv: &mut ActiveInv,
    plan: &TilePlan,
    out: &mut CommitOut,
    values: &mut Vec<Value>,
    out_values: &mut Vec<Value>,
) {
    out.fires = 0;
    out.visits = 0;
    out.progressed = false;
    out.shortfall = false;
    out.min_ready = u64::MAX;
    out.events.clear();
    out.err = None;
    let elab = &ctx.elab[ti];
    // Mirror of `Engine::admit` (tile-local state only).
    let can = inv.admitted < inv.trip
        && if inv.serial {
            inv.completed == inv.admitted
        } else {
            inv.admitted - inv.completed < ctx.window
        };
    debug_assert_eq!(can, plan.admit, "plan admission prediction diverged");
    if can {
        debug_assert_eq!(
            inv.admitted,
            inv.completed + inv.outstanding.len() as u64,
            "outstanding ring out of sync"
        );
        inv.admitted += 1;
        inv.outstanding.push_back(elab.dynamic_count);
        out.progressed = true;
    }
    for c in plan.cands.iter() {
        debug_assert!(c.pre.is_none(), "precompute is skipped under epoch commit");
        let node = elab.order[c.pos as usize];
        out.visits += 1;
        match fire_local(ctx, ti, inv, node, out, values, out_values) {
            Ok(true) => {
                out.fires += 1;
                out.progressed = true;
                if inv.fired[node] < inv.admitted {
                    out.min_ready = out.min_ready.min(inv.ready_at[node]);
                }
            }
            Ok(false) => out.shortfall = true,
            Err(e) => {
                out.err = Some((node as u32, e));
                return;
            }
        }
    }
}

/// Gate-check and fire one pure micro-op on a worker thread: the exact
/// subset of `try_fire_uop`/`fire_uop` reachable for
/// `IndVar`/`Merge`/`FusedAcc`/`Compute`/`Fused`/`Output` with faults
/// off, no tracing, and the parallel scheduler (no ready-wake lists).
/// Returns `Ok(true)` when the node fired, `Ok(false)` on a failed gate.
fn fire_local(
    ctx: &CommitCtx<'_>,
    ti: usize,
    inv: &mut ActiveInv,
    node: usize,
    out: &mut CommitOut,
    values: &mut Vec<Value>,
    out_values: &mut Vec<Value>,
) -> Result<bool, SimError> {
    let elab = &ctx.elab[ti];
    let ct = elab.ct;
    let cycle = ctx.cycle;
    let uop = ct.uops[node];
    debug_assert!(
        matches!(
            uop.kind,
            UopKind::IndVar
                | UopKind::Merge
                | UopKind::FusedAcc
                | UopKind::Compute
                | UopKind::Fused
                | UopKind::Output
        ),
        "non-local opcode in epoch commit"
    );
    let k = inv.fired[node];
    if k >= inv.admitted || cycle < inv.ready_at[node] {
        return Ok(false);
    }
    let slots = &ct.in_slots[uop.slot0 as usize..uop.slot0 as usize + uop.nin as usize];
    let erefs = &ct.edge_refs
        [uop.ebase as usize..uop.ebase as usize + uop.nord as usize + uop.nout as usize];
    // Input gates. A wrong-instance front is impossible without fault
    // injection (single consumer, in-order pushes), and epoch commit only
    // runs with faults off.
    for &s in slots {
        let ei = (s & SLOT_PAYLOAD) as usize;
        match s & SLOT_TAG {
            SLOT_ARG | SLOT_CONST => {}
            SLOT_FEEDBACK => {
                if k == 0 {
                    continue;
                }
                match inv.arena.front(ei) {
                    Some((inst, vis)) if vis <= cycle => {
                        debug_assert_eq!(inst, k - 1, "token misorder without faults");
                    }
                    _ => return Ok(false),
                }
            }
            _ => match inv.arena.front(ei) {
                Some((inst, vis)) if vis <= cycle => {
                    debug_assert_eq!(inst, k, "token misorder without faults");
                }
                _ => return Ok(false),
            },
        }
    }
    for &er in &erefs[..uop.nord as usize] {
        match inv.arena.front(er as usize) {
            Some((inst, vis)) if vis <= cycle => {
                debug_assert_eq!(inst, k, "token misorder without faults");
            }
            _ => return Ok(false),
        }
    }
    if inv.pending[node] >= elab.max_pending[node] {
        return Ok(false);
    }
    for &er in &erefs[uop.nord as usize..] {
        let ei = er as usize;
        if inv.arena.visible(ei) >= elab.cap[ei] {
            return Ok(false);
        }
    }
    // Fire.
    values.clear();
    out_values.clear();
    for &s in slots {
        let p = (s & SLOT_PAYLOAD) as usize;
        match s & SLOT_TAG {
            SLOT_ARG => values.push(
                inv.args
                    .get(p)
                    .cloned()
                    .ok_or_else(|| SimError::eval(format!("missing argument {p}")))?,
            ),
            SLOT_CONST => values.push(ct.consts[p].clone()),
            SLOT_FEEDBACK if k == 0 => values.push(Value::Poison), // unused at instance 0
            _ => {
                if inv.arena.len(p) == 0 {
                    return Err(SimError::eval(format!("missing token on edge e{p}")));
                }
                values.push(inv.arena.pop(p));
            }
        }
    }
    for &er in &erefs[..uop.nord as usize] {
        inv.arena.pop(er as usize);
    }
    let timing = elab.timing[node];
    match uop.kind {
        UopKind::IndVar => out_values.push(Value::Int(inv.lo + k as i64 * inv.step)),
        UopKind::Merge => {
            let v = if k == 0 {
                values[0].clone()
            } else {
                values[1].clone()
            };
            out_values.push(v);
        }
        UopKind::FusedAcc => {
            let base = if k == 0 {
                values[0].clone()
            } else {
                inv.acc_state[node]
                    .clone()
                    .ok_or_else(|| SimError::eval("accumulator state missing"))?
            };
            let r = super::eval_op(uop.op, &[base, values[1].clone()])?;
            inv.acc_state[node] = Some(r.clone());
            out_values.push(r);
        }
        UopKind::Compute => out_values.push(super::eval_op(uop.op, values)?),
        UopKind::Fused => {
            out_values.push(super::eval_fused(&ct.fused_plans[uop.a as usize], values)?);
        }
        UopKind::Output => inv.last_output = values.clone(),
        _ => unreachable!("non-local opcode in epoch commit"),
    }
    for &er in &erefs[uop.nord as usize..] {
        let ei = er as usize;
        let m = ct.edge_meta[ei];
        let value = if m.is_order {
            Value::Bool(true)
        } else {
            out_values
                .get(m.src_port as usize)
                .cloned()
                .unwrap_or(Value::Bool(true))
        };
        inv.arena.push(ei, k, value);
    }
    inv.fired[node] = k + 1;
    inv.ready_at[node] = cycle + timing.ii as u64;
    inv.pending[node] += 1;
    // Mirror of `fire_uop`'s completion scheduling, deferred to the merge.
    out.events.push((
        (cycle + timing.latency as u64).max(cycle + 1),
        node as u32,
        k,
    ));
    Ok(true)
}

/// Run one commit item inline (the single-item case skips the pool
/// handoff; the result is identical by construction).
///
/// The caller must hold exclusive access to the item's tile for the
/// duration of the call (`phase4_parallel` does: the commit items are
/// built from distinct live tiles and nothing else touches them until the
/// merge).
pub(crate) fn commit_item(
    ctx: &CommitCtx<'_>,
    item: &CommitItem,
    out: &mut CommitOut,
    scratch: &mut WorkerScratch,
) {
    // SAFETY: see doc comment — exclusive access is the caller's contract.
    let inv = unsafe { &mut *item.inv };
    let plan = unsafe { &*item.plan };
    commit_local(
        ctx,
        item.ti as usize,
        inv,
        plan,
        out,
        &mut scratch.vals,
        &mut scratch.outs,
    );
}

/// Which job body the pool is currently running.
#[derive(Clone, Copy)]
enum JobKind {
    Plan,
    Commit,
}

/// A job handed to the worker pool: raw pointers because worker threads
/// are `'static` while the engine state is not. The pointers are only
/// dereferenced between job publication and the main thread's completion
/// wait, during which `Pool::submit`'s caller borrows pin the referents.
#[derive(Clone, Copy)]
struct JobDesc {
    kind: JobKind,
    ctx: *const (),
    items: *const (),
    out: *mut (),
    n: usize,
}

/// Execute item `i` of `job` with this thread's scratch.
///
/// # Safety
/// The caller must hold the generation claim for item `i`, which makes
/// the descriptor write visible and grants exclusive access to
/// `out[i]` (and, for commit jobs, the item's tile).
unsafe fn run_item(job: &JobDesc, i: usize, scratch: &mut WorkerScratch) {
    match job.kind {
        JobKind::Plan => {
            let ctx = &*job.ctx.cast::<PlanCtx<'_>>();
            let (ti, tk) = *job.items.cast::<(u32, u32)>().add(i);
            let plan = &mut *job.out.cast::<TilePlan>().add(i);
            plan_tile(ctx, ti as usize, tk as usize, scratch, plan);
        }
        JobKind::Commit => {
            let ctx = &*job.ctx.cast::<CommitCtx<'_>>();
            let item = *job.items.cast::<CommitItem>().add(i);
            let out = &mut *job.out.cast::<CommitOut>().add(i);
            commit_item(ctx, &item, out, scratch);
        }
    }
}

/// State shared between the main thread and the workers.
///
/// Handoff protocol (generation-tagged claims): for job generation `s`,
/// `claim[i]` holds `s << 1` while item `i` is unclaimed and `s << 1 | 1`
/// once claimed. A worker acquires item `i` with a CAS; a failed CAS
/// whose observed generation differs from `s` means the job has moved on
/// (or `i >= n`), so stale workers can never burn a later job's claims.
/// The job descriptor is read only *after* a successful CAS: the main
/// thread's Release store of the fresh claim word (written after the
/// descriptor) synchronizes-with the worker's Acquire CAS, and the
/// descriptor is never rewritten until every claim of the current job has
/// been consumed and counted in `done`.
struct Shared {
    seq: AtomicU64,
    quit: AtomicBool,
    done: AtomicUsize,
    job: std::cell::UnsafeCell<JobDesc>,
    claim: Box<[AtomicU64]>,
    parked: Mutex<u32>,
    cv: Condvar,
}

// SAFETY: `job` is the only non-Sync field; the claim protocol above
// guarantees it is never read while it may be written.
unsafe impl Sync for Shared {}
// SAFETY: the raw pointers inside `job` are only dereferenced within the
// window in which `Pool::submit`'s caller borrows keep them alive.
unsafe impl Send for Shared {}

/// Fixed pool of plan/commit workers, created once per engine. The main
/// thread participates in every job, so `Pool::new(0, _)` still works
/// (and a one-thread configuration never constructs a pool at all).
pub(crate) struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// A pool with `extra_workers` background threads and claim capacity
    /// for `max_tiles` items (the accelerator's total tile count, fixed at
    /// elaboration; commit jobs never exceed the active tile count).
    pub(crate) fn new(extra_workers: usize, max_tiles: usize) -> Pool {
        let shared = Arc::new(Shared {
            seq: AtomicU64::new(0),
            quit: AtomicBool::new(false),
            done: AtomicUsize::new(0),
            job: std::cell::UnsafeCell::new(JobDesc {
                kind: JobKind::Plan,
                ctx: std::ptr::null(),
                items: std::ptr::null(),
                out: std::ptr::null_mut(),
                n: 0,
            }),
            claim: (0..max_tiles.max(1)).map(|_| AtomicU64::new(0)).collect(),
            parked: Mutex::new(0),
            cv: Condvar::new(),
        });
        let handles = (0..extra_workers)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("muir-sim-worker".into())
                    .spawn(move || worker(&sh))
                    .expect("spawn sim worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Plan all `tiles` into `plans`, sharded across the pool. Blocks
    /// until every plan is complete.
    pub(crate) fn plan(
        &self,
        ctx: &PlanCtx<'_>,
        tiles: &[(u32, u32)],
        plans: &mut [TilePlan],
        scratch: &mut WorkerScratch,
    ) {
        debug_assert_eq!(tiles.len(), plans.len());
        self.submit(
            JobDesc {
                kind: JobKind::Plan,
                ctx: (ctx as *const PlanCtx<'_>).cast(),
                items: tiles.as_ptr().cast(),
                out: plans.as_mut_ptr().cast(),
                n: tiles.len(),
            },
            scratch,
        );
    }

    /// Epoch-commit all local `items` into `outs`, sharded across the
    /// pool. Blocks until every commit is complete.
    pub(crate) fn commit(
        &self,
        ctx: &CommitCtx<'_>,
        items: &[CommitItem],
        outs: &mut [CommitOut],
        scratch: &mut WorkerScratch,
    ) {
        debug_assert_eq!(items.len(), outs.len());
        self.submit(
            JobDesc {
                kind: JobKind::Commit,
                ctx: (ctx as *const CommitCtx<'_>).cast(),
                items: items.as_ptr().cast(),
                out: outs.as_mut_ptr().cast(),
                n: items.len(),
            },
            scratch,
        );
    }

    /// Publish `desc`, participate in draining its items, and wait for
    /// completion (see `Shared` for the handoff protocol).
    fn submit(&self, desc: JobDesc, scratch: &mut WorkerScratch) {
        let n = desc.n;
        debug_assert!(n <= self.shared.claim.len());
        let s = &*self.shared;
        let seq = s.seq.load(Ordering::Relaxed) + 1;
        // SAFETY: the previous job (if any) is fully drained — `submit`
        // returned only after `done == n`, and a worker increments `done`
        // strictly after its last read of the descriptor — so no thread
        // can be reading `job` now.
        unsafe {
            *s.job.get() = desc;
        }
        s.done.store(0, Ordering::Relaxed);
        let tag_un = seq << 1;
        let tag_cl = tag_un | 1;
        // Release: publishes the descriptor to whoever claims the item.
        for c in &s.claim[..n] {
            c.store(tag_un, Ordering::Release);
        }
        {
            // Publish the generation under the park mutex so a worker
            // deciding to park cannot miss the wakeup.
            let g = s.parked.lock().expect("pool mutex");
            s.seq.store(seq, Ordering::Release);
            if *g > 0 {
                s.cv.notify_all();
            }
        }
        // Participate: claim items alongside the workers.
        for i in 0..n {
            if s.claim[i]
                .compare_exchange(tag_un, tag_cl, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: the claim grants exclusive access to item `i`,
                // and the caller's borrows keep the referents alive.
                unsafe { run_item(&desc, i, scratch) };
                s.done.fetch_add(1, Ordering::Release);
            }
        }
        // The tail wait is bounded by one item's work.
        while s.done.load(Ordering::Acquire) < n {
            std::hint::spin_loop();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.quit.store(true, Ordering::Release);
        {
            let _g = self.shared.parked.lock().expect("pool mutex");
            self.shared.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Worker loop: spin briefly for the next job generation, then yield, then
/// park on the condvar; claim and run items until the generation moves on.
fn worker(shared: &Shared) {
    let mut scratch = WorkerScratch::default();
    let mut seen = 0u64;
    'outer: loop {
        let mut spins = 0u32;
        let seq = loop {
            if shared.quit.load(Ordering::Acquire) {
                return;
            }
            let s = shared.seq.load(Ordering::Acquire);
            if s != seen {
                break s;
            }
            spins += 1;
            if spins < 1 << 14 {
                std::hint::spin_loop();
            } else if spins < (1 << 14) + 64 {
                std::thread::yield_now();
            } else {
                let mut g = shared.parked.lock().expect("pool mutex");
                // Re-check under the lock: `submit` publishes `seq` under
                // the same lock, so this cannot miss a notify.
                if shared.seq.load(Ordering::Acquire) == seen
                    && !shared.quit.load(Ordering::Acquire)
                {
                    *g += 1;
                    g = shared.cv.wait(g).expect("pool condvar");
                    *g -= 1;
                }
                drop(g);
                spins = 0;
            }
        };
        seen = seq;
        let tag_un = seq << 1;
        let tag_cl = tag_un | 1;
        for i in 0..shared.claim.len() {
            match shared.claim[i].compare_exchange(
                tag_un,
                tag_cl,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // SAFETY: the successful Acquire CAS synchronizes with
                    // the main thread's Release store of this claim word,
                    // making the descriptor write visible; the descriptor
                    // stays frozen until `done` reaches `n`, which cannot
                    // happen before this item's increment below.
                    let job = unsafe { *shared.job.get() };
                    debug_assert!(i < job.n);
                    // SAFETY: the claim gives exclusive access to item `i`;
                    // the referents outlive the job window (see `JobDesc`).
                    unsafe { run_item(&job, i, &mut scratch) };
                    shared.done.fetch_add(1, Ordering::Release);
                }
                // Claimed by a peer in this generation: keep scanning.
                Err(v) if v >> 1 == seq => {}
                // Stale tag: past the job's item count, or the job moved on.
                Err(_) => continue 'outer,
            }
        }
    }
}
