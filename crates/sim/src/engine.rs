//! The cycle engine: executes a μIR accelerator graph under the paper's
//! execution model (§3.2):
//!
//! * the whole accelerator is a graph of concurrently running task blocks,
//!   each with a hardware issue queue and `tiles` replicated execution
//!   units;
//! * within a task, execution is a pipelined latency-insensitive dataflow:
//!   nodes handshake over bounded ready/valid edges, arbitrary buffering
//!   may be inserted, and multiple invocations/iterations are in flight;
//! * invocations complete in order (§3.2: unlike tagged dataflow);
//! * memory transits through junctions (per-cycle port limits) to banked
//!   structures; the databox slices typed accesses into element
//!   transactions and coalesces responses (§3.4).
//!
//! The engine is *functional*: nodes compute real values (via the `mir`
//! evaluators) and loads/stores access a real memory image, so every run is
//! checked against the reference interpreter.

use crate::error::{
    BufferSuggestion, ChannelState, DeadlockReport, FaultKind, StuckTile, WaitEdge,
};
use crate::fault::{Ecc, FaultClass, Injector};
use crate::memory::{DramModel, MemRequest, StructModel};
use crate::trace::{Observer, SimProfile, StallReason, Trace};
use crate::{SimConfig, SimError, SimStats};
use muir_core::accel::{Accelerator, ArgExpr, ResultInit, TaskKind};
use muir_core::dataflow::EdgeKind;
use muir_core::hw;
use muir_core::node::{FusedInput, NodeKind, OpKind};
use muir_core::structure::StructureKind;
use muir_mir::instr::BinOp;
use muir_mir::interp::{eval_bin, eval_cmp, eval_tensor, eval_un, Memory};
use muir_mir::value::Value;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Fault classes injected at the engine's ready/valid edges (the rest are
/// owned by the memory models).
const ENGINE_FAULTS: [FaultClass; 4] = [
    FaultClass::TokenBitFlip,
    FaultClass::TokenDrop,
    FaultClass::TokenDup,
    FaultClass::StuckHandshake,
];

/// A token on an edge queue.
#[derive(Debug, Clone)]
struct Tok {
    instance: u64,
    value: Value,
    visible_at: Option<u64>,
}

/// Where a blocking call's response must be delivered.
#[derive(Debug, Clone)]
struct ReplyTo {
    task: usize,
    tile: usize,
    uid: u64,
    node: usize,
    instance: u64,
}

/// A queued task invocation.
#[derive(Debug, Clone)]
struct Invocation {
    uid: u64,
    args: Vec<Value>,
    reply: Option<ReplyTo>,
    spawn_parent: Option<(usize, u64)>,
}

/// Per-invocation runtime state on one execution tile.
#[derive(Debug)]
struct ActiveInv {
    uid: u64,
    args: Vec<Value>,
    reply: Option<ReplyTo>,
    spawn_parent: Option<(usize, u64)>,
    trip: u64,
    lo: i64,
    step: i64,
    serial: bool,
    admitted: u64,
    completed: u64,
    fired: Vec<u64>,
    ready_at: Vec<u64>,
    /// In-flight (issued, not yet completed) firings per node — the
    /// databox entries of §3.4 for memory nodes, pipeline occupancy for
    /// function units.
    pending: Vec<u32>,
    edge_q: Vec<VecDeque<Tok>>,
    outstanding: HashMap<u64, u32>,
    spawns_outstanding: u32,
    last_output: Vec<Value>,
    /// Internal accumulator registers of `FusedAcc` units.
    acc_state: Vec<Option<Value>>,
}

/// Pre-elaborated, immutable view of one task's dataflow.
#[derive(Debug)]
struct ElabTask {
    /// Whether each node is static (Input/Const: invocation-constant).
    is_static: Vec<bool>,
    /// Count of dynamic nodes (each fires once per instance).
    dynamic_count: u32,
    /// Node processing order: consumers before producers (reverse topo over
    /// forward edges) so single-token edges sustain II=1.
    order: Vec<usize>,
    /// Per node: indices of incoming data/feedback edges sorted by port.
    in_data: Vec<Vec<usize>>,
    /// Per node: indices of incoming order edges.
    in_order: Vec<Vec<usize>>,
    /// Per node: indices of outgoing (non-static-src) edges.
    outs: Vec<Vec<usize>>,
    /// Per node timing.
    timing: Vec<hw::Timing>,
    /// Per node bound on in-flight firings (databox entries for memory
    /// transit nodes; effectively unbounded for pipelined function units).
    max_pending: Vec<u32>,
    /// Queue capacity for invocations (issue queue + `<||>` FIFO).
    queue_cap: usize,
}

#[derive(Debug)]
struct TaskState {
    queue: VecDeque<Invocation>,
    tiles: Vec<Option<ActiveInv>>,
    invocations: u64,
    busy_cycles: u64,
}

#[derive(Debug)]
enum Ev {
    NodeDone {
        task: usize,
        tile: usize,
        uid: u64,
        node: usize,
        instance: u64,
    },
    Reply {
        to: ReplyTo,
        results: Vec<Value>,
    },
}

#[derive(Debug, Clone)]
struct MemPending {
    task: usize,
    tile: usize,
    uid: u64,
    node: usize,
    instance: u64,
}

/// The simulator.
pub struct Engine<'a> {
    acc: &'a Accelerator,
    cfg: &'a SimConfig,
    mem: &'a mut Memory,
    elab: Vec<ElabTask>,
    tasks: Vec<TaskState>,
    structs: Vec<StructModel>,
    dram: DramModel,
    dram_idx: Option<usize>,
    events: BTreeMap<u64, Vec<Ev>>,
    req_map: HashMap<u64, MemPending>,
    next_req: u64,
    next_uid: u64,
    cycle: u64,
    last_progress: u64,
    root_result: Option<Vec<Value>>,
    fires: u64,
    task_invocations: Vec<u64>,
    faults: Injector,
    faults_on: bool,
    /// Nodes whose output handshake was stuck by fault injection:
    /// (task, tile, node). A stuck node never fires again.
    stuck: HashSet<(usize, usize, usize)>,
    /// Observability recorder (`None` unless tracing is enabled). The
    /// observer only *reads* engine facts — it never feeds back into
    /// simulation state, so enabling it cannot change cycle counts.
    obs: Option<Box<Observer>>,
}

impl<'a> Engine<'a> {
    /// Elaborate the accelerator into a runnable model.
    pub fn new(acc: &'a Accelerator, mem: &'a mut Memory, cfg: &'a SimConfig) -> Engine<'a> {
        let elab: Vec<ElabTask> = acc
            .task_ids()
            .map(|tid| {
                let task = acc.task(tid);
                let df = &task.dataflow;
                let n = df.nodes.len();
                let is_static: Vec<bool> = df
                    .nodes
                    .iter()
                    .map(|nd| matches!(nd.kind, NodeKind::Input { .. } | NodeKind::Const(_)))
                    .collect();
                let mut in_data = vec![Vec::new(); n];
                let mut in_order = vec![Vec::new(); n];
                let mut outs = vec![Vec::new(); n];
                for (ei, e) in df.edges.iter().enumerate() {
                    match e.kind {
                        EdgeKind::Order => in_order[e.dst.0 as usize].push(ei),
                        _ => in_data[e.dst.0 as usize].push(ei),
                    }
                    if !is_static[e.src.0 as usize] {
                        outs[e.src.0 as usize].push(ei);
                    }
                }
                for v in &mut in_data {
                    v.sort_by_key(|&ei| df.edges[ei].dst_port);
                }
                // Reverse topological order over forward (non-feedback)
                // edges: consumers first.
                let order = reverse_topo(df);
                let timing: Vec<hw::Timing> = df
                    .nodes
                    .iter()
                    .map(|nd| hw::node_timing(&nd.kind, nd.ty, cfg.period_ns))
                    .collect();
                let conn_q = acc
                    .task_conns
                    .iter()
                    .find(|c| c.child == tid)
                    .map(|c| c.queue_depth)
                    .unwrap_or(1);
                let dynamic_count = is_static.iter().filter(|s| !**s).count() as u32;
                let max_pending: Vec<u32> = df
                    .nodes
                    .iter()
                    .map(|nd| match nd.kind {
                        NodeKind::Load { .. } | NodeKind::Store { .. } => cfg.databox_entries,
                        NodeKind::TaskCall { .. } => 16,
                        _ => u32::MAX,
                    })
                    .collect();
                ElabTask {
                    is_static,
                    dynamic_count,
                    order,
                    in_data,
                    in_order,
                    outs,
                    timing,
                    max_pending,
                    queue_cap: (task.queue_depth + conn_q) as usize,
                }
            })
            .collect();
        let tasks = acc
            .tasks
            .iter()
            .map(|t| TaskState {
                queue: VecDeque::new(),
                tiles: (0..t.tiles.max(1)).map(|_| None).collect(),
                invocations: 0,
                busy_cycles: 0,
            })
            .collect();
        let mut structs: Vec<StructModel> = acc.structures.iter().map(StructModel::new).collect();
        for (si, st) in structs.iter_mut().enumerate() {
            st.arm_faults(&cfg.faults, si as u64);
        }
        let dram_idx = acc
            .structures
            .iter()
            .position(|s| matches!(s.kind, StructureKind::Dram { .. }));
        let mut dram = DramModel::new(dram_idx.map(|i| &acc.structures[i].kind));
        dram.arm_faults(&cfg.faults);
        let faults = Injector::new(&cfg.faults, 0x0e5e_0001, &ENGINE_FAULTS);
        let faults_on = faults.active();
        let obs = cfg.trace.enabled.then(|| Box::new(Observer::new(acc, cfg)));
        let ntasks = acc.tasks.len();
        Engine {
            acc,
            cfg,
            mem,
            elab,
            tasks,
            structs,
            dram,
            dram_idx,
            events: BTreeMap::new(),
            req_map: HashMap::new(),
            next_req: 1,
            next_uid: 1,
            cycle: 0,
            last_progress: 0,
            root_result: None,
            fires: 0,
            task_invocations: vec![0; ntasks],
            faults,
            faults_on,
            stuck: HashSet::new(),
            obs,
        }
    }

    /// Run the root task once with `args`; returns (cycles, results, stats,
    /// observability artifacts when tracing was enabled).
    ///
    /// # Errors
    /// Deadlock (no progress), cycle-limit exhaustion, or a functional
    /// fault (out-of-bounds access on a live path).
    #[allow(clippy::type_complexity)]
    pub fn run(
        mut self,
        args: &[Value],
    ) -> Result<(u64, Vec<Value>, SimStats, Option<(SimProfile, Trace)>), SimError> {
        // DMA model (§3.2: scratchpads are DMA-managed): streaming the
        // read-only inputs into scratchpads costs DRAM bandwidth up front;
        // draining written scratchpad objects costs bandwidth at the end.
        let (fill, drain) = self.dma_elems();
        let (lat, bw) = match self.dram_idx.map(|i| &self.acc.structures[i].kind) {
            Some(StructureKind::Dram {
                latency,
                elems_per_cycle,
            }) => (*latency as u64, (*elems_per_cycle).max(1) as u64),
            _ => (40, 8),
        };
        // Scratchpad DMA is double-buffered: inbound streams overlap with
        // compute, so only the first burst is exposed; the outbound drain
        // likewise overlaps except its tail.
        let burst = 4 * bw;
        let fill_delay = if fill > 0 {
            lat + fill.min(burst).div_ceil(bw)
        } else {
            0
        };
        let drain_delay = if drain > 0 {
            lat + drain.min(burst).div_ceil(bw)
        } else {
            0
        };

        let root = self.acc.root.0 as usize;
        let uid = self.fresh_uid();
        self.tasks[root].queue.push_back(Invocation {
            uid,
            args: args.to_vec(),
            reply: None,
            spawn_parent: None,
        });
        self.cycle = fill_delay;
        self.last_progress = fill_delay;
        while self.root_result.is_none() {
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimError::CycleLimitExhausted {
                    limit: self.cfg.max_cycles,
                });
            }
            if self.cycle - self.last_progress > self.cfg.deadlock_cycles {
                return Err(SimError::Deadlock {
                    cycle: self.cycle,
                    report: Box::new(self.diagnose_deadlock()),
                });
            }
            self.step()?;
        }
        // Whatever the dataflow achieved, the run can never beat the AXI
        // channel: all scratchpad streams must cross it once.
        let stream_floor = lat + (fill + drain).div_ceil(bw);
        let cycles = (self.cycle + drain_delay).max(stream_floor);
        let results = self.root_result.take().unwrap_or_default();
        let stats = self.collect_stats(cycles);
        let observed = self
            .obs
            .take()
            .map(|o| o.finish(cycles, &stats.struct_stats));
        Ok((cycles, results, stats, observed))
    }

    /// Elements DMA'd into scratchpads before launch (read-only inputs) and
    /// drained out after completion (written objects).
    fn dma_elems(&self) -> (u64, u64) {
        let mut fill = 0;
        let mut drain = 0;
        for st in &self.acc.structures {
            if !matches!(st.kind, StructureKind::Scratchpad { .. }) {
                continue;
            }
            for obj in &st.objects {
                let Some(&(len, ro)) = self.acc.object_info.get(obj.0 as usize) else {
                    continue;
                };
                if ro {
                    fill += len;
                } else {
                    fill += len; // outputs are zero/limit-initialised too
                    drain += len;
                }
            }
        }
        (fill, drain)
    }

    fn collect_stats(&self, cycles: u64) -> SimStats {
        let mut faults = self.faults.counts;
        for s in &self.structs {
            faults.merge(&s.fault_counts());
        }
        faults.merge(&self.dram.fault_counts());
        SimStats {
            cycles,
            fires: self.fires,
            task_invocations: self.task_invocations.clone(),
            task_busy_cycles: self.tasks.iter().map(|t| t.busy_cycles).collect(),
            struct_stats: self.structs.iter().map(|s| s.stats).collect(),
            dram_fills: self.dram.fills,
            faults,
        }
    }

    /// Walk the blocked-channel wait-for graph and diagnose the stall.
    ///
    /// Every node that still has instances to fire contributes wait-for
    /// edges: an *empty* input channel makes it wait on its producer; a
    /// *full* output channel makes it wait on its consumer. A cycle over
    /// these edges is the deadlock's root cause; if one of the cycle's
    /// channels is full, growing that buffer breaks the cycle, and the
    /// report says exactly which edge and to what depth.
    fn diagnose_deadlock(&self) -> DeadlockReport {
        let cycle = self.cycle;
        let mut vertices: Vec<V> = Vec::new();
        let mut waits: HashMap<V, Vec<W>> = HashMap::new();
        let mut report = DeadlockReport {
            mem_outstanding: self.req_map.len() as u32,
            stuck_nodes: {
                let mut sn: Vec<(u32, u32)> = self
                    .stuck
                    .iter()
                    .map(|&(ti, _, n)| (ti as u32, n as u32))
                    .collect();
                sn.sort_unstable();
                sn.dedup();
                sn
            },
            ..DeadlockReport::default()
        };
        for (ti, t) in self.tasks.iter().enumerate() {
            let df = &self.acc.tasks[ti].dataflow;
            let name = &self.acc.tasks[ti].name;
            if !t.queue.is_empty() {
                report.queued.push((ti as u32, t.queue.len()));
            }
            for (tk, tile) in t.tiles.iter().enumerate() {
                let Some(inv) = tile else { continue };
                report.stuck_tiles.push(StuckTile {
                    task: ti as u32,
                    task_name: name.clone(),
                    tile: tk as u32,
                    trip: inv.trip,
                    admitted: inv.admitted,
                    completed: inv.completed,
                    spawns_outstanding: inv.spawns_outstanding,
                });
                for node in 0..df.nodes.len() {
                    if self.elab[ti].is_static[node] || self.stuck.contains(&(ti, tk, node)) {
                        continue;
                    }
                    let k = inv.fired[node];
                    if k >= inv.admitted {
                        continue; // waiting for admission, not a channel
                    }
                    let me: V = (ti, tk, node);
                    let mut out: Vec<W> = Vec::new();
                    // Empty input channels: waiting on the producer.
                    let is_merge = matches!(df.nodes[node].kind, NodeKind::Merge);
                    for &ei in self.elab[ti].in_data[node]
                        .iter()
                        .chain(&self.elab[ti].in_order[node])
                    {
                        let e = &df.edges[ei];
                        if self.elab[ti].is_static[e.src.0 as usize] {
                            continue;
                        }
                        if is_merge && e.dst_port == 1 && k == 0 {
                            continue;
                        }
                        let has = inv.edge_q[ei]
                            .front()
                            .is_some_and(|t| t.visible_at.is_some_and(|v| v <= cycle));
                        if !has {
                            out.push(W {
                                to: (ti, tk, e.src.0 as usize),
                                edge: WaitEdge {
                                    task: ti as u32,
                                    task_name: name.clone(),
                                    edge: ei as u32,
                                    src: node as u32,
                                    src_name: df.nodes[node].name.clone(),
                                    dst: e.src.0,
                                    dst_name: df.nodes[e.src.0 as usize].name.clone(),
                                    capacity: self.edge_capacity(ti, ei) as u32,
                                    state: ChannelState::Empty,
                                },
                            });
                        }
                    }
                    // Full output channels: waiting on the consumer.
                    for &ei in &self.elab[ti].outs[node] {
                        let e = &df.edges[ei];
                        let cap = self.edge_capacity(ti, ei);
                        let visible = inv.edge_q[ei]
                            .iter()
                            .filter(|t| t.visible_at.is_some())
                            .count();
                        if visible >= cap {
                            out.push(W {
                                to: (ti, tk, e.dst.0 as usize),
                                edge: WaitEdge {
                                    task: ti as u32,
                                    task_name: name.clone(),
                                    edge: ei as u32,
                                    src: node as u32,
                                    src_name: df.nodes[node].name.clone(),
                                    dst: e.dst.0,
                                    dst_name: df.nodes[e.dst.0 as usize].name.clone(),
                                    capacity: cap as u32,
                                    state: ChannelState::Full,
                                },
                            });
                        }
                    }
                    if !out.is_empty() {
                        vertices.push(me);
                        waits.insert(me, out);
                    }
                }
            }
        }
        report.wait_cycle = find_wait_cycle(&vertices, &waits);
        report.suggestion = report
            .wait_cycle
            .iter()
            .filter(|w| w.state == ChannelState::Full)
            .min_by_key(|w| w.capacity)
            .map(|w| BufferSuggestion {
                task: w.task,
                edge: w.edge,
                depth: w.capacity + 1,
            });
        report
    }

    /// Token capacity of an edge: explicit FIFOs use their depth; default
    /// handshake connections act as elastic pipelines.
    ///
    /// `Fifo(0)` is honored as a genuinely capacity-less channel — the
    /// hardware a μopt pass would emit if it removed a pipeline register it
    /// shouldn't have. Such an edge can never carry a token; the producer
    /// blocks forever and the deadlock diagnosis names the edge and the
    /// buffer bump that fixes it.
    fn edge_capacity(&self, ti: usize, ei: usize) -> usize {
        match self.acc.tasks[ti].dataflow.edges[ei].buffering {
            muir_core::dataflow::Buffering::Handshake => self.cfg.elastic_depth as usize,
            muir_core::dataflow::Buffering::Fifo(d) => d as usize,
        }
    }

    /// A typed `Fault` error located at a node interface.
    fn fault_err(
        &self,
        ti: usize,
        tk: usize,
        node: usize,
        instance: u64,
        kind: FaultKind,
        detail: String,
    ) -> SimError {
        let uid = self.tasks[ti].tiles[tk]
            .as_ref()
            .map(|i| i.uid)
            .unwrap_or(0);
        SimError::Fault {
            cycle: self.cycle,
            task: ti as u32,
            task_name: self.acc.tasks[ti].name.clone(),
            node: node as u32,
            invocation: uid,
            instance,
            kind,
            detail,
        }
    }

    fn fresh_uid(&mut self) -> u64 {
        let u = self.next_uid;
        self.next_uid += 1;
        u
    }

    /// Record a blocked firing opportunity at `site = (task, tile, node)`
    /// and yield the cycle. Pure observation: no engine state changes.
    fn note_stall(
        &mut self,
        site: (usize, usize, usize),
        reason: StallReason,
        edge: Option<usize>,
        structure: Option<usize>,
    ) -> Result<(), SimError> {
        if let Some(obs) = self.obs.as_mut() {
            obs.stall(self.cycle, site, reason, edge, structure);
        }
        Ok(())
    }

    fn step(&mut self) -> Result<(), SimError> {
        let cycle = self.cycle;
        // Phase 1: scheduled events.
        if let Some(evs) = self.events.remove(&cycle) {
            for ev in evs {
                match ev {
                    Ev::NodeDone {
                        task,
                        tile,
                        uid,
                        node,
                        instance,
                    } => {
                        self.node_done(task, tile, uid, node, instance, None)?;
                    }
                    Ev::Reply { to, results } => {
                        self.node_done(
                            to.task,
                            to.tile,
                            to.uid,
                            to.node,
                            to.instance,
                            Some(results),
                        )?;
                    }
                }
            }
        }
        // Phase 2: memory responses.
        for si in 0..self.structs.len() {
            let responses = {
                let (head, tail) = self.structs.split_at_mut(si);
                let _ = head;
                let model = &mut tail[0];
                let dram = if Some(si) == self.dram_idx {
                    None
                } else {
                    Some(&mut self.dram)
                };
                model.tick(cycle, dram)
            };
            for r in responses {
                if let Some(p) = self.req_map.remove(&r.id) {
                    if let Some(obs) = self.obs.as_mut() {
                        obs.mem_resp(cycle, si, r.id);
                    }
                    if r.ecc == Ecc::Uncorrectable {
                        return Err(self.fault_err(
                            p.task,
                            p.tile,
                            p.node,
                            p.instance,
                            FaultKind::EccUncorrectable,
                            format!("memory response for request {} (structure {si})", r.id),
                        ));
                    }
                    self.node_done(p.task, p.tile, p.uid, p.node, p.instance, None)?;
                }
            }
        }
        // Phase 3: dispatch queued invocations onto free tiles.
        for ti in 0..self.tasks.len() {
            while let Some(free) = self.tasks[ti].tiles.iter().position(|t| t.is_none()) {
                let Some(invq) = self.tasks[ti].queue.pop_front() else {
                    break;
                };
                let uid = invq.uid;
                self.activate(ti, free, invq).map_err(|e| {
                    e.at_site(cycle, ti as u32, &self.acc.tasks[ti].name, None, Some(uid))
                })?;
            }
        }
        // Phase 4: admissions + node firing (consumers-first order).
        let mut junction_budget: HashMap<(usize, usize, usize), (u32, u32)> = HashMap::new();
        for ti in 0..self.tasks.len() {
            for tk in 0..self.tasks[ti].tiles.len() {
                if self.tasks[ti].tiles[tk].is_some() {
                    self.tasks[ti].busy_cycles += 1;
                    self.tile_tick(ti, tk, &mut junction_budget)?;
                    self.check_invocation_complete(ti, tk)?;
                }
            }
        }
        self.cycle += 1;
        Ok(())
    }

    fn activate(&mut self, ti: usize, tile: usize, inv: Invocation) -> Result<(), SimError> {
        let task = &self.acc.tasks[ti];
        let (trip, lo, step, serial) = match &task.kind {
            TaskKind::Region => (1u64, 0i64, 1i64, false),
            TaskKind::Loop { spec, serial } => {
                let eval = |e: &ArgExpr| -> Result<i64, SimError> {
                    match e {
                        ArgExpr::Const(k) => Ok(*k),
                        ArgExpr::Arg(a) => {
                            inv.args.get(*a as usize).map(Value::as_int).ok_or_else(|| {
                                SimError::eval(format!("loop bound argument {a} missing"))
                            })
                        }
                    }
                };
                let lo = eval(&spec.lo)?;
                let hi = eval(&spec.hi)?;
                let trip = if hi > lo {
                    ((hi - lo) as u64).div_ceil(spec.step as u64)
                } else {
                    0
                };
                (trip, lo, spec.step, *serial)
            }
        };
        let nnodes = task.dataflow.nodes.len();
        let nedges = task.dataflow.edges.len();
        self.tasks[ti].invocations += 1;
        self.task_invocations[ti] += 1;
        self.tasks[ti].tiles[tile] = Some(ActiveInv {
            uid: inv.uid,
            args: inv.args,
            reply: inv.reply,
            spawn_parent: inv.spawn_parent,
            trip,
            lo,
            step,
            serial,
            admitted: 0,
            completed: 0,
            fired: vec![0; nnodes],
            ready_at: vec![0; nnodes],
            pending: vec![0; nnodes],
            edge_q: vec![VecDeque::new(); nedges],
            outstanding: HashMap::new(),
            spawns_outstanding: 0,
            last_output: Vec::new(),
            acc_state: vec![None; nnodes],
        });
        self.last_progress = self.cycle;
        Ok(())
    }

    /// Static value of an Input/Const node for the given invocation.
    fn static_value(&self, ti: usize, inv: &ActiveInv, node: usize) -> Result<Value, SimError> {
        match &self.acc.tasks[ti].dataflow.nodes[node].kind {
            NodeKind::Input { index } => inv
                .args
                .get(*index as usize)
                .cloned()
                .ok_or_else(|| SimError::eval(format!("missing argument {index}"))),
            NodeKind::Const(c) => Ok(c.to_value()),
            other => Err(SimError::eval(format!(
                "static read of dynamic node {other:?}"
            ))),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn tile_tick(
        &mut self,
        ti: usize,
        tk: usize,
        junction_budget: &mut HashMap<(usize, usize, usize), (u32, u32)>,
    ) -> Result<(), SimError> {
        let cycle = self.cycle;
        // Admission: at most one new instance per cycle.
        {
            let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
            let can_admit = inv.admitted < inv.trip
                && if inv.serial {
                    inv.completed == inv.admitted
                } else {
                    inv.admitted - inv.completed < self.cfg.window
                };
            if can_admit {
                let k = inv.admitted;
                inv.admitted += 1;
                let dc = self.elab[ti].dynamic_count;
                inv.outstanding.insert(k, dc);
                self.last_progress = cycle;
            }
        }
        // Node firing in consumers-first order.
        let uid = self.tasks[ti].tiles[tk].as_ref().map(|i| i.uid);
        let order = self.elab[ti].order.clone();
        for node in order {
            self.try_fire(ti, tk, node, junction_budget).map_err(|e| {
                e.at_site(
                    cycle,
                    ti as u32,
                    &self.acc.tasks[ti].name,
                    Some(node as u32),
                    uid,
                )
            })?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn try_fire(
        &mut self,
        ti: usize,
        tk: usize,
        node: usize,
        junction_budget: &mut HashMap<(usize, usize, usize), (u32, u32)>,
    ) -> Result<(), SimError> {
        let cycle = self.cycle;
        let df = &self.acc.tasks[ti].dataflow;
        if self.elab[ti].is_static[node] {
            return Ok(());
        }
        if self.faults_on && self.stuck.contains(&(ti, tk, node)) {
            // Output handshake stuck: valid never asserts again. Attribute
            // the hold only while the node actually has instances to fire.
            let has_work = self.tasks[ti].tiles[tk]
                .as_ref()
                .is_some_and(|inv| inv.fired[node] < inv.admitted);
            if has_work {
                return self.note_stall((ti, tk, node), StallReason::FaultHold, None, None);
            }
            return Ok(());
        }
        // Gather facts without holding a mutable borrow.
        let (k, ok_basic) = {
            let inv = self.tasks[ti].tiles[tk].as_ref().expect("active");
            let k = inv.fired[node];
            (k, k < inv.admitted && cycle >= inv.ready_at[node])
        };
        if !ok_basic {
            return Ok(());
        }
        let kind = df.nodes[node].kind.clone();
        let is_merge = matches!(kind, NodeKind::Merge);

        // Check inputs.
        let in_data = self.elab[ti].in_data[node].clone();
        let in_order = self.elab[ti].in_order[node].clone();
        {
            let inv = self.tasks[ti].tiles[tk].as_ref().expect("active");
            for &ei in in_data.iter().chain(&in_order) {
                let e = &df.edges[ei];
                if self.elab[ti].is_static[e.src.0 as usize] {
                    continue;
                }
                if is_merge && e.dst_port == 1 {
                    // Feedback: required from instance 1 on, carrying the
                    // previous instance's token.
                    if k == 0 {
                        continue;
                    }
                    match inv.edge_q[ei].front() {
                        Some(t) if t.visible_at.is_some_and(|v| v <= cycle) => {
                            if t.instance != k - 1 {
                                return Err(self.fault_err(
                                    ti,
                                    tk,
                                    node,
                                    k,
                                    FaultKind::TokenMisorder,
                                    format!(
                                        "feedback edge e{ei}: expected instance {}, found {}",
                                        k - 1,
                                        t.instance
                                    ),
                                ));
                            }
                        }
                        _ => {
                            return self.note_stall(
                                (ti, tk, node),
                                StallReason::InputEmpty,
                                Some(ei),
                                None,
                            )
                        }
                    }
                    continue;
                }
                match inv.edge_q[ei].front() {
                    Some(t) if t.visible_at.is_some_and(|v| v <= cycle) => {
                        // In-order delivery is the latency-insensitive
                        // contract; a mismatch means a token was dropped or
                        // duplicated upstream (a detected hardware fault).
                        if t.instance != k {
                            return Err(self.fault_err(
                                ti,
                                tk,
                                node,
                                k,
                                FaultKind::TokenMisorder,
                                format!("edge e{ei}: expected instance {k}, found {}", t.instance),
                            ));
                        }
                    }
                    _ => {
                        return self.note_stall(
                            (ti, tk, node),
                            StallReason::InputEmpty,
                            Some(ei),
                            None,
                        )
                    }
                }
            }
            // In-flight bound (databox entries / pipeline occupancy). For
            // memory transit points a full databox means every entry is
            // waiting on the structure behind the junction.
            if inv.pending[node] >= self.elab[ti].max_pending[node] {
                let (reason, sid) = match &kind {
                    NodeKind::Load { junction, .. } | NodeKind::Store { junction, .. } => (
                        StallReason::MemoryWait,
                        Some(df.junctions[junction.0 as usize].structure.0 as usize),
                    ),
                    _ => (StallReason::OutputFull, None),
                };
                return self.note_stall((ti, tk, node), reason, None, sid);
            }
            // Output space: only *visible* (delivered, unconsumed) tokens
            // occupy the edge register; in-flight results live in the
            // producer's internal pipeline.
            for &ei in &self.elab[ti].outs[node] {
                let cap = self.edge_capacity(ti, ei);
                let visible = inv.edge_q[ei]
                    .iter()
                    .filter(|t| t.visible_at.is_some())
                    .count();
                if visible >= cap {
                    return self.note_stall(
                        (ti, tk, node),
                        StallReason::OutputFull,
                        Some(ei),
                        None,
                    );
                }
            }
        }
        // Memory/call-specific admission checks (junction ports, queues).
        let mut mem_plan: Option<(usize, bool)> = None; // (junction, is_write)
        match &kind {
            NodeKind::Load { junction, .. } => mem_plan = Some((junction.0 as usize, false)),
            NodeKind::Store { junction, .. } => mem_plan = Some((junction.0 as usize, true)),
            NodeKind::TaskCall { callee, .. } => {
                let child = callee.0 as usize;
                let cap = self.elab[child].queue_cap;
                if self.tasks[child].queue.len() >= cap {
                    // Downstream issue queue full: backpressure, not memory.
                    return self.note_stall((ti, tk, node), StallReason::OutputFull, None, None);
                }
            }
            _ => {}
        }
        if let Some((j, is_write)) = mem_plan {
            let jn = &df.junctions[j];
            let sid = jn.structure.0 as usize;
            let budget = junction_budget.entry((ti, tk, j)).or_insert((0, 0));
            if is_write {
                if budget.1 >= jn.write_ports {
                    return self.note_stall(
                        (ti, tk, node),
                        StallReason::ArbitrationLoss,
                        None,
                        Some(sid),
                    );
                }
            } else if budget.0 >= jn.read_ports {
                return self.note_stall(
                    (ti, tk, node),
                    StallReason::ArbitrationLoss,
                    None,
                    Some(sid),
                );
            }
        }

        // Every admission check passed: this is a real firing opportunity,
        // which is the injection point for a stuck output handshake.
        if self.faults_on && self.faults.roll(FaultClass::StuckHandshake) {
            self.stuck.insert((ti, tk, node));
            return self.note_stall((ti, tk, node), StallReason::FaultHold, None, None);
        }

        // --- Fire -----------------------------------------------------------
        // Collect input values (consume tokens).
        let values: Vec<Value>;
        {
            // Static reads first (immutable), then token pops (mutable).
            let mut slots: Vec<Option<Value>> = vec![None; in_data.len()];
            for (i, &ei) in in_data.iter().enumerate() {
                let e = &df.edges[ei];
                if self.elab[ti].is_static[e.src.0 as usize] {
                    let inv = self.tasks[ti].tiles[tk].as_ref().expect("active");
                    slots[i] = Some(self.static_value(ti, inv, e.src.0 as usize)?);
                }
            }
            let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
            for (i, &ei) in in_data.iter().enumerate() {
                if slots[i].is_some() {
                    continue;
                }
                let e = &df.edges[ei];
                if is_merge && e.dst_port == 1 && k == 0 {
                    slots[i] = Some(Value::Poison); // unused at instance 0
                    continue;
                }
                let t = inv.edge_q[ei]
                    .pop_front()
                    .ok_or_else(|| SimError::eval(format!("missing token on edge e{ei}")))?;
                slots[i] = Some(t.value);
                if let Some(obs) = self.obs.as_mut() {
                    obs.edge_delta(cycle, ti, ei, inv.edge_q[ei].len() as u32, false);
                }
            }
            for &ei in &in_order {
                let e = &df.edges[ei];
                if self.elab[ti].is_static[e.src.0 as usize] {
                    continue;
                }
                inv.edge_q[ei].pop_front();
                if let Some(obs) = self.obs.as_mut() {
                    obs.edge_delta(cycle, ti, ei, inv.edge_q[ei].len() as u32, false);
                }
            }
            values = slots
                .into_iter()
                .map(|s| s.ok_or_else(|| SimError::eval("input slot not filled")))
                .collect::<Result<_, _>>()?;
        }

        let timing = self.elab[ti].timing[node];
        let mut completion_at = Some(cycle + timing.latency as u64);
        let mut out_values: Vec<Value> = Vec::new();

        match &kind {
            NodeKind::IndVar => {
                let inv = self.tasks[ti].tiles[tk].as_ref().expect("active");
                out_values = vec![Value::Int(inv.lo + k as i64 * inv.step)];
            }
            NodeKind::Merge => {
                // Port 0 = init (instance 0), port 1 = feedback.
                let v = if k == 0 {
                    values[0].clone()
                } else {
                    values[1].clone()
                };
                out_values = vec![v];
            }
            NodeKind::FusedAcc { op } => {
                // Self-accumulating unit: port 0 = init, port 1 = operand.
                let base = if k == 0 {
                    values[0].clone()
                } else {
                    self.tasks[ti].tiles[tk].as_ref().expect("active").acc_state[node]
                        .clone()
                        .ok_or_else(|| SimError::eval("accumulator state missing"))?
                };
                let r = eval_op(*op, &[base, values[1].clone()])?;
                let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
                inv.acc_state[node] = Some(r.clone());
                out_values = vec![r];
            }
            NodeKind::Compute(op) => {
                out_values = vec![eval_op(*op, &values)?];
            }
            NodeKind::Fused(plan) => {
                out_values = vec![eval_fused(plan, &values)?];
            }
            NodeKind::Output => {
                let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
                inv.last_output = values.clone();
            }
            NodeKind::Load {
                obj, predicated, ..
            } => {
                let active = !*predicated
                    || values
                        .last()
                        .map(|v| !v.is_poison() && v.as_bool())
                        .unwrap_or(true);
                if active {
                    let idx = values[0].as_int();
                    if idx < 0 {
                        return Err(SimError::eval(format!("negative load index {idx}")));
                    }
                    let ty = df.nodes[node].ty;
                    let n = ty.elems() as u64;
                    let mut slots = Vec::with_capacity(n as usize);
                    let base = self.mem.flat_addr(*obj, idx as u64);
                    for kk in 0..n {
                        slots.push(
                            self.mem
                                .read(*obj, idx as u64 + kk)
                                .map_err(|e| SimError::eval(e.to_string()))?,
                        );
                    }
                    out_values = vec![Value::assemble(ty, slots)];
                    let id = self.next_req;
                    self.next_req += 1;
                    let addrs: Vec<u64> = (0..n).map(|kk| base + kk).collect();
                    let (j, _) =
                        mem_plan.ok_or_else(|| SimError::eval("load without junction plan"))?;
                    let sid = df.junctions[j].structure.0 as usize;
                    if let Some(obs) = self.obs.as_mut() {
                        let bank = (addrs.first().copied().unwrap_or(0)
                            % self.structs[sid].bank_count().max(1) as u64)
                            as u32;
                        obs.mem_req(cycle, sid, id, bank, n as u32, false);
                    }
                    self.structs[sid].submit(MemRequest {
                        id,
                        addrs,
                        is_write: false,
                    });
                    self.req_map.insert(
                        id,
                        MemPending {
                            task: ti,
                            tile: tk,
                            uid: self.tasks[ti].tiles[tk].as_ref().expect("active").uid,
                            node,
                            instance: k,
                        },
                    );
                    completion_at = None; // completes on memory response
                    junction_budget.entry((ti, tk, j)).or_insert((0, 0)).0 += 1;
                } else {
                    out_values = vec![Value::Poison];
                }
            }
            NodeKind::Store {
                obj, predicated, ..
            } => {
                let active = !*predicated
                    || values
                        .last()
                        .map(|v| !v.is_poison() && v.as_bool())
                        .unwrap_or(true);
                if active {
                    let idx = values[0].as_int();
                    if idx < 0 {
                        return Err(SimError::eval(format!("negative store index {idx}")));
                    }
                    let v = values[1].clone();
                    if v.is_poison() {
                        return Err(SimError::eval(format!("poison stored to {obj:?}")));
                    }
                    let base = self.mem.flat_addr(*obj, idx as u64);
                    let slots = v.flatten();
                    let n = slots.len() as u64;
                    for (kk, s) in slots.into_iter().enumerate() {
                        self.mem
                            .write(*obj, idx as u64 + kk as u64, s)
                            .map_err(|e| SimError::eval(e.to_string()))?;
                    }
                    let id = self.next_req;
                    self.next_req += 1;
                    let addrs: Vec<u64> = (0..n).map(|kk| base + kk).collect();
                    let (j, _) =
                        mem_plan.ok_or_else(|| SimError::eval("store without junction plan"))?;
                    let sid = df.junctions[j].structure.0 as usize;
                    if let Some(obs) = self.obs.as_mut() {
                        let bank = (addrs.first().copied().unwrap_or(0)
                            % self.structs[sid].bank_count().max(1) as u64)
                            as u32;
                        obs.mem_req(cycle, sid, id, bank, n as u32, true);
                    }
                    self.structs[sid].submit(MemRequest {
                        id,
                        addrs,
                        is_write: true,
                    });
                    self.req_map.insert(
                        id,
                        MemPending {
                            task: ti,
                            tile: tk,
                            uid: self.tasks[ti].tiles[tk].as_ref().expect("active").uid,
                            node,
                            instance: k,
                        },
                    );
                    completion_at = None;
                    junction_budget.entry((ti, tk, j)).or_insert((0, 0)).1 += 1;
                }
            }
            NodeKind::TaskCall {
                callee,
                predicated,
                spawn,
            } => {
                let child = callee.0 as usize;
                let nargs = self.acc.tasks[child].num_args as usize;
                let nres = self.acc.tasks[child].num_results as usize;
                let active = !*predicated
                    || values
                        .get(nargs)
                        .map(|v| !v.is_poison() && v.as_bool())
                        .unwrap_or(true);
                if active {
                    let args: Vec<Value> = values[..nargs].to_vec();
                    let uid = self.fresh_uid();
                    let me_uid = self.tasks[ti].tiles[tk].as_ref().expect("active").uid;
                    if *spawn {
                        self.tasks[child].queue.push_back(Invocation {
                            uid,
                            args,
                            reply: None,
                            spawn_parent: Some((ti, me_uid)),
                        });
                        let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
                        inv.spawns_outstanding += 1;
                        out_values = vec![Value::Int(0); nres.max(1)];
                    } else {
                        self.tasks[child].queue.push_back(Invocation {
                            uid,
                            args,
                            reply: Some(ReplyTo {
                                task: ti,
                                tile: tk,
                                uid: me_uid,
                                node,
                                instance: k,
                            }),
                            spawn_parent: None,
                        });
                        out_values = vec![Value::Poison; nres.max(1)]; // patched by reply
                        completion_at = None;
                    }
                } else {
                    out_values = vec![Value::Poison; nres.max(1)];
                }
            }
            NodeKind::Input { .. } | NodeKind::Const(_) => unreachable!("static"),
        }

        // Push pending tokens on out edges. Ready/valid faults inject here:
        // a drop loses the valid pulse, a dup holds it one transfer too
        // long, a bit-flip corrupts the data lines.
        {
            let outs = self.elab[ti].outs[node].clone();
            let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
            for &ei in &outs {
                let e = &df.edges[ei];
                let mut value = match e.kind {
                    EdgeKind::Order => Value::Bool(true),
                    _ => out_values
                        .get(e.src_port as usize)
                        .cloned()
                        .unwrap_or(Value::Bool(true)),
                };
                if self.faults_on {
                    if self.faults.roll(FaultClass::TokenDrop) {
                        continue; // token lost on the wire
                    }
                    if self.faults.roll(FaultClass::TokenBitFlip) {
                        let bit = self.faults.below(32) as u32;
                        value = flip_bit(&value, bit);
                    }
                    if self.faults.roll(FaultClass::TokenDup) {
                        inv.edge_q[ei].push_back(Tok {
                            instance: k,
                            value: value.clone(),
                            visible_at: None,
                        });
                    }
                }
                inv.edge_q[ei].push_back(Tok {
                    instance: k,
                    value,
                    visible_at: None,
                });
                if let Some(obs) = self.obs.as_mut() {
                    obs.edge_delta(cycle, ti, ei, inv.edge_q[ei].len() as u32, true);
                }
            }
            inv.fired[node] = k + 1;
            inv.ready_at[node] = cycle + timing.ii as u64;
            inv.pending[node] += 1;
        }
        self.fires += 1;
        if let Some(obs) = self.obs.as_mut() {
            obs.fire(cycle, (ti, tk, node), k);
        }
        self.last_progress = cycle;
        if let Some(at) = completion_at {
            let uid = self.tasks[ti].tiles[tk].as_ref().expect("active").uid;
            self.events
                .entry(at.max(cycle + 1))
                .or_default()
                .push(Ev::NodeDone {
                    task: ti,
                    tile: tk,
                    uid,
                    node,
                    instance: k,
                });
        }
        Ok(())
    }

    /// A node's firing completed: make its tokens visible (patching values
    /// for call replies) and advance instance/invocation completion.
    fn node_done(
        &mut self,
        ti: usize,
        tk: usize,
        uid: u64,
        node: usize,
        instance: u64,
        reply_values: Option<Vec<Value>>,
    ) -> Result<(), SimError> {
        let cycle = self.cycle;
        let df = &self.acc.tasks[ti].dataflow;
        let outs = self.elab[ti].outs[node].clone();
        {
            let Some(inv) = self.tasks[ti].tiles[tk].as_mut() else {
                return Ok(()); // stale
            };
            if inv.uid != uid {
                return Ok(()); // stale
            }
            for &ei in &outs {
                let e = &df.edges[ei];
                // All matching tokens become visible (normally exactly one;
                // an injected duplicate shares the completion pulse).
                for t in inv.edge_q[ei].iter_mut() {
                    if t.instance == instance && t.visible_at.is_none() {
                        if let Some(rv) = &reply_values {
                            if e.kind != EdgeKind::Order {
                                if let Some(v) = rv.get(e.src_port as usize) {
                                    t.value = v.clone();
                                }
                            }
                        }
                        t.visible_at = Some(cycle);
                    }
                }
            }
            inv.pending[node] = inv.pending[node].saturating_sub(1);
            let task_name = &self.acc.tasks[ti].name;
            let slot = inv
                .outstanding
                .get_mut(&instance)
                .ok_or_else(|| SimError::EvalError {
                    cycle,
                    task: Some(ti as u32),
                    task_name: task_name.clone(),
                    node: Some(node as u32),
                    invocation: Some(uid),
                    detail: format!("completion for unknown instance {instance}"),
                })?;
            *slot = slot.saturating_sub(1);
            // In-order instance retirement.
            while inv.outstanding.get(&inv.completed) == Some(&0) {
                inv.outstanding.remove(&inv.completed);
                inv.completed += 1;
            }
        }
        self.last_progress = cycle;
        self.check_invocation_complete(ti, tk)
    }

    fn check_invocation_complete(&mut self, ti: usize, tk: usize) -> Result<(), SimError> {
        let done = {
            let Some(inv) = self.tasks[ti].tiles[tk].as_ref() else {
                return Ok(());
            };
            inv.admitted == inv.trip
                && inv.completed == inv.trip
                && inv.outstanding.is_empty()
                && inv.spawns_outstanding == 0
        };
        if !done {
            return Ok(());
        }
        let Some(inv) = self.tasks[ti].tiles[tk].take() else {
            return Ok(());
        };
        let task = &self.acc.tasks[ti];
        // Results: the last Output firing's values, or zero-trip fallbacks.
        let results: Vec<Value> = if inv.trip == 0 {
            (0..task.num_results as usize)
                .map(|r| match task.loop_result_inits.get(r).and_then(|x| *x) {
                    Some(ResultInit::Arg(a)) => {
                        inv.args.get(a as usize).cloned().unwrap_or(Value::Poison)
                    }
                    Some(ResultInit::Const(c)) => c.to_value(),
                    None => Value::Poison,
                })
                .collect()
        } else {
            inv.last_output.clone()
        };
        if let Some((ptask, puid)) = inv.spawn_parent {
            // Sync bookkeeping: find the parent invocation and release it.
            for pinv in self.tasks[ptask].tiles.iter_mut().flatten() {
                if pinv.uid == puid {
                    pinv.spawns_outstanding -= 1;
                    break;
                }
            }
            // Parent may now be complete.
            let ptiles = self.tasks[ptask].tiles.len();
            for pt in 0..ptiles {
                self.check_invocation_complete(ptask, pt)?;
            }
        } else if let Some(reply) = inv.reply {
            let at = self.cycle + 1;
            self.events
                .entry(at)
                .or_default()
                .push(Ev::Reply { to: reply, results });
        } else {
            self.root_result = Some(results);
        }
        self.last_progress = self.cycle;
        Ok(())
    }
}

/// A wait-for-graph vertex: (task, tile, node).
type V = (usize, usize, usize);

/// One wait-for edge: the owning vertex waits on `to` through `edge`.
struct W {
    to: V,
    edge: WaitEdge,
}

/// Find one cycle in the wait-for graph (iterative DFS with an explicit
/// path stack) and return its wait edges in wait-for order. Empty if the
/// stall has no channel cycle (e.g. progress is blocked on memory).
fn find_wait_cycle(vertices: &[V], waits: &HashMap<V, Vec<W>>) -> Vec<WaitEdge> {
    // 0 = unvisited, 1 = on the current path, 2 = finished.
    let mut color: HashMap<V, u8> = HashMap::new();
    for &start in vertices {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        // Each entry: (vertex, next out-edge index, wait edge that led here).
        let mut path: Vec<(V, usize, Option<WaitEdge>)> = vec![(start, 0, None)];
        color.insert(start, 1);
        while let Some(&(v, i, _)) = path.last() {
            let Some(w) = waits.get(&v).and_then(|o| o.get(i)) else {
                color.insert(v, 2);
                path.pop();
                continue;
            };
            if let Some(top) = path.last_mut() {
                top.1 += 1;
            }
            match color.get(&w.to).copied().unwrap_or(0) {
                1 => {
                    // Back edge: the cycle runs from `w.to` along the path
                    // back to `v`, closed by this edge.
                    let p = path.iter().position(|e| e.0 == w.to).unwrap_or(0);
                    let mut cycle: Vec<WaitEdge> =
                        path[p + 1..].iter().filter_map(|e| e.2.clone()).collect();
                    cycle.push(w.edge.clone());
                    return cycle;
                }
                2 => {}
                _ => {
                    color.insert(w.to, 1);
                    path.push((w.to, 0, Some(w.edge.clone())));
                }
            }
        }
    }
    Vec::new()
}

/// Consumers-before-producers order over forward edges, so that a consumer
/// freeing a 1-deep edge this cycle lets its producer refire this cycle
/// (sustaining II=1 through handshake chains).
fn reverse_topo(df: &muir_core::dataflow::Dataflow) -> Vec<usize> {
    forward_topo(df).into_iter().rev().collect()
}

fn forward_topo(df: &muir_core::dataflow::Dataflow) -> Vec<usize> {
    let n = df.nodes.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for e in &df.edges {
        if e.kind == EdgeKind::Feedback {
            continue;
        }
        succs[e.src.0 as usize].push(e.dst.0 as usize);
        indeg[e.dst.0 as usize] += 1;
    }
    let mut work: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(x) = work.pop() {
        order.push(x);
        for &s in &succs[x] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                work.push(s);
            }
        }
    }
    // Any leftover (forward cycle — should not happen) appended for safety.
    for i in 0..n {
        if !order.contains(&i) {
            order.push(i);
        }
    }
    order
}

/// Evaluate a compute op on runtime values.
fn eval_op(op: OpKind, values: &[Value]) -> Result<Value, SimError> {
    let r = match op {
        OpKind::Bin(b) => {
            // Hardware on a predicated-off path may divide by zero; the
            // result is squashed, so produce poison rather than fault.
            if matches!(b, BinOp::Div | BinOp::Rem) && values[1].as_int_checked() == Some(0) {
                return Ok(Value::Poison);
            }
            eval_bin(b, &values[0], &values[1]).map_err(|e| SimError::eval(e.to_string()))?
        }
        OpKind::Un(u) => eval_un(u, &values[0]),
        OpKind::Cmp(p) => eval_cmp(p, &values[0], &values[1]),
        OpKind::Select => {
            if values[0].is_poison() {
                Value::Poison
            } else if values[0].as_bool() {
                values[1].clone()
            } else {
                values[2].clone()
            }
        }
        OpKind::Cast(c) => match c {
            muir_mir::instr::CastOp::SiToFp => {
                if values[0].is_poison() {
                    Value::Poison
                } else {
                    Value::F32(values[0].as_int() as f32)
                }
            }
            muir_mir::instr::CastOp::FpToSi => {
                if values[0].is_poison() {
                    Value::Poison
                } else {
                    Value::Int(values[0].as_f32() as i64)
                }
            }
            muir_mir::instr::CastOp::IntResize => values[0].clone(),
        },
        OpKind::Tensor(t, _) => {
            if values.iter().any(Value::is_poison) {
                Value::Poison
            } else {
                eval_tensor(t, &values[0], values.get(1))
                    .map_err(|e| SimError::eval(e.to_string()))?
            }
        }
    };
    Ok(r)
}

/// Evaluate a fused plan.
fn eval_fused(plan: &muir_core::node::FusedPlan, values: &[Value]) -> Result<Value, SimError> {
    let mut step_vals: Vec<Value> = Vec::with_capacity(plan.steps.len());
    for step in &plan.steps {
        let ins: Vec<Value> = step
            .inputs
            .iter()
            .map(|i| match i {
                FusedInput::External(p) => values[*p as usize].clone(),
                FusedInput::Step(s) => step_vals[*s as usize].clone(),
            })
            .collect();
        step_vals.push(eval_op(step.op, &ins)?);
    }
    step_vals
        .pop()
        .ok_or_else(|| SimError::eval("empty fused plan"))
}

/// Flip one bit of a scalar token value (the data-line corruption of the
/// token-bit-flip fault class). Aggregates corrupt their first scalar lane.
fn flip_bit(v: &Value, bit: u32) -> Value {
    match v {
        Value::Bool(b) => Value::Bool(!b),
        Value::Int(x) => Value::Int(x ^ (1i64 << (bit % 63))),
        Value::F32(f) => Value::F32(f32::from_bits(f.to_bits() ^ (1u32 << (bit % 32)))),
        Value::Vector(vs) => {
            let mut vs = vs.clone();
            if let Some(first) = vs.first_mut() {
                *first = flip_bit(first, bit);
            }
            Value::Vector(vs)
        }
        Value::Tensor { shape, data } => {
            let mut data = data.clone();
            if let Some(first) = data.first_mut() {
                *first = flip_bit(first, bit);
            }
            Value::Tensor {
                shape: *shape,
                data,
            }
        }
        other => other.clone(),
    }
}

/// Poison-tolerant integer view.
trait ValueExt {
    fn as_int_checked(&self) -> Option<i64>;
}

impl ValueExt for Value {
    fn as_int_checked(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }
}
