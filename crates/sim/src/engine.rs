//! The cycle engine: executes a μIR accelerator graph under the paper's
//! execution model (§3.2):
//!
//! * the whole accelerator is a graph of concurrently running task blocks,
//!   each with a hardware issue queue and `tiles` replicated execution
//!   units;
//! * within a task, execution is a pipelined latency-insensitive dataflow:
//!   nodes handshake over bounded ready/valid edges, arbitrary buffering
//!   may be inserted, and multiple invocations/iterations are in flight;
//! * invocations complete in order (§3.2: unlike tagged dataflow);
//! * memory transits through junctions (per-cycle port limits) to banked
//!   structures; the databox slices typed accesses into element
//!   transactions and coalesces responses (§3.4).
//!
//! The engine is *functional*: nodes compute real values (via the `mir`
//! evaluators) and loads/stores access a real memory image, so every run is
//! checked against the reference interpreter.

use crate::error::{
    BufferSuggestion, ChannelState, DeadlockReport, FaultKind, StuckTile, WaitEdge,
};
use crate::fault::{Ecc, FaultClass, Injector};
use crate::memory::{DramModel, MemRequest, StructModel};
use crate::trace::{Observer, SimProfile, StallReason, Trace};
use crate::{SchedulerKind, SimConfig, SimError, SimStats};
use muir_core::accel::{Accelerator, ArgExpr, ResultInit, TaskKind};
use muir_core::compiled::{
    CompiledAccel, CompiledTask, MicroOp, UopKind, SLOT_ARG, SLOT_CONST, SLOT_FEEDBACK,
    SLOT_PAYLOAD, SLOT_TAG, UOP_PREDICATED, UOP_SPAWN,
};
use muir_core::dataflow::EdgeKind;
use muir_core::hw;
use muir_core::node::{FusedInput, NodeKind, OpKind};
use muir_core::structure::StructureKind;
use muir_mir::instr::{BinOp, MemObjId};
use muir_mir::interp::{eval_bin, eval_cmp, eval_tensor, eval_un, Memory};
use muir_mir::value::Value;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

#[path = "parallel.rs"]
pub(crate) mod parallel;

/// Multiply-shift hasher for `req_map`. Its keys are monotone request
/// ids, so DoS-resistant SipHash (the `HashMap` default, which showed up
/// in cycle-path profiles) buys nothing here.
#[derive(Debug, Default)]
struct ReqHasher(u64);

impl Hasher for ReqHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, n: u64) {
        // Fibonacci multiply, then fold the high bits down: hashbrown
        // takes its control byte from the top and its bucket from the
        // bottom, so both halves must mix.
        let h = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 32);
    }
}

/// Fault classes injected at the engine's ready/valid edges (the rest are
/// owned by the memory models).
const ENGINE_FAULTS: [FaultClass; 4] = [
    FaultClass::TokenBitFlip,
    FaultClass::TokenDrop,
    FaultClass::TokenDup,
    FaultClass::StuckHandshake,
];

/// SoA token storage for one invocation: per-edge power-of-two ring
/// slices over shared value/instance/visibility arrays, replacing the
/// old `Vec<VecDeque<Tok>>` (DESIGN.md §14). A firing's pops and pushes
/// touch contiguous arrays instead of chasing N deque allocations, and
/// the visibility test is a single `u64` compare (`u64::MAX` = still in
/// the producer's pipeline, anything else = the delivery cycle).
///
/// Rings are sized once from the compiled capacity table
/// (`ElabTask::cap`): capacity plus slack for the in-flight push of the
/// current firing, rounded up to a power of two so wraparound is a mask.
/// Fault injection can duplicate tokens past any static bound, so
/// overfull rings relocate to a doubled slice at the end of the arena
/// (`grow`, cold by construction).
#[derive(Debug, Default)]
struct TokenArena {
    vals: Vec<Value>,
    inst: Vec<u64>,
    /// Visibility cycle per slot; `u64::MAX` while the token is in flight.
    vis: Vec<u64>,
    base: Vec<u32>,
    mask: Vec<u32>,
    head: Vec<u32>,
    qlen: Vec<u32>,
    /// Per-edge count of visible (delivered, unconsumed) tokens, kept in
    /// lockstep so the output-space gate is an O(1) read.
    visn: Vec<u32>,
}

impl TokenArena {
    /// Ring size for a resolved edge capacity: the capacity itself plus
    /// slack for the producer's in-flight push, next power of two. Deep
    /// FIFOs cap the *initial* ring (growth stays demand-driven) so a
    /// pathological `Fifo(1 << 20)` does not reserve megabytes up front.
    fn ring_cap(cap: u32) -> u32 {
        cap.saturating_add(2).next_power_of_two().min(64)
    }

    fn with_caps(caps: &[u32]) -> TokenArena {
        let mut a = TokenArena::default();
        let total: usize = caps.iter().map(|&c| Self::ring_cap(c) as usize).sum();
        a.vals.reserve_exact(total);
        a.inst.reserve_exact(total);
        a.vis.reserve_exact(total);
        for &c in caps {
            let rc = Self::ring_cap(c);
            a.base.push(a.vals.len() as u32);
            a.mask.push(rc - 1);
            a.head.push(0);
            a.qlen.push(0);
            a.visn.push(0);
            for _ in 0..rc {
                a.vals.push(Value::Poison);
                a.inst.push(0);
                a.vis.push(u64::MAX);
            }
        }
        a
    }

    /// Reset for reuse by the next invocation: drop held values, zero the
    /// bookkeeping. Ring geometry is task-constant, so no reallocation.
    fn clear(&mut self) {
        for e in 0..self.qlen.len() {
            for i in 0..self.qlen[e] {
                let s = self.slot(e, i);
                self.vals[s] = Value::Poison;
            }
            self.head[e] = 0;
            self.qlen[e] = 0;
            self.visn[e] = 0;
        }
    }

    #[inline]
    fn slot(&self, e: usize, i: u32) -> usize {
        (self.base[e] + ((self.head[e].wrapping_add(i)) & self.mask[e])) as usize
    }

    #[inline]
    fn len(&self, e: usize) -> u32 {
        self.qlen[e]
    }

    /// Visible (delivered, unconsumed) tokens on edge `e`.
    #[inline]
    fn visible(&self, e: usize) -> u32 {
        self.visn[e]
    }

    /// All per-edge visible counts (seeds the parallel planner's scratch).
    fn visible_counts(&self) -> &[u32] {
        &self.visn
    }

    /// The front token's (instance, visibility cycle), if any.
    #[inline]
    fn front(&self, e: usize) -> Option<(u64, u64)> {
        if self.qlen[e] == 0 {
            return None;
        }
        let s = self.slot(e, 0);
        Some((self.inst[s], self.vis[s]))
    }

    /// The front token's value in place (planner precompute reads it
    /// without consuming).
    fn front_value(&self, e: usize) -> Option<&Value> {
        if self.qlen[e] == 0 {
            return None;
        }
        Some(&self.vals[self.slot(e, 0)])
    }

    /// Push a token, invisible until its producer's completion event.
    fn push(&mut self, e: usize, instance: u64, value: Value) {
        if self.qlen[e] > self.mask[e] {
            self.grow(e);
        }
        let s = self.slot(e, self.qlen[e]);
        self.vals[s] = value;
        self.inst[s] = instance;
        self.vis[s] = u64::MAX;
        self.qlen[e] += 1;
    }

    /// Pop the front token's value. Callers guarantee non-empty (the input
    /// gate ran first); the value is moved out, not cloned.
    fn pop(&mut self, e: usize) -> Value {
        debug_assert!(self.qlen[e] > 0, "pop on empty edge e{e}");
        let s = self.slot(e, 0);
        let v = std::mem::replace(&mut self.vals[s], Value::Poison);
        if self.vis[s] != u64::MAX {
            self.visn[e] -= 1;
        }
        self.head[e] = (self.head[e] + 1) & self.mask[e];
        self.qlen[e] -= 1;
        v
    }

    /// Reverse-scan edge `e` marking instance `instance`'s in-flight
    /// tokens visible at `cycle`, patching their value from `patch` when
    /// given (call replies). Tokens are pushed in instance order, so the
    /// scan stops at the first older instance.
    fn reveal(&mut self, e: usize, instance: u64, cycle: u64, patch: Option<&Value>) {
        let mut marked = 0u32;
        for i in (0..self.qlen[e]).rev() {
            let s = self.slot(e, i);
            if self.inst[s] > instance {
                continue;
            }
            if self.inst[s] < instance {
                break;
            }
            if self.vis[s] == u64::MAX {
                if let Some(p) = patch {
                    self.vals[s] = p.clone();
                }
                self.vis[s] = cycle;
                marked += 1;
            }
        }
        self.visn[e] += marked;
    }

    /// Relocate edge `e`'s ring to a doubled slice appended to the arena
    /// (the old slice goes dead — acceptable, because this is reachable
    /// only when fault injection overfills a ring past its slack).
    #[cold]
    fn grow(&mut self, e: usize) {
        let old_cap = self.mask[e] + 1;
        let new_cap = old_cap * 2;
        let new_base = self.vals.len() as u32;
        for i in 0..new_cap {
            if i < self.qlen[e] {
                let s = self.slot(e, i); // old geometry until fields update
                let v = std::mem::replace(&mut self.vals[s], Value::Poison);
                let inst = self.inst[s];
                let vis = self.vis[s];
                self.vals.push(v);
                self.inst.push(inst);
                self.vis.push(vis);
            } else {
                self.vals.push(Value::Poison);
                self.inst.push(0);
                self.vis.push(u64::MAX);
            }
        }
        self.base[e] = new_base;
        self.mask[e] = new_cap - 1;
        self.head[e] = 0;
    }
}

/// Where a blocking call's response must be delivered.
#[derive(Debug, Clone)]
struct ReplyTo {
    task: usize,
    tile: usize,
    uid: u64,
    node: usize,
    instance: u64,
}

/// A queued task invocation.
#[derive(Debug, Clone)]
struct Invocation {
    uid: u64,
    args: Vec<Value>,
    reply: Option<ReplyTo>,
    spawn_parent: Option<(usize, u64)>,
}

/// Per-invocation runtime state on one execution tile.
#[derive(Debug)]
pub(crate) struct ActiveInv {
    uid: u64,
    args: Vec<Value>,
    reply: Option<ReplyTo>,
    spawn_parent: Option<(usize, u64)>,
    trip: u64,
    lo: i64,
    step: i64,
    serial: bool,
    admitted: u64,
    completed: u64,
    fired: Vec<u64>,
    ready_at: Vec<u64>,
    /// In-flight (issued, not yet completed) firings per node — the
    /// databox entries of §3.4 for memory nodes, pipeline occupancy for
    /// function units.
    pending: Vec<u32>,
    /// SoA token rings, one per edge (replaces the old per-edge deques).
    arena: TokenArena,
    /// Remaining completions per in-flight instance, front = instance
    /// `completed`. Instances are admitted and retired strictly in order,
    /// so a ring indexed by `instance - completed` replaces the old
    /// per-fire `HashMap` (hashing showed up hot in both schedulers).
    outstanding: VecDeque<u32>,
    spawns_outstanding: u32,
    last_output: Vec<Value>,
    /// Internal accumulator registers of `FusedAcc` units.
    acc_state: Vec<Option<Value>>,
}

/// Per-run view of one task: the sealed graph-derived tables from the
/// [`CompiledTask`] (shared, never rebuilt) plus the few
/// configuration-dependent vectors that genuinely vary per `SimConfig`.
/// `Deref` exposes the compiled tables (`order`, `in_data`, `outs`,
/// `is_static`, `pos`, `queue_cap`, …) directly, so the schedulers read
/// them exactly as before the artifact refactor.
#[derive(Debug)]
pub(crate) struct ElabTask<'a> {
    /// The sealed per-task tables (adjacency, scan order, static masks).
    ct: &'a CompiledTask,
    /// Per node timing (depends on `cfg.period_ns`).
    timing: Vec<hw::Timing>,
    /// Per node bound on in-flight firings (databox entries for memory
    /// transit nodes; effectively unbounded for pipelined function units).
    /// Depends on `cfg.databox_entries`.
    max_pending: Vec<u32>,
    /// Per edge resolved token capacity: explicit FIFO depth, or
    /// `cfg.elastic_depth` for handshake connections.
    cap: Vec<u32>,
}

impl std::ops::Deref for ElabTask<'_> {
    type Target = CompiledTask;

    fn deref(&self) -> &CompiledTask {
        self.ct
    }
}

#[derive(Debug)]
pub(crate) struct TaskState {
    queue: VecDeque<Invocation>,
    tiles: Vec<Option<ActiveInv>>,
    invocations: u64,
    busy_cycles: u64,
    /// Indices of free tiles, min-first so dispatch picks the same tile the
    /// dense `position(|t| t.is_none())` scan would (tile choice is
    /// observable through traces and error sites).
    free_tiles: BinaryHeap<Reverse<usize>>,
    /// Retired `ActiveInv` shells recycled across invocations: their
    /// `fired/ready_at/pending/edge_q/acc_state` vectors have
    /// task-constant shapes, so reactivation is a clear, not a malloc.
    pool: Vec<ActiveInv>,
    /// Ready-scheduler wake list: `TaskCall` sites (task, tile, node)
    /// blocked on this task's full issue queue, woken when dispatch pops.
    queue_waiters: Vec<(u32, u32, u32)>,
}

/// Where the dense-order scan currently stands, for deciding whether a
/// wake can still be serviced this cycle (the dense scan visits each
/// (tile, position) exactly once per cycle, in ascending order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PassPoint {
    /// Phases 1–3: no tile processed yet; every wake is same-cycle.
    Before,
    /// Phase 4, inside tile (task, tile) at scan position `pos` (-1 while
    /// in admission, before the scan starts).
    At(usize, usize, i64),
    /// Phase 4 finished: every wake targets the next cycle.
    After,
}

/// Per-tile ready-set state for [`SchedulerKind::Ready`]. Membership is
/// tracked with dense boolean side-tables so each node appears at most
/// once per container.
#[derive(Debug, Default)]
struct ReadyTile {
    /// Candidates for the current cycle as a bitset over *scan positions*
    /// (not node ids), drained lowest-position-first so visitation mirrors
    /// the dense order. Same-cycle wakes always land at positions ahead of
    /// the drain point (the `PassPoint` rule), so the forward word walk
    /// never misses one.
    cur_bits: Vec<u64>,
    /// Number of set bits in `cur_bits` (cheap emptiness probe for the
    /// idle-skip check).
    cur_n: u32,
    /// Candidates for the next processed cycle.
    next: Vec<u32>,
    in_next: Vec<bool>,
    /// Nodes asleep until a known future cycle (`ready_at` after a firing
    /// with II > 1): (wake cycle, scan position, node).
    future: BinaryHeap<Reverse<(u64, u32, u32)>>,
    in_future: Vec<bool>,
    /// Nodes blocked on the instance gate (`fired == admitted`), woken by
    /// the next admission. Registered at gate failure and when a firing
    /// exhausts the admitted window, so admission wakes are O(waiters)
    /// instead of a scan over every node.
    adm: Vec<u32>,
    in_adm: Vec<bool>,
}

impl ReadyTile {
    fn sized(n: usize) -> ReadyTile {
        ReadyTile {
            cur_bits: vec![0; n.div_ceil(64).max(1)],
            cur_n: 0,
            next: Vec::new(),
            in_next: vec![false; n],
            future: BinaryHeap::new(),
            in_future: vec![false; n],
            adm: Vec::new(),
            in_adm: vec![false; n],
        }
    }

    /// Drop all membership (the tile's invocation retired; stale
    /// candidates must not leak into the next invocation).
    fn clear(&mut self) {
        self.cur_bits.iter_mut().for_each(|w| *w = 0);
        self.cur_n = 0;
        self.next.clear();
        self.in_next.iter_mut().for_each(|b| *b = false);
        self.future.clear();
        self.in_future.iter_mut().for_each(|b| *b = false);
        self.adm.clear();
        self.in_adm.iter_mut().for_each(|b| *b = false);
    }

    /// Insert scan position `pos` into the current-cycle set.
    fn mark_cur(&mut self, pos: u32) {
        let (w, b) = ((pos / 64) as usize, pos % 64);
        let bit = 1u64 << b;
        if self.cur_bits[w] & bit == 0 {
            self.cur_bits[w] |= bit;
            self.cur_n += 1;
        }
    }
}

#[derive(Debug)]
enum Ev {
    NodeDone {
        task: usize,
        tile: usize,
        uid: u64,
        node: usize,
        instance: u64,
    },
    Reply {
        to: ReplyTo,
        results: Vec<Value>,
    },
}

/// Calendar-queue horizon: events due within this many cycles of *now* go
/// into a per-cycle FIFO ring bucket (O(1) push/pop, no comparisons); the
/// rare event further out falls back to the `(cycle, seq)` min-heap. Node
/// latencies and memory response delays are tens of cycles, so in practice
/// virtually every event is "near". Must exceed the largest single-hop
/// event latency for the ring to pay off; correctness never depends on it.
const EV_HORIZON: u64 = 256;

/// A scheduled event in the *far* min-heap, ordered by (cycle, insertion
/// seq). Replay order across both queues is identical to the old pure-heap
/// design: a far event is by definition pushed at least [`EV_HORIZON`]
/// cycles before it is due, while a near event with the same due cycle is
/// pushed strictly later — so draining due far events before the ring
/// bucket reproduces global (cycle, push-order) order exactly.
#[derive(Debug)]
struct EvAt {
    at: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for EvAt {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for EvAt {}
impl PartialOrd for EvAt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EvAt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Debug, Clone)]
struct MemPending {
    task: usize,
    tile: usize,
    uid: u64,
    node: usize,
    instance: u64,
}

/// The simulator.
pub struct Engine<'a> {
    acc: &'a Accelerator,
    cfg: &'a SimConfig,
    mem: &'a mut Memory,
    elab: Vec<ElabTask<'a>>,
    tasks: Vec<TaskState>,
    structs: Vec<StructModel>,
    dram: DramModel,
    dram_idx: Option<usize>,
    /// Near events: ring of per-cycle FIFO buckets indexed by `at % EV_HORIZON`.
    ev_near: Vec<Vec<Ev>>,
    /// Far events (due ≥ [`EV_HORIZON`] cycles out): (cycle, seq) min-heap.
    ev_far: BinaryHeap<Reverse<EvAt>>,
    /// Total events pending across both queues.
    ev_count: usize,
    ev_seq: u64,
    req_map: HashMap<u64, MemPending, BuildHasherDefault<ReqHasher>>,
    next_req: u64,
    next_uid: u64,
    cycle: u64,
    last_progress: u64,
    root_result: Option<Vec<Value>>,
    fires: u64,
    sched_visits: u64,
    task_invocations: Vec<u64>,
    /// Dense per-(task, tile, junction) arbitration budgets, epoch-stamped
    /// by cycle so no per-cycle clear (or hashing) is needed:
    /// (epoch, reads, writes) at `junction_base[ti] + tk*njunctions + j`.
    junction_slab: Vec<(u64, u32, u32)>,
    junction_base: Vec<usize>,
    /// Ready-scheduler state, indexed [task][tile].
    ready: Vec<Vec<ReadyTile>>,
    /// True when the event-driven scheduler drives phase 4. Tracing forces
    /// the dense visitation (stall attribution *is* a per-cycle scan), so
    /// this is `Ready` and not tracing.
    use_ready: bool,
    /// True when the tile-parallel plan/commit scheduler drives phase 4
    /// (`Parallel` and not tracing, same rationale as `use_ready`).
    use_parallel: bool,
    /// Worker pool for the parallel plan phase (`None` at one thread; the
    /// plans are then computed inline, which by construction yields the
    /// same plans workers would).
    pool: Option<parallel::Pool>,
    /// Reused (task, tile) list of active tiles for the parallel phase.
    par_active: Vec<(u32, u32)>,
    /// Reused per-tile plans, index-aligned with `par_active`.
    par_plans: Vec<parallel::TilePlan>,
    /// The main thread's plan/commit scratch (shared with pool workers'
    /// private copies).
    par_ws: parallel::WorkerScratch,
    /// Reused epoch-commit job list (local tiles with work this cycle).
    par_commit_items: Vec<parallel::CommitItem>,
    /// Reused epoch-commit outputs, index-aligned with `par_commit_items`.
    par_commit_outs: Vec<parallel::CommitOut>,
    /// Maps `par_active` index → `par_commit_items` index (-1 = committed
    /// sequentially at merge).
    par_commit_map: Vec<i32>,
    /// True when firings execute from the compiled micro-op stream
    /// ([`crate::ExecMode::MicroOp`]) instead of the `NodeKind` interpreter.
    use_uop: bool,
    pass_point: PassPoint,
    wake_scratch: Vec<u32>,
    /// Reused input-slot buffer for `try_fire` (fires are the hot path;
    /// a fresh `Vec` per fire was measurable allocator churn).
    slot_scratch: Vec<Option<Value>>,
    /// Reused input-value buffer for `try_fire`, same rationale.
    val_scratch: Vec<Value>,
    /// Reused output-value buffer for `try_fire`, same rationale.
    out_scratch: Vec<Value>,
    faults: Injector,
    faults_on: bool,
    /// Nodes whose output handshake was stuck by fault injection:
    /// (task, tile, node). A stuck node never fires again.
    stuck: HashSet<(usize, usize, usize)>,
    /// Observability recorder (`None` unless tracing is enabled). The
    /// observer only *reads* engine facts — it never feeds back into
    /// simulation state, so enabling it cannot change cycle counts.
    obs: Option<Box<Observer>>,
}

impl<'a> Engine<'a> {
    /// Bind a sealed artifact to a runnable model. The graph-derived
    /// tables come straight from the [`CompiledAccel`] (built exactly
    /// once per graph); only the configuration-dependent vectors —
    /// node timing and databox bounds — are computed here, so a batch
    /// of N runs pays one compile instead of N elaborations.
    pub fn new(comp: &'a CompiledAccel, mem: &'a mut Memory, cfg: &'a SimConfig) -> Engine<'a> {
        let acc = comp.accel();
        let elab: Vec<ElabTask<'a>> = comp
            .tasks()
            .iter()
            .enumerate()
            .map(|(ti, ct)| {
                let df = &acc.tasks[ti].dataflow;
                let timing: Vec<hw::Timing> = df
                    .nodes
                    .iter()
                    .map(|nd| hw::node_timing(&nd.kind, nd.ty, cfg.period_ns))
                    .collect();
                let max_pending: Vec<u32> = df
                    .nodes
                    .iter()
                    .map(|nd| match nd.kind {
                        NodeKind::Load { .. } | NodeKind::Store { .. } => cfg.databox_entries,
                        NodeKind::TaskCall { .. } => 16,
                        _ => u32::MAX,
                    })
                    .collect();
                let cap: Vec<u32> = ct
                    .edge_meta
                    .iter()
                    .map(|m| {
                        if m.fifo == u32::MAX {
                            cfg.elastic_depth
                        } else {
                            m.fifo
                        }
                    })
                    .collect();
                ElabTask {
                    ct,
                    timing,
                    max_pending,
                    cap,
                }
            })
            .collect();
        let tasks: Vec<TaskState> = acc
            .tasks
            .iter()
            .map(|t| {
                let ntiles = t.tiles.max(1) as usize;
                TaskState {
                    queue: VecDeque::new(),
                    tiles: (0..ntiles).map(|_| None).collect(),
                    invocations: 0,
                    busy_cycles: 0,
                    free_tiles: (0..ntiles).map(Reverse).collect(),
                    pool: Vec::new(),
                    queue_waiters: Vec::new(),
                }
            })
            .collect();
        let mut structs: Vec<StructModel> = acc.structures.iter().map(StructModel::new).collect();
        for (si, st) in structs.iter_mut().enumerate() {
            st.arm_faults(&cfg.faults, si as u64);
        }
        let dram_idx = acc
            .structures
            .iter()
            .position(|s| matches!(s.kind, StructureKind::Dram { .. }));
        let mut dram = DramModel::new(dram_idx.map(|i| &acc.structures[i].kind));
        dram.arm_faults(&cfg.faults);
        let faults = Injector::new(&cfg.faults, 0x0e5e_0001, &ENGINE_FAULTS);
        let faults_on = faults.active();
        let obs = cfg.trace.enabled.then(|| Box::new(Observer::new(acc, cfg)));
        let ntasks = acc.tasks.len();
        // Junction-budget slab: one (epoch, reads, writes) slot per
        // (task, tile, junction), laid out contiguously per task.
        let mut junction_base = Vec::with_capacity(ntasks);
        let mut slab_len = 0usize;
        for (ti, e) in elab.iter().enumerate() {
            junction_base.push(slab_len);
            slab_len += tasks[ti].tiles.len() * e.njunctions;
        }
        let ready: Vec<Vec<ReadyTile>> = elab
            .iter()
            .enumerate()
            .map(|(ti, e)| {
                (0..tasks[ti].tiles.len())
                    .map(|_| ReadyTile::sized(e.is_static.len()))
                    .collect()
            })
            .collect();
        let use_ready = cfg.scheduler == SchedulerKind::Ready && obs.is_none();
        let use_parallel = cfg.scheduler == SchedulerKind::Parallel && obs.is_none();
        let total_tiles: usize = tasks.iter().map(|t| t.tiles.len()).sum();
        let pool = (use_parallel && cfg.threads > 1)
            .then(|| parallel::Pool::new(cfg.threads as usize - 1, total_tiles));
        Engine {
            acc,
            cfg,
            mem,
            elab,
            tasks,
            structs,
            dram,
            dram_idx,
            ev_near: (0..EV_HORIZON).map(|_| Vec::new()).collect(),
            ev_far: BinaryHeap::new(),
            ev_count: 0,
            ev_seq: 0,
            req_map: HashMap::default(),
            next_req: 1,
            next_uid: 1,
            cycle: 0,
            last_progress: 0,
            root_result: None,
            fires: 0,
            sched_visits: 0,
            task_invocations: vec![0; ntasks],
            junction_slab: vec![(u64::MAX, 0, 0); slab_len],
            junction_base,
            ready,
            use_ready,
            use_parallel,
            pool,
            par_active: Vec::new(),
            par_plans: Vec::new(),
            par_ws: parallel::WorkerScratch::default(),
            par_commit_items: Vec::new(),
            par_commit_outs: Vec::new(),
            par_commit_map: Vec::new(),
            use_uop: cfg.exec == crate::ExecMode::MicroOp,
            pass_point: PassPoint::Before,
            wake_scratch: Vec::new(),
            slot_scratch: Vec::new(),
            val_scratch: Vec::new(),
            out_scratch: Vec::new(),
            faults,
            faults_on,
            stuck: HashSet::new(),
            obs,
        }
    }

    /// Run the root task once with `args`; returns (cycles, results, stats,
    /// observability artifacts when tracing was enabled).
    ///
    /// # Errors
    /// Deadlock (no progress), cycle-limit exhaustion, or a functional
    /// fault (out-of-bounds access on a live path).
    #[allow(clippy::type_complexity)]
    pub fn run(
        mut self,
        args: &[Value],
    ) -> Result<(u64, Vec<Value>, SimStats, Option<(SimProfile, Trace)>), SimError> {
        // DMA model (§3.2: scratchpads are DMA-managed): streaming the
        // read-only inputs into scratchpads costs DRAM bandwidth up front;
        // draining written scratchpad objects costs bandwidth at the end.
        let (fill, drain) = self.dma_elems();
        let (lat, bw) = match self.dram_idx.map(|i| &self.acc.structures[i].kind) {
            Some(StructureKind::Dram {
                latency,
                elems_per_cycle,
            }) => (*latency as u64, (*elems_per_cycle).max(1) as u64),
            _ => (40, 8),
        };
        // Scratchpad DMA is double-buffered: inbound streams overlap with
        // compute, so only the first burst is exposed; the outbound drain
        // likewise overlaps except its tail.
        let burst = 4 * bw;
        let fill_delay = if fill > 0 {
            lat + fill.min(burst).div_ceil(bw)
        } else {
            0
        };
        let drain_delay = if drain > 0 {
            lat + drain.min(burst).div_ceil(bw)
        } else {
            0
        };

        let root = self.acc.root.0 as usize;
        let uid = self.fresh_uid();
        self.tasks[root].queue.push_back(Invocation {
            uid,
            args: args.to_vec(),
            reply: None,
            spawn_parent: None,
        });
        self.cycle = fill_delay;
        self.last_progress = fill_delay;
        while self.root_result.is_none() {
            if self.use_ready {
                self.maybe_skip_idle();
            }
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimError::CycleLimitExhausted {
                    limit: self.cfg.max_cycles,
                });
            }
            if self.cycle - self.last_progress > self.cfg.deadlock_cycles {
                return Err(SimError::Deadlock {
                    cycle: self.cycle,
                    report: Box::new(self.diagnose_deadlock()),
                });
            }
            self.step()?;
        }
        // Whatever the dataflow achieved, the run can never beat the AXI
        // channel: all scratchpad streams must cross it once.
        let stream_floor = lat + (fill + drain).div_ceil(bw);
        let cycles = (self.cycle + drain_delay).max(stream_floor);
        let results = self.root_result.take().unwrap_or_default();
        let stats = self.collect_stats(cycles);
        let observed = self
            .obs
            .take()
            .map(|o| o.finish(cycles, &stats.struct_stats));
        Ok((cycles, results, stats, observed))
    }

    /// Elements DMA'd into scratchpads before launch (read-only inputs) and
    /// drained out after completion (written objects).
    fn dma_elems(&self) -> (u64, u64) {
        let mut fill = 0;
        let mut drain = 0;
        for st in &self.acc.structures {
            if !matches!(st.kind, StructureKind::Scratchpad { .. }) {
                continue;
            }
            for obj in &st.objects {
                let Some(&(len, ro)) = self.acc.object_info.get(obj.0 as usize) else {
                    continue;
                };
                if ro {
                    fill += len;
                } else {
                    fill += len; // outputs are zero/limit-initialised too
                    drain += len;
                }
            }
        }
        (fill, drain)
    }

    fn collect_stats(&self, cycles: u64) -> SimStats {
        let mut faults = self.faults.counts;
        for s in &self.structs {
            faults.merge(&s.fault_counts());
        }
        faults.merge(&self.dram.fault_counts());
        SimStats {
            cycles,
            fires: self.fires,
            task_invocations: self.task_invocations.clone(),
            task_busy_cycles: self.tasks.iter().map(|t| t.busy_cycles).collect(),
            struct_stats: self.structs.iter().map(|s| s.stats).collect(),
            dram_fills: self.dram.fills,
            faults,
            sched_visits: self.sched_visits,
        }
    }

    /// Schedule `ev` at cycle `at`; within a cycle events replay in push
    /// order. Near events (due inside [`EV_HORIZON`]) take the O(1) ring
    /// bucket; far events take the (cycle, seq) heap.
    fn schedule(&mut self, at: u64, ev: Ev) {
        debug_assert!(at > self.cycle, "events are always strictly future");
        self.ev_count += 1;
        if at - self.cycle < EV_HORIZON {
            self.ev_near[(at % EV_HORIZON) as usize].push(ev);
        } else {
            self.ev_seq += 1;
            self.ev_far.push(Reverse(EvAt {
                at,
                seq: self.ev_seq,
                ev,
            }));
        }
    }

    /// Cycle of the earliest scheduled event. O(1) for the far heap plus a
    /// bounded ring scan; only the idle-skip paths call this, never the
    /// per-cycle hot loop.
    fn next_event_cycle(&self) -> Option<u64> {
        if self.ev_count == 0 {
            return None;
        }
        let mut earliest = self.ev_far.peek().map(|Reverse(e)| e.at);
        for off in 0..EV_HORIZON {
            let at = self.cycle + off;
            if !self.ev_near[(at % EV_HORIZON) as usize].is_empty() {
                earliest = Some(earliest.map_or(at, |f| f.min(at)));
                break;
            }
        }
        earliest
    }

    /// Arbitration budget slot for junction `j` on (task, tile), reset
    /// lazily when first touched in a new cycle.
    fn jslot(&mut self, ti: usize, tk: usize, j: usize) -> &mut (u64, u32, u32) {
        let idx = self.junction_base[ti] + tk * self.elab[ti].njunctions + j;
        let slot = &mut self.junction_slab[idx];
        if slot.0 != self.cycle {
            *slot = (self.cycle, 0, 0);
        }
        slot
    }

    /// Ready-scheduler wake: (re)insert `node` as a firing candidate on
    /// (task, tile). A wake is a *hint* — `try_fire` re-checks every gate —
    /// so spurious wakes cost a visit, never correctness; a *missed* wake
    /// is the only bug class. Placement keeps dense-order semantics: a
    /// node the current scan could still reach this cycle goes in `cur`,
    /// anything else in `next`; nodes throttled by `ready_at` (II) sleep
    /// in `future` until their cycle.
    fn wake(&mut self, ti: usize, tk: usize, node: usize) {
        if !self.use_ready || self.elab[ti].is_static[node] {
            return;
        }
        if self.faults_on && self.stuck.contains(&(ti, tk, node)) {
            return; // a stuck handshake never fires again
        }
        let Some(inv) = self.tasks[ti].tiles[tk].as_ref() else {
            return;
        };
        let pos = self.elab[ti].pos[node];
        let ready_at = inv.ready_at[node];
        let rt = &mut self.ready[ti][tk];
        if ready_at > self.cycle {
            // II-throttled. The overwhelmingly common case is II = 1
            // (`ready_at == cycle + 1`), which is exactly what `next`
            // means — spare the future-heap a push/pop pair.
            if ready_at == self.cycle + 1 {
                if !rt.in_next[node] {
                    rt.in_next[node] = true;
                    rt.next.push(node as u32);
                }
            } else if !rt.in_future[node] {
                rt.in_future[node] = true;
                rt.future.push(Reverse((ready_at, pos, node as u32)));
            }
            return;
        }
        let same_cycle = match self.pass_point {
            PassPoint::Before => true,
            PassPoint::At(cti, ctk, cpos) => {
                ((ti, tk) > (cti, ctk)) || ((ti, tk) == (cti, ctk) && i64::from(pos) > cpos)
            }
            PassPoint::After => false,
        };
        if same_cycle {
            rt.mark_cur(pos);
        } else if !rt.in_next[node] {
            rt.in_next[node] = true;
            rt.next.push(node as u32);
        }
    }

    /// Whether the tile's invocation could admit a new instance this cycle
    /// (the dense scheduler checks this every cycle; the ready scheduler
    /// must not skip a cycle in which it would succeed).
    fn can_admit(&self, inv: &ActiveInv) -> bool {
        inv.admitted < inv.trip
            && if inv.serial {
                inv.completed == inv.admitted
            } else {
                inv.admitted - inv.completed < self.cfg.window
            }
    }

    /// Idle-cycle skip: when provably nothing can happen at the current
    /// cycle — no dispatch, no admission, no ready candidate, quiescent
    /// memory, no due event — jump straight to the earliest cycle at which
    /// something *can*, capped at the deadlock deadline and cycle limit so
    /// watchdog errors fire at exactly the dense scheduler's cycle. Each
    /// skipped cycle is a no-op under dense semantics (empty banks tick to
    /// nothing, every `try_fire` would gate out), except tile-busy
    /// accounting, which is applied in bulk.
    fn maybe_skip_idle(&mut self) {
        let cycle = self.cycle;
        let mut earliest = u64::MAX;
        for (ti, t) in self.tasks.iter().enumerate() {
            if !t.queue.is_empty() && !t.free_tiles.is_empty() {
                return; // dispatch would happen now
            }
            for (tk, tile) in t.tiles.iter().enumerate() {
                let Some(inv) = tile else { continue };
                if self.can_admit(inv) {
                    return;
                }
                let rt = &self.ready[ti][tk];
                if rt.cur_n != 0 || !rt.next.is_empty() {
                    return; // candidates due this cycle
                }
                if let Some(&Reverse((at, _, _))) = rt.future.peek() {
                    earliest = earliest.min(at);
                }
            }
        }
        for s in &self.structs {
            match s.next_activity(cycle) {
                Some(at) if at <= cycle => return, // must tick now
                Some(at) => earliest = earliest.min(at),
                None => {}
            }
        }
        if let Some(at) = self.next_event_cycle() {
            if at <= cycle {
                return;
            }
            earliest = earliest.min(at);
        }
        // Never skip past the watchdog deadline (first cycle at which
        // `cycle - last_progress > deadlock_cycles`) or the hard limit.
        let deadline = (self.last_progress + self.cfg.deadlock_cycles).saturating_add(1);
        let target = earliest.min(deadline).min(self.cfg.max_cycles);
        if target <= cycle {
            return;
        }
        let skipped = target - cycle;
        for t in &mut self.tasks {
            let active = t.tiles.iter().filter(|x| x.is_some()).count() as u64;
            t.busy_cycles += active * skipped;
        }
        self.cycle = target;
    }

    /// Walk the blocked-channel wait-for graph and diagnose the stall.
    ///
    /// Every node that still has instances to fire contributes wait-for
    /// edges: an *empty* input channel makes it wait on its producer; a
    /// *full* output channel makes it wait on its consumer. A cycle over
    /// these edges is the deadlock's root cause; if one of the cycle's
    /// channels is full, growing that buffer breaks the cycle, and the
    /// report says exactly which edge and to what depth.
    fn diagnose_deadlock(&self) -> DeadlockReport {
        let cycle = self.cycle;
        let mut vertices: Vec<V> = Vec::new();
        let mut waits: HashMap<V, Vec<W>> = HashMap::new();
        let mut report = DeadlockReport {
            mem_outstanding: self.req_map.len() as u32,
            stuck_nodes: {
                let mut sn: Vec<(u32, u32)> = self
                    .stuck
                    .iter()
                    .map(|&(ti, _, n)| (ti as u32, n as u32))
                    .collect();
                sn.sort_unstable();
                sn.dedup();
                sn
            },
            ..DeadlockReport::default()
        };
        for (ti, t) in self.tasks.iter().enumerate() {
            let df = &self.acc.tasks[ti].dataflow;
            let name = &self.acc.tasks[ti].name;
            if !t.queue.is_empty() {
                report.queued.push((ti as u32, t.queue.len()));
            }
            for (tk, tile) in t.tiles.iter().enumerate() {
                let Some(inv) = tile else { continue };
                report.stuck_tiles.push(StuckTile {
                    task: ti as u32,
                    task_name: name.clone(),
                    tile: tk as u32,
                    trip: inv.trip,
                    admitted: inv.admitted,
                    completed: inv.completed,
                    spawns_outstanding: inv.spawns_outstanding,
                });
                for node in 0..df.nodes.len() {
                    if self.elab[ti].is_static[node] || self.stuck.contains(&(ti, tk, node)) {
                        continue;
                    }
                    let k = inv.fired[node];
                    if k >= inv.admitted {
                        continue; // waiting for admission, not a channel
                    }
                    let me: V = (ti, tk, node);
                    let mut out: Vec<W> = Vec::new();
                    // Empty input channels: waiting on the producer.
                    let is_merge = matches!(df.nodes[node].kind, NodeKind::Merge);
                    for &ei in self.elab[ti].in_data[node]
                        .iter()
                        .chain(self.elab[ti].in_order[node].iter())
                    {
                        let e = &df.edges[ei];
                        if self.elab[ti].is_static[e.src.0 as usize] {
                            continue;
                        }
                        if is_merge && e.dst_port == 1 && k == 0 {
                            continue;
                        }
                        let has = inv.arena.front(ei).is_some_and(|(_, vis)| vis <= cycle);
                        if !has {
                            out.push(W {
                                to: (ti, tk, e.src.0 as usize),
                                edge: WaitEdge {
                                    task: ti as u32,
                                    task_name: name.clone(),
                                    edge: ei as u32,
                                    src: node as u32,
                                    src_name: df.nodes[node].name.clone(),
                                    dst: e.src.0,
                                    dst_name: df.nodes[e.src.0 as usize].name.clone(),
                                    capacity: self.edge_capacity(ti, ei) as u32,
                                    state: ChannelState::Empty,
                                },
                            });
                        }
                    }
                    // Full output channels: waiting on the consumer.
                    for &ei in self.elab[ti].outs[node].iter() {
                        let e = &df.edges[ei];
                        let cap = self.edge_capacity(ti, ei);
                        let visible = inv.arena.visible(ei) as usize;
                        if visible >= cap {
                            out.push(W {
                                to: (ti, tk, e.dst.0 as usize),
                                edge: WaitEdge {
                                    task: ti as u32,
                                    task_name: name.clone(),
                                    edge: ei as u32,
                                    src: node as u32,
                                    src_name: df.nodes[node].name.clone(),
                                    dst: e.dst.0,
                                    dst_name: df.nodes[e.dst.0 as usize].name.clone(),
                                    capacity: cap as u32,
                                    state: ChannelState::Full,
                                },
                            });
                        }
                    }
                    if !out.is_empty() {
                        vertices.push(me);
                        waits.insert(me, out);
                    }
                }
            }
        }
        report.wait_cycle = find_wait_cycle(&vertices, &waits);
        report.suggestion = report
            .wait_cycle
            .iter()
            .filter(|w| w.state == ChannelState::Full)
            .min_by_key(|w| w.capacity)
            .map(|w| BufferSuggestion {
                task: w.task,
                edge: w.edge,
                depth: w.capacity + 1,
            });
        report
    }

    /// Token capacity of an edge: explicit FIFOs use their depth; default
    /// handshake connections act as elastic pipelines.
    ///
    /// `Fifo(0)` is honored as a genuinely capacity-less channel — the
    /// hardware a μopt pass would emit if it removed a pipeline register it
    /// shouldn't have. Such an edge can never carry a token; the producer
    /// blocks forever and the deadlock diagnosis names the edge and the
    /// buffer bump that fixes it.
    fn edge_capacity(&self, ti: usize, ei: usize) -> usize {
        self.elab[ti].cap[ei] as usize
    }

    /// A typed `Fault` error located at a node interface.
    fn fault_err(
        &self,
        ti: usize,
        tk: usize,
        node: usize,
        instance: u64,
        kind: FaultKind,
        detail: String,
    ) -> SimError {
        let uid = self.tasks[ti].tiles[tk]
            .as_ref()
            .map(|i| i.uid)
            .unwrap_or(0);
        SimError::Fault {
            cycle: self.cycle,
            task: ti as u32,
            task_name: self.acc.tasks[ti].name.clone(),
            node: node as u32,
            invocation: uid,
            instance,
            kind,
            detail,
        }
    }

    fn fresh_uid(&mut self) -> u64 {
        let u = self.next_uid;
        self.next_uid += 1;
        u
    }

    /// Record a blocked firing opportunity at `site = (task, tile, node)`
    /// and yield the cycle. Pure observation: no engine state changes.
    fn note_stall(
        &mut self,
        site: (usize, usize, usize),
        reason: StallReason,
        edge: Option<usize>,
        structure: Option<usize>,
    ) -> Result<(), SimError> {
        if let Some(obs) = self.obs.as_mut() {
            obs.stall(self.cycle, site, reason, edge, structure);
        }
        Ok(())
    }

    /// Deliver one scheduled event to its completion handler.
    fn dispatch_event(&mut self, ev: Ev) -> Result<(), SimError> {
        match ev {
            Ev::NodeDone {
                task,
                tile,
                uid,
                node,
                instance,
            } => self.node_done(task, tile, uid, node, instance, None),
            Ev::Reply { to, results } => self.node_done(
                to.task,
                to.tile,
                to.uid,
                to.node,
                to.instance,
                Some(results),
            ),
        }
    }

    fn step(&mut self) -> Result<(), SimError> {
        let cycle = self.cycle;
        self.pass_point = PassPoint::Before;
        // Phase 1: scheduled events, in (cycle, push-order) order. Due far
        // events drain first — each was pushed ≥ EV_HORIZON cycles ago, so
        // it precedes every near event due this cycle in push order.
        while self.ev_far.peek().is_some_and(|Reverse(e)| e.at <= cycle) {
            let Reverse(EvAt { ev, .. }) = self.ev_far.pop().expect("peeked");
            self.ev_count -= 1;
            self.dispatch_event(ev)?;
        }
        let slot = (cycle % EV_HORIZON) as usize;
        if !self.ev_near[slot].is_empty() {
            let mut bucket = std::mem::take(&mut self.ev_near[slot]);
            self.ev_count -= bucket.len();
            for ev in bucket.drain(..) {
                self.dispatch_event(ev)?;
            }
            // Nothing can land in this slot mid-drain (that would need
            // `at == cycle + EV_HORIZON`, which goes to the far heap), so
            // swap the emptied Vec back to keep its capacity.
            self.ev_near[slot] = bucket;
        }
        // Phase 2: memory responses.
        for si in 0..self.structs.len() {
            let responses = {
                let (head, tail) = self.structs.split_at_mut(si);
                let _ = head;
                let model = &mut tail[0];
                let dram = if Some(si) == self.dram_idx {
                    None
                } else {
                    Some(&mut self.dram)
                };
                model.tick(cycle, dram)
            };
            for r in responses {
                if let Some(p) = self.req_map.remove(&r.id) {
                    if let Some(obs) = self.obs.as_mut() {
                        obs.mem_resp(cycle, si, r.id);
                    }
                    if r.ecc == Ecc::Uncorrectable {
                        return Err(self.fault_err(
                            p.task,
                            p.tile,
                            p.node,
                            p.instance,
                            FaultKind::EccUncorrectable,
                            format!("memory response for request {} (structure {si})", r.id),
                        ));
                    }
                    self.node_done(p.task, p.tile, p.uid, p.node, p.instance, None)?;
                }
            }
        }
        // Phase 3: dispatch queued invocations onto free tiles (min-index
        // first, matching the old linear `is_none()` scan).
        for ti in 0..self.tasks.len() {
            while !self.tasks[ti].queue.is_empty() {
                let Some(&Reverse(free)) = self.tasks[ti].free_tiles.peek() else {
                    break;
                };
                self.tasks[ti].free_tiles.pop();
                let invq = self.tasks[ti].queue.pop_front().expect("checked");
                if self.use_ready && !self.tasks[ti].queue_waiters.is_empty() {
                    // A queue slot freed: blocked TaskCall sites may retry.
                    let waiters = std::mem::take(&mut self.tasks[ti].queue_waiters);
                    for (wti, wtk, wnode) in &waiters {
                        self.wake(*wti as usize, *wtk as usize, *wnode as usize);
                    }
                }
                let uid = invq.uid;
                self.activate(ti, free, invq).map_err(|e| {
                    e.at_site(cycle, ti as u32, &self.acc.tasks[ti].name, None, Some(uid))
                })?;
            }
        }
        // Phase 4: admissions + node firing (consumers-first order).
        let mut par_outcome = None;
        if self.use_parallel {
            par_outcome = Some(self.phase4_parallel()?);
        } else {
            for ti in 0..self.tasks.len() {
                for tk in 0..self.tasks[ti].tiles.len() {
                    if self.tasks[ti].tiles[tk].is_some() {
                        self.tasks[ti].busy_cycles += 1;
                        if self.use_ready {
                            self.tile_tick_ready(ti, tk)?;
                        } else {
                            self.tile_tick(ti, tk)?;
                        }
                        self.check_invocation_complete(ti, tk)?;
                    }
                }
            }
        }
        self.pass_point = PassPoint::After;
        self.cycle += 1;
        if let Some((shortfall, min_ready)) = par_outcome {
            self.parallel_skip_idle(shortfall, min_ready);
        }
        Ok(())
    }

    /// Phase 4 under [`SchedulerKind::Parallel`]: a two-phase cycle.
    ///
    /// *Plan* (parallel, read-only): each active tile independently computes
    /// a [`parallel::TilePlan`] — an admission prediction and a candidate
    /// list that is a provable superset of the nodes the dense scan would
    /// fire, in dense scan order (see `parallel.rs` for the gate-by-gate
    /// argument). Tiles share no mutable state, so any sharding across the
    /// worker pool yields identical plans.
    ///
    /// *Commit*: tiles whose plan is **local** (every candidate a pure
    /// micro-op with in-order tokens) are committed in parallel on the
    /// worker pool (`parallel::commit_local`), with their engine-global
    /// effects — fire/visit counters, progress, completion events —
    /// buffered per tile and merged below in dense tile order, which
    /// reproduces the sequential commit bit-for-bit (DESIGN.md §14). All
    /// other tiles replay their candidates through `try_fire` at their
    /// dense slot in the merge, re-checking every gate. Either way the
    /// commit's gate-passing visits are exactly the dense scan's, so every
    /// global side effect — fault-RNG rolls, event sequence numbers,
    /// memory request ids, junction budgets — happens in exactly the dense
    /// order, which is what makes the scheduler bit-identical at any
    /// thread count (DESIGN.md §10).
    ///
    /// Epoch commit is enabled only under the micro-op exec mode with
    /// fault injection off (token-fault RNG draws must stay in dense
    /// order) and an actual pool to shard across.
    ///
    /// Returns `(shortfall, min_ready)` for the post-commit idle skip:
    /// `shortfall` is set when some candidate did not fire (its blocker may
    /// clear by pure time advance, e.g. a junction budget refresh, so the
    /// next cycle cannot be skipped), and `min_ready` is the earliest
    /// known future wake (II throttles) observed while planning/committing.
    fn phase4_parallel(&mut self) -> Result<(bool, u64), SimError> {
        let cycle = self.cycle;
        let mut active = std::mem::take(&mut self.par_active);
        active.clear();
        for (ti, t) in self.tasks.iter().enumerate() {
            for (tk, tile) in t.tiles.iter().enumerate() {
                if tile.is_some() {
                    active.push((ti as u32, tk as u32));
                }
            }
        }
        let n = active.len();
        let mut plans = std::mem::take(&mut self.par_plans);
        if plans.len() < n {
            plans.resize_with(n, parallel::TilePlan::default);
        }
        let use_epoch = self.use_uop && !self.faults_on && self.pool.is_some();
        {
            let ctx = parallel::PlanCtx {
                acc: self.acc,
                elab: &self.elab,
                tasks: &self.tasks,
                stuck: &self.stuck,
                faults_on: self.faults_on,
                cycle,
                window: self.cfg.window,
                skip_pre: use_epoch,
            };
            match &self.pool {
                // Engaging workers for a single tile only adds handoff
                // latency; the inline path computes the very same plan.
                Some(pool) if n >= 2 => {
                    pool.plan(&ctx, &active, &mut plans[..n], &mut self.par_ws);
                }
                _ => {
                    for (i, &(ti, tk)) in active.iter().enumerate() {
                        parallel::plan_tile(
                            &ctx,
                            ti as usize,
                            tk as usize,
                            &mut self.par_ws,
                            &mut plans[i],
                        );
                    }
                }
            }
        }
        // Epoch commit, phase A: shard the local tiles' commits across the
        // pool, buffering their global effects. A tile qualifies when its
        // plan is local and non-trivial; trivial (no-admit, no-candidate)
        // tiles have nothing to commit. Every item built here is still
        // alive at the merge: mid-merge retirement (a child's completion
        // cascading into its spawn parent) requires the parent tile to have
        // drained all its work, which forces an empty plan — skipped here.
        let mut items = std::mem::take(&mut self.par_commit_items);
        let mut outs = std::mem::take(&mut self.par_commit_outs);
        let mut map = std::mem::take(&mut self.par_commit_map);
        items.clear();
        map.clear();
        map.resize(n, -1);
        if use_epoch {
            for (i, &(ti, tk)) in active.iter().enumerate() {
                let (ti, tk) = (ti as usize, tk as usize);
                if !plans[i].local || (!plans[i].admit && plans[i].cands.is_empty()) {
                    continue;
                }
                let Some(inv) = self.tasks[ti].tiles[tk].as_mut() else {
                    continue;
                };
                map[i] = items.len() as i32;
                items.push(parallel::CommitItem {
                    ti: ti as u32,
                    inv: std::ptr::from_mut(inv),
                    plan: &plans[i],
                });
            }
            if outs.len() < items.len() {
                outs.resize_with(items.len(), parallel::CommitOut::default);
            }
            let ctx = parallel::CommitCtx {
                elab: &self.elab,
                cycle,
                window: self.cfg.window,
            };
            parallel::EPOCH_TILE_COMMITS
                .fetch_add(items.len() as u64, std::sync::atomic::Ordering::Relaxed);
            let pool = self.pool.as_ref().expect("use_epoch implies pool");
            if items.len() >= 2 {
                pool.commit(&ctx, &items, &mut outs[..items.len()], &mut self.par_ws);
            } else {
                for (j, item) in items.iter().enumerate() {
                    parallel::commit_item(&ctx, item, &mut outs[j], &mut self.par_ws);
                }
            }
        }
        // Merge / sequential commit, in dense tile order.
        let mut shortfall = false;
        let mut min_ready = u64::MAX;
        for (i, &(ti, tk)) in active.iter().enumerate().take(n) {
            let (ti, tk) = (ti as usize, tk as usize);
            if self.tasks[ti].tiles[tk].is_none() {
                // Retired earlier this phase (a child's completion released
                // its spawn parent); the dense scan would skip it too.
                continue;
            }
            self.tasks[ti].busy_cycles += 1;
            let mi = map[i];
            if mi >= 0 {
                // Epoch-committed in phase A: merge its buffered effects
                // here, in the tile's dense slot, so event sequence numbers
                // and counters match the sequential commit bit-for-bit.
                let out = &mut outs[mi as usize];
                self.sched_visits += out.visits;
                self.fires += out.fires;
                if out.progressed {
                    self.last_progress = cycle;
                }
                shortfall |= out.shortfall;
                min_ready = min_ready.min(out.min_ready);
                let uid = self.tasks[ti].tiles[tk].as_ref().map(|v| v.uid);
                for (at, node, instance) in out.events.drain(..) {
                    self.schedule(
                        at,
                        Ev::NodeDone {
                            task: ti,
                            tile: tk,
                            uid: uid.unwrap_or(0),
                            node: node as usize,
                            instance,
                        },
                    );
                }
                if let Some((node, err)) = out.err.take() {
                    return Err(err.at_site(
                        cycle,
                        ti as u32,
                        &self.acc.tasks[ti].name,
                        Some(node),
                        uid,
                    ));
                }
            } else {
                let admitted = self.admit(ti, tk);
                debug_assert_eq!(
                    admitted.is_some(),
                    plans[i].admit,
                    "plan admission prediction diverged"
                );
                let uid = self.tasks[ti].tiles[tk].as_ref().map(|v| v.uid);
                for c in 0..plans[i].cands.len() {
                    let pos = plans[i].cands[c].pos as usize;
                    let pre = plans[i].cands[c].pre.take();
                    let node = self.elab[ti].order[pos];
                    let before = self.fires;
                    self.try_fire(ti, tk, node, pre).map_err(|e| {
                        e.at_site(
                            cycle,
                            ti as u32,
                            &self.acc.tasks[ti].name,
                            Some(node as u32),
                            uid,
                        )
                    })?;
                    if self.fires == before {
                        shortfall = true;
                    } else if let Some(inv) = self.tasks[ti].tiles[tk].as_ref() {
                        if inv.fired[node] < inv.admitted {
                            min_ready = min_ready.min(inv.ready_at[node]);
                        }
                    }
                }
            }
            min_ready = min_ready.min(plans[i].next_wake);
            self.check_invocation_complete(ti, tk)?;
        }
        self.par_active = active;
        self.par_plans = plans;
        self.par_commit_items = items;
        self.par_commit_outs = outs;
        self.par_commit_map = map;
        Ok((shortfall, min_ready))
    }

    /// Post-commit idle skip for the parallel scheduler, the counterpart of
    /// [`Engine::maybe_skip_idle`]: when the cycle just committed proves
    /// nothing can happen until a known future cycle — every candidate
    /// fired, no dispatch or admission is possible, memory and the event
    /// heap are quiescent — jump there, capped at the watchdog deadline and
    /// cycle limit so errors fire at exactly the dense scheduler's cycle.
    fn parallel_skip_idle(&mut self, shortfall: bool, min_ready: u64) {
        if shortfall || self.root_result.is_some() {
            return;
        }
        let cycle = self.cycle;
        let mut earliest = min_ready;
        for t in &self.tasks {
            if !t.queue.is_empty() && !t.free_tiles.is_empty() {
                return; // dispatch would happen now
            }
            for tile in &t.tiles {
                let Some(inv) = tile else { continue };
                if self.can_admit(inv) {
                    return;
                }
            }
        }
        for s in &self.structs {
            match s.next_activity(cycle) {
                Some(at) if at <= cycle => return, // must tick now
                Some(at) => earliest = earliest.min(at),
                None => {}
            }
        }
        if let Some(at) = self.next_event_cycle() {
            if at <= cycle {
                return;
            }
            earliest = earliest.min(at);
        }
        let deadline = (self.last_progress + self.cfg.deadlock_cycles).saturating_add(1);
        let target = earliest.min(deadline).min(self.cfg.max_cycles);
        if target <= cycle {
            return;
        }
        let skipped = target - cycle;
        for t in &mut self.tasks {
            let active = t.tiles.iter().filter(|x| x.is_some()).count() as u64;
            t.busy_cycles += active * skipped;
        }
        self.cycle = target;
    }

    fn activate(&mut self, ti: usize, tile: usize, inv: Invocation) -> Result<(), SimError> {
        let task = &self.acc.tasks[ti];
        let (trip, lo, step, serial) = match &task.kind {
            TaskKind::Region => (1u64, 0i64, 1i64, false),
            TaskKind::Loop { spec, serial } => {
                let eval = |e: &ArgExpr| -> Result<i64, SimError> {
                    match e {
                        ArgExpr::Const(k) => Ok(*k),
                        ArgExpr::Arg(a) => {
                            inv.args.get(*a as usize).map(Value::as_int).ok_or_else(|| {
                                SimError::eval(format!("loop bound argument {a} missing"))
                            })
                        }
                    }
                };
                let lo = eval(&spec.lo)?;
                let hi = eval(&spec.hi)?;
                let trip = if hi > lo {
                    ((hi - lo) as u64).div_ceil(spec.step as u64)
                } else {
                    0
                };
                (trip, lo, spec.step, *serial)
            }
        };
        let nnodes = task.dataflow.nodes.len();
        self.tasks[ti].invocations += 1;
        self.task_invocations[ti] += 1;
        // Recycle a retired shell when one is pooled: its vectors already
        // have this task's shapes, so reactivation allocates nothing.
        let active = match self.tasks[ti].pool.pop() {
            Some(mut a) => {
                a.uid = inv.uid;
                a.args = inv.args;
                a.reply = inv.reply;
                a.spawn_parent = inv.spawn_parent;
                a.trip = trip;
                a.lo = lo;
                a.step = step;
                a.serial = serial;
                a.admitted = 0;
                a.completed = 0;
                a.fired.iter_mut().for_each(|x| *x = 0);
                a.ready_at.iter_mut().for_each(|x| *x = 0);
                a.pending.iter_mut().for_each(|x| *x = 0);
                a.arena.clear();
                a.outstanding.clear();
                a.spawns_outstanding = 0;
                a.last_output.clear();
                a.acc_state.iter_mut().for_each(|x| *x = None);
                a
            }
            None => ActiveInv {
                uid: inv.uid,
                args: inv.args,
                reply: inv.reply,
                spawn_parent: inv.spawn_parent,
                trip,
                lo,
                step,
                serial,
                admitted: 0,
                completed: 0,
                fired: vec![0; nnodes],
                ready_at: vec![0; nnodes],
                pending: vec![0; nnodes],
                arena: TokenArena::with_caps(&self.elab[ti].cap),
                outstanding: VecDeque::new(),
                spawns_outstanding: 0,
                last_output: Vec::new(),
                acc_state: vec![None; nnodes],
            },
        };
        self.tasks[ti].tiles[tile] = Some(active);
        self.last_progress = self.cycle;
        Ok(())
    }

    /// Static value of an Input/Const node for the given invocation.
    fn static_value(&self, ti: usize, inv: &ActiveInv, node: usize) -> Result<Value, SimError> {
        match &self.acc.tasks[ti].dataflow.nodes[node].kind {
            NodeKind::Input { index } => inv
                .args
                .get(*index as usize)
                .cloned()
                .ok_or_else(|| SimError::eval(format!("missing argument {index}"))),
            NodeKind::Const(c) => Ok(c.to_value()),
            other => Err(SimError::eval(format!(
                "static read of dynamic node {other:?}"
            ))),
        }
    }

    fn tile_tick(&mut self, ti: usize, tk: usize) -> Result<(), SimError> {
        let cycle = self.cycle;
        self.admit(ti, tk);
        // Node firing in consumers-first order.
        let uid = self.tasks[ti].tiles[tk].as_ref().map(|i| i.uid);
        for pos in 0..self.elab[ti].order.len() {
            let node = self.elab[ti].order[pos];
            self.try_fire(ti, tk, node, None).map_err(|e| {
                e.at_site(
                    cycle,
                    ti as u32,
                    &self.acc.tasks[ti].name,
                    Some(node as u32),
                    uid,
                )
            })?;
        }
        Ok(())
    }

    /// Admission: at most one new instance per cycle. Returns the admitted
    /// instance number, if any.
    fn admit(&mut self, ti: usize, tk: usize) -> Option<u64> {
        let cycle = self.cycle;
        let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
        let can = inv.admitted < inv.trip
            && if inv.serial {
                inv.completed == inv.admitted
            } else {
                inv.admitted - inv.completed < self.cfg.window
            };
        if !can {
            return None;
        }
        let k = inv.admitted;
        inv.admitted += 1;
        let dc = self.elab[ti].dynamic_count;
        debug_assert_eq!(k, inv.completed + inv.outstanding.len() as u64);
        inv.outstanding.push_back(dc);
        self.last_progress = cycle;
        Some(k)
    }

    /// Ready-scheduler tile pass: admission, then fire only the woken
    /// candidates, in ascending scan position — exactly the subsequence of
    /// the dense scan that would have fired or stalled for a cause.
    fn tile_tick_ready(&mut self, ti: usize, tk: usize) -> Result<(), SimError> {
        let cycle = self.cycle;
        self.pass_point = PassPoint::At(ti, tk, -1);
        if let Some(k) = self.admit(ti, tk) {
            // Admission opened instance `k`: nodes whose next firing is
            // instance `k` may now have work (their input tokens can
            // predate admission — elastic edges run ahead).
            let mut scratch = std::mem::take(&mut self.wake_scratch);
            scratch.clear();
            if k == 0 {
                // Seeding: every dynamic node's next firing is instance 0.
                let is_static = &self.elab[ti].is_static;
                for (node, &st) in is_static.iter().enumerate() {
                    if !st {
                        scratch.push(node as u32);
                    }
                }
            } else {
                // Only parked admission waiters can be unblocked by a later
                // admission (anything else is gated by tokens or II, which
                // carry their own wakes).
                let rt = &mut self.ready[ti][tk];
                scratch.append(&mut rt.adm);
                for &node in &scratch {
                    rt.in_adm[node as usize] = false;
                }
            }
            for &node in &scratch {
                self.wake(ti, tk, node as usize);
            }
            self.wake_scratch = scratch;
        }
        // Promote due sleepers and deferred candidates into this cycle's
        // set. (`next` entries were deferred from an earlier point of the
        // scan; `future` entries reached their `ready_at`.)
        {
            let elab = &self.elab[ti];
            let rt = &mut self.ready[ti][tk];
            while let Some(&Reverse((at, pos, node))) = rt.future.peek() {
                if at > cycle {
                    break;
                }
                rt.future.pop();
                rt.in_future[node as usize] = false;
                rt.mark_cur(pos);
            }
            while let Some(node) = rt.next.pop() {
                rt.in_next[node as usize] = false;
                rt.mark_cur(elab.pos[node as usize]);
            }
        }
        let uid = self.tasks[ti].tiles[tk].as_ref().map(|i| i.uid);
        // Drain the bitset lowest-position-first. The word is re-read after
        // every visit: a same-cycle wake from inside `try_fire` can only
        // set a bit ahead of the drain point, which this forward walk will
        // still reach. `order` is re-indexed per visit rather than cloned
        // out of its `Arc` up front — the refcount pair costs more than the
        // handful of per-visit loads on low-activity cycles.
        let mut wi = 0;
        while wi < self.ready[ti][tk].cur_bits.len() {
            let word = self.ready[ti][tk].cur_bits[wi];
            if word == 0 {
                wi += 1;
                continue;
            }
            let bit = word.trailing_zeros();
            let rt = &mut self.ready[ti][tk];
            rt.cur_bits[wi] &= !(1u64 << bit);
            rt.cur_n -= 1;
            let pos = wi as u32 * 64 + bit;
            let node = self.elab[ti].order[pos as usize] as u32;
            self.pass_point = PassPoint::At(ti, tk, i64::from(pos));
            self.try_fire(ti, tk, node as usize, None).map_err(|e| {
                e.at_site(cycle, ti as u32, &self.acc.tasks[ti].name, Some(node), uid)
            })?;
        }
        self.pass_point = PassPoint::At(ti, tk, i64::MAX);
        Ok(())
    }

    /// Attempt to fire `node` on (task, tile), re-checking every gate.
    ///
    /// `pre` is an optional precomputed output value from the parallel plan
    /// phase: `(instance, value)` for a pure `Compute`/`Fused` node whose
    /// inputs were frozen when planned. It is a pure optimization — the
    /// value is used only when the instance matches, and recomputing it
    /// here would yield the identical value (the dense and ready callers
    /// always pass `None`).
    ///
    /// Dispatches on [`crate::ExecMode`]: the micro-op fast path executes
    /// the compiled [`MicroOp`] stream, the interpreter walks the structure
    /// tables and matches on `NodeKind`. Gate order, side-effect order, and
    /// every observable are bit-identical between the two (DESIGN.md §14).
    #[inline]
    fn try_fire(
        &mut self,
        ti: usize,
        tk: usize,
        node: usize,
        pre: Option<(u64, Value)>,
    ) -> Result<(), SimError> {
        if self.use_uop {
            self.try_fire_uop(ti, tk, node, pre)
        } else {
            self.try_fire_interp(ti, tk, node, pre)
        }
    }

    /// The `NodeKind` interpreter path (the differential oracle).
    fn try_fire_interp(
        &mut self,
        ti: usize,
        tk: usize,
        node: usize,
        pre: Option<(u64, Value)>,
    ) -> Result<(), SimError> {
        let cycle = self.cycle;
        let df = &self.acc.tasks[ti].dataflow;
        self.sched_visits += 1;
        if self.elab[ti].is_static[node] {
            return Ok(());
        }
        if self.faults_on && self.stuck.contains(&(ti, tk, node)) {
            // Output handshake stuck: valid never asserts again. Attribute
            // the hold only while the node actually has instances to fire.
            let has_work = self.tasks[ti].tiles[tk]
                .as_ref()
                .is_some_and(|inv| inv.fired[node] < inv.admitted);
            if has_work {
                return self.note_stall((ti, tk, node), StallReason::FaultHold, None, None);
            }
            return Ok(());
        }
        // Gather facts without holding a mutable borrow.
        let (k, instance_gated, ok_basic) = {
            let inv = self.tasks[ti].tiles[tk].as_ref().expect("active");
            let k = inv.fired[node];
            (
                k,
                k >= inv.admitted,
                k < inv.admitted && cycle >= inv.ready_at[node],
            )
        };
        if !ok_basic {
            if self.use_ready && instance_gated {
                // Blocked on the instance gate: only the next admission can
                // open instance `k`, so park on the admission-waiter list.
                let rt = &mut self.ready[ti][tk];
                if !rt.in_adm[node] {
                    rt.in_adm[node] = true;
                    rt.adm.push(node as u32);
                }
            }
            return Ok(());
        }
        let kind = &df.nodes[node].kind;
        let is_merge = matches!(kind, NodeKind::Merge);

        // Check inputs.
        let in_data = Arc::clone(&self.elab[ti].in_data[node]);
        let in_order = Arc::clone(&self.elab[ti].in_order[node]);
        {
            let inv = self.tasks[ti].tiles[tk].as_ref().expect("active");
            for &ei in in_data.iter().chain(in_order.iter()) {
                let e = &df.edges[ei];
                if self.elab[ti].is_static[e.src.0 as usize] {
                    continue;
                }
                if is_merge && e.dst_port == 1 {
                    // Feedback: required from instance 1 on, carrying the
                    // previous instance's token.
                    if k == 0 {
                        continue;
                    }
                    match inv.arena.front(ei) {
                        Some((inst, vis)) if vis <= cycle => {
                            if inst != k - 1 {
                                return Err(self.fault_err(
                                    ti,
                                    tk,
                                    node,
                                    k,
                                    FaultKind::TokenMisorder,
                                    format!(
                                        "feedback edge e{ei}: expected instance {}, found {inst}",
                                        k - 1,
                                    ),
                                ));
                            }
                        }
                        _ => {
                            return self.note_stall(
                                (ti, tk, node),
                                StallReason::InputEmpty,
                                Some(ei),
                                None,
                            )
                        }
                    }
                    continue;
                }
                match inv.arena.front(ei) {
                    Some((inst, vis)) if vis <= cycle => {
                        // In-order delivery is the latency-insensitive
                        // contract; a mismatch means a token was dropped or
                        // duplicated upstream (a detected hardware fault).
                        if inst != k {
                            return Err(self.fault_err(
                                ti,
                                tk,
                                node,
                                k,
                                FaultKind::TokenMisorder,
                                format!("edge e{ei}: expected instance {k}, found {inst}"),
                            ));
                        }
                    }
                    _ => {
                        return self.note_stall(
                            (ti, tk, node),
                            StallReason::InputEmpty,
                            Some(ei),
                            None,
                        )
                    }
                }
            }
            // In-flight bound (databox entries / pipeline occupancy). For
            // memory transit points a full databox means every entry is
            // waiting on the structure behind the junction.
            if inv.pending[node] >= self.elab[ti].max_pending[node] {
                let (reason, sid) = match kind {
                    NodeKind::Load { junction, .. } | NodeKind::Store { junction, .. } => (
                        StallReason::MemoryWait,
                        Some(df.junctions[junction.0 as usize].structure.0 as usize),
                    ),
                    _ => (StallReason::OutputFull, None),
                };
                return self.note_stall((ti, tk, node), reason, None, sid);
            }
            // Output space: only *visible* (delivered, unconsumed) tokens
            // occupy the edge register; in-flight results live in the
            // producer's internal pipeline.
            for &ei in self.elab[ti].outs[node].iter() {
                let cap = self.edge_capacity(ti, ei);
                let visible = inv.arena.visible(ei) as usize;
                if visible >= cap {
                    return self.note_stall(
                        (ti, tk, node),
                        StallReason::OutputFull,
                        Some(ei),
                        None,
                    );
                }
            }
        }
        // Memory/call-specific admission checks (junction ports, queues).
        let mut mem_plan: Option<(usize, bool)> = None; // (junction, is_write)
        match kind {
            NodeKind::Load { junction, .. } => mem_plan = Some((junction.0 as usize, false)),
            NodeKind::Store { junction, .. } => mem_plan = Some((junction.0 as usize, true)),
            NodeKind::TaskCall { callee, .. } => {
                let child = callee.0 as usize;
                let cap = self.elab[child].queue_cap;
                if self.tasks[child].queue.len() >= cap {
                    // Downstream issue queue full: backpressure, not memory.
                    // Retry when the child's dispatcher pops a slot.
                    if self.use_ready {
                        self.tasks[child]
                            .queue_waiters
                            .push((ti as u32, tk as u32, node as u32));
                    }
                    return self.note_stall((ti, tk, node), StallReason::OutputFull, None, None);
                }
            }
            _ => {}
        }
        if let Some((j, is_write)) = mem_plan {
            let jn = &df.junctions[j];
            let sid = jn.structure.0 as usize;
            let budget = *self.jslot(ti, tk, j);
            let lost = if is_write {
                budget.2 >= jn.write_ports
            } else {
                budget.1 >= jn.read_ports
            };
            if lost {
                // Port budgets refresh every cycle: retry next cycle.
                self.wake(ti, tk, node);
                return self.note_stall(
                    (ti, tk, node),
                    StallReason::ArbitrationLoss,
                    None,
                    Some(sid),
                );
            }
        }

        // Every admission check passed: this is a real firing opportunity,
        // which is the injection point for a stuck output handshake.
        if self.faults_on && self.faults.roll(FaultClass::StuckHandshake) {
            self.stuck.insert((ti, tk, node));
            return self.note_stall((ti, tk, node), StallReason::FaultHold, None, None);
        }

        // --- Fire -----------------------------------------------------------
        // Scratch buffers are taken out of `self` and restored on *every*
        // path — success or error — so a failed firing can never leak a
        // drained buffer (the old inline body leaked them on eval errors).
        let mut slots = std::mem::take(&mut self.slot_scratch);
        let mut values = std::mem::take(&mut self.val_scratch);
        let mut out_values = std::mem::take(&mut self.out_scratch);
        let r = self.fire_interp(
            ti,
            tk,
            node,
            k,
            is_merge,
            mem_plan,
            pre,
            &mut slots,
            &mut values,
            &mut out_values,
        );
        slots.clear();
        values.clear();
        out_values.clear();
        self.slot_scratch = slots;
        self.val_scratch = values;
        self.out_scratch = out_values;
        r
    }

    /// The interpreter's firing body: consume tokens, evaluate, push
    /// outputs, account. Callers have verified every gate; buffer
    /// ownership (and restore-on-error) stays with
    /// [`Engine::try_fire_interp`].
    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn fire_interp(
        &mut self,
        ti: usize,
        tk: usize,
        node: usize,
        k: u64,
        is_merge: bool,
        mem_plan: Option<(usize, bool)>,
        pre: Option<(u64, Value)>,
        slots: &mut Vec<Option<Value>>,
        values: &mut Vec<Value>,
        out_values: &mut Vec<Value>,
    ) -> Result<(), SimError> {
        let cycle = self.cycle;
        let df = &self.acc.tasks[ti].dataflow;
        let ct = self.elab[ti].ct;
        let kind = &df.nodes[node].kind;
        let in_data = &ct.in_data[node];
        let in_order = &ct.in_order[node];
        // Collect input values (consume tokens).
        {
            // Static reads first (immutable), then token pops (mutable).
            slots.clear();
            slots.resize(in_data.len(), None);
            for (i, &ei) in in_data.iter().enumerate() {
                let e = &df.edges[ei];
                if self.elab[ti].is_static[e.src.0 as usize] {
                    let inv = self.tasks[ti].tiles[tk].as_ref().expect("active");
                    slots[i] = Some(self.static_value(ti, inv, e.src.0 as usize)?);
                }
            }
            let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
            for (i, &ei) in in_data.iter().enumerate() {
                if slots[i].is_some() {
                    continue;
                }
                let e = &df.edges[ei];
                if is_merge && e.dst_port == 1 && k == 0 {
                    slots[i] = Some(Value::Poison); // unused at instance 0
                    continue;
                }
                if inv.arena.len(ei) == 0 {
                    return Err(SimError::eval(format!("missing token on edge e{ei}")));
                }
                slots[i] = Some(inv.arena.pop(ei));
                if let Some(obs) = self.obs.as_mut() {
                    obs.edge_delta(cycle, ti, ei, inv.arena.len(ei), false);
                }
            }
            for &ei in in_order.iter() {
                let e = &df.edges[ei];
                if self.elab[ti].is_static[e.src.0 as usize] {
                    continue;
                }
                inv.arena.pop(ei);
                if let Some(obs) = self.obs.as_mut() {
                    obs.edge_delta(cycle, ti, ei, inv.arena.len(ei), false);
                }
            }
            for s in slots.drain(..) {
                values.push(s.ok_or_else(|| SimError::eval("input slot not filled"))?);
            }
        }
        if self.use_ready {
            // A consumed token freed a slot on its edge — but that only
            // unblocks the producer if the edge was *full* before the pop
            // (the visible count is the producer's output-space gate; no
            // other firing gate reads this edge). Post-pop, "was full"
            // means `visible + 1 >= capacity`.
            for &ei in in_data.iter().chain(in_order.iter()) {
                let src = df.edges[ei].src.0 as usize;
                if self.elab[ti].is_static[src] {
                    continue;
                }
                if is_merge && df.edges[ei].dst_port == 1 && k == 0 {
                    continue; // no token was consumed at instance 0
                }
                let cap = self.edge_capacity(ti, ei);
                let visible = self.tasks[ti].tiles[tk]
                    .as_ref()
                    .map_or(0, |inv| inv.arena.visible(ei) as usize);
                if visible + 1 >= cap {
                    self.wake(ti, tk, src);
                }
            }
        }

        let timing = self.elab[ti].timing[node];
        let mut completion_at = Some(cycle + timing.latency as u64);

        match kind {
            NodeKind::IndVar => {
                let inv = self.tasks[ti].tiles[tk].as_ref().expect("active");
                out_values.push(Value::Int(inv.lo + k as i64 * inv.step));
            }
            NodeKind::Merge => {
                // Port 0 = init (instance 0), port 1 = feedback.
                let v = if k == 0 {
                    values[0].clone()
                } else {
                    values[1].clone()
                };
                out_values.push(v);
            }
            NodeKind::FusedAcc { op } => {
                // Self-accumulating unit: port 0 = init, port 1 = operand.
                let base = if k == 0 {
                    values[0].clone()
                } else {
                    self.tasks[ti].tiles[tk].as_ref().expect("active").acc_state[node]
                        .clone()
                        .ok_or_else(|| SimError::eval("accumulator state missing"))?
                };
                let r = eval_op(*op, &[base, values[1].clone()])?;
                let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
                inv.acc_state[node] = Some(r.clone());
                out_values.push(r);
            }
            NodeKind::Compute(op) => match pre {
                Some((pk, v)) if pk == k => out_values.push(v),
                _ => out_values.push(eval_op(*op, values)?),
            },
            NodeKind::Fused(plan) => match pre {
                Some((pk, v)) if pk == k => out_values.push(v),
                _ => out_values.push(eval_fused(plan, values)?),
            },
            NodeKind::Output => {
                let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
                inv.last_output = values.clone();
            }
            NodeKind::Load {
                obj, predicated, ..
            } => {
                let active = !*predicated
                    || values
                        .last()
                        .map(|v| !v.is_poison() && v.as_bool())
                        .unwrap_or(true);
                if active {
                    let idx = values[0].as_int();
                    if idx < 0 {
                        return Err(SimError::eval(format!("negative load index {idx}")));
                    }
                    let ty = df.nodes[node].ty;
                    let n = ty.elems() as u64;
                    let base = self.mem.flat_addr(*obj, idx as u64);
                    if !ty.is_composite() {
                        // Scalar: no slot buffer needed. (1×1 tensor tiles
                        // still assemble — downstream tensor ops need the
                        // aggregate wrapper.)
                        out_values.push(
                            self.mem
                                .read(*obj, idx as u64)
                                .map_err(|e| SimError::eval(e.to_string()))?,
                        );
                    } else {
                        let mut slots = Vec::with_capacity(n as usize);
                        for kk in 0..n {
                            slots.push(
                                self.mem
                                    .read(*obj, idx as u64 + kk)
                                    .map_err(|e| SimError::eval(e.to_string()))?,
                            );
                        }
                        out_values.push(Value::assemble(ty, slots));
                    }
                    let id = self.next_req;
                    self.next_req += 1;
                    let (j, _) =
                        mem_plan.ok_or_else(|| SimError::eval("load without junction plan"))?;
                    let sid = df.junctions[j].structure.0 as usize;
                    if let Some(obs) = self.obs.as_mut() {
                        let bank = (base % self.structs[sid].bank_count().max(1) as u64) as u32;
                        obs.mem_req(cycle, sid, id, bank, n as u32, false);
                    }
                    self.structs[sid].submit(MemRequest {
                        id,
                        base,
                        n,
                        is_write: false,
                    });
                    self.req_map.insert(
                        id,
                        MemPending {
                            task: ti,
                            tile: tk,
                            uid: self.tasks[ti].tiles[tk].as_ref().expect("active").uid,
                            node,
                            instance: k,
                        },
                    );
                    completion_at = None; // completes on memory response
                    self.jslot(ti, tk, j).1 += 1;
                } else {
                    out_values.push(Value::Poison);
                }
            }
            NodeKind::Store {
                obj, predicated, ..
            } => {
                let active = !*predicated
                    || values
                        .last()
                        .map(|v| !v.is_poison() && v.as_bool())
                        .unwrap_or(true);
                if active {
                    let idx = values[0].as_int();
                    if idx < 0 {
                        return Err(SimError::eval(format!("negative store index {idx}")));
                    }
                    let v = values[1].clone();
                    if v.is_poison() {
                        return Err(SimError::eval(format!("poison stored to {obj:?}")));
                    }
                    let base = self.mem.flat_addr(*obj, idx as u64);
                    let n = match &v {
                        // Scalar: write directly, no flatten buffer.
                        Value::Vector(_) | Value::Tensor { .. } => {
                            let slots = v.flatten();
                            let n = slots.len() as u64;
                            for (kk, s) in slots.into_iter().enumerate() {
                                self.mem
                                    .write(*obj, idx as u64 + kk as u64, s)
                                    .map_err(|e| SimError::eval(e.to_string()))?;
                            }
                            n
                        }
                        _ => {
                            self.mem
                                .write(*obj, idx as u64, v)
                                .map_err(|e| SimError::eval(e.to_string()))?;
                            1
                        }
                    };
                    let id = self.next_req;
                    self.next_req += 1;
                    let (j, _) =
                        mem_plan.ok_or_else(|| SimError::eval("store without junction plan"))?;
                    let sid = df.junctions[j].structure.0 as usize;
                    if let Some(obs) = self.obs.as_mut() {
                        let bank = (base % self.structs[sid].bank_count().max(1) as u64) as u32;
                        obs.mem_req(cycle, sid, id, bank, n as u32, true);
                    }
                    self.structs[sid].submit(MemRequest {
                        id,
                        base,
                        n,
                        is_write: true,
                    });
                    self.req_map.insert(
                        id,
                        MemPending {
                            task: ti,
                            tile: tk,
                            uid: self.tasks[ti].tiles[tk].as_ref().expect("active").uid,
                            node,
                            instance: k,
                        },
                    );
                    completion_at = None;
                    self.jslot(ti, tk, j).2 += 1;
                }
            }
            NodeKind::TaskCall {
                callee,
                predicated,
                spawn,
            } => {
                let child = callee.0 as usize;
                let nargs = self.acc.tasks[child].num_args as usize;
                let nres = self.acc.tasks[child].num_results as usize;
                let active = !*predicated
                    || values
                        .get(nargs)
                        .map(|v| !v.is_poison() && v.as_bool())
                        .unwrap_or(true);
                if active {
                    let args: Vec<Value> = values[..nargs].to_vec();
                    let uid = self.fresh_uid();
                    let me_uid = self.tasks[ti].tiles[tk].as_ref().expect("active").uid;
                    if *spawn {
                        self.tasks[child].queue.push_back(Invocation {
                            uid,
                            args,
                            reply: None,
                            spawn_parent: Some((ti, me_uid)),
                        });
                        let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
                        inv.spawns_outstanding += 1;
                        out_values.resize(nres.max(1), Value::Int(0));
                    } else {
                        self.tasks[child].queue.push_back(Invocation {
                            uid,
                            args,
                            reply: Some(ReplyTo {
                                task: ti,
                                tile: tk,
                                uid: me_uid,
                                node,
                                instance: k,
                            }),
                            spawn_parent: None,
                        });
                        out_values.resize(nres.max(1), Value::Poison); // patched by reply
                        completion_at = None;
                    }
                } else {
                    out_values.resize(nres.max(1), Value::Poison);
                }
            }
            NodeKind::Input { .. } | NodeKind::Const(_) => unreachable!("static"),
        }

        // Push pending tokens on out edges. Ready/valid faults inject here:
        // a drop loses the valid pulse, a dup holds it one transfer too
        // long, a bit-flip corrupts the data lines.
        {
            let outs = &ct.outs[node];
            let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
            for &ei in outs.iter() {
                let e = &df.edges[ei];
                let mut value = match e.kind {
                    EdgeKind::Order => Value::Bool(true),
                    _ => out_values
                        .get(e.src_port as usize)
                        .cloned()
                        .unwrap_or(Value::Bool(true)),
                };
                if self.faults_on {
                    if self.faults.roll(FaultClass::TokenDrop) {
                        continue; // token lost on the wire
                    }
                    if self.faults.roll(FaultClass::TokenBitFlip) {
                        let bit = self.faults.below(32) as u32;
                        value = flip_bit(&value, bit);
                    }
                    if self.faults.roll(FaultClass::TokenDup) {
                        inv.arena.push(ei, k, value.clone());
                    }
                }
                inv.arena.push(ei, k, value);
                if let Some(obs) = self.obs.as_mut() {
                    obs.edge_delta(cycle, ti, ei, inv.arena.len(ei), true);
                }
            }
            inv.fired[node] = k + 1;
            inv.ready_at[node] = cycle + timing.ii as u64;
            inv.pending[node] += 1;
        }
        self.fires += 1;
        if let Some(obs) = self.obs.as_mut() {
            obs.fire(cycle, (ti, tk, node), k);
        }
        self.last_progress = cycle;
        if self.use_ready {
            // More instances to fire: sleep until the initiation interval
            // elapses. An exhausted window parks on the admission-waiter
            // list instead — nodes with all-static inputs (IndVar, Const
            // fan-ins) get no token wakes, so this is their only path back.
            let more = self.tasks[ti].tiles[tk]
                .as_ref()
                .is_some_and(|inv| inv.fired[node] < inv.admitted);
            if more {
                self.wake(ti, tk, node);
            } else if self.tasks[ti].tiles[tk].is_some() {
                let rt = &mut self.ready[ti][tk];
                if !rt.in_adm[node] {
                    rt.in_adm[node] = true;
                    rt.adm.push(node as u32);
                }
            }
        }
        if let Some(at) = completion_at {
            let uid = self.tasks[ti].tiles[tk].as_ref().expect("active").uid;
            self.schedule(
                at.max(cycle + 1),
                Ev::NodeDone {
                    task: ti,
                    tile: tk,
                    uid,
                    node,
                    instance: k,
                },
            );
        }
        Ok(())
    }

    /// The micro-op fast path: identical gate order, side effects, errors,
    /// and trace events to [`Engine::try_fire_interp`], but driven by the
    /// compiled [`MicroOp`] stream — dispatch is a jump on a dense `u8`
    /// opcode over pre-resolved slot/edge index ranges instead of a
    /// `NodeKind` match with per-fire field destructuring (DESIGN.md §14).
    #[allow(clippy::too_many_lines)]
    fn try_fire_uop(
        &mut self,
        ti: usize,
        tk: usize,
        node: usize,
        pre: Option<(u64, Value)>,
    ) -> Result<(), SimError> {
        let cycle = self.cycle;
        let df = &self.acc.tasks[ti].dataflow;
        self.sched_visits += 1;
        let ct = self.elab[ti].ct;
        let uop = ct.uops[node];
        if matches!(uop.kind, UopKind::Static) {
            return Ok(());
        }
        if self.faults_on && self.stuck.contains(&(ti, tk, node)) {
            let has_work = self.tasks[ti].tiles[tk]
                .as_ref()
                .is_some_and(|inv| inv.fired[node] < inv.admitted);
            if has_work {
                return self.note_stall((ti, tk, node), StallReason::FaultHold, None, None);
            }
            return Ok(());
        }
        let (k, instance_gated, ok_basic) = {
            let inv = self.tasks[ti].tiles[tk].as_ref().expect("active");
            let k = inv.fired[node];
            (
                k,
                k >= inv.admitted,
                k < inv.admitted && cycle >= inv.ready_at[node],
            )
        };
        if !ok_basic {
            if self.use_ready && instance_gated {
                let rt = &mut self.ready[ti][tk];
                if !rt.in_adm[node] {
                    rt.in_adm[node] = true;
                    rt.adm.push(node as u32);
                }
            }
            return Ok(());
        }
        let slots = &ct.in_slots[uop.slot0 as usize..uop.slot0 as usize + uop.nin as usize];
        let erefs = &ct.edge_refs
            [uop.ebase as usize..uop.ebase as usize + uop.nord as usize + uop.nout as usize];

        // Check inputs (slot run = data edges in port order, then the
        // dynamic order-in edges — the interpreter's visit order).
        {
            let inv = self.tasks[ti].tiles[tk].as_ref().expect("active");
            for &s in slots {
                let ei = (s & SLOT_PAYLOAD) as usize;
                match s & SLOT_TAG {
                    SLOT_ARG | SLOT_CONST => {}
                    SLOT_FEEDBACK => {
                        // Feedback: required from instance 1 on, carrying
                        // the previous instance's token.
                        if k == 0 {
                            continue;
                        }
                        match inv.arena.front(ei) {
                            Some((inst, vis)) if vis <= cycle => {
                                if inst != k - 1 {
                                    return Err(self.fault_err(
                                        ti,
                                        tk,
                                        node,
                                        k,
                                        FaultKind::TokenMisorder,
                                        format!(
                                            "feedback edge e{ei}: expected instance {}, found {inst}",
                                            k - 1,
                                        ),
                                    ));
                                }
                            }
                            _ => {
                                return self.note_stall(
                                    (ti, tk, node),
                                    StallReason::InputEmpty,
                                    Some(ei),
                                    None,
                                )
                            }
                        }
                    }
                    _ => match inv.arena.front(ei) {
                        Some((inst, vis)) if vis <= cycle => {
                            if inst != k {
                                return Err(self.fault_err(
                                    ti,
                                    tk,
                                    node,
                                    k,
                                    FaultKind::TokenMisorder,
                                    format!("edge e{ei}: expected instance {k}, found {inst}"),
                                ));
                            }
                        }
                        _ => {
                            return self.note_stall(
                                (ti, tk, node),
                                StallReason::InputEmpty,
                                Some(ei),
                                None,
                            )
                        }
                    },
                }
            }
            for &er in &erefs[..uop.nord as usize] {
                let ei = er as usize;
                match inv.arena.front(ei) {
                    Some((inst, vis)) if vis <= cycle => {
                        if inst != k {
                            return Err(self.fault_err(
                                ti,
                                tk,
                                node,
                                k,
                                FaultKind::TokenMisorder,
                                format!("edge e{ei}: expected instance {k}, found {inst}"),
                            ));
                        }
                    }
                    _ => {
                        return self.note_stall(
                            (ti, tk, node),
                            StallReason::InputEmpty,
                            Some(ei),
                            None,
                        )
                    }
                }
            }
            // In-flight bound (databox entries / pipeline occupancy).
            if inv.pending[node] >= self.elab[ti].max_pending[node] {
                let (reason, sid) = match uop.kind {
                    UopKind::Load | UopKind::Store => (
                        StallReason::MemoryWait,
                        Some(df.junctions[uop.b as usize].structure.0 as usize),
                    ),
                    _ => (StallReason::OutputFull, None),
                };
                return self.note_stall((ti, tk, node), reason, None, sid);
            }
            // Output space (visible tokens only).
            for &er in &erefs[uop.nord as usize..] {
                let ei = er as usize;
                let cap = self.edge_capacity(ti, ei);
                if inv.arena.visible(ei) as usize >= cap {
                    return self.note_stall(
                        (ti, tk, node),
                        StallReason::OutputFull,
                        Some(ei),
                        None,
                    );
                }
            }
        }
        // Memory/call-specific admission checks (junction ports, queues).
        let mut mem_plan: Option<(usize, bool)> = None; // (junction, is_write)
        match uop.kind {
            UopKind::Load => mem_plan = Some((uop.b as usize, false)),
            UopKind::Store => mem_plan = Some((uop.b as usize, true)),
            UopKind::TaskCall => {
                let child = uop.a as usize;
                let cap = self.elab[child].queue_cap;
                if self.tasks[child].queue.len() >= cap {
                    if self.use_ready {
                        self.tasks[child]
                            .queue_waiters
                            .push((ti as u32, tk as u32, node as u32));
                    }
                    return self.note_stall((ti, tk, node), StallReason::OutputFull, None, None);
                }
            }
            _ => {}
        }
        if let Some((j, is_write)) = mem_plan {
            let jn = &df.junctions[j];
            let sid = jn.structure.0 as usize;
            let budget = *self.jslot(ti, tk, j);
            let lost = if is_write {
                budget.2 >= jn.write_ports
            } else {
                budget.1 >= jn.read_ports
            };
            if lost {
                self.wake(ti, tk, node);
                return self.note_stall(
                    (ti, tk, node),
                    StallReason::ArbitrationLoss,
                    None,
                    Some(sid),
                );
            }
        }
        if self.faults_on && self.faults.roll(FaultClass::StuckHandshake) {
            self.stuck.insert((ti, tk, node));
            return self.note_stall((ti, tk, node), StallReason::FaultHold, None, None);
        }

        // --- Fire (buffers restored on every path, success or error) --------
        let mut values = std::mem::take(&mut self.val_scratch);
        let mut out_values = std::mem::take(&mut self.out_scratch);
        let r = self.fire_uop(
            ti,
            tk,
            node,
            uop,
            k,
            mem_plan,
            pre,
            &mut values,
            &mut out_values,
        );
        values.clear();
        out_values.clear();
        self.val_scratch = values;
        self.out_scratch = out_values;
        r
    }

    /// The micro-op firing body: gather inputs from packed slots, evaluate
    /// by dense opcode, push outputs over the pre-resolved edge range.
    /// Side-effect order is bit-identical to [`Engine::fire_interp`].
    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn fire_uop(
        &mut self,
        ti: usize,
        tk: usize,
        node: usize,
        uop: MicroOp,
        k: u64,
        mem_plan: Option<(usize, bool)>,
        pre: Option<(u64, Value)>,
        values: &mut Vec<Value>,
        out_values: &mut Vec<Value>,
    ) -> Result<(), SimError> {
        let cycle = self.cycle;
        let df = &self.acc.tasks[ti].dataflow;
        let ct = self.elab[ti].ct;
        let slots = &ct.in_slots[uop.slot0 as usize..uop.slot0 as usize + uop.nin as usize];
        let erefs = &ct.edge_refs
            [uop.ebase as usize..uop.ebase as usize + uop.nord as usize + uop.nout as usize];
        // Collect input values (consume tokens) straight into `values` —
        // each slot is self-describing, so no staging buffer is needed.
        {
            let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
            for &s in slots {
                let p = (s & SLOT_PAYLOAD) as usize;
                match s & SLOT_TAG {
                    SLOT_ARG => values.push(
                        inv.args
                            .get(p)
                            .cloned()
                            .ok_or_else(|| SimError::eval(format!("missing argument {p}")))?,
                    ),
                    SLOT_CONST => values.push(ct.consts[p].clone()),
                    SLOT_FEEDBACK if k == 0 => values.push(Value::Poison), // unused at instance 0
                    _ => {
                        if inv.arena.len(p) == 0 {
                            return Err(SimError::eval(format!("missing token on edge e{p}")));
                        }
                        values.push(inv.arena.pop(p));
                        if let Some(obs) = self.obs.as_mut() {
                            obs.edge_delta(cycle, ti, p, inv.arena.len(p), false);
                        }
                    }
                }
            }
            for &er in &erefs[..uop.nord as usize] {
                let ei = er as usize;
                inv.arena.pop(ei);
                if let Some(obs) = self.obs.as_mut() {
                    obs.edge_delta(cycle, ti, ei, inv.arena.len(ei), false);
                }
            }
        }
        if self.use_ready {
            // A consumed token freed a slot: wake the producer if the edge
            // was full before the pop (see `fire_interp`).
            for &s in slots {
                let ei = (s & SLOT_PAYLOAD) as usize;
                match s & SLOT_TAG {
                    SLOT_ARG | SLOT_CONST => continue,
                    SLOT_FEEDBACK if k == 0 => continue,
                    _ => {}
                }
                let cap = self.edge_capacity(ti, ei);
                let visible = self.tasks[ti].tiles[tk]
                    .as_ref()
                    .map_or(0, |inv| inv.arena.visible(ei) as usize);
                if visible + 1 >= cap {
                    self.wake(ti, tk, ct.edge_meta[ei].src as usize);
                }
            }
            for &er in &erefs[..uop.nord as usize] {
                let ei = er as usize;
                let cap = self.edge_capacity(ti, ei);
                let visible = self.tasks[ti].tiles[tk]
                    .as_ref()
                    .map_or(0, |inv| inv.arena.visible(ei) as usize);
                if visible + 1 >= cap {
                    self.wake(ti, tk, ct.edge_meta[ei].src as usize);
                }
            }
        }

        let timing = self.elab[ti].timing[node];
        let mut completion_at = Some(cycle + timing.latency as u64);

        match uop.kind {
            UopKind::IndVar => {
                let inv = self.tasks[ti].tiles[tk].as_ref().expect("active");
                out_values.push(Value::Int(inv.lo + k as i64 * inv.step));
            }
            UopKind::Merge => {
                // Port 0 = init (instance 0), port 1 = feedback.
                let v = if k == 0 {
                    values[0].clone()
                } else {
                    values[1].clone()
                };
                out_values.push(v);
            }
            UopKind::FusedAcc => {
                let base = if k == 0 {
                    values[0].clone()
                } else {
                    self.tasks[ti].tiles[tk].as_ref().expect("active").acc_state[node]
                        .clone()
                        .ok_or_else(|| SimError::eval("accumulator state missing"))?
                };
                let r = eval_op(uop.op, &[base, values[1].clone()])?;
                let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
                inv.acc_state[node] = Some(r.clone());
                out_values.push(r);
            }
            UopKind::Compute => match pre {
                Some((pk, v)) if pk == k => out_values.push(v),
                _ => out_values.push(eval_op(uop.op, values)?),
            },
            UopKind::Fused => match pre {
                Some((pk, v)) if pk == k => out_values.push(v),
                _ => out_values.push(eval_fused(&ct.fused_plans[uop.a as usize], values)?),
            },
            UopKind::Output => {
                let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
                inv.last_output = values.clone();
            }
            UopKind::Load => {
                let active = uop.flags & UOP_PREDICATED == 0
                    || values
                        .last()
                        .map(|v| !v.is_poison() && v.as_bool())
                        .unwrap_or(true);
                if active {
                    let obj = MemObjId(uop.a);
                    let idx = values[0].as_int();
                    if idx < 0 {
                        return Err(SimError::eval(format!("negative load index {idx}")));
                    }
                    let ty = df.nodes[node].ty;
                    let n = ty.elems() as u64;
                    let base = self.mem.flat_addr(obj, idx as u64);
                    if !ty.is_composite() {
                        out_values.push(
                            self.mem
                                .read(obj, idx as u64)
                                .map_err(|e| SimError::eval(e.to_string()))?,
                        );
                    } else {
                        let mut slots = Vec::with_capacity(n as usize);
                        for kk in 0..n {
                            slots.push(
                                self.mem
                                    .read(obj, idx as u64 + kk)
                                    .map_err(|e| SimError::eval(e.to_string()))?,
                            );
                        }
                        out_values.push(Value::assemble(ty, slots));
                    }
                    let id = self.next_req;
                    self.next_req += 1;
                    let (j, _) =
                        mem_plan.ok_or_else(|| SimError::eval("load without junction plan"))?;
                    let sid = df.junctions[j].structure.0 as usize;
                    if let Some(obs) = self.obs.as_mut() {
                        let bank = (base % self.structs[sid].bank_count().max(1) as u64) as u32;
                        obs.mem_req(cycle, sid, id, bank, n as u32, false);
                    }
                    self.structs[sid].submit(MemRequest {
                        id,
                        base,
                        n,
                        is_write: false,
                    });
                    self.req_map.insert(
                        id,
                        MemPending {
                            task: ti,
                            tile: tk,
                            uid: self.tasks[ti].tiles[tk].as_ref().expect("active").uid,
                            node,
                            instance: k,
                        },
                    );
                    completion_at = None; // completes on memory response
                    self.jslot(ti, tk, j).1 += 1;
                } else {
                    out_values.push(Value::Poison);
                }
            }
            UopKind::Store => {
                let active = uop.flags & UOP_PREDICATED == 0
                    || values
                        .last()
                        .map(|v| !v.is_poison() && v.as_bool())
                        .unwrap_or(true);
                if active {
                    let obj = MemObjId(uop.a);
                    let idx = values[0].as_int();
                    if idx < 0 {
                        return Err(SimError::eval(format!("negative store index {idx}")));
                    }
                    let v = values[1].clone();
                    if v.is_poison() {
                        return Err(SimError::eval(format!("poison stored to {obj:?}")));
                    }
                    let base = self.mem.flat_addr(obj, idx as u64);
                    let n = match &v {
                        Value::Vector(_) | Value::Tensor { .. } => {
                            let slots = v.flatten();
                            let n = slots.len() as u64;
                            for (kk, s) in slots.into_iter().enumerate() {
                                self.mem
                                    .write(obj, idx as u64 + kk as u64, s)
                                    .map_err(|e| SimError::eval(e.to_string()))?;
                            }
                            n
                        }
                        _ => {
                            self.mem
                                .write(obj, idx as u64, v)
                                .map_err(|e| SimError::eval(e.to_string()))?;
                            1
                        }
                    };
                    let id = self.next_req;
                    self.next_req += 1;
                    let (j, _) =
                        mem_plan.ok_or_else(|| SimError::eval("store without junction plan"))?;
                    let sid = df.junctions[j].structure.0 as usize;
                    if let Some(obs) = self.obs.as_mut() {
                        let bank = (base % self.structs[sid].bank_count().max(1) as u64) as u32;
                        obs.mem_req(cycle, sid, id, bank, n as u32, true);
                    }
                    self.structs[sid].submit(MemRequest {
                        id,
                        base,
                        n,
                        is_write: true,
                    });
                    self.req_map.insert(
                        id,
                        MemPending {
                            task: ti,
                            tile: tk,
                            uid: self.tasks[ti].tiles[tk].as_ref().expect("active").uid,
                            node,
                            instance: k,
                        },
                    );
                    completion_at = None;
                    self.jslot(ti, tk, j).2 += 1;
                }
            }
            UopKind::TaskCall => {
                let child = uop.a as usize;
                let nargs = (uop.b >> 16) as usize;
                let nres = (uop.b & 0xffff) as usize;
                let active = uop.flags & UOP_PREDICATED == 0
                    || values
                        .get(nargs)
                        .map(|v| !v.is_poison() && v.as_bool())
                        .unwrap_or(true);
                if active {
                    let args: Vec<Value> = values[..nargs].to_vec();
                    let uid = self.fresh_uid();
                    let me_uid = self.tasks[ti].tiles[tk].as_ref().expect("active").uid;
                    if uop.flags & UOP_SPAWN != 0 {
                        self.tasks[child].queue.push_back(Invocation {
                            uid,
                            args,
                            reply: None,
                            spawn_parent: Some((ti, me_uid)),
                        });
                        let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
                        inv.spawns_outstanding += 1;
                        out_values.resize(nres.max(1), Value::Int(0));
                    } else {
                        self.tasks[child].queue.push_back(Invocation {
                            uid,
                            args,
                            reply: Some(ReplyTo {
                                task: ti,
                                tile: tk,
                                uid: me_uid,
                                node,
                                instance: k,
                            }),
                            spawn_parent: None,
                        });
                        out_values.resize(nres.max(1), Value::Poison); // patched by reply
                        completion_at = None;
                    }
                } else {
                    out_values.resize(nres.max(1), Value::Poison);
                }
            }
            UopKind::Static => unreachable!("static"),
        }

        // Push pending tokens on out edges (fault injection point).
        {
            let inv = self.tasks[ti].tiles[tk].as_mut().expect("active");
            for &er in &erefs[uop.nord as usize..] {
                let ei = er as usize;
                let m = ct.edge_meta[ei];
                let mut value = if m.is_order {
                    Value::Bool(true)
                } else {
                    out_values
                        .get(m.src_port as usize)
                        .cloned()
                        .unwrap_or(Value::Bool(true))
                };
                if self.faults_on {
                    if self.faults.roll(FaultClass::TokenDrop) {
                        continue; // token lost on the wire
                    }
                    if self.faults.roll(FaultClass::TokenBitFlip) {
                        let bit = self.faults.below(32) as u32;
                        value = flip_bit(&value, bit);
                    }
                    if self.faults.roll(FaultClass::TokenDup) {
                        inv.arena.push(ei, k, value.clone());
                    }
                }
                inv.arena.push(ei, k, value);
                if let Some(obs) = self.obs.as_mut() {
                    obs.edge_delta(cycle, ti, ei, inv.arena.len(ei), true);
                }
            }
            inv.fired[node] = k + 1;
            inv.ready_at[node] = cycle + timing.ii as u64;
            inv.pending[node] += 1;
        }
        self.fires += 1;
        if let Some(obs) = self.obs.as_mut() {
            obs.fire(cycle, (ti, tk, node), k);
        }
        self.last_progress = cycle;
        if self.use_ready {
            let more = self.tasks[ti].tiles[tk]
                .as_ref()
                .is_some_and(|inv| inv.fired[node] < inv.admitted);
            if more {
                self.wake(ti, tk, node);
            } else if self.tasks[ti].tiles[tk].is_some() {
                let rt = &mut self.ready[ti][tk];
                if !rt.in_adm[node] {
                    rt.in_adm[node] = true;
                    rt.adm.push(node as u32);
                }
            }
        }
        if let Some(at) = completion_at {
            let uid = self.tasks[ti].tiles[tk].as_ref().expect("active").uid;
            self.schedule(
                at.max(cycle + 1),
                Ev::NodeDone {
                    task: ti,
                    tile: tk,
                    uid,
                    node,
                    instance: k,
                },
            );
        }
        Ok(())
    }

    /// A node's firing completed: make its tokens visible (patching values
    /// for call replies) and advance instance/invocation completion.
    fn node_done(
        &mut self,
        ti: usize,
        tk: usize,
        uid: u64,
        node: usize,
        instance: u64,
        reply_values: Option<Vec<Value>>,
    ) -> Result<(), SimError> {
        let cycle = self.cycle;
        let df = &self.acc.tasks[ti].dataflow;
        let ct = self.elab[ti].ct;
        let was_at_cap;
        {
            let Some(inv) = self.tasks[ti].tiles[tk].as_mut() else {
                return Ok(()); // stale
            };
            if inv.uid != uid {
                return Ok(()); // stale
            }
            for &ei in ct.outs[node].iter() {
                // All matching tokens become visible (normally exactly one;
                // an injected duplicate shares the completion pulse),
                // patching call-reply values onto data edges.
                let m = &ct.edge_meta[ei];
                let patch = reply_values.as_ref().and_then(|rv| {
                    if m.is_order {
                        None
                    } else {
                        rv.get(m.src_port as usize)
                    }
                });
                inv.arena.reveal(ei, instance, cycle, patch);
            }
            was_at_cap = inv.pending[node] >= self.elab[ti].max_pending[node];
            inv.pending[node] = inv.pending[node].saturating_sub(1);
            let task_name = &self.acc.tasks[ti].name;
            let slot = instance
                .checked_sub(inv.completed)
                .and_then(|d| usize::try_from(d).ok())
                .and_then(|d| inv.outstanding.get_mut(d))
                .ok_or_else(|| SimError::EvalError {
                    cycle,
                    task: Some(ti as u32),
                    task_name: task_name.clone(),
                    node: Some(node as u32),
                    invocation: Some(uid),
                    detail: format!("completion for unknown instance {instance}"),
                })?;
            *slot = slot.saturating_sub(1);
            // In-order instance retirement.
            while inv.outstanding.front() == Some(&0) {
                inv.outstanding.pop_front();
                inv.completed += 1;
            }
        }
        self.last_progress = cycle;
        if self.use_ready {
            // Tokens just became visible: their consumers may fire. The
            // node itself needs a wake only when this retirement freed a
            // *saturated* pipeline/databox slot — that is the one firing
            // gate a completion changes (retirement order feeds admission,
            // which is re-checked every tile tick regardless).
            for &ei in ct.outs[node].iter() {
                self.wake(ti, tk, df.edges[ei].dst.0 as usize);
            }
            if was_at_cap {
                self.wake(ti, tk, node);
            }
        }
        self.check_invocation_complete(ti, tk)
    }

    fn check_invocation_complete(&mut self, ti: usize, tk: usize) -> Result<(), SimError> {
        let done = {
            let Some(inv) = self.tasks[ti].tiles[tk].as_ref() else {
                return Ok(());
            };
            inv.admitted == inv.trip
                && inv.completed == inv.trip
                && inv.outstanding.is_empty()
                && inv.spawns_outstanding == 0
        };
        if !done {
            return Ok(());
        }
        let Some(inv) = self.tasks[ti].tiles[tk].take() else {
            return Ok(());
        };
        self.tasks[ti].free_tiles.push(Reverse(tk));
        self.ready[ti][tk].clear();
        let task = &self.acc.tasks[ti];
        // Results: the last Output firing's values, or zero-trip fallbacks.
        let results: Vec<Value> = if inv.trip == 0 {
            (0..task.num_results as usize)
                .map(|r| match task.loop_result_inits.get(r).and_then(|x| *x) {
                    Some(ResultInit::Arg(a)) => {
                        inv.args.get(a as usize).cloned().unwrap_or(Value::Poison)
                    }
                    Some(ResultInit::Const(c)) => c.to_value(),
                    None => Value::Poison,
                })
                .collect()
        } else {
            inv.last_output.clone()
        };
        if let Some((ptask, puid)) = inv.spawn_parent {
            // Sync bookkeeping: find the parent invocation and release it.
            for pinv in self.tasks[ptask].tiles.iter_mut().flatten() {
                if pinv.uid == puid {
                    pinv.spawns_outstanding -= 1;
                    break;
                }
            }
            // Parent may now be complete.
            let ptiles = self.tasks[ptask].tiles.len();
            for pt in 0..ptiles {
                self.check_invocation_complete(ptask, pt)?;
            }
        } else if let Some(reply) = inv.reply.clone() {
            let at = self.cycle + 1;
            self.schedule(at, Ev::Reply { to: reply, results });
        } else {
            self.root_result = Some(results);
        }
        self.last_progress = self.cycle;
        // Return the shell to the pool: its vectors keep their (task-
        // constant) shapes for the next activation.
        self.tasks[ti].pool.push(inv);
        Ok(())
    }
}

/// A wait-for-graph vertex: (task, tile, node).
type V = (usize, usize, usize);

/// One wait-for edge: the owning vertex waits on `to` through `edge`.
struct W {
    to: V,
    edge: WaitEdge,
}

/// Find one cycle in the wait-for graph (iterative DFS with an explicit
/// path stack) and return its wait edges in wait-for order. Empty if the
/// stall has no channel cycle (e.g. progress is blocked on memory).
fn find_wait_cycle(vertices: &[V], waits: &HashMap<V, Vec<W>>) -> Vec<WaitEdge> {
    // 0 = unvisited, 1 = on the current path, 2 = finished.
    let mut color: HashMap<V, u8> = HashMap::new();
    for &start in vertices {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        // Each entry: (vertex, next out-edge index, wait edge that led here).
        let mut path: Vec<(V, usize, Option<WaitEdge>)> = vec![(start, 0, None)];
        color.insert(start, 1);
        while let Some(&(v, i, _)) = path.last() {
            let Some(w) = waits.get(&v).and_then(|o| o.get(i)) else {
                color.insert(v, 2);
                path.pop();
                continue;
            };
            if let Some(top) = path.last_mut() {
                top.1 += 1;
            }
            match color.get(&w.to).copied().unwrap_or(0) {
                1 => {
                    // Back edge: the cycle runs from `w.to` along the path
                    // back to `v`, closed by this edge.
                    let p = path.iter().position(|e| e.0 == w.to).unwrap_or(0);
                    let mut cycle: Vec<WaitEdge> =
                        path[p + 1..].iter().filter_map(|e| e.2.clone()).collect();
                    cycle.push(w.edge.clone());
                    return cycle;
                }
                2 => {}
                _ => {
                    color.insert(w.to, 1);
                    path.push((w.to, 0, Some(w.edge.clone())));
                }
            }
        }
    }
    Vec::new()
}

/// Consumers-before-producers order over forward edges, so that a consumer
/// freeing a 1-deep edge this cycle lets its producer refire this cycle
/// (sustaining II=1 through handshake chains).
/// Evaluate a compute op on runtime values.
fn eval_op(op: OpKind, values: &[Value]) -> Result<Value, SimError> {
    let r = match op {
        OpKind::Bin(b) => {
            // Hardware on a predicated-off path may divide by zero; the
            // result is squashed, so produce poison rather than fault.
            if matches!(b, BinOp::Div | BinOp::Rem) && values[1].as_int_checked() == Some(0) {
                return Ok(Value::Poison);
            }
            eval_bin(b, &values[0], &values[1]).map_err(|e| SimError::eval(e.to_string()))?
        }
        OpKind::Un(u) => eval_un(u, &values[0]),
        OpKind::Cmp(p) => eval_cmp(p, &values[0], &values[1]),
        OpKind::Select => {
            if values[0].is_poison() {
                Value::Poison
            } else if values[0].as_bool() {
                values[1].clone()
            } else {
                values[2].clone()
            }
        }
        OpKind::Cast(c) => match c {
            muir_mir::instr::CastOp::SiToFp => {
                if values[0].is_poison() {
                    Value::Poison
                } else {
                    Value::F32(values[0].as_int() as f32)
                }
            }
            muir_mir::instr::CastOp::FpToSi => {
                if values[0].is_poison() {
                    Value::Poison
                } else {
                    Value::Int(values[0].as_f32() as i64)
                }
            }
            muir_mir::instr::CastOp::IntResize => values[0].clone(),
        },
        OpKind::Tensor(t, _) => {
            if values.iter().any(Value::is_poison) {
                Value::Poison
            } else {
                eval_tensor(t, &values[0], values.get(1))
                    .map_err(|e| SimError::eval(e.to_string()))?
            }
        }
    };
    Ok(r)
}

/// Evaluate a fused plan.
fn eval_fused(plan: &muir_core::node::FusedPlan, values: &[Value]) -> Result<Value, SimError> {
    let mut step_vals: Vec<Value> = Vec::with_capacity(plan.steps.len());
    for step in &plan.steps {
        let ins: Vec<Value> = step
            .inputs
            .iter()
            .map(|i| match i {
                FusedInput::External(p) => values[*p as usize].clone(),
                FusedInput::Step(s) => step_vals[*s as usize].clone(),
            })
            .collect();
        step_vals.push(eval_op(step.op, &ins)?);
    }
    step_vals
        .pop()
        .ok_or_else(|| SimError::eval("empty fused plan"))
}

/// Flip one bit of a scalar token value (the data-line corruption of the
/// token-bit-flip fault class). Aggregates corrupt their first scalar lane.
fn flip_bit(v: &Value, bit: u32) -> Value {
    match v {
        Value::Bool(b) => Value::Bool(!b),
        Value::Int(x) => Value::Int(x ^ (1i64 << (bit % 63))),
        Value::F32(f) => Value::F32(f32::from_bits(f.to_bits() ^ (1u32 << (bit % 32)))),
        Value::Vector(vs) => {
            let mut vs = vs.clone();
            if let Some(first) = vs.first_mut() {
                *first = flip_bit(first, bit);
            }
            Value::Vector(vs)
        }
        Value::Tensor { shape, data } => {
            let mut data = data.clone();
            if let Some(first) = data.first_mut() {
                *first = flip_bit(first, bit);
            }
            Value::Tensor {
                shape: *shape,
                data,
            }
        }
        other => other.clone(),
    }
}

/// Poison-tolerant integer view.
trait ValueExt {
    fn as_int_checked(&self) -> Option<i64>;
}

impl ValueExt for Value {
    fn as_int_checked(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }
}
